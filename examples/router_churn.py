#!/usr/bin/env python3
"""A software router under BGP churn.

Simulates the paper's deployment story end to end: a line card holds the
compressed prefix DAG, the control CPU holds the control FIB, and a BGP
feed applies announcements/withdrawals while the data plane keeps
answering lookups. Reports sustained update and lookup rates and the
memory footprint over time — the workload behind Fig 5's claim of
"hundreds of thousands of updates per second in 150–500 KBytes".

Run:  python examples/router_churn.py
"""

from __future__ import annotations

import time

from repro import PrefixDag, fib_entropy
from repro.datasets import (
    bgp_update_sequence,
    build_profile_fib,
    caida_like_trace,
    profile,
)

CHURN_BATCHES = 8
UPDATES_PER_BATCH = 1_000
LOOKUPS_PER_BATCH = 5_000


def main() -> None:
    fib = build_profile_fib(profile("taz"), scale=0.05)
    report = fib_entropy(fib)
    print(f"router FIB: {len(fib):,} prefixes, H0 = {report.h0:.2f}")

    dag = PrefixDag(fib, barrier=11)
    print(f"prefix DAG at lambda=11: {dag.size_in_kbytes():.0f} KB "
          f"(entropy bound {report.entropy_kbytes:.0f} KB)\n")

    feed = bgp_update_sequence(
        fib, CHURN_BATCHES * UPDATES_PER_BATCH, seed=1, withdraw_fraction=0.05
    )
    traffic = caida_like_trace(fib, LOOKUPS_PER_BATCH, seed=2)

    print(f"{'batch':>5} {'updates/s':>12} {'lookups/s':>12} {'size KB':>9} "
          f"{'work/update':>12}")
    for batch in range(CHURN_BATCHES):
        ops = feed[batch * UPDATES_PER_BATCH : (batch + 1) * UPDATES_PER_BATCH]

        start = time.perf_counter()
        total_work = 0
        applied = 0
        for op in ops:
            try:
                cost = dag.update(op.prefix, op.length, op.label)
            except KeyError:
                continue
            total_work += cost.total_work
            applied += 1
        update_elapsed = time.perf_counter() - start

        start = time.perf_counter()
        for address in traffic:
            dag.lookup(address)
        lookup_elapsed = time.perf_counter() - start

        print(f"{batch:>5} {applied / update_elapsed:>12,.0f} "
              f"{len(traffic) / lookup_elapsed:>12,.0f} "
              f"{dag.size_in_kbytes():>9.0f} "
              f"{total_work / max(1, applied):>12.1f}")

    # The invariant that makes the whole scheme deployable: after
    # arbitrary churn, the DAG still equals a fresh compression of the
    # control FIB.
    dag.check_integrity()
    fresh = PrefixDag(dag.control_trie, barrier=11)
    assert fresh.folded_interior_count() == dag.folded_interior_count()
    print("\nafter churn: DAG is canonical (identical to a fresh fold) "
          "and reference counts are consistent")


if __name__ == "__main__":
    main()
