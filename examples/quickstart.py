#!/usr/bin/env python3
"""Quickstart: compress a forwarding table to its entropy bound.

Builds a small Internet-shaped FIB, measures its compressibility (the
I and E bounds of the paper's §2), compresses it with both XBW-b (§3)
and trie-folding (§4), and checks that longest-prefix match is exact on
every representation.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Fib, PrefixDag, SerializedDag, XBWb, fib_entropy
from repro.core.trie import BinaryTrie
from repro.datasets import internet_like_fib, label_sampler_with_entropy, uniform_trace
from repro.utils.bits import format_prefix, parse_prefix


def build_demo_fib() -> Fib:
    """A 20K-prefix FIB shaped like a real access router table: DFZ
    prefix-length mix, 16 next-hops, low next-hop entropy."""
    sampler = label_sampler_with_entropy(16, 1.1)
    return internet_like_fib(20_000, sampler, seed=42, default_route=True)


def main() -> None:
    fib = build_demo_fib()
    print(f"FIB: {len(fib):,} prefixes, {fib.delta} next-hops")

    # --- compressibility metrics (Propositions 1 and 2) ----------------
    report = fib_entropy(fib)
    print(f"leaf-pushed normal form: n = {report.leaves:,} leaves, "
          f"H0 = {report.h0:.3f} bits/label")
    print(f"information-theoretic limit I = {report.info_bound_kbytes:8.1f} KB")
    print(f"FIB entropy E                 = {report.entropy_kbytes:8.1f} KB")

    # --- the two compressors -------------------------------------------
    xbw = XBWb.from_fib(fib)
    dag = PrefixDag(fib, barrier=11)
    image = SerializedDag(dag)
    print(f"XBW-b                         = {xbw.size_in_kbytes():8.1f} KB "
          f"({xbw.size_in_bits() / len(fib):.1f} bits/prefix)")
    print(f"prefix DAG (lambda=11)        = {dag.size_in_kbytes():8.1f} KB "
          f"({dag.size_in_bits() / len(fib):.1f} bits/prefix)")
    print(f"serialized forwarding image   = {image.size_in_kbytes():8.1f} KB")

    # --- lookups are exact on the compressed forms ----------------------
    reference = BinaryTrie.from_fib(fib)
    for address in uniform_trace(20_000, seed=7):
        expected = reference.lookup(address)
        assert xbw.lookup(address) == expected
        assert dag.lookup(address) == expected
        assert image.lookup(address) == expected
    print("20,000 random lookups: XBW-b, prefix DAG and serialized image "
          "all match the reference trie")

    # --- a human-readable lookup ----------------------------------------
    for text in ("10.32.17.4", "192.0.2.55", "172.16.9.200"):
        address, _ = parse_prefix(text)
        label = dag.lookup(address)
        rendered = format_prefix(address, 32, 32).rsplit("/", 1)[0]
        print(f"  {rendered:<16} -> next-hop {label}")

    # --- updates stay cheap at the chosen barrier ------------------------
    cost = dag.update(*parse_prefix("203.0.113.0/24"), 3)
    print(f"one /24 update touched {cost.total_work} nodes "
          f"(refold: {cost.refolded_subtrie})")


if __name__ == "__main__":
    main()
