#!/usr/bin/env python3
"""Virtual router consolidation.

One of the paper's motivations (§1.1): "Large FIBs also complicate
maintaining multiple virtual router instances, each with its own FIB, on
the same physical hardware." This example provisions eight virtual
routers — each seeing the same global routing table but with its own
next-hop mapping (different peerings) — and compares the line-card
memory bill for fib_trie against entropy-compressed prefix DAGs.

Run:  python examples/virtual_routers.py
"""

from __future__ import annotations

from repro import PrefixDag, fib_entropy
from repro.baselines import fib_trie
from repro.core.fib import Fib
from repro.datasets import build_profile_fib, label_sampler_with_entropy, profile
from repro.utils.rng import make_rng

VIRTUAL_ROUTERS = 8


def virtual_instance(base: Fib, instance: int) -> Fib:
    """Same prefixes, instance-specific next-hop mapping: each VR peers
    with a different subset of neighbors, so labels are re-drawn with
    the same low entropy but a different seed."""
    sampler = label_sampler_with_entropy(8, 1.1)
    rng = make_rng(1000 + instance)
    out = Fib(base.width)
    for route in base:
        out.add(route.prefix, route.length, sampler.sample(rng))
    return out


def main() -> None:
    base = build_profile_fib(profile("access_d"), scale=0.04)
    print(f"global table: {len(base):,} prefixes; "
          f"{VIRTUAL_ROUTERS} virtual routers\n")

    total_trie_kb = 0.0
    total_dag_kb = 0.0
    total_entropy_kb = 0.0
    print(f"{'VR':>3} {'fib_trie KB':>12} {'pDAG KB':>9} {'E KB':>7} {'nu':>6}")
    for instance in range(VIRTUAL_ROUTERS):
        fib = virtual_instance(base, instance)
        trie_kb = fib_trie(fib).size_in_kbytes()
        dag = PrefixDag(fib, barrier=11)
        dag_kb = dag.size_in_kbytes()
        report = fib_entropy(fib)
        total_trie_kb += trie_kb
        total_dag_kb += dag_kb
        total_entropy_kb += report.entropy_kbytes
        print(f"{instance:>3} {trie_kb:>12,.0f} {dag_kb:>9.0f} "
              f"{report.entropy_kbytes:>7.0f} "
              f"{dag_kb / report.entropy_kbytes:>6.2f}")

    print("-" * 42)
    print(f"fib_trie total: {total_trie_kb / 1024:8.1f} MB")
    print(f"pDAG total:     {total_dag_kb / 1024:8.1f} MB "
          f"({total_trie_kb / total_dag_kb:.0f}x smaller)")
    print(f"entropy bound:  {total_entropy_kb / 1024:8.1f} MB")
    print(f"\n{VIRTUAL_ROUTERS} compressed FIBs fit in "
          f"{total_dag_kb:,.0f} KB — less than one uncompressed instance "
          f"({total_trie_kb / VIRTUAL_ROUTERS:,.0f} KB).")


if __name__ == "__main__":
    main()
