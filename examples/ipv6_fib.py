#!/usr/bin/env python3
"""Trie-folding beyond IPv4: a 128-bit IPv6 FIB.

The paper deliberately omits IPv6 "for brevity", noting "we see no
reasons why our techniques could not be adapted to IPv6" (§7). Every
structure in this library is parameterized by the address width W, so
this example builds an IPv6-shaped table (global unicast prefixes
between /20 and /64, heavy at /32 and /48) and compresses it with both
XBW-b and trie-folding.

Run:  python examples/ipv6_fib.py
"""

from __future__ import annotations

import random

from repro import Fib, PrefixDag, XBWb, fib_entropy
from repro.core.barrier import entropy_barrier
from repro.core.trie import BinaryTrie
from repro.utils.bits import IPV6_WIDTH
from repro.utils.rng import DiscreteSampler

# IPv6 BGP table length mix (shaped after public v6 table reports:
# /32 and /48 dominate, /44-/40 aggregates in between).
V6_LENGTH_MIX = {20: 0.01, 24: 0.02, 28: 0.03, 32: 0.30, 36: 0.06,
                 40: 0.08, 44: 0.07, 48: 0.38, 56: 0.03, 64: 0.02}


def ipv6_fib(entries: int, seed: int) -> Fib:
    rng = random.Random(seed)
    lengths = DiscreteSampler(list(V6_LENGTH_MIX.values()),
                              values=list(V6_LENGTH_MIX.keys()))
    labels = DiscreteSampler([20, 4, 2, 1, 1], values=[1, 2, 3, 4, 5])
    fib = Fib(width=IPV6_WIDTH)
    while len(fib) < entries:
        length = lengths.sample(rng)
        # 2000::/3 global unicast: fix the top 3 bits to 001.
        value = (0b001 << (length - 3)) | rng.getrandbits(length - 3)
        fib.add(value, length, labels.sample(rng))
    return fib


def main() -> None:
    fib = ipv6_fib(15_000, seed=6)
    print(f"IPv6 FIB: {len(fib):,} prefixes (W = {fib.width}), "
          f"{fib.delta} next-hops")

    report = fib_entropy(fib)
    print(f"normal form: n = {report.leaves:,} leaves, H0 = {report.h0:.3f}")
    print(f"entropy bound E = {report.entropy_kbytes:.1f} KB")

    barrier = entropy_barrier(report.leaves, report.h0, fib.width)
    dag = PrefixDag(fib, barrier=barrier)
    xbw = XBWb.from_fib(fib)
    print(f"equation (3) barrier: lambda = {barrier}")
    print(f"XBW-b:      {xbw.size_in_kbytes():8.1f} KB")
    print(f"prefix DAG: {dag.size_in_kbytes():8.1f} KB "
          f"(nu = {dag.size_in_bits() / report.entropy_bits:.2f})")

    reference = BinaryTrie.from_fib(fib)
    rng = random.Random(1)
    for _ in range(3_000):
        address = rng.getrandbits(IPV6_WIDTH)
        assert dag.lookup(address) == reference.lookup(address)
        assert xbw.lookup(address) == reference.lookup(address)
    # Lookups under covered space, too (uniform 128-bit addresses rarely
    # hit 2000::/3).
    routes = list(fib)
    for _ in range(3_000):
        route = routes[rng.randrange(len(routes))]
        host = rng.getrandbits(IPV6_WIDTH - route.length)
        address = (route.prefix << (IPV6_WIDTH - route.length)) | host
        assert dag.lookup(address) == reference.lookup(address)
    print("6,000 IPv6 lookups: compressed forms match the reference trie")

    cost = dag.update(routes[0].prefix, routes[0].length, 5)
    print(f"one update at /{routes[0].length}: {cost.total_work} nodes touched "
          f"(W + 2^(W - lambda) bound holds for W = 128)")


if __name__ == "__main__":
    main()
