#!/usr/bin/env python3
"""Trie-folding as a general-purpose compressed string self-index.

§4.2 of the paper observes that a prefix DAG over a complete binary trie
*is* "a dynamic, entropy-compressed string self-index ... the first
pointer machine of this kind". This example exercises that reading
directly, reproducing the Fig 4 walk-through ("bananaba") and then
compressing a megasymbol low-entropy string with random access on the
compressed form.

Run:  python examples/string_compressor.py
"""

from __future__ import annotations

import math
import random

from repro import FoldedString
from repro.core.stringmodel import pad_to_power_of_two


def fig4_walkthrough() -> None:
    print("Fig 4 walk-through: the string 'bananaba'")
    symbols = [ord(c) for c in "bananaba"]
    folded = FoldedString(symbols, barrier=0)
    # "The third character of the string can be accessed by looking up
    # the key 3 - 1 = 010b."
    third = chr(folded.access(0b010))
    print(f"  access(0b010) = {third!r} (expected 'n')")
    print(f"  coalesced leaves: {folded.folded_leaf_count()} (alphabet b/a/n)")
    print(f"  interior nodes: {folded.folded_interior_count()} "
          f"(complete tree would need 7)\n")


def big_string_demo() -> None:
    n = 1 << 20
    p = 0.03  # 3% of symbols are 'hot': H0 ~ 0.19 bits/symbol
    rng = random.Random(9)
    symbols = [1 if rng.random() < p else 0 for _ in range(n)]
    folded = FoldedString(symbols)
    report = folded.report()

    raw_bits = n  # 1 bit/symbol raw
    print(f"string: n = {n:,} symbols, H0 = {report.h0:.3f} bits/symbol")
    print(f"  raw size:         {raw_bits / 8192:10.1f} KB")
    print(f"  entropy (n*H0):   {report.entropy_bits / 8192:10.1f} KB")
    print(f"  folded DAG D(S):  {report.size_bits / 8192:10.1f} KB "
          f"(nu = {report.efficiency:.2f}, barrier lambda = {report.barrier})")

    # Random access directly on the compressed form.
    for _ in range(50_000):
        index = rng.randrange(n)
        assert folded.access(index) == symbols[index]
    print("  50,000 random accesses on the compressed form: all correct")

    # Theorem 2's guarantee for this instance.
    bound = (6 + 2 * math.log2(1 / report.h0)) * report.h0 * n
    print(f"  Theorem 2 bound:  {bound / 8192:10.1f} KB "
          f"(measured/bound = {report.size_bits / bound:.2f})")


def text_demo() -> None:
    text = ("the quick brown fox jumps over the lazy dog " * 400).strip()
    symbols = pad_to_power_of_two([ord(c) for c in text])
    folded = FoldedString(symbols)
    report = folded.report()
    print(f"\nASCII text: {len(text):,} chars over a {report.delta}-symbol alphabet")
    print(f"  8-bit raw:       {len(symbols) * 8 / 8192:8.1f} KB")
    print(f"  folded DAG:      {report.size_bits / 8192:8.1f} KB")
    snippet = "".join(chr(folded.access(i)) for i in range(19))
    print(f"  decompressed[0:19] = {snippet!r}")


if __name__ == "__main__":
    fig4_walkthrough()
    big_string_demo()
    text_demo()
