"""Setup shim.

The offline evaluation environment has no ``wheel`` package, so PEP 660
editable installs cannot build; this shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` (and plain
``python setup.py develop``) work from the pyproject metadata.
"""

from setuptools import setup

setup()
