"""Unit and property tests for multibit prefix DAGs (§7 extension)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.multibit import MultibitDag
from repro.core.prefixdag import PrefixDag
from repro.core.trie import BinaryTrie

from tests.conftest import assert_forwarding_equivalent, random_fib


class TestConstruction:
    def test_rejects_bad_stride(self, paper_fib):
        with pytest.raises(ValueError):
            MultibitDag(paper_fib, stride=0)
        with pytest.raises(ValueError):
            MultibitDag(paper_fib, stride=5)  # does not divide 32

    def test_accepts_fib_and_trie(self, paper_fib):
        via_fib = MultibitDag(paper_fib, stride=2)
        via_trie = MultibitDag(BinaryTrie.from_fib(paper_fib), stride=2)
        assert via_fib.interior_count() == via_trie.interior_count()

    def test_stride_one_matches_binary_fold(self, medium_fib):
        # Stride 1 must reproduce the fully-folded binary prefix DAG.
        multibit = MultibitDag(medium_fib, stride=1)
        binary = PrefixDag(medium_fib, barrier=0)
        assert multibit.interior_count() == binary.folded_interior_count()
        assert multibit.leaf_count() == binary.folded_leaf_count()


class TestLookup:
    @pytest.mark.parametrize("stride", [1, 2, 4, 8])
    def test_paper_example(self, paper_fib, stride, rng):
        trie = BinaryTrie.from_fib(paper_fib)
        dag = MultibitDag(paper_fib, stride=stride)
        assert_forwarding_equivalent(trie.lookup, dag.lookup, rng)

    @given(st.integers(0, 2**31), st.sampled_from([1, 2, 4, 8, 16]))
    @settings(max_examples=30, deadline=None)
    def test_equivalence_random(self, seed, stride):
        rng = random.Random(seed)
        fib = random_fib(rng, 40, 4, max_length=12)
        trie = BinaryTrie.from_fib(fib)
        dag = MultibitDag(fib, stride=stride)
        for _ in range(60):
            address = rng.getrandbits(32)
            assert dag.lookup(address) == trie.lookup(address)

    def test_depth_shrinks_with_stride(self, medium_fib):
        depth1 = MultibitDag(medium_fib, stride=1).max_depth()
        depth4 = MultibitDag(medium_fib, stride=4).max_depth()
        depth8 = MultibitDag(medium_fib, stride=8).max_depth()
        assert depth8 <= depth4 <= depth1
        assert depth8 <= 4  # 32 / 8

    def test_lookup_with_depth_bounded(self, medium_fib, rng):
        dag = MultibitDag(medium_fib, stride=4)
        for _ in range(100):
            _, depth = dag.lookup_with_depth(rng.getrandbits(32))
            assert depth <= 8  # 32 / 4

    def test_no_route(self):
        from repro.core.fib import Fib

        fib = Fib()
        fib.add(0b1, 1, 4)
        dag = MultibitDag(fib, stride=4)
        assert dag.lookup(0xF0000000) == 4
        assert dag.lookup(0x0F000000) is None


class TestSpaceTimeTradeoff:
    def test_larger_stride_costs_space(self, medium_fib):
        # The expansion of controlled prefix expansion: wider nodes trade
        # memory for depth (the O(log W) vs size tension of §7).
        size2 = MultibitDag(medium_fib, stride=2).size_in_bits()
        size8 = MultibitDag(medium_fib, stride=8).size_in_bits()
        assert size8 > size2

    def test_folding_still_shares(self, rng):
        # Repeated sub-universes still merge at stride 4.
        from repro.core.fib import Fib

        fib = Fib()
        rng2 = random.Random(3)
        subroutes = [(rng2.getrandbits(12), 12) for _ in range(50)]
        for top in (1, 2, 3):
            for index, (suffix, length) in enumerate(subroutes):
                fib.add((top << length) | suffix, 8 + length, 1 + index % 3)
        dag = MultibitDag(fib, stride=4)
        solo = MultibitDag(
            Fib.from_entries(
                [((1 << l) | s, 8 + l, 1 + i % 3) for i, (s, l) in enumerate(subroutes)]
            ),
            stride=4,
        )
        # Three copies cost barely more than one.
        assert dag.interior_count() < 2.0 * solo.interior_count()

    def test_repr(self, paper_fib):
        assert "MultibitDag" in repr(MultibitDag(paper_fib, stride=4))
