"""Unit tests for the serialized prefix-DAG image (§5.3)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fib import Fib
from repro.core.prefixdag import PrefixDag
from repro.core.serialize import SerializedDag
from repro.core.trie import BinaryTrie

from tests.conftest import assert_forwarding_equivalent, random_fib


class TestEquivalence:
    def test_paper_example(self, paper_fib, rng):
        dag = PrefixDag(paper_fib, barrier=2)
        image = SerializedDag(dag)
        trie = BinaryTrie.from_fib(paper_fib)
        assert_forwarding_equivalent(trie.lookup, image.lookup, rng)

    @pytest.mark.parametrize("barrier", [0, 1, 4, 8, 12])
    def test_every_barrier(self, medium_fib, barrier, rng):
        dag = PrefixDag(medium_fib, barrier=barrier)
        image = SerializedDag(dag)
        assert_forwarding_equivalent(dag.lookup, image.lookup, rng, samples=300)

    @given(st.integers(0, 2**31), st.integers(0, 10))
    @settings(max_examples=25, deadline=None)
    def test_random_fibs(self, seed, barrier):
        rng = random.Random(seed)
        fib = random_fib(rng, 40, 4, max_length=14)
        dag = PrefixDag(fib, barrier=barrier)
        image = SerializedDag(dag)
        trie = BinaryTrie.from_fib(fib)
        for _ in range(60):
            address = rng.getrandbits(32)
            assert image.lookup(address) == trie.lookup(address)

    def test_empty_fib(self):
        image = SerializedDag(PrefixDag(Fib(), barrier=4))
        assert image.lookup(0) is None
        assert image.lookup(2**32 - 1) is None

    def test_default_only(self):
        fib = Fib()
        fib.add(0, 0, 9)
        image = SerializedDag(PrefixDag(fib, barrier=4))
        assert image.lookup(0) == 9
        assert image.lookup(2**31) == 9


class TestGuardsAndSizes:
    def test_rejects_huge_barrier(self, paper_fib):
        dag = PrefixDag(paper_fib, barrier=30)
        with pytest.raises(ValueError):
            SerializedDag(dag)

    def test_size_components(self, medium_fib):
        image = SerializedDag(PrefixDag(medium_fib, barrier=8))
        expected = (
            len(image.table_ref) * image.table_entry_bytes
            + image.interior_count * image.node_entry_bytes
            + image.leaf_count * image.leaf_entry_bytes
        )
        assert image.size_in_bytes() == expected
        assert image.size_in_bits() == expected * 8

    def test_table_has_2_to_barrier_entries(self, medium_fib):
        image = SerializedDag(PrefixDag(medium_fib, barrier=7))
        assert len(image.table_ref) == 1 << 7

    def test_repr(self, paper_fib):
        assert "SerializedDag" in repr(SerializedDag(PrefixDag(paper_fib, barrier=2)))


class TestTraces:
    def test_trace_label_agrees(self, medium_fib, rng):
        image = SerializedDag(PrefixDag(medium_fib, barrier=8))
        for _ in range(200):
            address = rng.getrandbits(32)
            label, addresses = image.lookup_trace(address)
            assert label == image.lookup(address)
            assert addresses, "every lookup touches at least the stride table"

    def test_trace_addresses_inside_image(self, medium_fib, rng):
        image = SerializedDag(PrefixDag(medium_fib, barrier=8))
        size = image.size_in_bytes()
        for _ in range(100):
            _, addresses = image.lookup_trace(rng.getrandbits(32))
            assert all(0 <= a < size for a in addresses)

    def test_trace_first_access_is_stride_table(self, medium_fib, rng):
        image = SerializedDag(PrefixDag(medium_fib, barrier=8))
        _, addresses = image.lookup_trace(rng.getrandbits(32))
        assert addresses[0] < image.node_base


class TestDepthProfile:
    def test_matches_sampled_traces(self, medium_fib, rng):
        image = SerializedDag(PrefixDag(medium_fib, barrier=8))
        expected, maximum = image.depth_profile()
        sampled = []
        for _ in range(4000):
            _, trace = image.lookup_trace(rng.getrandbits(32))
            sampled.append(len(trace) - 1)  # drop the stride-table access
        assert abs(sum(sampled) / len(sampled) - expected) < 0.3
        assert max(sampled) <= maximum

    def test_empty_image(self):
        image = SerializedDag(PrefixDag(Fib(), barrier=4))
        expected, maximum = image.depth_profile()
        assert expected == 0.0
        assert maximum == 0

    def test_depth_bounded_by_remaining_width(self, medium_fib):
        image = SerializedDag(PrefixDag(medium_fib, barrier=8))
        _, maximum = image.depth_profile()
        assert maximum <= 32 - 8 + 1  # chain plus the final leaf
