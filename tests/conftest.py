"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.fib import Fib
from repro.core.trie import BinaryTrie

PAPER_EXAMPLE_ENTRIES = [
    # The running example of Fig 1: prefix, length, label.
    (0b0, 0, 2),     # -/0   -> 2
    (0b0, 1, 3),     # 0/1   -> 3
    (0b00, 2, 3),    # 00/2  -> 3
    (0b001, 3, 2),   # 001/3 -> 2
    (0b01, 2, 2),    # 01/2  -> 2
    (0b011, 3, 1),   # 011/3 -> 1
]

FIG3_EXAMPLE_ENTRIES = [
    # The Fig 3 trie: a FIB whose leaf-pushed form folds to half size.
    (0b0, 0, 1),
    (0b00, 2, 2),
    (0b010, 3, 3),
    (0b10, 2, 2),
    (0b110, 3, 3),
    (0b111, 3, 1),
]


def build_fib(entries, width: int = 32) -> Fib:
    fib = Fib(width)
    for prefix, length, label in entries:
        fib.add(prefix, length, label)
    return fib


def random_fib(
    rng: random.Random,
    entries: int,
    delta: int,
    max_length: int = 12,
    width: int = 32,
) -> Fib:
    """A small random FIB for equivalence testing (nested prefixes allowed)."""
    fib = Fib(width)
    attempts = 0
    while len(fib) < entries and attempts < entries * 50:
        attempts += 1
        length = rng.randint(0, max_length)
        value = rng.getrandbits(length) if length else 0
        fib.add(value, length, rng.randint(1, delta))
    return fib


def assert_forwarding_equivalent(reference, candidate, rng, samples=500, width=32):
    """Check LPM agreement on random addresses (and a few edge addresses)."""
    probes = [0, (1 << width) - 1, 1 << (width - 1)]
    probes += [rng.getrandbits(width) for _ in range(samples)]
    for address in probes:
        want = reference(address)
        got = candidate(address)
        assert got == want, f"lookup({address:#x}): want {want!r}, got {got!r}"


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)


@pytest.fixture
def paper_fib() -> Fib:
    return build_fib(PAPER_EXAMPLE_ENTRIES)


@pytest.fixture
def fig3_fib() -> Fib:
    return build_fib(FIG3_EXAMPLE_ENTRIES)


@pytest.fixture
def paper_trie(paper_fib) -> BinaryTrie:
    return BinaryTrie.from_fib(paper_fib)


@pytest.fixture
def medium_fib(rng) -> Fib:
    """A few hundred nested prefixes with 5 next-hops."""
    return random_fib(rng, 300, 5, max_length=16)
