"""Unit and property tests for the XBW-b transform (§3)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fib import Fib
from repro.core.leafpush import leaf_pushed_trie
from repro.core.trie import BinaryTrie
from repro.core.xbw import XBWb
from repro.core.entropy import fib_entropy
from repro.succinct.bitvector import BitVector

from tests.conftest import assert_forwarding_equivalent, random_fib


class TestFig2Example:
    """The worked example of Fig 2: the paper FIB's exact transform."""

    def test_serialization_matches_figure(self, paper_fib):
        normalized = leaf_pushed_trie(BinaryTrie.from_fib(paper_fib))
        si, labels = XBWb._serialize(normalized)
        assert si == [0, 0, 1, 0, 0, 1, 1, 1, 1]
        assert labels == [2, 3, 2, 2, 1]

    def test_counts(self, paper_fib):
        xbw = XBWb.from_fib(paper_fib)
        assert xbw.node_count == 9
        assert xbw.leaf_count == 5

    def test_lookups(self, paper_fib):
        xbw = XBWb.from_fib(paper_fib)
        assert xbw.lookup(0b0111 << 28) == 1
        assert xbw.lookup(0b0010 << 28) == 2
        assert xbw.lookup(0b0000 << 28) == 3
        assert xbw.lookup(0b1010 << 28) == 2


class TestConstruction:
    def test_requires_proper_trie(self, paper_trie):
        with pytest.raises(ValueError):
            XBWb(paper_trie)  # not leaf-pushed

    def test_from_trie_normalizes(self, paper_trie):
        assert XBWb.from_trie(paper_trie).leaf_count == 5

    def test_single_leaf_fib(self):
        fib = Fib()
        fib.add(0, 0, 3)
        xbw = XBWb.from_fib(fib)
        assert xbw.node_count == 1
        assert xbw.lookup(0) == 3
        assert xbw.lookup(2**32 - 1) == 3

    def test_empty_fib_maps_everything_to_none(self):
        xbw = XBWb.from_fib(Fib())
        assert xbw.lookup(0) is None

    def test_bottom_leaves_return_none(self):
        fib = Fib()
        fib.add(0b1, 1, 4)
        xbw = XBWb.from_fib(fib)
        assert xbw.lookup(0x80000000) == 4
        assert xbw.lookup(0x00000001) is None

    def test_plain_bitvector_backing(self, paper_fib):
        xbw = XBWb.from_fib(paper_fib, bitvector_factory=BitVector)
        assert xbw.lookup(0b0111 << 28) == 1

    def test_balanced_wavelet_shape(self, paper_fib):
        xbw = XBWb.from_fib(paper_fib, wavelet_shape="balanced")
        assert xbw.lookup(0b0010 << 28) == 2


class TestLosslessness:
    def test_reconstruction(self, paper_fib):
        normalized = leaf_pushed_trie(BinaryTrie.from_fib(paper_fib))
        xbw = XBWb(normalized)
        rebuilt = xbw.to_trie()
        assert XBWb._serialize(rebuilt) == XBWb._serialize(normalized)

    @given(st.integers(0, 2**31))
    @settings(max_examples=25, deadline=None)
    def test_reconstruction_random(self, seed):
        rng = random.Random(seed)
        fib = random_fib(rng, 40, 4, max_length=10)
        normalized = leaf_pushed_trie(BinaryTrie.from_fib(fib))
        assert XBWb._serialize(XBWb(normalized).to_trie()) == XBWb._serialize(normalized)


class TestLookupEquivalence:
    @given(st.integers(0, 2**31))
    @settings(max_examples=25, deadline=None)
    def test_matches_trie_lookup(self, seed):
        rng = random.Random(seed)
        fib = random_fib(rng, 60, 5, max_length=12)
        trie = BinaryTrie.from_fib(fib)
        xbw = XBWb.from_fib(fib)
        for _ in range(100):
            address = rng.getrandbits(32)
            assert xbw.lookup(address) == trie.lookup(address)

    def test_lookup_with_stats(self, paper_fib):
        xbw = XBWb.from_fib(paper_fib)
        label, stats = xbw.lookup_with_stats(0b0111 << 28)
        assert label == 1
        assert stats.steps == 4         # root, 0, 01, 011
        assert stats.rank_calls == 4    # one rank per step
        assert stats.access_calls == 5  # S_I per step + final S_alpha

    def test_lookup_trace_agrees(self, medium_fib, rng):
        xbw = XBWb.from_fib(medium_fib)
        trie = BinaryTrie.from_fib(medium_fib)
        for _ in range(50):
            address = rng.getrandbits(32)
            label, addresses = xbw.lookup_trace(address)
            assert label == trie.lookup(address)
            assert addresses


class TestSizeBounds:
    def test_size_is_sum_of_parts(self, paper_fib):
        xbw = XBWb.from_fib(paper_fib)
        assert xbw.size_in_bits() == (
            xbw._si.size_in_bits() + xbw._labels.size_in_bits()
        )

    def test_tracks_entropy_at_scale(self, rng):
        # Lemma 3: size within E plus o(n) overhead. Verified with a
        # generous slack on a mid-sized skewed FIB.
        fib = random_fib(rng, 3000, 4, max_length=18)
        report = fib_entropy(fib)
        xbw = XBWb.from_fib(fib)
        assert xbw.size_in_bits() <= report.entropy_bits + 0.6 * report.leaves + 4096

    def test_skewed_labels_compress_better(self, rng):
        base = random_fib(rng, 2000, 2, max_length=16)
        skewed = Fib()
        uniform = Fib()
        for index, route in enumerate(base):
            skewed.add(route.prefix, route.length, 1 if index % 20 else 2)
            uniform.add(route.prefix, route.length, 1 + index % 2)
        assert XBWb.from_fib(skewed).size_in_bits() < XBWb.from_fib(uniform).size_in_bits()

    def test_repr(self, paper_fib):
        text = repr(XBWb.from_fib(paper_fib))
        assert "XBWb" in text and "leaves=5" in text
