"""Tests for the self-healing worker plane: repro.serve.faults (the
deterministic fault-injection grammar) and repro.serve.supervisor
(restart budgets) wired through WorkerPool.

Process-touching tests keep FIBs tiny, worker counts small and fault
triggers early: every supervised recovery costs a respawned
interpreter, and the suite must stay cheap on one core. The
quantitative story (MTTR, availability) lives in
``benchmarks/bench_faults.py``.
"""

from __future__ import annotations

import random

import pytest

from repro import serve
from repro.datasets.updates import UpdateOp
from repro.serve.faults import Fault, FaultPlan
from repro.serve.supervisor import RestartBudget
from repro.serve.workers import WorkerError, WorkerPool, pack_events
from tests.conftest import random_fib


@pytest.fixture(scope="module")
def small_fib():
    rng = random.Random(20260807)
    return random_fib(rng, entries=160, delta=6, max_length=14)


def churn_events(fib, *, lookups=768, updates=48, seed=3, batch_size=64,
                 scenario="bgp-churn"):
    return pack_events(
        serve.build_events(
            serve.scenario(scenario), fib,
            lookups=lookups, updates=updates, seed=seed,
            batch_size=batch_size,
        )
    )


class TestFaultPlanGrammar:
    def test_parse_full_spec(self):
        plan = FaultPlan.parse(
            ["kill-worker:1@batch=3",
             "delay-reply:0@batch=5,seconds=0.5,incarnation=1"]
        )
        assert plan.faults[0] == Fault(
            kind="kill-worker", worker=1, at=3)
        assert plan.faults[1] == Fault(
            kind="delay-reply", worker=0, at=5, seconds=0.5, incarnation=1)

    def test_frontend_fault_takes_no_worker(self):
        plan = FaultPlan.parse("corrupt-segment@publish=2")
        assert plan.faults[0].worker is None
        assert plan.resolve(4).corrupts_publish(2)
        assert not plan.resolve(4).corrupts_publish(1)
        with pytest.raises(ValueError):
            FaultPlan.parse("corrupt-segment:1@publish=2")

    def test_omitted_worker_is_wildcard(self):
        plan = FaultPlan.parse("kill-worker@batch=3", seed=5)
        assert plan.faults[0].worker == -1  # unresolved '*'
        assert plan.resolve(4).faults == FaultPlan.parse(
            "kill-worker:*@batch=3", seed=5).resolve(4).faults

    @pytest.mark.parametrize("spec", [
        "explode@batch=1",            # unknown kind
        "kill-worker:0@flops=1",      # wrong trigger key
        "kill-worker:0@batch=0",      # trigger counts from 1
        "kill-worker:0@batch=x",      # non-integer trigger
        "kill-worker:0",              # no trigger at all
        "kill-worker:0@batch=1,volume=11",  # unknown extra key
    ])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            FaultPlan.parse(spec)

    def test_wildcard_victim_is_seed_deterministic(self):
        picks = {
            FaultPlan.parse("kill-worker:*@batch=1", seed=5)
            .resolve(8).faults[0].worker
            for _ in range(4)
        }
        assert len(picks) == 1  # same seed, same victim, every time
        other = FaultPlan.parse(
            "kill-worker:*@batch=1", seed=6).resolve(8).faults[0].worker
        assert 0 <= other < 8

    def test_resolve_rejects_out_of_range_victim(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("kill-worker:4@batch=1").resolve(2)

    def test_worker_payload_filters_by_victim_and_incarnation(self):
        plan = FaultPlan.parse(
            ["kill-worker:1@batch=3",
             "delay-reply:1@batch=2,seconds=0.1,incarnation=1"]
        ).resolve(2)
        assert plan.worker_payload(0) == []
        assert [f["kind"] for f in plan.worker_payload(1)] == ["kill-worker"]
        assert [f["kind"] for f in plan.worker_payload(1, incarnation=1)] == [
            "delay-reply"]


class TestRestartBudget:
    def test_backoff_grows_then_window_exhausts(self):
        import time

        budget = RestartBudget(2, restart_window=30.0,
                               backoff_base=0.01, backoff_cap=1.0)
        base = time.monotonic()
        first = budget.admit(0, now=base)
        second = budget.admit(0, now=base + 0.1)
        assert first is not None and second is not None
        assert second > first
        assert budget.admit(0, now=base + 0.2) is None  # budget spent
        assert budget.spent(0) == 2

    def test_window_slides(self):
        budget = RestartBudget(1, restart_window=10.0)
        assert budget.admit(3, now=0.0) is not None
        assert budget.admit(3, now=1.0) is None
        assert budget.admit(3, now=20.0) is not None  # old death aged out

    def test_budgets_are_per_shard(self):
        budget = RestartBudget(1)
        assert budget.admit(0, now=0.0) is not None
        assert budget.admit(1, now=0.0) is not None


class TestSupervisedRecovery:
    @pytest.mark.parametrize("transport", ["shm", "pipe"])
    def test_kill_recovers_with_parity(self, small_fib, transport):
        events = churn_events(small_fib)
        probes = serve.parity_probes(small_fib, 200, seed=3)
        report = serve.serve_worker_scenario(
            "prefix-dag", small_fib, events,
            scenario="bgp-churn", workers=2, transport=transport,
            parity_probes=probes, rebuild_every=16,
            max_restarts=2,
            faults=FaultPlan.parse("kill-worker:1@batch=2"),
        )
        assert report.worker_restarts >= 1
        assert report.workers_abandoned == 0
        assert report.failed_lookups == 0
        assert report.availability == 1.0
        assert report.final_parity == 1.0
        assert report.mean_recovery_seconds > 0
        assert serve.leaked_segments() == []

    def test_crash_mid_attach_recovers(self, small_fib):
        # The victim dies *inside* OP_ATTACH adoption of generation 2;
        # its respawn attaches the same generation cleanly.
        events = churn_events(small_fib, lookups=512, updates=64)
        probes = serve.parity_probes(small_fib, 200, seed=3)
        report = serve.serve_worker_scenario(
            "prefix-dag", small_fib, events,
            scenario="bgp-churn", workers=2, transport="shm",
            parity_probes=probes, rebuild_every=8,
            max_restarts=2,
            faults=FaultPlan.parse("fail-attach:0@attach=2"),
        )
        assert report.worker_restarts >= 1
        assert report.final_parity == 1.0
        assert serve.leaked_segments() == []

    def test_crash_during_update_drain(self, small_fib):
        # Kill a pipe worker, then push updates while it is down: the
        # supervised pool must skip the dead shard (its respawn rebuilds
        # from the control oracle) and still converge to full parity.
        plan = FaultPlan.parse("kill-worker:0@batch=1").resolve(2)
        with WorkerPool(
            "prefix-dag", small_fib, workers=2, transport="pipe",
            max_restarts=2, faults=plan, timeout=30.0,
        ) as pool:
            rng = random.Random(11)
            pool.lookup_batch([rng.getrandbits(32)
                               for _ in range(64)])  # trips the kill
            for _ in range(24):
                length = rng.randint(4, 12)
                pool.apply_update(
                    UpdateOp(rng.getrandbits(length), length,
                             rng.randint(1, 6))
                )
            pool.quiesce()
            probes = serve.parity_probes(pool.control, 200, seed=9)
            assert pool.parity_fraction(probes) == 1.0
            assert pool.report(scenario="unit").worker_restarts >= 1

    def test_budget_exhausted_raises_clean_error(self, small_fib):
        # Two kills of the same shard inside one restart window with a
        # one-restart budget: the shard is abandoned and lookups fail
        # with a structured WorkerError instead of hanging or degrading
        # forever.
        plan = FaultPlan.parse(
            ["kill-worker:0@batch=1",
             "kill-worker:0@batch=1,incarnation=1"]
        ).resolve(2)
        pool = WorkerPool(
            "prefix-dag", small_fib, workers=2, transport="shm",
            max_restarts=1, restart_window=30.0, faults=plan, timeout=30.0,
        )
        try:
            rng = random.Random(4)
            with pytest.raises(WorkerError) as excinfo:
                for _ in range(200):
                    pool.lookup_batch([rng.getrandbits(32)
                                       for _ in range(64)])
                    pool.settle(timeout=5.0)
            assert excinfo.value.worker_index == 0
            report = pool.report(scenario="unit")
            assert report.workers_abandoned == 1
            assert report.worker_restarts == 1
            assert report.failed_lookups > 0
            assert report.availability < 1.0
        finally:
            pool.close()
        assert serve.leaked_segments() == []

    def test_hung_worker_hits_reply_deadline(self, small_fib):
        # delay-reply makes the shard hung-but-alive; the reply deadline
        # must declare it dead so the supervisor can respawn it.
        plan = FaultPlan.parse(
            "delay-reply:1@batch=2,seconds=30").resolve(2)
        with WorkerPool(
            "prefix-dag", small_fib, workers=2, transport="shm",
            max_restarts=1, faults=plan, timeout=2.0,
        ) as pool:
            rng = random.Random(6)
            for _ in range(4):
                addresses = [rng.getrandbits(32) for _ in range(64)]
                assert pool.lookup_batch(addresses) == [
                    small_fib.lookup(address) for address in addresses
                ]
            pool.settle(timeout=10.0)
            probes = serve.parity_probes(small_fib, 100, seed=2)
            assert pool.parity_fraction(probes) == 1.0
            assert pool.report(scenario="unit").worker_restarts == 1

    def test_corrupt_segment_heals_via_republish(self, small_fib):
        # Corrupting generation 2's header kills every adopter and makes
        # the first respawn fail its attach too; the supervisor's heal
        # hook republishes a clean image and the retry lands.
        events = churn_events(small_fib, lookups=512, updates=48)
        probes = serve.parity_probes(small_fib, 200, seed=3)
        report = serve.serve_worker_scenario(
            "prefix-dag", small_fib, events,
            scenario="bgp-churn", workers=2, transport="shm",
            parity_probes=probes, rebuild_every=8,
            max_restarts=3,
            faults=FaultPlan.parse("corrupt-segment@publish=2"),
        )
        assert report.worker_restarts >= 1
        assert report.final_parity == 1.0
        assert serve.leaked_segments() == []

    @pytest.mark.parametrize("scenario", serve.scenario_names())
    def test_parity_after_recovery_every_scenario(self, small_fib, scenario):
        events = churn_events(
            small_fib, lookups=512, updates=32, scenario=scenario)
        probes = serve.parity_probes(small_fib, 150, seed=5)
        report = serve.serve_worker_scenario(
            "prefix-dag", small_fib, events,
            scenario=scenario, workers=2, transport="shm",
            parity_probes=probes, rebuild_every=16,
            max_restarts=2,
            faults=FaultPlan.parse("kill-worker:*@batch=2", seed=5),
        )
        assert report.worker_restarts >= 1
        assert report.final_parity == 1.0

    def test_max_restarts_zero_is_fail_fast(self, small_fib):
        # Supervision off: a scripted kill surfaces as the same
        # structured WorkerError the unsupervised pool raised before.
        plan = FaultPlan.parse("kill-worker:0@batch=1").resolve(2)
        pool = WorkerPool(
            "prefix-dag", small_fib, workers=2, transport="shm",
            max_restarts=0, faults=plan, timeout=30.0,
        )
        try:
            rng = random.Random(8)
            with pytest.raises(WorkerError) as excinfo:
                for _ in range(3):
                    pool.lookup_batch([rng.getrandbits(32)
                                       for _ in range(64)])
            assert excinfo.value.worker_index == 0
            with pytest.raises(WorkerError):
                pool.report(scenario="unit")  # unsupervised: fail-fast
        finally:
            pool.close()
        assert serve.leaked_segments() == []

    def test_degraded_lookups_counted_in_report(self, small_fib):
        plan = FaultPlan.parse("kill-worker:1@batch=1").resolve(2)
        with WorkerPool(
            "prefix-dag", small_fib, workers=2, transport="shm",
            max_restarts=1, faults=plan, timeout=30.0,
        ) as pool:
            rng = random.Random(12)
            for _ in range(8):
                addresses = [rng.getrandbits(32) for _ in range(64)]
                labels = pool.lookup_batch(addresses)
                assert labels == [small_fib.lookup(address)
                                  for address in addresses]
            pool.settle(timeout=10.0)
            report = pool.report(scenario="unit")
            assert report.degraded_lookups + report.retried_batches > 0
            assert report.failed_lookups == 0
            assert report.availability == 1.0
            record = report.to_dict()
            assert record["degraded_lookups"] == report.degraded_lookups
            assert record["availability"] == 1.0
