"""Integration tests: every representation, one truth.

These tests drive the full pipeline the way the benchmark harness does —
generate a dataset, build every representation, and check that all of
them implement the same forwarding function while their sizes line up
with the paper's ordering.
"""

import random

import pytest

from repro.baselines.lctrie import fib_trie
from repro.baselines.ortc import ortc_compress
from repro.baselines.patricia import PatriciaTrie
from repro.baselines.tabular import TabularFib
from repro.core.entropy import fib_entropy
from repro.core.fib import INVALID_LABEL
from repro.core.prefixdag import PrefixDag
from repro.core.serialize import SerializedDag
from repro.core.trie import BinaryTrie
from repro.core.xbw import XBWb
from repro.datasets.profiles import build_profile_fib, profile
from repro.datasets.synthetic import poisson_label_fib
from repro.datasets.traces import caida_like_trace, uniform_trace
from repro.datasets.updates import apply_updates, bgp_update_sequence


@pytest.fixture(scope="module")
def taz_small():
    return build_profile_fib(profile("taz"), scale=0.01)


@pytest.fixture(scope="module")
def representations(taz_small):
    dag = PrefixDag(taz_small, barrier=11)
    return {
        "trie": BinaryTrie.from_fib(taz_small),
        "dag": dag,
        "image": SerializedDag(dag),
        "xbw": XBWb.from_fib(taz_small),
        "lctrie": fib_trie(taz_small),
        "patricia": PatriciaTrie(taz_small),
        "tabular": TabularFib(taz_small),
    }


class TestSevenWayEquivalence:
    def test_uniform_addresses(self, representations):
        rng = random.Random(1)
        reference = representations["trie"]
        for _ in range(400):
            address = rng.getrandbits(32)
            want = reference.lookup(address)
            for name, rep in representations.items():
                if name in ("trie", "tabular"):
                    continue
                assert rep.lookup(address) == want, f"{name} diverges at {address:#x}"

    def test_trace_addresses(self, taz_small, representations):
        reference = representations["trie"]
        for address in caida_like_trace(taz_small, 300, seed=2):
            want = reference.lookup(address)
            for name in ("dag", "image", "xbw", "lctrie"):
                assert representations[name].lookup(address) == want

    def test_ortc_equivalence(self, taz_small, representations):
        result = ortc_compress(taz_small)
        assert len(result) < len(taz_small)  # aggregation must help
        aggregated = result.to_trie()
        reference = representations["trie"]
        rng = random.Random(3)
        for _ in range(300):
            address = rng.getrandbits(32)
            got = aggregated.lookup(address)
            got = None if got in (None, INVALID_LABEL) else got
            assert got == reference.lookup(address)


class TestSizeOrdering:
    """The paper's headline size story, end to end."""

    def test_compressors_beat_classic_structures(self, taz_small, representations):
        xbw_bits = representations["xbw"].size_in_bits()
        dag_bits = representations["dag"].size_in_bits()
        lct_bits = representations["lctrie"].size_in_bits()
        pat_bits = representations["patricia"].size_in_bits()
        assert xbw_bits < dag_bits < lct_bits
        assert dag_bits < pat_bits

    def test_xbw_near_entropy(self, taz_small, representations):
        report = fib_entropy(taz_small)
        ratio = representations["xbw"].size_in_bits() / report.entropy_bits
        assert 0.8 <= ratio <= 1.6  # "XBW-b very closely matches entropy bounds"

    def test_dag_within_small_factor_of_entropy(self, taz_small, representations):
        report = fib_entropy(taz_small)
        nu = representations["dag"].size_in_bits() / report.entropy_bits
        assert 1.0 <= nu <= 6.0  # the paper measures ~2.6-4.1


class TestChurnPipeline:
    def test_bgp_churn_end_to_end(self, taz_small):
        dag = PrefixDag(taz_small, barrier=11)
        ops = bgp_update_sequence(taz_small, 400, seed=4, withdraw_fraction=0.1)
        apply_updates(dag, ops)
        dag.check_integrity()
        # The DAG still matches its own control trie after churn...
        rng = random.Random(5)
        for _ in range(300):
            address = rng.getrandbits(32)
            assert dag.lookup(address) == dag.control_trie.lookup(address)
        # ...and re-serializing preserves the updated function.
        image = SerializedDag(dag)
        for _ in range(300):
            address = rng.getrandbits(32)
            assert image.lookup(address) == dag.lookup(address)

    def test_split_fib_full_coverage(self):
        fib = poisson_label_fib(2000, 5, seed=6)
        dag = PrefixDag(fib, barrier=9)
        for address in uniform_trace(300, seed=7):
            assert dag.lookup(address) is not None  # split FIBs cover everything
