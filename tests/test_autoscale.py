"""Tests for repro.serve.autoscale + the :class:`ServingPlane` contract.

Three layers of coverage, cheapest first. The control-loop primitives
(:class:`AutoscalePolicy`, :class:`TrafficStats`, :class:`FlowCache`,
traffic-weighted :func:`plan_cluster`, the seeded hot-address spray)
are exercised as plain units — no processes, no clocks. The in-process
:class:`FibCluster` then runs the whole loop with an oracle check on
*every* batch, because a live re-plan that drops parity for even one
lookup is the bug this module exists to prevent. Finally the real
multi-process pool replays every churn scenario over both transports
with an aggressive policy, gating on post-quiescence parity — the
worker twin of the same claim. Throughput and convergence floors live
in ``benchmarks/bench_autoscale.py``; correctness lives here.
"""

from __future__ import annotations

import asyncio
import dataclasses
import inspect
import random
from array import array

import pytest

from repro import serve
from repro.datasets.updates import UpdateOp
from repro.pipeline.shard import MAX_GRANULARITY_BITS
from repro.serve.autoscale import MISS, AutoscalePolicy, FlowCache, TrafficStats
from repro.serve.cluster import FibCluster, ShardPlan, plan_cluster
from repro.serve.metrics import ServeReport
from repro.serve.plane import ServingPlane, open_plane
from repro.serve.server import FibServer
from repro.serve.workers import AsyncFibFrontend, WorkerPool
from tests.conftest import random_fib

try:
    import numpy
except ImportError:  # pragma: no cover - the no-numpy CI leg
    numpy = None

ALL_SCENARIOS = ("uniform", "bgp-churn", "flash-renumbering", "flap-storm")
TRANSPORTS = ("shm", "pipe")


def aggressive_policy(**overrides) -> AutoscalePolicy:
    """A policy that re-plans at the slightest drift — the loop must
    stay parity-safe even when it fires constantly."""
    knobs = dict(
        imbalance_threshold=1.05,
        check_every=1,
        min_window=256,
        cooldown=0,
        granularity=8,
        hot_share=0.5,
        max_hot=2,
        spray_seed=7,
    )
    knobs.update(overrides)
    return AutoscalePolicy(**knobs)


@pytest.fixture(scope="module")
def small_fib():
    rng = random.Random(20260807)
    return random_fib(rng, entries=160, delta=6, max_length=14)


# --------------------------------------------------------------------- policy


class TestAutoscalePolicy:
    @pytest.mark.parametrize(
        "bad",
        [
            {"imbalance_threshold": 0.9},
            {"check_every": 0},
            {"granularity": 0},
            {"granularity": MAX_GRANULARITY_BITS + 1},
            {"hot_share": 0.0},
            {"hot_share": 1.5},
            {"flow_cache": -1},
            {"max_hot": -1},
        ],
    )
    def test_invalid_knobs_rejected(self, bad):
        with pytest.raises(ValueError):
            AutoscalePolicy(**bad)

    def test_defaults_valid_and_frozen(self):
        policy = AutoscalePolicy()
        assert policy.imbalance_threshold >= 1.0
        with pytest.raises(dataclasses.FrozenInstanceError):
            policy.imbalance_threshold = 2.0


# -------------------------------------------------------------------- traffic


class TestTrafficStats:
    def test_counts_land_on_the_grid(self):
        stats = TrafficStats(width=8, bits=2)
        stats.observe([0, 1, 64, 128, 128, 255])
        assert stats.snapshot() == [2, 1, 2, 1]
        assert stats.total == 6
        stats.reset()
        assert stats.snapshot() == [0, 0, 0, 0]
        assert stats.total == 0

    def test_portable_loop_matches_fast_path(self):
        fast = TrafficStats(width=16, bits=6)
        slow = TrafficStats(width=16, bits=6)
        slow._counts = None  # force the pure-python slot loop
        rng = random.Random(99)
        for _ in range(8):
            batch = [rng.getrandbits(16) for _ in range(257)]
            fast.observe(batch)
            slow.observe(batch)
        assert fast.snapshot() == slow.snapshot()

    def test_grid_needs_at_least_one_bit(self):
        with pytest.raises(ValueError):
            TrafficStats(width=8, bits=0)

    def test_imbalance_against_a_hand_plan(self):
        plan = ShardPlan(mode="prefix", width=8, shards=2, bounds=(0, 128, 256))
        stats = TrafficStats(width=8, bits=2)
        assert stats.imbalance(plan) == 1.0  # cold counter says nothing
        stats.observe([0, 1, 2, 3])  # all in shard 0
        assert stats.per_shard(plan) == [4, 0]
        assert stats.imbalance(plan) == 2.0

    def test_hot_range_load_spreads_evenly(self):
        plan = ShardPlan(
            mode="prefix", width=8, shards=2, bounds=(0, 128, 256),
            hot=((0, 64),),
        )
        stats = TrafficStats(width=8, bits=2)
        stats.observe([0, 1, 2, 3])  # entirely inside the hot range
        assert stats.per_shard(plan) == [2, 2]
        assert stats.imbalance(plan) == 1.0


# ----------------------------------------------------------------- flow cache


class TestFlowCache:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlowCache(0)

    def test_miss_sentinel_is_not_a_label(self):
        cache = FlowCache(4)
        assert cache.get(1) is MISS
        assert MISS is not None
        # ``None`` (no route) is a perfectly cacheable answer.
        cache.put(1, None)
        assert cache.get(1) is None
        assert (cache.hits, cache.misses) == (1, 1)

    def test_lru_eviction_order(self):
        cache = FlowCache(2)
        cache.put(1, 10)
        cache.put(2, 20)
        assert cache.get(1) == 10  # refresh 1: now 2 is the LRU tail
        cache.put(3, 30)
        assert cache.evictions == 1
        assert cache.get(2) is MISS  # 2 was evicted, not 1
        assert cache.get(1) == 10

    def test_invalidate_clears_and_counts(self):
        cache = FlowCache(4)
        cache.put(1, 10)
        assert cache.get(1) == 10
        cache.invalidate()
        assert len(cache) == 0
        assert cache.invalidations == 1
        assert cache.get(1) is MISS
        assert cache.hit_rate == pytest.approx(0.5)


# ----------------------------------------------- traffic-weighted planning


class TestTrafficWeightedPlanning:
    def test_traffic_vector_moves_the_cuts(self, small_fib):
        slots = 1 << 4
        cold = [1] * slots
        skewed = [1] * slots
        skewed[slots - 1] = 10_000
        even = plan_cluster(small_fib, 2, traffic=cold)
        hot = plan_cluster(small_fib, 2, traffic=skewed, hot_share=1.0)
        # All the load sits in the last slot, so the balanced cut must
        # move right of the uniform one to even the halves out.
        assert hot.bounds[1] > even.bounds[1]

    def test_dominant_slot_is_carved_hot(self, small_fib):
        slots = 1 << 4
        traffic = [1] * slots
        traffic[3] = 10_000
        plan = plan_cluster(
            small_fib, 2, traffic=traffic, hot_share=0.5, max_hot=2, spray_seed=3
        )
        assert plan.hot
        shift = small_fib.width - 4
        base = 3 << shift
        assert plan.is_hot(base)
        assert not plan.is_hot((5 << shift))
        # A route inside a replicated range must live on every shard.
        assert plan.owners(3, 4) == tuple(range(plan.shards))

    @pytest.mark.parametrize(
        "traffic, granularity",
        [
            ([1, 2, 3], None),  # not a power of two
            ([1] * 16, 5),  # conflicts with the 2^4 vector
            ([1, 2], None),  # 1 bit too coarse for 4 shards
        ],
    )
    def test_bad_traffic_vectors_rejected(self, small_fib, traffic, granularity):
        with pytest.raises(ValueError):
            plan_cluster(
                small_fib, 4, traffic=traffic, granularity=granularity
            )


# ------------------------------------------------------------ replica spray


def _hot_plan(fib, spray_seed):
    slots = 1 << 4
    traffic = [1] * slots
    traffic[3] = traffic[9] = 10_000
    return plan_cluster(
        fib, 4, traffic=traffic, hot_share=0.2, max_hot=4, spray_seed=spray_seed
    )


class TestReplicaSpray:
    def test_fixed_seed_replays_identically(self, small_fib):
        first = _hot_plan(small_fib, spray_seed=42)
        second = _hot_plan(small_fib, spray_seed=42)
        assert first == second
        rng = random.Random(5)
        shift = small_fib.width - 4
        addresses = [(3 << shift) | rng.getrandbits(shift) for _ in range(64)]
        for position, address in enumerate(addresses):
            assert first.spray_owner(address, position) == second.spray_owner(
                address, position
            )
        assert first.group(addresses) == second.group(addresses)

    def test_one_flow_sprays_across_every_shard(self, small_fib):
        plan = _hot_plan(small_fib, spray_seed=42)
        address = 3 << (small_fib.width - 4)
        owners = {plan.spray_owner(address, p) for p in range(plan.shards)}
        # Position-offset spray: one repeated hot address covers the
        # whole cluster within a single batch.
        assert owners == set(range(plan.shards))

    def test_seed_changes_the_assignment(self, small_fib):
        base = _hot_plan(small_fib, spray_seed=42)
        other = _hot_plan(small_fib, spray_seed=43)
        shift = small_fib.width - 4
        addresses = [(3 << shift) + n for n in range(64)]
        assert any(
            base.spray_owner(a) != other.spray_owner(a) for a in addresses
        )

    @pytest.mark.skipif(numpy is None, reason="needs numpy")
    def test_split_vector_matches_group_with_hot_owners(self, small_fib):
        plan = _hot_plan(small_fib, spray_seed=42)
        rng = random.Random(6)
        shift = small_fib.width - 4
        batch = []
        for _ in range(512):
            if rng.random() < 0.5:  # half the batch lands in hot ranges
                slot = rng.choice((3, 9))
                batch.append((slot << shift) | rng.getrandbits(shift))
            else:
                batch.append(rng.getrandbits(small_fib.width))
        scalar = plan.group(batch)
        vector = plan.split_vector(numpy.asarray(batch, dtype=numpy.int64))
        scalar_owner = {}
        for shard, (positions, _) in scalar.items():
            for position in positions:
                scalar_owner[position] = shard
        vector_owner = {}
        for shard, (positions, _) in vector.items():
            for position in positions.tolist():
                vector_owner[position] = shard
        # Bit-identical routing: the vector and portable frontends must
        # send every position (hot ones included) to the same shard.
        assert vector_owner == scalar_owner


# -------------------------------------------------- in-process control loop


class TestClusterControlLoop:
    def test_live_replan_holds_parity_on_every_batch(self, small_fib):
        policy = aggressive_policy(min_window=128, flow_cache=64)
        rng = random.Random(17)
        with FibCluster(
            "prefix-dag", small_fib, shards=4, autoscale=policy,
            measure_staleness=False,
        ) as cluster:
            lo, hi = cluster.plan.shard_range(0)
            for round_ in range(24):
                # Hammer one shard's range so the loop keeps firing.
                batch = [rng.randrange(lo, hi) for _ in range(64)]
                expected = [cluster.control.lookup(a) for a in batch]
                assert cluster.lookup_batch(batch) == expected
                if round_ % 4 == 3:
                    length = rng.randint(4, 12)
                    cluster.apply_update(
                        UpdateOp(
                            rng.getrandbits(length), length, rng.randint(1, 6)
                        )
                    )
            report = cluster.report()
            assert report.replans >= 1
            assert report.lookups_during_replan > 0
            assert report.flow_cache_lookups > 0

    def test_flow_cache_hits_short_circuit(self, small_fib):
        policy = aggressive_policy(
            imbalance_threshold=1e9, flow_cache=256
        )  # cache on, re-planning effectively off
        with FibCluster(
            "prefix-dag", small_fib, shards=2, autoscale=policy,
            measure_staleness=False,
        ) as cluster:
            rng = random.Random(23)
            batch = [rng.getrandbits(32) for _ in range(128)]
            first = cluster.lookup_batch(batch)
            second = cluster.lookup_batch(batch)
            assert first == second
            report = cluster.report()
            assert report.flow_cache_hits >= len(set(batch))
            assert report.flow_cache_lookups == 2 * len(batch)

    def test_generation_swap_invalidates_the_flow_cache(self, small_fib):
        policy = aggressive_policy(imbalance_threshold=1e9, flow_cache=256)
        with FibCluster(
            "lc-trie", small_fib, shards=2, rebuild_every=4,
            autoscale=policy, measure_staleness=False,
        ) as cluster:
            cache = cluster._flow_cache
            rng = random.Random(29)
            batch = [rng.getrandbits(32) for _ in range(64)]
            cluster.lookup_batch(batch)
            cluster.lookup_batch(batch)
            assert cache.hits >= len(set(batch))
            # An accepted update clears the cache immediately...
            assert cluster.apply_update(UpdateOp(0b1010, 4, 5)) is True
            after_update = cache.invalidations
            assert after_update >= 1
            assert len(cache) == 0
            # ...and the epoch swap that adopts it clears it again, so
            # a cache filled from the old generation cannot outlive it.
            cluster.quiesce()
            assert cache.invalidations > after_update
            probes = serve.parity_probes(small_fib, 256, seed=31)
            assert cluster.parity_fraction(probes) == 1.0
            # Refill from the new generation: hits serve the new label.
            address = 0b1010 << 28
            assert cluster.lookup(address) == 5
            assert cluster.lookup(address) == 5


# ------------------------------------------------------- ServingPlane contract


def _run(value):
    """Await awaitable verb results (the pipelining frontend) so the
    conformance checks stay plane-agnostic."""
    if inspect.isawaitable(value):
        return asyncio.run(_consume(value))
    return value


async def _consume(awaitable):
    return await awaitable


PLANE_SHAPES = {
    "server": (FibServer, {}),
    "cluster": (FibCluster, {"shards": 4}),
    "pool": (WorkerPool, {"workers": 2, "transport": "pipe"}),
    "async": (
        AsyncFibFrontend,
        {"workers": 2, "window": 4, "transport": "pipe"},
    ),
}


class TestServingPlaneContract:
    @pytest.mark.parametrize("shape", sorted(PLANE_SHAPES))
    def test_conformance(self, small_fib, shape):
        expected_type, kwargs = PLANE_SHAPES[shape]
        rng = random.Random(37)
        addresses = [rng.getrandbits(32) for _ in range(64)]
        oracle = [small_fib.lookup(a) for a in addresses]
        with open_plane("prefix-dag", small_fib, **kwargs) as plane:
            assert isinstance(plane, expected_type)
            assert isinstance(plane, ServingPlane)
            assert _run(plane.lookup_batch(addresses)) == oracle
            packed = _run(plane.lookup_batch_packed(addresses))
            assert list(array("q", packed)) == [
                label if label else 0 for label in oracle
            ]
            # One good announce + one bogus withdrawal: every plane
            # filters through the same control oracle.
            accepted = plane.apply_updates(
                [UpdateOp(0b1100, 4, 2), UpdateOp(0x5A5A, 16, None)]
            )
            assert accepted == 1
            plane.quiesce()
            report = plane.report()
            assert isinstance(report, ServeReport)
            # Both the boxed and the packed batch count as lookups.
            assert report.lookups == 2 * len(addresses)
        plane.close()  # idempotent after the context manager exit

    def test_open_plane_rejects_ambiguous_shapes(self, small_fib):
        with pytest.raises(ValueError):
            open_plane("prefix-dag", small_fib, workers=2, shards=2)
        with pytest.raises(ValueError):
            open_plane("prefix-dag", small_fib, workers=-1)
        with pytest.raises(ValueError):
            open_plane(
                "prefix-dag", small_fib, autoscale=aggressive_policy()
            )


# ----------------------------------------------- multi-process replan parity


def _transport_params():
    params = []
    for transport in TRANSPORTS:
        marks = []
        if transport == "shm" and not serve.shm_available():
            marks.append(pytest.mark.skip(reason="shared memory unavailable"))
        params.append(pytest.param(transport, marks=marks))
    return params


class TestWorkerReplanParity:
    @pytest.mark.parametrize("transport", _transport_params())
    @pytest.mark.parametrize("scenario_name", ALL_SCENARIOS)
    def test_churn_scenarios_hold_parity(
        self, small_fib, scenario_name, transport
    ):
        events = serve.build_events(
            serve.scenario(scenario_name), small_fib, lookups=1200,
            updates=48, seed=11,
        )
        probes = serve.parity_probes(small_fib, 256, seed=5)
        report = serve.serve_worker_scenario(
            "prefix-dag", small_fib, events,
            scenario=scenario_name, workers=2, transport=transport,
            autoscale=aggressive_policy(), parity_probes=probes, window=4,
        )
        assert report.final_parity == 1.0
        assert report.lookups == 1200
        assert report.replans >= 0  # liveness is forced deterministically below

    @pytest.mark.parametrize("transport", _transport_params())
    def test_forced_replan_fires_and_holds_parity(self, small_fib, transport):
        policy = aggressive_policy(min_window=128)
        rng = random.Random(3)
        with WorkerPool(
            "prefix-dag", small_fib, workers=2, transport=transport,
            autoscale=policy,
        ) as pool:
            lo, hi = pool.plan.shard_range(0)
            oracle = pool.control
            for _ in range(12):
                batch = [rng.randrange(lo, hi) for _ in range(128)]
                assert pool.lookup_batch(batch) == [
                    oracle.lookup(a) for a in batch
                ]
            pool.quiesce()
            report = pool.report()
            assert report.replans >= 1
            probes = serve.parity_probes(small_fib, 256, seed=13)
            assert pool.parity_fraction(probes) == 1.0
