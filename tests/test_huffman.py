"""Unit and property tests for canonical Huffman coding."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.entropy import shannon_entropy
from repro.succinct.huffman import HuffmanCode, huffman_encoded_size


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            HuffmanCode({})

    def test_rejects_nonpositive_weight(self):
        with pytest.raises(ValueError):
            HuffmanCode({1: 0})

    def test_single_symbol_gets_one_bit(self):
        code = HuffmanCode({5: 10})
        assert code.length(5) == 1

    def test_two_symbols(self):
        code = HuffmanCode({1: 3, 2: 1})
        assert code.length(1) == 1
        assert code.length(2) == 1

    def test_skewed_weights_get_skewed_lengths(self):
        code = HuffmanCode({1: 100, 2: 10, 3: 1})
        assert code.length(1) == 1
        assert code.length(3) == 2

    def test_unknown_symbol(self):
        code = HuffmanCode({1: 1})
        with pytest.raises(KeyError):
            code.codeword(99)


class TestPrefixFreedom:
    @given(
        st.dictionaries(
            st.integers(0, 50), st.integers(1, 1000), min_size=1, max_size=20
        )
    )
    def test_codes_are_prefix_free(self, frequencies):
        code = HuffmanCode(frequencies)
        words = [(c.bits, c.length) for c in (code.codeword(s) for s in frequencies)]
        for i, (bits_a, len_a) in enumerate(words):
            for j, (bits_b, len_b) in enumerate(words):
                if i == j:
                    continue
                shorter = min(len_a, len_b)
                assert (bits_a >> (len_a - shorter)) != (bits_b >> (len_b - shorter)), (
                    "one codeword is a prefix of another"
                )

    @given(
        st.dictionaries(st.integers(0, 30), st.integers(1, 100), min_size=2, max_size=12)
    )
    def test_kraft_equality(self, frequencies):
        # An optimal prefix code satisfies Kraft with equality.
        code = HuffmanCode(frequencies)
        total = sum(2.0 ** -code.length(s) for s in frequencies)
        assert total == pytest.approx(1.0)


class TestCodecRoundtrip:
    @given(st.lists(st.integers(0, 9), min_size=1, max_size=400))
    @settings(max_examples=60)
    def test_encode_decode_roundtrip(self, symbols):
        frequencies = {}
        for s in symbols:
            frequencies[s] = frequencies.get(s, 0) + 1
        code = HuffmanCode(frequencies)
        assert code.decode(code.encode(symbols), len(symbols)) == symbols

    def test_decode_truncated_stream(self):
        code = HuffmanCode({1: 1, 2: 1})
        encoded = code.encode([1])
        with pytest.raises(ValueError):
            code.decode(encoded, 2)


class TestOptimality:
    def test_within_one_bit_of_entropy(self):
        rng = random.Random(5)
        symbols = [rng.choices([1, 2, 3, 4], weights=[8, 4, 2, 1])[0] for _ in range(5000)]
        frequencies = {}
        for s in symbols:
            frequencies[s] = frequencies.get(s, 0) + 1
        code = HuffmanCode(frequencies)
        h0 = shannon_entropy(frequencies)
        average = code.expected_length(frequencies)
        assert h0 <= average < h0 + 1.0

    def test_dyadic_weights_hit_entropy_exactly(self):
        frequencies = {1: 4, 2: 2, 3: 1, 4: 1}
        code = HuffmanCode(frequencies)
        assert code.expected_length(frequencies) == pytest.approx(
            shannon_entropy(frequencies)
        )

    def test_canonical_codes_ordered(self):
        # Canonical property: sorting by (length, symbol) yields
        # numerically increasing codewords.
        code = HuffmanCode({1: 10, 2: 10, 3: 1, 4: 1})
        ordered = sorted(code.lengths().items(), key=lambda kv: (kv[1], kv[0]))
        values = [code.codeword(s).bits << (8 - code.codeword(s).length) for s, _ in ordered]
        assert values == sorted(values)

    def test_encoded_size_helper(self):
        assert huffman_encoded_size([], 8) == 0
        size = huffman_encoded_size([1, 1, 1, 2], 8)
        assert size > 0

    def test_expected_length_rejects_zero_weights(self):
        code = HuffmanCode({1: 1})
        with pytest.raises(ValueError):
            code.expected_length({1: 0})
