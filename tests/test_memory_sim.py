"""Unit tests for the cache hierarchy simulator."""

import pytest

from repro.simulator.memory import (
    CORE_I5_LEVELS,
    CacheLevelConfig,
    MemoryHierarchy,
)


def tiny_hierarchy():
    """A 2-level hierarchy small enough to reason about by hand:
    L1 = 4 lines of 64 B, direct... 2-way; L2 = 16 lines, 4-way."""
    return MemoryHierarchy(
        levels=(
            CacheLevelConfig("L1", 4 * 64, 64, 2, 1),
            CacheLevelConfig("L2", 16 * 64, 64, 4, 10),
        ),
        dram_latency_cycles=100,
    )


class TestConfig:
    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            CacheLevelConfig("X", 0, 64, 8, 1)
        with pytest.raises(ValueError):
            CacheLevelConfig("X", 100, 64, 8, 1)  # < 1 set

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            CacheLevelConfig("X", 3 * 64, 64, 1, 1)

    def test_requires_levels(self):
        with pytest.raises(ValueError):
            MemoryHierarchy(levels=())

    def test_core_i5_preset(self):
        names = [level.name for level in CORE_I5_LEVELS]
        assert names == ["L1", "L2", "L3"]
        assert CORE_I5_LEVELS[0].size_bytes == 32 * 1024


class TestAccessBehavior:
    def test_cold_miss_goes_to_dram(self):
        hierarchy = tiny_hierarchy()
        outcome = hierarchy.access(0)
        assert outcome.level == "DRAM"
        assert outcome.latency_cycles == 100

    def test_second_access_hits_l1(self):
        hierarchy = tiny_hierarchy()
        hierarchy.access(0)
        outcome = hierarchy.access(0)
        assert outcome.level == "L1"
        assert outcome.latency_cycles == 1

    def test_same_line_hits(self):
        hierarchy = tiny_hierarchy()
        hierarchy.access(0)
        assert hierarchy.access(63).level == "L1"  # same 64-B line
        assert hierarchy.access(64).level == "DRAM"  # next line

    def test_l1_eviction_falls_to_l2(self):
        hierarchy = tiny_hierarchy()
        # L1: 2 sets x 2 ways. Lines 0, 2, 4 all map to set 0; the
        # third evicts the first from L1, but L2 retains it.
        for line in (0, 2, 4):
            hierarchy.access(line * 64)
        assert hierarchy.access(0).level == "L2"

    def test_lru_order(self):
        hierarchy = tiny_hierarchy()
        hierarchy.access(0 * 64)
        hierarchy.access(2 * 64)
        hierarchy.access(0 * 64)      # refresh line 0
        hierarchy.access(4 * 64)      # evicts line 2 (LRU), not line 0
        assert hierarchy.access(0 * 64).level == "L1"
        assert hierarchy.access(2 * 64).level == "L2"

    def test_stats_accumulate(self):
        hierarchy = tiny_hierarchy()
        hierarchy.access(0)
        hierarchy.access(0)
        stats = hierarchy.stats
        assert stats.accesses == 2
        assert stats.dram_accesses == 1
        assert stats.llc_misses == 1
        assert stats.hits_per_level["L1"] == 1
        assert stats.total_cycles == 101

    def test_access_many_sums_cycles(self):
        hierarchy = tiny_hierarchy()
        total = hierarchy.access_many([0, 0, 0])
        assert total == 100 + 1 + 1

    def test_warm_does_not_count(self):
        hierarchy = tiny_hierarchy()
        hierarchy.warm([0, 64, 128])
        assert hierarchy.stats.accesses == 0
        assert hierarchy.access(0).level == "L1"  # but contents are warm

    def test_reset(self):
        hierarchy = tiny_hierarchy()
        hierarchy.access(0)
        hierarchy.reset()
        assert hierarchy.stats.accesses == 0
        assert hierarchy.access(0).level == "DRAM"


class TestWorkingSetBehavior:
    def test_small_working_set_is_cache_resident(self):
        hierarchy = MemoryHierarchy()
        addresses = [i * 64 for i in range(200)]  # ~12 KB
        hierarchy.warm(addresses)
        for address in addresses:
            assert hierarchy.access(address).level == "L1"

    def test_huge_working_set_misses(self):
        hierarchy = MemoryHierarchy()
        import random

        rng = random.Random(1)
        # 64 MB working set (too big for 3 MB L3): random probes miss.
        addresses = [rng.randrange(64 * 1024 * 1024) for _ in range(3000)]
        hierarchy.warm(addresses[:1000])
        misses = sum(1 for a in addresses[1000:] if hierarchy.access(a).level == "DRAM")
        assert misses > 1500  # overwhelmingly DRAM
