"""Smoke tests for the example applications.

Each example is imported as a module (checking it stays in sync with the
public API) and its cheapest meaningful entry point is exercised. The
full scripts run in seconds-to-minutes and are exercised by CI-style
manual runs, not here.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


ALL_EXAMPLES = [
    "quickstart",
    "router_churn",
    "virtual_routers",
    "string_compressor",
    "ipv6_fib",
]


@pytest.mark.parametrize("name", ALL_EXAMPLES)
def test_example_imports(name):
    module = load_example(name)
    assert hasattr(module, "main") or hasattr(module, "fig4_walkthrough")


def test_quickstart_fib_builder():
    module = load_example("quickstart")
    fib = module.build_demo_fib()
    assert len(fib) == 20_000
    assert fib.get(0, 0) is not None  # default route present


def test_virtual_router_instances_differ():
    module = load_example("virtual_routers")
    from repro.datasets import build_profile_fib, profile

    base = build_profile_fib(profile("access_v"), scale=0.2)
    a = module.virtual_instance(base, 0)
    b = module.virtual_instance(base, 1)
    assert {(r.prefix, r.length) for r in a} == {(r.prefix, r.length) for r in b}
    assert a != b  # labels differ between instances


def test_ipv6_generator_shape():
    module = load_example("ipv6_fib")
    fib = module.ipv6_fib(200, seed=1)
    assert fib.width == 128
    assert all(20 <= route.length <= 64 for route in fib)
    # Global unicast: every prefix starts with binary 001.
    assert all(route.prefix >> (route.length - 3) == 0b001 for route in fib)


def test_string_compressor_fig4():
    module = load_example("string_compressor")
    module.fig4_walkthrough()  # asserts internally via paper's example
