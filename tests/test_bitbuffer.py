"""Unit tests for the packed bit buffer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.succinct.bitbuffer import BitBuffer


class TestAppendGet:
    def test_empty(self):
        buf = BitBuffer()
        assert len(buf) == 0
        assert buf.size_in_bits() == 0
        assert buf.size_in_bytes() == 0

    def test_single_bits(self):
        buf = BitBuffer([1, 0, 1, 1])
        assert [buf.get_bit(i) for i in range(4)] == [1, 0, 1, 1]

    def test_truthy_bits(self):
        buf = BitBuffer()
        buf.append_bit(7)
        buf.append_bit(0)
        assert buf.get_bit(0) == 1
        assert buf.get_bit(1) == 0

    def test_get_bit_bounds(self):
        buf = BitBuffer([1])
        with pytest.raises(IndexError):
            buf.get_bit(1)
        with pytest.raises(IndexError):
            buf.get_bit(-1)

    def test_int_field_msb_first(self):
        buf = BitBuffer()
        buf.append_int(0b101, 3)
        assert [buf.get_bit(i) for i in range(3)] == [1, 0, 1]
        assert buf.get_int(0, 3) == 0b101

    def test_int_field_across_words(self):
        buf = BitBuffer()
        buf.append_int(0, 60)
        buf.append_int(0xABCD, 16)
        assert buf.get_int(60, 16) == 0xABCD

    def test_append_int_rejects_overflow(self):
        buf = BitBuffer()
        with pytest.raises(ValueError):
            buf.append_int(4, 2)

    def test_zero_width_field(self):
        buf = BitBuffer()
        buf.append_int(0, 0)
        assert len(buf) == 0

    def test_get_int_bounds(self):
        buf = BitBuffer([1, 0])
        with pytest.raises(IndexError):
            buf.get_int(1, 2)

    def test_iteration(self):
        bits = [1, 0, 0, 1, 1]
        assert list(BitBuffer(bits)) == bits

    def test_equality(self):
        assert BitBuffer([1, 0]) == BitBuffer([1, 0])
        assert BitBuffer([1, 0]) != BitBuffer([1, 1])

    @given(st.lists(st.integers(0, 1), max_size=300))
    def test_roundtrip_bits(self, bits):
        buf = BitBuffer(bits)
        assert list(buf) == bits

    @given(st.lists(st.tuples(st.integers(1, 40), st.data()), max_size=20))
    def test_roundtrip_fields(self, specs):
        fields = []
        buf = BitBuffer()
        for width, data in specs:
            value = data.draw(st.integers(0, (1 << width) - 1))
            fields.append((value, width))
            buf.append_int(value, width)
        position = 0
        for value, width in fields:
            assert buf.get_int(position, width) == value
            position += width


class TestBytes:
    def test_bytes_roundtrip(self):
        bits = [1, 0, 1, 1, 0, 0, 1, 0, 1]
        buf = BitBuffer(bits)
        rebuilt = BitBuffer.from_bytes(buf.to_bytes(), len(bits))
        assert list(rebuilt) == bits

    def test_from_bytes_length_check(self):
        with pytest.raises(ValueError):
            BitBuffer.from_bytes(b"\x00", 9)

    @given(st.lists(st.integers(0, 1), max_size=200))
    def test_bytes_roundtrip_random(self, bits):
        buf = BitBuffer(bits)
        assert list(BitBuffer.from_bytes(buf.to_bytes(), len(bits))) == bits
