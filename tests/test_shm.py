"""Tests for repro.serve.shm — rings, program images, leak discipline.

The ring tests drive both ends of an :class:`ShmRing` from one process
(SPSC is a role contract, not a process contract), which makes
wraparound and backpressure deterministic. The pool-level tests spawn
real workers over the shm transport and scan ``/dev/shm`` afterwards:
the lifecycle promise is *zero* leaked segments, close or crash.
"""

from __future__ import annotations

import random

import pytest

from tests.conftest import random_fib
from repro import serve
from repro.core.trie import BinaryTrie
from repro.datasets.updates import UpdateOp
from repro.pipeline.flat import FlatCompileError, compile_binary
from repro.serve.shm import (
    OP_LOOKUP,
    RingOverflow,
    RingPeerDied,
    ShmRing,
    attach_program,
    detach_program,
    leaked_segments,
    publish_program,
    shm_available,
)
from repro.serve.workers import WorkerError, WorkerPool

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="no shared-memory support on this host"
)


@pytest.fixture(scope="module")
def small_fib():
    rng = random.Random(20260807)
    return random_fib(rng, entries=160, delta=6, max_length=14)


@pytest.fixture
def ring():
    ring = ShmRing.create(1 << 12)  # 64 data slots: wraps fast
    try:
        yield ring
    finally:
        ring.close()


class TestRing:
    def test_roundtrip_header_and_payload(self, ring):
        payload = bytes(range(100))
        ring.send(OP_LOOKUP, payload, seq=7, generation=3, aux1=11, aux2=13)
        record = ring.try_recv()
        assert record is not None
        assert (record.seq, record.op, record.generation) == (7, OP_LOOKUP, 3)
        assert (record.aux1, record.aux2) == (11, 13)
        assert bytes(record.payload) == payload
        ring.advance()
        assert ring.try_recv() is None

    def test_empty_payload_record(self, ring):
        ring.send(OP_LOOKUP, b"", seq=1)
        record = ring.try_recv()
        assert record.seq == 1
        assert len(record.payload) == 0
        ring.advance()

    def test_send_into_stamps_aux_after_fill(self, ring):
        def fill(view):
            view[:4] = b"abcd"
            return (42, len(view))

        ring.send_into(OP_LOOKUP, 4, fill, seq=9)
        record = ring.try_recv()
        assert bytes(record.payload) == b"abcd"
        assert record.aux1 == 42
        assert record.aux2 >= 4
        ring.advance()

    def test_wraparound_preserves_order_and_content(self, ring):
        # Payloads sized to leave a ragged tail so the producer must
        # emit PAD records; far more records than the ring holds at
        # once, so every slot is reused many times over.
        rng = random.Random(5)
        for round_number in range(200):
            payload = bytes(rng.getrandbits(8) for _ in range(rng.randrange(1, 180)))
            ring.send(OP_LOOKUP, payload, seq=round_number)
            record = ring.try_recv()
            assert record is not None, round_number
            assert record.seq == round_number
            assert bytes(record.payload) == payload
            ring.advance()

    def test_interleaved_wraparound_batches(self, ring):
        # Several records in flight at once across the wrap boundary.
        sent = []
        seq = 0
        rng = random.Random(11)
        for _ in range(60):
            while len(sent) < 3:
                payload = bytes(rng.getrandbits(8) for _ in range(rng.randrange(1, 120)))
                ring.send(OP_LOOKUP, payload, seq=seq, timeout=5.0)
                sent.append((seq, payload))
                seq += 1
            expect_seq, expect_payload = sent.pop(0)
            record = ring.try_recv()
            assert record.seq == expect_seq
            assert bytes(record.payload) == expect_payload
            ring.advance()

    def test_full_ring_backpressure_times_out(self, ring):
        payload = bytes(200)
        with pytest.raises(RingPeerDied, match="full"):
            for seq in range(10_000):  # never consumed: must block
                ring.send(OP_LOOKUP, payload, seq=seq, timeout=0.2)
        # The consumer draining un-wedges the producer.
        drained = 0
        while (record := ring.try_recv()) is not None:
            drained += 1
            ring.advance()
        assert drained > 0
        ring.send(OP_LOOKUP, payload, seq=0, timeout=1.0)

    def test_full_ring_dead_peer_raises(self, ring):
        with pytest.raises(RingPeerDied, match="died"):
            for seq in range(10_000):
                ring.send(OP_LOOKUP, b"x" * 100, seq=seq, alive=lambda: False)

    def test_oversized_record_raises_overflow(self, ring):
        with pytest.raises(RingOverflow, match="raise ring_bytes"):
            ring.send(OP_LOOKUP, bytes(1 << 13))

    def test_recv_timeout_returns_none(self, ring):
        assert ring.recv(timeout=0.05) is None

    def test_ring_close_unlinks(self):
        ring = ShmRing.create(1 << 12)
        name = ring.name
        ring.close()
        assert name not in leaked_segments()


class TestProgramImages:
    def _program(self, small_fib):
        return compile_binary(BinaryTrie.from_fib(small_fib).root, 32, 8)

    def test_publish_attach_parity(self, small_fib):
        program = self._program(small_fib)
        segment = publish_program(program, 17)
        try:
            attached, generation, mapped = attach_program(segment.name)
            assert generation == 17
            rng = random.Random(3)
            addresses = [rng.getrandbits(32) for _ in range(512)]
            assert attached.lookup_batch(addresses) == program.lookup_batch(addresses)
            assert attached.size_in_bits() == program.size_in_bits()
            detach_program(attached, mapped)
        finally:
            segment.close()
            segment.unlink()
        assert segment.name not in leaked_segments()

    def test_attached_program_is_frozen(self, small_fib):
        program = self._program(small_fib)
        segment = publish_program(program, 1)
        try:
            attached, _, mapped = attach_program(segment.name)
            with pytest.raises(FlatCompileError, match="immutable"):
                attached.patch(0, 0, 1)
            detach_program(attached, mapped)
        finally:
            segment.close()
            segment.unlink()

    def test_attach_rejects_foreign_segment(self):
        ring = ShmRing.create(1 << 12)  # wrong magic: not an image
        try:
            with pytest.raises(ValueError, match="not a flat-program image"):
                attach_program(ring.name)
        finally:
            ring.close()


class TestPoolLifecycle:
    def test_attach_vs_rebuild_parity_after_mid_churn_swap(self, small_fib):
        # The same churn through the attach plane (shm) and the
        # rebuild plane (pipe) must land bit-identical on the oracle.
        rng = random.Random(29)
        ops = [
            UpdateOp(rng.getrandbits(length), length, rng.randint(1, 6))
            for length in (rng.randint(3, 10) for _ in range(24))
        ]
        probes = serve.parity_probes(small_fib, 400, seed=7)
        for transport in serve.TRANSPORTS:
            with WorkerPool(
                "prefix-dag", small_fib, workers=2,
                rebuild_every=8, transport=transport,
            ) as pool:
                assert pool.transport == transport
                for op in ops:
                    pool.apply_update(op)
                    pool.lookup_batch([rng.getrandbits(32) for _ in range(16)])
                pool.quiesce()
                report = pool.report()
                assert report.pending_updates == 0
                if transport == "shm":
                    assert report.publishes > 0
                assert pool.parity_fraction(probes) == 1.0
        assert leaked_segments() == []

    def test_close_leaves_no_segments(self, small_fib):
        pool = WorkerPool("prefix-dag", small_fib, workers=2, transport="shm")
        assert pool.transport == "shm"
        assert pool.lookup_batch(list(range(64)))
        pool.close()
        assert leaked_segments() == []

    def test_crash_during_in_flight_batch_leaks_nothing(self, small_fib):
        pool = WorkerPool(
            "prefix-dag", small_fib, workers=2, transport="shm", timeout=30.0
        )
        try:
            victim = pool._handles[1]
            victim.process.kill()
            with pytest.raises(WorkerError):
                for _ in range(50):
                    pool.lookup_batch(list(range(256)))
        finally:
            pool.close()
        assert leaked_segments() == []

    def test_kill_respawn_close_cycle_leaks_nothing(self, small_fib):
        # The full supervised lifecycle: a shard dies, its respawn gets
        # fresh rings, the respawn dies too, close reaps whatever is
        # current — every incarnation's rings and every published
        # segment must be reaped exactly once, with nothing left in
        # /dev/shm.
        from repro.serve.faults import FaultPlan

        plan = FaultPlan.parse(
            ["kill-worker:1@batch=1",
             "kill-worker:1@batch=1,incarnation=1"]
        ).resolve(2)
        pool = WorkerPool(
            "prefix-dag", small_fib, workers=2, transport="shm",
            max_restarts=2, faults=plan, timeout=30.0,
        )
        try:
            rng = random.Random(3)
            for _ in range(6):
                pool.lookup_batch([rng.getrandbits(32) for _ in range(64)])
                pool.settle(timeout=10.0)
            assert pool.report(scenario="unit").worker_restarts == 2
        finally:
            pool.close()
            pool.close()  # reaping stays idempotent
        assert leaked_segments() == []
