"""Unit tests for the instrumented lookup engines and cost models."""

import pytest

from repro.baselines.lctrie import fib_trie
from repro.core.prefixdag import PrefixDag
from repro.core.serialize import SerializedDag
from repro.core.trie import BinaryTrie
from repro.core.xbw import XBWb
from repro.datasets.traces import uniform_trace
from repro.simulator.costmodel import FpgaCostReport, LookupCostReport
from repro.simulator.engine import (
    LookupEngine,
    lctrie_engine,
    serialized_dag_engine,
    xbw_engine,
)
from repro.simulator.memory import MemoryHierarchy


@pytest.fixture
def image(medium_fib):
    return SerializedDag(PrefixDag(medium_fib, barrier=8))


class TestLookupEngine:
    def test_run_report_fields(self, image):
        engine = serialized_dag_engine(image)
        trace = uniform_trace(300, seed=1)
        report = engine.run(trace, MemoryHierarchy(), warmup=50)
        assert report.lookups == 250
        assert report.memory_cycles > 0
        assert report.steps_per_lookup >= 1
        assert report.cycles_per_lookup > 0
        assert report.million_lookups_per_second > 0

    def test_verify_against_reference(self, medium_fib, image):
        engine = serialized_dag_engine(image)
        reference = BinaryTrie.from_fib(medium_fib)
        engine.verify_against(reference.lookup, uniform_trace(200, seed=2))

    def test_verify_catches_mismatch(self, image):
        engine = serialized_dag_engine(image)
        with pytest.raises(AssertionError):
            engine.verify_against(lambda address: -1, uniform_trace(10, seed=3))

    def test_fpga_report(self, image):
        engine = serialized_dag_engine(image)
        report = engine.run_fpga(uniform_trace(200, seed=4))
        assert report.lookups == 200
        # 1 table access + a handful of node hops.
        assert 1.5 <= report.cycles_per_lookup <= 40

    def test_custom_engine(self):
        engine = LookupEngine(lambda a: (1, [a % 1024]), step_cycles=2.0, name="toy")
        report = engine.run([1, 2, 3, 4], MemoryHierarchy())
        assert report.alu_cycles == 8.0


class TestEngineOrdering:
    """The paper's qualitative Table 2 claims, on a mid-sized FIB."""

    def test_pdag_beats_lctrie(self, medium_fib, image):
        trace = uniform_trace(1500, seed=5)
        dag_report = serialized_dag_engine(image).run(trace, MemoryHierarchy(), warmup=300)
        lct_report = lctrie_engine(fib_trie(medium_fib)).run(
            trace, MemoryHierarchy(), warmup=300
        )
        assert dag_report.cycles_per_lookup < lct_report.cycles_per_lookup

    def test_xbw_is_slowest(self, medium_fib, image):
        trace = uniform_trace(400, seed=6)
        xbw_report = xbw_engine(XBWb.from_fib(medium_fib)).run(
            trace, MemoryHierarchy(), warmup=100
        )
        dag_report = serialized_dag_engine(image).run(trace, MemoryHierarchy(), warmup=100)
        assert xbw_report.cycles_per_lookup > 10 * dag_report.cycles_per_lookup

    def test_pdag_cache_resident(self, medium_fib, image):
        trace = uniform_trace(2000, seed=7)
        report = serialized_dag_engine(image).run(trace, MemoryHierarchy(), warmup=500)
        assert report.cache_misses_per_packet < 0.2


class TestCostReports:
    def test_zero_lookup_report(self):
        report = LookupCostReport(0, 0.0, 0.0, 0, 0)
        assert report.cycles_per_lookup == 0.0
        assert report.million_lookups_per_second == 0.0
        assert report.cache_misses_per_packet == 0.0

    def test_fpga_throughput_scales_with_clock(self):
        report = FpgaCostReport(lookups=100, memory_accesses=500)
        slow = report.million_lookups_per_second(50e6)
        fast = report.million_lookups_per_second(1e9)
        assert fast == pytest.approx(20 * slow)

    def test_fpga_zero(self):
        report = FpgaCostReport(0, 0)
        assert report.cycles_per_lookup == 0.0
