"""Unit, property, and stateful tests for prefix-DAG updates (§4.3)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.bounds import check_theorem3
from repro.core.fib import Fib
from repro.core.prefixdag import PrefixDag
from repro.core.trie import BinaryTrie

from tests.conftest import assert_forwarding_equivalent, random_fib


def assert_dag_matches_control(dag, rng, samples=400):
    """The DAG must forward exactly like its control trie, and its folded
    structure must match a fresh fold of that control trie."""
    control = dag.control_trie
    assert_forwarding_equivalent(control.lookup, dag.lookup, rng, samples=samples)
    fresh = PrefixDag(control, barrier=dag.barrier)
    assert fresh.folded_interior_count() == dag.folded_interior_count()
    assert fresh.folded_leaf_count() == dag.folded_leaf_count()
    dag.check_integrity()


class TestAboveBarrierUpdates:
    def test_change_short_route(self, paper_fib, rng):
        dag = PrefixDag(paper_fib, barrier=8)
        dag.update(0b0, 1, 9)  # 0/1: 3 -> 9
        assert dag.lookup(0b0000 << 28) == 3  # still covered by 00/2
        assert dag.lookup(0b0101 << 28) == 2  # covered by 01/2
        assert_dag_matches_control(dag, rng)

    def test_default_route_change_is_cheap(self, paper_fib):
        dag = PrefixDag(paper_fib, barrier=8)
        cost = dag.update(0, 0, 4)
        assert not cost.refolded_subtrie
        assert cost.nodes_folded == 0
        assert dag.lookup(0b1111 << 28) == 4

    def test_default_route_change_with_barrier_zero_refolds(self, paper_fib):
        dag = PrefixDag(paper_fib, barrier=0)
        cost = dag.update(0, 0, 4)
        assert cost.refolded_subtrie
        assert dag.lookup(0b1111 << 28) == 4
        dag.check_integrity()

    def test_insert_new_short_route(self, paper_fib, rng):
        dag = PrefixDag(paper_fib, barrier=8)
        dag.update(0b11, 2, 5)
        assert dag.lookup(0b1100 << 28) == 5
        assert_dag_matches_control(dag, rng)

    def test_withdraw_short_route(self, paper_fib, rng):
        dag = PrefixDag(paper_fib, barrier=8)
        dag.update(0b0, 1, None)
        assert dag.lookup(0b0000 << 28) == 3  # 00/2 still present
        assert_dag_matches_control(dag, rng)

    def test_withdraw_missing_route_raises(self, paper_fib):
        dag = PrefixDag(paper_fib, barrier=8)
        with pytest.raises(KeyError):
            dag.update(0b111, 3, None)

    def test_rejects_invalid_label(self, paper_fib):
        dag = PrefixDag(paper_fib, barrier=8)
        with pytest.raises(ValueError):
            dag.update(0, 1, 0)


class TestBelowBarrierUpdates:
    def test_long_route_insert(self, paper_fib, rng):
        dag = PrefixDag(paper_fib, barrier=2)
        cost = dag.update(0b00110011, 8, 7)
        assert cost.refolded_subtrie
        assert dag.lookup(0b00110011 << 24) == 7
        assert_dag_matches_control(dag, rng)

    def test_long_route_withdraw(self, paper_fib, rng):
        dag = PrefixDag(paper_fib, barrier=2)
        dag.update(0b00010011, 8, 7)
        dag.update(0b00010011, 8, None)
        assert dag.lookup(0b00010011 << 24) == 3  # back to 00/2
        assert_dag_matches_control(dag, rng)

    def test_update_at_barrier_depth(self, paper_fib, rng):
        dag = PrefixDag(paper_fib, barrier=2)
        dag.update(0b10, 2, 6)  # exactly at the barrier
        assert dag.lookup(0b1000 << 28) == 6
        assert_dag_matches_control(dag, rng)

    def test_refold_reuses_shared_nodes(self, rng):
        # Updating one sub-universe must not disturb the sharing of others.
        fib = Fib()
        for top in range(4):
            for suffix in range(8):
                fib.add((top << 6) | suffix, 8, 1 + suffix % 2)
        dag = PrefixDag(fib, barrier=2)
        before = dag.folded_interior_count()
        dag.update((1 << 6) | 3, 8, 3)  # original label was 1 + 3 % 2 = 2
        dag.update((1 << 6) | 3, 8, 2)  # revert to the original
        assert dag.folded_interior_count() == before
        assert_dag_matches_control(dag, rng)

    def test_withdraw_whole_subtree(self, rng):
        fib = Fib()
        fib.add(0b1010101010, 10, 3)
        dag = PrefixDag(fib, barrier=4)
        dag.update(0b1010101010, 10, None)
        assert dag.lookup(0b10101010 << 24) is None
        assert dag.folded_interior_count() == 0
        assert_dag_matches_control(dag, rng)

    def test_theorem3_budget(self, medium_fib, rng):
        dag = PrefixDag(medium_fib, barrier=11)
        for _ in range(40):
            length = rng.randint(11, 32)
            prefix = rng.getrandbits(length)
            cost = dag.update(prefix, length, rng.randint(1, 4))
            check = check_theorem3(dag, cost)
            assert check.holds, str(check)


class TestUpdateSequences:
    @given(st.integers(0, 2**31), st.integers(0, 13))
    @settings(max_examples=25, deadline=None)
    def test_random_update_sequences_stay_canonical(self, seed, barrier):
        rng = random.Random(seed)
        fib = random_fib(rng, 30, 3, max_length=12)
        dag = PrefixDag(fib, barrier=barrier)
        for _ in range(60):
            length = rng.randint(0, 12)
            prefix = rng.getrandbits(length) if length else 0
            if rng.random() < 0.3:
                try:
                    dag.update(prefix, length, None)
                except KeyError:
                    pass
            else:
                dag.update(prefix, length, rng.randint(1, 4))
        assert_dag_matches_control(dag, random.Random(seed + 1), samples=200)

    def test_withdraw_everything(self, rng):
        fib = random_fib(rng, 40, 3, max_length=10)
        dag = PrefixDag(fib, barrier=5)
        for route in list(fib):
            dag.update(route.prefix, route.length, None)
        assert dag.folded_interior_count() == 0
        for _ in range(100):
            assert dag.lookup(rng.getrandbits(32)) is None
        dag.check_integrity()

    def test_rebuild_from_empty(self, paper_fib, rng):
        dag = PrefixDag(Fib(), barrier=2)
        for route in paper_fib:
            dag.update(route.prefix, route.length, route.label)
        trie = BinaryTrie.from_fib(paper_fib)
        assert_forwarding_equivalent(trie.lookup, dag.lookup, rng)
        dag.check_integrity()

    def test_update_costs_reported(self, paper_fib):
        dag = PrefixDag(paper_fib, barrier=2)
        cost = dag.update(0b0011001100, 10, 5)
        assert cost.total_work > 0
        assert cost.nodes_folded > 0
