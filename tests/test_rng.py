"""Unit tests for repro.utils.rng."""

import random

import pytest

from repro.utils.rng import DiscreteSampler, derive_rng, make_rng


class TestMakeRng:
    def test_int_seed_deterministic(self):
        assert make_rng(42).random() == make_rng(42).random()

    def test_passthrough(self):
        rng = random.Random(1)
        assert make_rng(rng) is rng

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), random.Random)


class TestDeriveRng:
    def test_deterministic_per_label(self):
        a = derive_rng(make_rng(7), "labels").random()
        b = derive_rng(make_rng(7), "labels").random()
        assert a == b

    def test_labels_independent(self):
        rng1 = make_rng(7)
        rng2 = make_rng(7)
        assert derive_rng(rng1, "a").random() != derive_rng(rng2, "b").random()


class TestDiscreteSampler:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            DiscreteSampler([])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            DiscreteSampler([1.0, -0.5])

    def test_rejects_zero_sum(self):
        with pytest.raises(ValueError):
            DiscreteSampler([0.0, 0.0])

    def test_rejects_mismatched_values(self):
        with pytest.raises(ValueError):
            DiscreteSampler([1.0, 1.0], values=[1])

    def test_default_values_are_indices(self):
        sampler = DiscreteSampler([1.0, 1.0, 1.0])
        assert sampler.values == [0, 1, 2]

    def test_probabilities_normalized(self):
        sampler = DiscreteSampler([2.0, 6.0])
        probs = sampler.probabilities
        assert probs[0] == pytest.approx(0.25)
        assert probs[1] == pytest.approx(0.75)

    def test_degenerate_distribution(self):
        sampler = DiscreteSampler([1.0], values=["only"])
        rng = make_rng(3)
        assert all(sampler.sample(rng) == "only" for _ in range(50))

    def test_sampling_frequencies(self):
        sampler = DiscreteSampler([0.9, 0.1], values=["a", "b"])
        rng = make_rng(11)
        draws = sampler.sample_many(rng, 20_000)
        fraction_a = draws.count("a") / len(draws)
        assert 0.88 <= fraction_a <= 0.92

    def test_zero_weight_value_never_sampled(self):
        sampler = DiscreteSampler([1.0, 0.0, 1.0], values=["a", "never", "c"])
        rng = make_rng(5)
        assert "never" not in sampler.sample_many(rng, 5000)

    def test_sample_many_length(self):
        sampler = DiscreteSampler([1, 2, 3])
        assert len(sampler.sample_many(make_rng(1), 17)) == 17
