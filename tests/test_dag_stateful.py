"""Stateful property testing of the prefix DAG against a model FIB.

Hypothesis drives arbitrary interleavings of announce/withdraw/lookup
against a :class:`PrefixDag` while mirroring them into a plain dict
model; after every step the DAG must forward exactly like the model and
keep its internal reference counts consistent. This is the strongest
correctness check in the suite — it explores update interleavings that
the unit tests cannot enumerate.
"""

import random

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.core.fib import Fib
from repro.core.prefixdag import PrefixDag
from repro.core.trie import BinaryTrie

MAX_LENGTH = 10
WIDTH = 32

prefix_strategy = st.integers(0, MAX_LENGTH).flatmap(
    lambda length: st.tuples(
        st.integers(0, max(0, (1 << length) - 1)), st.just(length)
    )
)


class DagModelMachine(RuleBasedStateMachine):
    @initialize(barrier=st.integers(0, 12), seed=st.integers(0, 2**16))
    def setup(self, barrier, seed):
        self.barrier = barrier
        self.model: dict[tuple[int, int], int] = {}
        rng = random.Random(seed)
        fib = Fib(WIDTH)
        for _ in range(rng.randint(0, 15)):
            length = rng.randint(0, MAX_LENGTH)
            value = rng.getrandbits(length) if length else 0
            label = rng.randint(1, 4)
            fib.add(value, length, label)
            self.model[(value, length)] = label
        self.dag = PrefixDag(fib, barrier=barrier)
        self.steps = 0

    @rule(prefix=prefix_strategy, label=st.integers(1, 4))
    def announce(self, prefix, label):
        value, length = prefix
        self.dag.update(value, length, label)
        self.model[(value, length)] = label
        self.steps += 1

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def withdraw(self, data):
        key = data.draw(st.sampled_from(sorted(self.model)))
        value, length = key
        self.dag.update(value, length, None)
        del self.model[key]
        self.steps += 1

    @rule(prefix=prefix_strategy)
    def withdraw_missing_raises(self, prefix):
        value, length = prefix
        if (value, length) in self.model:
            return
        try:
            self.dag.update(value, length, None)
        except KeyError:
            pass
        else:
            raise AssertionError("withdrawing a missing route must raise")

    def _model_lookup(self, address):
        best_length = -1
        best_label = None
        for (value, length), label in self.model.items():
            matches = length == 0 or (address >> (WIDTH - length)) == value
            if matches and length > best_length:
                best_length = length
                best_label = label
        return best_label

    @invariant()
    def forwarding_matches_model(self):
        if not hasattr(self, "dag"):
            return
        rng = random.Random(self.steps * 7919 + 13)
        for _ in range(20):
            address = rng.getrandbits(WIDTH)
            assert self.dag.lookup(address) == self._model_lookup(address)

    @invariant()
    def refcounts_consistent(self):
        if not hasattr(self, "dag"):
            return
        self.dag.check_integrity()

    @invariant()
    def canonical_against_rebuild(self):
        if not hasattr(self, "dag") or self.steps % 5:
            return  # expensive: check every fifth step
        fresh = PrefixDag(self.dag.control_trie, barrier=self.barrier)
        assert fresh.folded_interior_count() == self.dag.folded_interior_count()


DagModelMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestDagModel = DagModelMachine.TestCase


def test_model_lookup_helper_agrees_with_trie():
    """The machine's brute-force model must itself be right."""
    rng = random.Random(5)
    machine = DagModelMachine()
    machine.setup(barrier=4, seed=11)
    trie = BinaryTrie(WIDTH)
    for (value, length), label in machine.model.items():
        trie.insert(value, length, label)
    for _ in range(300):
        address = rng.getrandbits(WIDTH)
        assert machine._model_lookup(address) == trie.lookup(address)
