"""Unit tests for the tabular FIB."""

import pytest

from repro.core.fib import Fib, Neighbor, Route


class TestEditing:
    def test_add_and_get(self):
        fib = Fib()
        fib.add(0b10, 2, 3)
        assert fib.get(0b10, 2) == 3
        assert len(fib) == 1

    def test_overwrite(self):
        fib = Fib()
        fib.add(0b10, 2, 3)
        fib.add(0b10, 2, 4)
        assert fib.get(0b10, 2) == 4
        assert len(fib) == 1

    def test_remove(self):
        fib = Fib()
        fib.add(0b10, 2, 3)
        assert fib.remove(0b10, 2) == 3
        assert len(fib) == 0

    def test_remove_missing(self):
        with pytest.raises(KeyError):
            Fib().remove(0, 1)

    def test_rejects_invalid_label(self):
        fib = Fib()
        with pytest.raises(ValueError):
            fib.add(0, 1, 0)  # the invalid label cannot be an entry
        with pytest.raises(ValueError):
            fib.add(0, 1, -2)

    def test_rejects_bad_prefix(self):
        fib = Fib()
        with pytest.raises(ValueError):
            fib.add(0b11, 1, 1)  # value wider than length
        with pytest.raises(ValueError):
            fib.add(0, 33, 1)

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            Fib(width=0)

    def test_contains(self):
        fib = Fib()
        fib.add(0b1, 1, 2)
        assert (0b1, 1) in fib
        assert (0b0, 1) not in fib


class TestLookup:
    def test_longest_match_wins(self, paper_fib):
        # Addresses from the paper's running example (W=32; the example
        # prefixes occupy the top bits).
        assert paper_fib.lookup(0b0111 << 28) == 1   # 011...
        assert paper_fib.lookup(0b0010 << 28) == 2   # 001...
        assert paper_fib.lookup(0b0000 << 28) == 3   # 000...
        assert paper_fib.lookup(0b1000 << 28) == 2   # 1... default

    def test_no_match_without_default(self):
        fib = Fib()
        fib.add(0b0, 1, 5)
        assert fib.lookup(0x80000000) is None

    def test_rejects_wide_address(self):
        with pytest.raises(ValueError):
            Fib().lookup(1 << 32)

    def test_covering_label(self, paper_fib):
        assert paper_fib.covering_label(0b011, 3) == 2   # covered by 01/2
        assert paper_fib.covering_label(0b0, 1) == 2     # covered by -/0
        assert paper_fib.covering_label(0, 0) is None


class TestStatsAndCopy:
    def test_delta_and_labels(self, paper_fib):
        assert paper_fib.delta == 3
        assert paper_fib.labels == [1, 2, 3]

    def test_label_histogram(self, paper_fib):
        assert paper_fib.label_histogram() == {1: 1, 2: 3, 3: 2}

    def test_stats(self, paper_fib):
        stats = paper_fib.stats()
        assert stats.entries == 6
        assert stats.next_hops == 3
        assert stats.default_route is True
        assert stats.mean_prefix_length == pytest.approx((0 + 1 + 2 + 3 + 2 + 3) / 6)

    def test_tabular_size_model(self, paper_fib):
        # (W + lg 3) * 6 = (32 + 2) * 6 bits.
        assert paper_fib.tabular_size_in_bits() == 34 * 6

    def test_tabular_size_empty(self):
        assert Fib().tabular_size_in_bits() == 0

    def test_copy_is_independent(self, paper_fib):
        duplicate = paper_fib.copy()
        duplicate.add(0b111, 3, 1)
        assert len(paper_fib) == 6
        assert len(duplicate) == 7

    def test_equality(self, paper_fib):
        assert paper_fib == paper_fib.copy()
        other = paper_fib.copy()
        other.remove(0, 0)
        assert paper_fib != other

    def test_iteration_sorted_by_length(self, paper_fib):
        routes = list(paper_fib)
        lengths = [route.length for route in routes]
        assert lengths == sorted(lengths)
        assert all(isinstance(route, Route) for route in routes)

    def test_from_entries(self):
        fib = Fib.from_entries([(0, 0, 1), (0b1, 1, 2)])
        assert len(fib) == 2

    def test_neighbor_table(self):
        fib = Fib()
        fib.add(0, 1, 3)
        assert fib.neighbor(3) is not None  # auto-created row
        fib.set_neighbor(Neighbor(3, name="core-router", address=0x0A000001))
        assert fib.neighbor(3).name == "core-router"
        assert fib.neighbor(9) is None

    def test_neighbor_rejects_invalid_label(self):
        with pytest.raises(ValueError):
            Neighbor(0)
