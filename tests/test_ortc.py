"""Unit and property tests for the ORTC aggregation baseline."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.ortc import ortc_compress
from repro.core.fib import INVALID_LABEL, Fib
from repro.core.trie import BinaryTrie

from tests.conftest import random_fib


def ortc_lookup(result, address):
    label = result.to_trie().lookup(address)
    return None if label in (None, INVALID_LABEL) else label


class TestFig1Example:
    def test_minimal_entry_count(self, paper_fib):
        # Fig 1(c): the 6-entry example FIB aggregates to 3 entries.
        result = ortc_compress(paper_fib)
        assert len(result) == 3

    def test_entries(self, paper_fib):
        result = ortc_compress(paper_fib)
        assert set(result.entries) == {(0, 0, 2), (0b000, 3, 3), (0b011, 3, 1)}

    def test_forwarding_preserved(self, paper_fib, rng):
        result = ortc_compress(paper_fib)
        trie = BinaryTrie.from_fib(paper_fib)
        aggregated = result.to_trie()
        for _ in range(500):
            address = rng.getrandbits(32)
            got = aggregated.lookup(address)
            got = None if got in (None, INVALID_LABEL) else got
            assert got == trie.lookup(address)

    def test_to_fib(self, paper_fib):
        fib = ortc_compress(paper_fib).to_fib()
        assert len(fib) == 3


class TestEdgeCases:
    def test_empty_fib(self):
        result = ortc_compress(Fib())
        assert len(result) == 0
        assert ortc_lookup(result, 123) is None

    def test_single_default(self):
        fib = Fib()
        fib.add(0, 0, 5)
        result = ortc_compress(fib)
        assert result.entries == [(0, 0, 5)]

    def test_redundant_specifics_removed(self):
        # A default route plus same-label specifics: 1 entry suffices.
        fib = Fib()
        fib.add(0, 0, 1)
        fib.add(0b10, 2, 1)
        fib.add(0b1011, 4, 1)
        assert len(ortc_compress(fib)) == 1

    def test_null_route_representation(self):
        # Two disjoint deep islands with the same label around an
        # unrouted gap can force ORTC to aggregate with a null route.
        fib = Fib()
        fib.add(0b00, 2, 1)
        fib.add(0b11, 2, 1)
        result = ortc_compress(fib)
        trie = BinaryTrie.from_fib(fib)
        rng = random.Random(1)
        for _ in range(300):
            address = rng.getrandbits(32)
            assert ortc_lookup(result, address) == trie.lookup(address)
        if result.null_routes:
            with pytest.raises(ValueError):
                result.to_fib()

    def test_accepts_trie_input(self, paper_trie):
        assert len(ortc_compress(paper_trie)) == 3


class TestProperties:
    @given(st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_never_larger_and_always_equivalent(self, seed):
        rng = random.Random(seed)
        fib = random_fib(rng, 40, 3, max_length=10)
        result = ortc_compress(fib)
        # ORTC is optimal, so in particular never worse than the input
        # (modulo representing uncovered space, worth at most 1 entry).
        assert len(result) <= len(fib) + 1
        trie = BinaryTrie.from_fib(fib)
        for _ in range(80):
            address = rng.getrandbits(32)
            assert ortc_lookup(result, address) == trie.lookup(address)

    @given(st.integers(0, 2**31))
    @settings(max_examples=20, deadline=None)
    def test_idempotent_entry_count(self, seed):
        rng = random.Random(seed)
        fib = random_fib(rng, 30, 3, max_length=8)
        once = ortc_compress(fib)
        twice = ortc_compress(once.to_trie())
        assert len(twice) <= len(once)
