"""Tests for repro.pipeline: registry, adapters, batch engine, parity.

The centerpiece is the cross-representation parity suite: every
registered representation, built from the same FIB, must return exactly
the labels of the tabular oracle — through scalar ``lookup`` and
through the batched stride-dispatch path — including misses when no
default route exists.
"""

from __future__ import annotations

import pytest

from tests.conftest import random_fib
from repro import pipeline
from repro.core.fib import Fib
from repro.datasets import (
    build_profile_fib,
    caida_like_trace,
    profile,
    random_update_sequence,
    uniform_trace,
)
from repro.datasets.updates import UpdateOp
from repro.pipeline.batch import DEEP, build_label_dispatch, build_node_dispatch
from repro.core.trie import BinaryTrie

ALL_NAMES = [
    "binary-trie",
    "lc-trie",
    "multibit-dag",
    "ortc",
    "patricia",
    "prefix-dag",
    "serialized-dag",
    "shape-graph",
    "tabular",
    "xbw",
]


class TestRegistry:
    def test_every_representation_registered(self):
        assert pipeline.names() == ALL_NAMES

    def test_specs_carry_paper_metadata(self):
        for spec in pipeline.specs():
            assert spec.paper_section, f"{spec.name} lacks a paper section"
            assert spec.size_model, f"{spec.name} lacks a size model"
            assert spec.description, f"{spec.name} lacks a description"

    def test_unknown_name_raises_with_listing(self):
        with pytest.raises(KeyError, match="binary-trie"):
            pipeline.get("frobnicator")

    def test_unknown_option_rejected(self, paper_fib):
        with pytest.raises(ValueError, match="barrier"):
            pipeline.build("tabular", paper_fib, barrier=4)

    def test_option_type_checked(self, paper_fib):
        with pytest.raises(TypeError, match="dispatch_stride"):
            pipeline.build("prefix-dag", paper_fib, dispatch_stride=object())

    def test_string_options_coerced(self, paper_fib):
        dag = pipeline.build("prefix-dag", paper_fib, barrier="3")
        assert dag.barrier == 3

    def test_none_only_valid_for_none_default(self, paper_fib):
        # barrier defaults to None (entropy-chosen): explicit None is fine.
        assert pipeline.build("prefix-dag", paper_fib, barrier=None).barrier >= 0
        # dispatch_stride defaults to an int: None must fail fast, by name.
        with pytest.raises(TypeError, match="dispatch_stride"):
            pipeline.build("prefix-dag", paper_fib, dispatch_stride=None)

    def test_bool_rejected_for_int_option(self, paper_fib):
        with pytest.raises(TypeError, match="barrier"):
            pipeline.build("prefix-dag", paper_fib, barrier=True)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            pipeline.register(name="tabular")(object)

    def test_trace_capable_subset(self):
        names = [spec.name for spec in pipeline.trace_capable()]
        assert names == ["lc-trie", "serialized-dag", "xbw"]
        for spec in pipeline.trace_capable():
            assert spec.trace_step_cycles is not None

    def test_protocol_conformance(self, paper_fib):
        for name in pipeline.names():
            representation = pipeline.build(name, paper_fib)
            assert isinstance(representation, pipeline.CompressedFib)
            assert representation.name == name
            assert representation.size_bits() > 0

    def test_optional_capabilities_match_specs(self, paper_fib):
        for spec in pipeline.specs():
            representation = pipeline.build(spec.name, paper_fib)
            assert pipeline.supports_updates(representation) == spec.supports_update
            assert pipeline.supports_trace(representation) == spec.supports_trace
            assert pipeline.supports_flat(representation) == spec.supports_flat

    def test_flat_capable_covers_every_builtin(self):
        assert [spec.name for spec in pipeline.flat_capable()] == ALL_NAMES


class TestBatchDispatch:
    def test_node_dispatch_matches_trie(self, rng):
        fib = random_fib(rng, 200, 4, max_length=12)
        trie = BinaryTrie.from_fib(fib)
        dispatch = build_node_dispatch(trie.root, trie.width, 8)
        for address in [0, (1 << 32) - 1] + [rng.getrandbits(32) for _ in range(300)]:
            slot = address >> dispatch.shift
            if dispatch.nodes[slot] is None:
                assert dispatch.labels[slot] == trie.lookup(address)

    def test_stride_clamped_to_width(self):
        narrow = Fib(8)
        narrow.add(0, 0, 1)
        dispatch = build_node_dispatch(BinaryTrie.from_fib(narrow).root, 8, 16)
        assert dispatch.stride == 8  # clamped to the address width

    def test_label_dispatch_marks_deep_regions(self, paper_fib):
        trie = BinaryTrie.from_fib(paper_fib)
        dispatch = build_label_dispatch(trie, 8)
        # The paper example has routes down to /3 only: after depth 3
        # nothing branches, so no slot needs a deep traversal.
        assert DEEP not in dispatch.labels

    def test_leaf_at_stride_stays_on_fast_path(self):
        # A /8 route under a stride-8 dispatch ends in a trie leaf at
        # exactly the dispatch depth: the region is uniform and must
        # answer from the array, not fall back to the scalar lookup.
        fib = Fib(32)
        fib.add(0x0A, 8, 3)            # 10.0.0.0/8
        fib.add(0x0B0000, 24, 4)       # 11.0.0.x/24 (genuinely deep)
        dispatch = build_label_dispatch(BinaryTrie.from_fib(fib), 8)
        assert dispatch.labels[0x0A] == 3
        assert dispatch.labels[0x0B] is DEEP

    def test_out_of_range_stride_rejected(self, paper_fib):
        for bad in (0, -3, pipeline.MAX_STRIDE + 1, 32):
            with pytest.raises(ValueError, match="stride"):
                build_node_dispatch(BinaryTrie(4).root, 4, bad)
            with pytest.raises(ValueError, match="stride"):
                pipeline.build("prefix-dag", paper_fib, dispatch_stride=bad)

    def test_batch_immune_to_later_fib_mutation(self, rng):
        # The fallback dispatch snapshots the FIB at build time: adding a
        # route to the caller's FIB afterwards must not desynchronize
        # lookup_batch from the frozen backend.
        fib = random_fib(rng, 80, 3, max_length=10)
        patricia = pipeline.build("patricia", fib)
        fib.add(0xAB, 8, 3)  # mutate the live FIB after the build
        probes = [rng.getrandbits(32) for _ in range(300)] + [0xAB << 24]
        assert patricia.lookup_batch(probes) == [patricia.lookup(a) for a in probes]

    def test_batch_rejects_out_of_range_addresses(self, paper_fib):
        # Scalar Fib.lookup raises on bad addresses; the batch paths must
        # too — Python's negative indexing would otherwise wrap a
        # dispatch slot and fabricate a route.
        for name in pipeline.names():
            representation = pipeline.build(name, paper_fib)
            for bad in (-1, 1 << paper_fib.width):
                with pytest.raises(ValueError, match="outside"):
                    representation.lookup_batch([0, bad])

    def test_dag_fold_shared_between_dag_and_image(self, paper_fib):
        built = pipeline.build_all(paper_fib, only=["prefix-dag", "serialized-dag"])
        assert built["serialized-dag"].source_dag is built["prefix-dag"].backend
        # ...in either selection order.
        built = pipeline.build_all(paper_fib, only=["serialized-dag", "prefix-dag"])
        assert built["serialized-dag"].source_dag is built["prefix-dag"].backend
        assert list(built) == ["serialized-dag", "prefix-dag"]
        # ...but not when the barriers differ.
        built = pipeline.build_all(
            paper_fib,
            only=["prefix-dag", "serialized-dag"],
            overrides={"serialized-dag": {"barrier": 2}},
        )
        assert built["serialized-dag"].source_dag is not built["prefix-dag"].backend
        assert built["serialized-dag"].barrier == 2


class TestParity:
    """Identical lookups across every registered representation."""

    def _addresses(self, fib, rng, count=1000):
        # Uniform addresses (mostly misses when no default route),
        # locality-heavy hits, and the corner addresses.
        addresses = uniform_trace(count // 2, seed=rng.getrandbits(30), width=fib.width)
        addresses += caida_like_trace(fib, count - len(addresses), seed=rng.getrandbits(30))
        addresses += [0, (1 << fib.width) - 1, 1 << (fib.width - 1)]
        return addresses

    def test_parity_on_profile_fib(self, rng):
        fib = build_profile_fib(profile("access_v"), scale=0.2)
        rows = pipeline.compare_representations(fib, self._addresses(fib, rng))
        assert [row.name for row in rows] == ALL_NAMES
        pipeline.assert_parity(rows)
        for row in rows:
            assert row.parity == 1.0

    def test_parity_without_default_route(self, rng):
        # Prefix lengths 6..16 (never 0: random_fib could emit a default
        # route) leave most of the 32-bit space uncovered, so uniform
        # addresses miss — exercising the None path through every batch
        # implementation.
        fib = Fib(32)
        while len(fib) < 250:
            length = rng.randint(6, 16)
            fib.add(rng.getrandbits(length), length, rng.randint(1, 5))
        addresses = self._addresses(fib, rng)
        rows = pipeline.compare_representations(fib, addresses)
        pipeline.assert_parity(rows)
        oracle = [fib.lookup(a) for a in addresses]
        assert any(label is not None for label in oracle)  # some hits...
        assert any(label is None for label in oracle)      # ...and some misses

    def test_batch_equals_scalar_per_representation(self, rng):
        fib = random_fib(rng, 120, 3, max_length=10)
        probes = [rng.getrandbits(32) for _ in range(200)]
        for name in pipeline.names():
            representation = pipeline.build(name, fib)
            scalar = [representation.lookup(a) for a in probes]
            assert representation.lookup_batch(probes) == scalar, name

    def test_mismatches_reported(self, paper_fib):
        rows = pipeline.compare_representations(paper_fib, [0, 1, 2])
        rows[0].mismatch_count = 1
        rows[0].mismatches.append(
            pipeline.Mismatch(address=0, expected=1, got=999, path="lookup")
        )
        assert rows[0].parity < 1.0
        with pytest.raises(AssertionError, match="parity broken"):
            pipeline.assert_parity(rows)

    def test_parity_counts_every_mismatch_beyond_cap(self, paper_fib, rng):
        # A 100%-wrong representation must report near-zero parity even
        # though only mismatch_cap example records are stored.
        from repro.pipeline import registry as registry_module

        @pipeline.register(
            name="zz-liar",
            description="always wrong (test only)",
            paper_section="-",
            size_model="-",
        )
        class Liar:
            def __init__(self, fib):
                pass

            def lookup(self, address):
                return 999_999

            def lookup_batch(self, addresses):
                return [999_999] * len(addresses)

            def size_bits(self):
                return 1

            def size_kbytes(self):
                return 1 / 8192.0

        try:
            probes = [rng.getrandbits(32) for _ in range(100)]
            rows = pipeline.compare_representations(
                paper_fib, probes, only=["zz-liar"], mismatch_cap=5
            )
            (row,) = rows
            assert len(row.mismatches) == 5          # stored examples capped
            assert row.mismatch_count == row.checked  # ...but all counted
            assert row.parity == 0.0
            assert not row.ok
        finally:
            del registry_module._REGISTRY["zz-liar"]

    def test_wrong_length_batch_is_wholesale_mismatch(self, paper_fib, rng):
        from repro.pipeline import registry as registry_module

        @pipeline.register(
            name="zz-short",
            description="drops labels (test only)",
            paper_section="-",
            size_model="-",
        )
        class Short:
            def __init__(self, fib):
                self._fib = fib

            def lookup(self, address):
                return self._fib.lookup(address)

            def lookup_batch(self, addresses):
                return [self._fib.lookup(a) for a in addresses[:-1]]  # one short

            def size_bits(self):
                return 1

            def size_kbytes(self):
                return 1 / 8192.0

        try:
            probes = [rng.getrandbits(32) for _ in range(50)]
            (row,) = pipeline.compare_representations(
                paper_fib, probes, only=["zz-short"]
            )
            assert not row.ok
            assert row.mismatch_count >= len(probes)
            assert "returned 49 labels" in row.mismatches[0].path
        finally:
            del registry_module._REGISTRY["zz-short"]


class TestDispatchPatching:
    """In-place dispatch repair must match a from-scratch rebuild."""

    def test_patched_node_dispatch_matches_rebuild(self, rng):
        from repro.pipeline.batch import patch_node_dispatch

        fib = random_fib(rng, 150, 4, max_length=14)
        trie = BinaryTrie.from_fib(fib)
        dispatch = build_node_dispatch(trie.root, trie.width, 8)
        mirror = fib.copy()
        for op in random_update_sequence(mirror, 40, seed=31, withdraw_fraction=0.3):
            try:
                mirror.update(op.prefix, op.length, op.label)
            except KeyError:
                continue
            if op.label is None:
                trie.delete(op.prefix, op.length)
            else:
                trie.insert(op.prefix, op.length, op.label)
            patch_node_dispatch(dispatch, trie.root, op.prefix, op.length)
        fresh = build_node_dispatch(trie.root, trie.width, 8)
        assert dispatch.labels == fresh.labels
        assert dispatch.nodes == fresh.nodes  # same objects, slot for slot

    def test_patched_label_dispatch_stays_correct(self, rng):
        from repro.pipeline.batch import batch_resolve, patch_label_dispatch

        fib = random_fib(rng, 120, 4, max_length=14)
        dispatch = build_label_dispatch(BinaryTrie.from_fib(fib), 8)
        for op in random_update_sequence(fib.copy(), 40, seed=37, withdraw_fraction=0.3):
            try:
                fib.update(op.prefix, op.length, op.label)
            except KeyError:
                continue
            patch_label_dispatch(dispatch, fib.lookup, op.prefix, op.length)
        probes = [rng.getrandbits(32) for _ in range(500)]
        assert batch_resolve(dispatch, fib.lookup, probes) == [
            fib.lookup(address) for address in probes
        ]

    def test_deep_update_marks_single_slot(self, paper_fib):
        from repro.pipeline.batch import DEEP as deep, patch_label_dispatch

        fib = Fib(32)
        fib.add(0x0A, 8, 3)  # 10.0.0.0/8: slot 0x0A uniform under stride 8
        dispatch = build_label_dispatch(BinaryTrie.from_fib(fib), 8)
        assert dispatch.labels[0x0A] == 3
        fib.add(0x0A0000, 24, 4)  # deep route inside the slot
        patch_label_dispatch(dispatch, fib.lookup, 0x0A0000, 24)
        assert dispatch.labels[0x0A] is deep
        assert dispatch.labels[0x0B] is None  # neighbouring slot untouched


class TestBatchEdgeCases:
    """Degenerate batches must skip the stride-dispatch build."""

    DISPATCH_ADAPTERS = [
        "binary-trie", "lc-trie", "ortc", "patricia",
        "prefix-dag", "shape-graph", "tabular", "xbw",
    ]

    def test_empty_batch_builds_no_lookup_plane(self, paper_fib):
        for name in self.DISPATCH_ADAPTERS:
            representation = pipeline.build(name, paper_fib)
            assert representation.lookup_batch([]) == []
            assert representation._dispatch is None, name
            assert representation._flat is None, name  # not even compiled

    def test_default_route_only_fib_compiles_tiny(self):
        fib = Fib(32)
        fib.add(0, 0, 7)  # a lone default route
        probes = [0, 1, (1 << 32) - 1, 0xDEADBEEF]
        for name in self.DISPATCH_ADAPTERS:
            representation = pipeline.build(name, fib)
            assert representation.lookup_batch(probes) == [7] * len(probes), name
            assert representation._dispatch is None, name
            # The compiled plane clamps its root table to the structure:
            # a degenerate FIB costs 2 slots, not 2^stride.
            assert len(representation._flat.root_ptr) == 2, name

    def test_empty_fib_batch(self):
        fib = Fib(32)
        for name in ("tabular", "binary-trie", "prefix-dag"):
            representation = pipeline.build(name, fib)
            assert representation.lookup_batch([0, 123]) == [None, None], name
            assert representation._dispatch is None, name

    def test_trivial_path_still_range_checks(self):
        fib = Fib(32)
        fib.add(0, 0, 7)
        for name in ("tabular", "binary-trie", "prefix-dag", "ortc"):
            representation = pipeline.build(name, fib)
            with pytest.raises(ValueError, match="outside"):
                representation.lookup_batch([0, -1])


class TestUpdates:
    def test_prefix_dag_apply_update_refreshes_batch(self, rng):
        fib = random_fib(rng, 150, 4, max_length=14)
        dag = pipeline.build("prefix-dag", fib, barrier=8)
        mirror = fib.copy()
        probes = [rng.getrandbits(32) for _ in range(300)]
        dag.lookup_batch(probes)  # force the dispatch to exist
        for op in random_update_sequence(mirror, 40, seed=11):
            dag.apply_update(op)
            if op.label is None:
                mirror.remove(op.prefix, op.length)
            else:
                mirror.add(op.prefix, op.length, op.label)
        want = [mirror.lookup(a) for a in probes]
        assert dag.lookup_batch(probes) == want
        assert [dag.lookup(a) for a in probes] == want

    def test_withdraw_then_batch(self, paper_fib):
        dag = pipeline.build("prefix-dag", paper_fib, barrier=2)
        dag.lookup_batch([0])
        dag.apply_update(UpdateOp(prefix=0b011, length=3, label=None))
        address = 0b011 << 29
        assert dag.lookup(address) == dag.lookup_batch([address])[0]

    UPDATABLE = ["tabular", "binary-trie", "prefix-dag"]

    def test_updatable_representations_declared(self):
        updatable = [spec.name for spec in pipeline.specs() if spec.supports_update]
        assert updatable == ["binary-trie", "prefix-dag", "tabular"]

    @pytest.mark.parametrize("name", UPDATABLE)
    def test_apply_update_tracks_oracle(self, rng, name):
        fib = random_fib(rng, 150, 4, max_length=14)
        representation = pipeline.build(name, fib)
        mirror = fib.copy()
        probes = [rng.getrandbits(32) for _ in range(300)]
        representation.lookup_batch(probes)  # force the dispatch to exist
        for op in random_update_sequence(mirror, 40, seed=23, withdraw_fraction=0.2):
            try:
                mirror.update(op.prefix, op.length, op.label)
            except KeyError:
                continue  # bogus withdrawal: don't apply anywhere
            representation.apply_update(op)
        want = [mirror.lookup(a) for a in probes]
        assert representation.lookup_batch(probes) == want, name
        assert [representation.lookup(a) for a in probes] == want, name

    @pytest.mark.parametrize("name", UPDATABLE)
    def test_withdraw_absent_route_raises(self, paper_fib, name):
        representation = pipeline.build(name, paper_fib)
        with pytest.raises(KeyError):
            representation.apply_update(UpdateOp(0x55, 7, None))

    def test_binary_trie_size_tracks_delta_after_updates(self, paper_fib):
        trie = pipeline.build("binary-trie", paper_fib)
        before = trie.size_bits()
        # Announce a new deep route: node count (and size) must grow.
        trie.apply_update(UpdateOp(0xABCDEF, 24, 1))
        assert trie.size_bits() > before

    def test_tabular_size_tracks_updates(self, paper_fib):
        tab = pipeline.build("tabular", paper_fib)
        before = tab.size_bits()
        tab.apply_update(UpdateOp(0xABCD, 16, 2))
        assert tab.size_bits() > before
        tab.apply_update(UpdateOp(0xABCD, 16, None))
        assert tab.size_bits() == before


class TestBench:
    def test_bench_rows_are_sane(self, paper_fib):
        rows = pipeline.bench_all(
            paper_fib,
            uniform_trace(200, seed=5),
            only=["prefix-dag", "serialized-dag"],
            repeat=1,
        )
        assert [row.name for row in rows] == ["prefix-dag", "serialized-dag"]
        for row in rows:
            assert row.lookups == 200
            assert row.scalar_seconds > 0 and row.batch_seconds > 0
            assert row.scalar_mlps > 0 and row.batch_mlps > 0
            assert row.speedup > 0
            # All three planes timed, the compiled one serving.
            assert row.compiled
            assert row.dispatch_seconds > 0 and row.dispatch_mlps > 0
            assert row.compiled_speedup > 0
            assert row.program_kb > 0
            payload = row.to_dict()
            for key in ("dispatch_seconds", "compiled", "program_kb",
                        "dispatch_mlps", "compiled_speedup"):
                assert key in payload

    def test_bench_rows_degrade_without_compilation(self, paper_fib):
        (row,) = pipeline.bench_all(
            paper_fib,
            uniform_trace(100, seed=5),
            only=["prefix-dag"],
            overrides={"prefix-dag": {"compiled": False}},
            repeat=1,
        )
        assert not row.compiled
        assert row.compiled_speedup == 0.0
        assert row.program_kb == 0.0
        assert row.batch_seconds > 0  # the dispatch plane served

    def test_bench_requires_a_run(self, paper_fib):
        representation = pipeline.build("tabular", paper_fib)
        with pytest.raises(ValueError):
            pipeline.bench_representation(representation, [1, 2, 3], repeat=0)
