"""Tests for repro.serve.cluster and repro.pipeline.shard.

The sharded engine's contract extends the serve parity discipline to a
partitioned deployment: replaying the same scenario script through 1
and 4 shards must end fully synchronized with the tabular oracle on
every scenario, boundary-spanning prefixes must replicate into every
covering shard (and keep answering exactly at both sides of a cut),
and the epoch coordinator must swap generations one shard at a time.
"""

from __future__ import annotations

import json

import pytest

from tests.conftest import random_fib
from repro import pipeline, serve
from repro.cli import main
from repro.core.fib import Fib
from repro.datasets.updates import UpdateOp
from repro.serve.cluster import _balanced_cuts, _mix64, plan_cluster

ALL_SCENARIOS = ("uniform", "bgp-churn", "flash-renumbering", "flap-storm")


# --------------------------------------------------------------- shard planning


class TestShardPlan:
    def test_prefix_bounds_cover_space(self, medium_fib):
        for shards in (1, 2, 3, 4, 8):
            plan = plan_cluster(medium_fib, shards, mode="prefix")
            assert plan.shards == shards
            assert plan.bounds[0] == 0
            assert plan.bounds[-1] == 1 << medium_fib.width
            assert list(plan.bounds) == sorted(set(plan.bounds))

    def test_owner_matches_ranges(self, medium_fib, rng):
        plan = plan_cluster(medium_fib, 4, mode="prefix")
        for _ in range(200):
            address = rng.getrandbits(32)
            owner = plan.owner(address)
            lo, hi = plan.shard_range(owner)
            assert lo <= address < hi

    def test_leaf_balanced_cuts(self):
        # All weight in the first half: the 2-way cut lands mid-half,
        # not at the naive midpoint of the slot range.
        weights = [1.0] * 8 + [0.0] * 8
        cuts = _balanced_cuts(weights, 2)
        assert cuts == [0, 4, 16]

    def test_balanced_cuts_nonempty_parts(self):
        cuts = _balanced_cuts([1.0, 0.0, 0.0, 0.0], 4)
        assert cuts == [0, 1, 2, 3, 4]
        with pytest.raises(ValueError, match="cannot cut"):
            _balanced_cuts([1.0, 1.0], 3)

    def test_hash_owner_deterministic_and_spread(self):
        fib = Fib.from_entries([(0, 0, 1)])
        plan = plan_cluster(fib, 4, mode="hash")
        owners = [plan.owner(address) for address in range(4096)]
        assert owners == [plan.owner(address) for address in range(4096)]
        assert set(owners) == {0, 1, 2, 3}
        counts = [owners.count(shard) for shard in range(4)]
        assert max(counts) < 2 * min(counts)  # splitmix64 spreads evenly

    def test_mix64_is_stable(self):
        # The hash is part of the partition contract: a changed constant
        # would silently re-home every flow.
        assert _mix64(0) == 16294208416658607535

    def test_owners_of_spanning_prefix(self, medium_fib):
        plan = plan_cluster(medium_fib, 4, mode="prefix")
        assert plan.owners(0, 0) == (0, 1, 2, 3)  # default route: everywhere
        lo, hi = plan.shard_range(2)
        # A full-width address inside shard 2 owns exactly shard 2.
        assert plan.owners(lo, medium_fib.width) == (2,)

    def test_bad_plans_rejected(self, paper_fib):
        with pytest.raises(ValueError, match="positive"):
            plan_cluster(paper_fib, 0)
        with pytest.raises(ValueError, match="partition mode"):
            plan_cluster(paper_fib, 2, mode="round-robin")
        with pytest.raises(ValueError, match="granularity"):
            plan_cluster(paper_fib, 2, granularity=30)


class TestRestrictFib:
    def test_restriction_preserves_lpm_exhaustively(self, rng):
        fib = random_fib(rng, 60, 4, max_length=8, width=8)
        bounds = (0, 64, 96, 256)
        shards = pipeline.shard_fibs(fib, bounds)
        for index in range(len(bounds) - 1):
            for address in range(bounds[index], bounds[index + 1]):
                assert shards[index].lookup(address) == fib.lookup(address)

    def test_boundary_routes_replicate(self):
        width = 8
        fib = Fib(width)
        fib.add(0, 0, 1)        # default route: spans every cut
        fib.add(0b0, 1, 2)      # 0.. half: spans the 64 cut below
        fib.add(0b1100, 4, 3)   # inside [192, 208): no cut crossed
        bounds = (0, 64, 128, 256)
        crossing = {(r.prefix, r.length) for r in pipeline.boundary_routes(fib, bounds)}
        assert crossing == {(0, 0), (0b0, 1)}
        shards = pipeline.shard_fibs(fib, bounds)
        assert (0, 0) in shards[0] and (0, 0) in shards[1] and (0, 0) in shards[2]
        assert (0b0, 1) in shards[0] and (0b0, 1) in shards[1]
        assert (0b0, 1) not in shards[2]
        assert (0b1100, 4) in shards[2]
        assert (0b1100, 4) not in shards[0]

    def test_neighbors_carried(self, paper_fib):
        restricted = pipeline.restrict_fib(paper_fib, 0, 1 << 31)
        for label in restricted.labels:
            assert restricted.neighbor(label) == paper_fib.neighbor(label)

    def test_bad_ranges_rejected(self, paper_fib):
        with pytest.raises(ValueError, match="shard range"):
            pipeline.restrict_fib(paper_fib, 8, 8)
        with pytest.raises(ValueError, match="shard bounds"):
            pipeline.shard_fibs(paper_fib, (0, 4))
        with pytest.raises(ValueError, match="ascending"):
            pipeline.boundary_routes(paper_fib, (0, 8, 8, 1 << 32))


# ------------------------------------------------------------------ the cluster


class TestFibCluster:
    def _script(self, fib, name="bgp-churn", **kw):
        kw.setdefault("lookups", 600)
        kw.setdefault("updates", 48)
        kw.setdefault("seed", 11)
        kw.setdefault("batch_size", 100)
        return serve.build_events(serve.scenario(name), fib, **kw)

    @pytest.mark.parametrize("scenario", ALL_SCENARIOS)
    @pytest.mark.parametrize("name", ["prefix-dag", "lc-trie"])
    def test_one_vs_four_shards_agree_with_oracle(self, rng, scenario, name):
        # The acceptance gate: every scenario, incremental and rebuild
        # planes, 1-vs-4 shards, 100% post-quiescence oracle parity.
        fib = random_fib(rng, 200, 4, max_length=14)
        events = self._script(fib, scenario)
        probes = serve.parity_probes(fib, 250, seed=3)
        reports = {
            shards: serve.serve_cluster_scenario(
                name, fib, events, scenario=scenario, shards=shards,
                rebuild_every=16, parity_probes=probes,
            )
            for shards in (1, 4)
        }
        for shards, report in reports.items():
            assert report.final_parity == 1.0, (scenario, name, shards)
            assert report.pending_updates == 0
            assert report.lookups == reports[1].lookups
        assert reports[4].shards == 4 and reports[1].shards == 1

    def test_hash_partition_parity(self, rng):
        fib = random_fib(rng, 150, 4, max_length=12)
        events = self._script(fib)
        report = serve.serve_cluster_scenario(
            "prefix-dag", fib, events, scenario="bgp-churn", shards=3,
            partition="hash", parity_probes=serve.parity_probes(fib, 200, seed=9),
        )
        assert report.final_parity == 1.0
        assert report.partition == "hash"
        # Full-state replicas: every shard holds the whole (post-churn)
        # table and the replication count tracks the live control FIB.
        assert {row["routes"] for row in report.shard_rows} == {report.replicated_routes}
        assert report.replicated_routes > 0
        assert report.update_fanout == 3.0            # every update, every shard

    def test_batch_merge_preserves_input_order(self, rng):
        fib = random_fib(rng, 200, 5, max_length=14)
        cluster = serve.FibCluster("binary-trie", fib, shards=4)
        addresses = [rng.getrandbits(32) for _ in range(512)]
        assert cluster.lookup_batch(addresses) == [fib.lookup(a) for a in addresses]

    def test_boundary_prefix_replication_and_withdrawal(self):
        # A spanning route must answer on both sides of a cut, follow a
        # re-label on every covering shard, and withdraw everywhere.
        width = 32
        fib = Fib(width)
        fib.add(0, 0, 1)
        fib.add(0b0, 1, 2)  # spans shard cuts in the lower half
        for value in range(64):
            fib.add(value, 8, (value % 3) + 1)
        cluster = serve.FibCluster("prefix-dag", fib, shards=4)
        report = cluster.report()
        assert report.replicated_routes >= 2
        probe_left = 0b0 << 31 | 5
        probe_right = (1 << 31) - 3
        owners = cluster.plan.owners(0b0, 1)
        assert len(owners) > 1
        assert cluster.lookup_batch([probe_left, probe_right]) == [
            fib.lookup(probe_left), fib.lookup(probe_right)
        ]
        assert cluster.apply_update(UpdateOp(0b0, 1, 7))  # re-label the spanner
        cluster.quiesce()
        assert cluster.parity_fraction([probe_left, probe_right]) == 1.0
        assert cluster.lookup(probe_right) == 7
        assert cluster.apply_update(UpdateOp(0b0, 1, None))  # withdraw it
        cluster.quiesce()
        assert cluster.parity_fraction([probe_left, probe_right]) == 1.0
        assert cluster.lookup(probe_right) == 1  # falls to the default route
        assert cluster.report().update_fanout > 1.0

    def test_bogus_withdrawal_skipped_cluster_wide(self, paper_fib):
        cluster = serve.FibCluster("lc-trie", paper_fib, shards=2)
        assert not cluster.apply_update(UpdateOp(0x55, 8, None))
        report = cluster.report()
        assert report.updates_skipped == 1
        assert report.updates_applied == 0
        assert not cluster.is_stale  # no shard ever saw the bogus op

    def test_coordinator_staggers_swaps(self, rng):
        # Make every shard due at once (spanning updates fan out to all
        # four), then check generations swap one event at a time.
        fib = random_fib(rng, 120, 3, max_length=12)
        fib.add(0, 0, 1)
        cluster = serve.FibCluster("lc-trie", fib, shards=4, rebuild_every=4)
        for flip in (2, 1, 2, 1):
            cluster.apply_update(UpdateOp(0, 0, flip))
        # The fourth update made all four shards due at once; the tick
        # after it swapped exactly one (never a global pause).
        assert sum(s.server.rebuilds for s in cluster.shards) == 1
        due = cluster.coordinator.due()
        assert len(due) == 3  # the backlog rolls through the others
        swaps_before = cluster.coordinator.swaps
        rebuilds = lambda: sum(s.server.rebuilds for s in cluster.shards)
        baseline = rebuilds()
        cluster.lookup_batch([rng.getrandbits(32)])
        assert rebuilds() == baseline + 1  # exactly one shard swapped
        cluster.lookup_batch([rng.getrandbits(32)])
        assert rebuilds() == baseline + 2  # the next one, next event
        assert cluster.coordinator.swaps == swaps_before + 2
        cluster.quiesce()
        assert not cluster.is_stale
        assert cluster.parity_fraction(serve.parity_probes(fib, 100, seed=1)) == 1.0

    def test_peak_memory_counts_one_shard_overlap(self, rng):
        fib = random_fib(rng, 150, 3, max_length=12)
        report = serve.serve_cluster_scenario(
            "serialized-dag", fib, self._script(fib, updates=40),
            scenario="bgp-churn", shards=4, rebuild_every=8,
        )
        assert report.rebuilds >= 1
        # The high-water mark includes an epoch overlap, but only ever
        # one shard's worth: staggering keeps it well under 2x total.
        assert report.size_bits < report.peak_size_bits < 2 * report.size_bits

    def test_critical_path_clock(self, rng):
        fib = random_fib(rng, 200, 4, max_length=14)
        events = self._script(fib, lookups=800, updates=0)
        report = serve.serve_cluster_scenario(
            "binary-trie", fib, events, scenario="uniform", shards=4,
        )
        # Critical path <= summed busy time <= shards x critical path.
        assert report.lookup_seconds <= report.busy_lookup_seconds
        assert report.busy_lookup_seconds <= 4 * report.lookup_seconds
        assert 0.0 < report.parallel_efficiency <= 1.0

    def test_single_shard_degenerates_to_server(self, rng):
        fib = random_fib(rng, 100, 3, max_length=12)
        events = self._script(fib, lookups=200, updates=10)
        single = serve.serve_scenario("prefix-dag", fib, events)
        cluster = serve.serve_cluster_scenario("prefix-dag", fib, events, shards=1)
        assert cluster.shards == 1
        assert cluster.replicated_routes == 0
        assert cluster.lookups == single.lookups
        assert cluster.updates_applied == single.updates_applied

    def test_cluster_report_round_trips_to_json(self, rng):
        fib = random_fib(rng, 80, 3, max_length=10)
        report = serve.serve_cluster_scenario(
            "lc-trie", fib, self._script(fib, lookups=100, updates=10),
            scenario="bgp-churn", shards=2,
        )
        record = json.loads(json.dumps(report.to_dict()))
        assert record["shards"] == 2
        assert record["partition"] == "prefix"
        assert len(record["shard_rows"]) == 2
        assert record["plane"] == "rebuild"
        assert 0.0 <= record["parallel_efficiency"] <= 1.0


# ------------------------------------------------------------------------- CLI


class TestClusterCli:
    def test_serve_shards_smoke(self, capsys):
        assert (
            main(
                [
                    "serve", "--scale", "0.002", "--scenario", "flap-storm",
                    "--updates", "30", "--lookups", "300", "--shards", "4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "4 prefix-partitioned shards" in out
        assert "shards" in out and "fanout" in out and "efficiency" in out

    def test_serve_shards_json(self, tmp_path, capsys):
        path = tmp_path / "BENCH_cluster.json"
        assert (
            main(
                [
                    "serve", "--scale", "0.002", "--updates", "20",
                    "--lookups", "200", "--shards", "2", "--partition", "hash",
                    "--representations", "prefix-dag", "--json", str(path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        payload = json.loads(path.read_text())
        assert payload["shards"] == 2
        assert payload["partition"] == "hash"
        (row,) = payload["rows"]
        assert row["final_parity"] == 1.0
        assert row["shards"] == 2
