"""Tests for repro.serve.workers — the multi-process serving plane.

Process-touching tests keep FIBs tiny and worker counts small: every
pool spawn costs an interpreter boot per worker, and the suite must
stay cheap on one core. Lifecycle coverage is the point here — crash
handling, epoch swaps over the control channel, start-method
portability — while throughput claims live in
``benchmarks/bench_workers.py``.
"""

from __future__ import annotations

import multiprocessing
import pickle
import random

import pytest

from repro import serve
from repro.core.fib import Fib
from repro.datasets.updates import UpdateOp
from repro.pipeline import registry
from repro.pipeline.base import flat_program
from repro.pipeline.shard import ShardSpec, shard_specs
from repro.serve.workers import (
    WorkerError,
    WorkerPool,
    pack_events,
    serve_worker_scenario,
)
from tests.conftest import PAPER_EXAMPLE_ENTRIES, build_fib, random_fib


def start_methods():
    """Start methods this platform offers (spawn everywhere; fork where
    the OS has it) — the portability matrix."""
    available = multiprocessing.get_all_start_methods()
    return [method for method in ("spawn", "fork") if method in available]


@pytest.fixture(scope="module")
def small_fib():
    rng = random.Random(20260731)
    return random_fib(rng, entries=160, delta=6, max_length=14)


@pytest.fixture(scope="module", params=["shm", "pipe"])
def pool(small_fib, request):
    with WorkerPool(
        "prefix-dag", small_fib, workers=2, transport=request.param
    ) as pool:
        yield pool


class TestPoolServing:
    def test_lookup_matches_oracle(self, pool, small_fib):
        rng = random.Random(7)
        addresses = [rng.getrandbits(32) for _ in range(512)]
        labels = pool.lookup_batch(addresses)
        oracle = small_fib.lookup
        assert labels == [oracle(address) for address in addresses]

    def test_single_lookup_and_empty_batch(self, pool, small_fib):
        assert pool.lookup(0) == small_fib.lookup(0)
        assert pool.lookup_batch([]) == []

    def test_update_round_trip(self, pool):
        # Announce through the pool, observe through the pool. On the
        # shm transport the workers adopt updates at the next published
        # generation, so drain the update plane before observing.
        op = UpdateOp(0b1010, 4, 3)
        assert pool.apply_update(op) is True
        pool.quiesce()
        address = 0b1010 << 28
        assert pool.lookup(address) == 3
        assert pool.apply_update(UpdateOp(0b1010, 4, None)) is True
        pool.quiesce()

    def test_bogus_withdrawal_skipped_pool_wide(self, pool):
        before = pool.control.copy()
        assert pool.apply_update(UpdateOp(0x5A5A, 16, None)) is False
        assert pool.control == before

    def test_parity_fraction_after_churn(self, pool, small_fib):
        rng = random.Random(13)
        for _ in range(32):
            prefix_length = rng.randint(4, 12)
            pool.apply_update(
                UpdateOp(rng.getrandbits(prefix_length), prefix_length,
                         rng.randint(1, 6))
            )
        pool.quiesce()
        probes = serve.parity_probes(small_fib, 300, seed=5)
        assert pool.parity_fraction(probes) == 1.0

    def test_report_shape(self, pool):
        report = pool.report(scenario="unit")
        assert report.shards == 2
        assert report.workers == 2
        assert report.spawn_method == "spawn"
        assert report.spawn_seconds > 0
        assert report.lookups > 0
        assert report.transport == pool.transport
        assert report.bytes_tx > 0
        assert report.bytes_rx > 0
        if pool.transport == "shm":
            assert report.attach_seconds > 0
        record = report.to_dict()
        assert record["workers"] == 2
        assert record["transport"] == pool.transport
        assert "measured_lookup_mlps" in record
        assert "model_agreement" in record
        assert len(record["shard_rows"]) == 2


class TestFanoutModes:
    @pytest.mark.parametrize("fanout", ["split", "broadcast"])
    @pytest.mark.parametrize("partition", ["prefix", "hash"])
    def test_fanout_partition_matrix(self, small_fib, fanout, partition):
        rng = random.Random(99)
        addresses = [rng.getrandbits(32) for _ in range(256)]
        oracle = [small_fib.lookup(address) for address in addresses]
        with WorkerPool(
            "binary-trie", small_fib, workers=3, partition=partition,
            fanout=fanout,
        ) as pool:
            assert pool.lookup_batch(addresses) == oracle

    def test_unknown_fanout_rejected(self, small_fib):
        with pytest.raises(ValueError, match="fanout"):
            WorkerPool("binary-trie", small_fib, workers=2, fanout="scatter")

    def test_wide_fib_rejected_up_front(self):
        # The int64 wire format cannot carry >= 64-bit addresses; the
        # pool must refuse at construction, not crash mid-replay.
        wide = Fib(64)
        wide.add(0, 0, 1)
        with pytest.raises(ValueError, match="63-bit"):
            WorkerPool("binary-trie", wide, workers=2)


class TestEpochSwapOverControlChannel:
    def test_mid_churn_swap_and_parity(self, small_fib):
        # A rebuild-plane representation: updates pend worker-side until
        # the frontend's coordinator swaps one worker at a time over the
        # control channel.
        rng = random.Random(31)
        with WorkerPool(
            "lc-trie", small_fib, workers=2, rebuild_every=8
        ) as pool:
            assert not pool.incremental
            swapped_mid_churn = 0
            for _ in range(48):
                length = rng.randint(3, 10)
                pool.apply_update(
                    UpdateOp(rng.getrandbits(length), length, rng.randint(1, 6))
                )
                pool.lookup_batch([rng.getrandbits(32) for _ in range(16)])
                swapped_mid_churn = pool.coordinator.swaps
            assert swapped_mid_churn > 0, "coordinator never swapped mid-churn"
            pool.quiesce()
            report = pool.report()
            assert report.pending_updates == 0
            assert report.generation >= swapped_mid_churn
            # Mid-churn epochs must leave the workers bit-identical to
            # the oracle once quiesced.
            probes = serve.parity_probes(small_fib, 400, seed=17)
            assert pool.parity_fraction(probes) == 1.0

    def test_swaps_are_staggered_one_worker_per_event(self, small_fib):
        # Staggering is a pipe-transport behavior: each worker rebuilds
        # from its own backlog, so the coordinator must pace them one at
        # a time. (On shm a publish adopts globally — covered below.)
        with WorkerPool(
            "lc-trie", small_fib, workers=2, rebuild_every=4, transport="pipe"
        ) as pool:
            # Default-route updates replicate to every worker, so both
            # backlogs hit the threshold on the same event — yet the
            # coordinator may swap at most one worker per tick.
            for index in range(4):
                pool.apply_update(UpdateOp(0, 0, 1 + (index & 1)))
            assert pool.coordinator.swaps == 1
            rows = pool.report().shard_rows
            generations = sorted(row["generation"] for row in rows)
            assert generations == [0, 1]

    def test_shm_publish_adopts_globally(self, small_fib):
        # On the shm transport the frontend publishes one program image
        # and every worker attaches it, so a swap moves all workers to
        # the same generation in the same tick.
        with WorkerPool(
            "lc-trie", small_fib, workers=2, rebuild_every=4, transport="shm"
        ) as pool:
            if pool.transport != "shm":
                pytest.skip("shared memory unavailable on this host")
            for index in range(4):
                pool.apply_update(UpdateOp(0, 0, 1 + (index & 1)))
            assert pool.coordinator.swaps == 1
            rows = pool.report().shard_rows
            generations = {row["generation"] for row in rows}
            assert len(generations) == 1
            assert generations.pop() >= 2


class TestWorkerCrash:
    def test_crash_raises_clean_error_not_hang(self, small_fib):
        pool = WorkerPool("binary-trie", small_fib, workers=2, timeout=30.0)
        try:
            victim = pool._handles[0]
            victim.process.kill()
            victim.process.join(10.0)
            with pytest.raises(WorkerError, match="worker 0") as excinfo:
                # Either the submit sees the dead pipe or the reader
                # thread fails the in-flight future — both surface as
                # WorkerError well before the timeout.
                for _ in range(3):
                    pool.lookup_batch(list(range(64)))
            assert excinfo.value.worker_index == 0
        finally:
            pool.close()

    def test_submit_after_crash_raises_immediately(self, small_fib):
        pool = WorkerPool("binary-trie", small_fib, workers=2, timeout=30.0)
        try:
            victim = pool._handles[1]
            victim.process.kill()
            victim.process.join(10.0)
            victim.reader.join(10.0)  # EOF marks the handle dead
            with pytest.raises(WorkerError) as excinfo:
                pool.apply_update(UpdateOp(0, 0, 1))
            assert excinfo.value.worker_index == 1
            assert excinfo.value.op == "update"
        finally:
            pool.close()

    def test_build_failure_surfaces_not_hangs(self, small_fib):
        # An option the representation rejects fails the build inside
        # the worker process; the error must travel back over the pipe.
        with pytest.raises(WorkerError, match="nonsense"):
            WorkerPool(
                "prefix-dag", small_fib, workers=2,
                options={"nonsense": 1}, timeout=30.0,
            )

    def test_close_is_idempotent(self, small_fib):
        pool = WorkerPool("binary-trie", small_fib, workers=2)
        pool.close()
        pool.close()
        with pytest.raises(WorkerError):
            pool.lookup_batch([1, 2, 3])


class TestStartMethods:
    @pytest.mark.parametrize("method", start_methods())
    def test_spawn_and_fork_both_serve(self, small_fib, method):
        events = pack_events(
            serve.build_events(
                serve.scenario("bgp-churn"), small_fib,
                lookups=512, updates=48, seed=3, batch_size=128,
            )
        )
        probes = serve.parity_probes(small_fib, 200, seed=3)
        report = serve_worker_scenario(
            "prefix-dag", small_fib, events,
            scenario="bgp-churn", workers=2,
            parity_probes=probes, start_method=method,
        )
        assert report.final_parity == 1.0
        assert report.spawn_method == method
        assert report.lookups == 512


class TestAsyncFrontend:
    def test_pipelined_replay_matches_oracle(self, small_fib):
        events = pack_events(
            serve.build_events(
                serve.scenario("flap-storm"), small_fib,
                lookups=1024, updates=64, seed=11, batch_size=64,
            )
        )
        probes = serve.parity_probes(small_fib, 300, seed=11)
        report = serve_worker_scenario(
            "prefix-dag", small_fib, events,
            scenario="flap-storm", workers=2, window=4,
            parity_probes=probes,
        )
        assert report.final_parity == 1.0
        assert report.batches == sum(1 for e in events if e.is_lookup)
        assert report.wall_lookup_seconds > 0
        assert report.wall_seconds >= report.wall_lookup_seconds

    def test_window_must_be_positive(self, pool):
        with pytest.raises(ValueError, match="window"):
            serve.AsyncFibFrontend(pool, window=0)


class TestShardSpecs:
    def test_specs_cover_and_restrict(self):
        fib = build_fib(PAPER_EXAMPLE_ENTRIES)
        bounds = (0, 1 << 31, 1 << 32)
        specs = shard_specs(fib, bounds)
        assert [spec.index for spec in specs] == [0, 1]
        assert specs[0].routes >= 1
        for spec in specs:
            for address in (spec.lo, spec.hi - 1):
                assert spec.fib.lookup(address) == fib.lookup(address)

    def test_spec_pickles(self):
        fib = build_fib(PAPER_EXAMPLE_ENTRIES)
        spec = shard_specs(fib, (0, 1 << 31, 1 << 32))[0]
        clone = pickle.loads(pickle.dumps(spec))
        assert isinstance(clone, ShardSpec)
        assert clone.fib == spec.fib
        assert (clone.lo, clone.hi, clone.routes) == (spec.lo, spec.hi, spec.routes)

    def test_full_range_is_plain_copy(self):
        fib = build_fib(PAPER_EXAMPLE_ENTRIES)
        specs = shard_specs(fib, (0, 1 << 32))
        assert len(specs) == 1
        assert specs[0].fib == fib


class TestFlatProgramPickling:
    def test_compiled_program_round_trips(self):
        fib = build_fib(PAPER_EXAMPLE_ENTRIES)
        representation = registry.build("prefix-dag", fib)
        program = flat_program(representation)
        assert program is not None
        clone = pickle.loads(pickle.dumps(program))
        rng = random.Random(23)
        addresses = [rng.getrandbits(32) for _ in range(256)]
        assert clone.lookup_batch(addresses) == program.lookup_batch(addresses)
        assert clone.size_in_bits() == program.size_in_bits()

    def test_views_not_pickled(self):
        fib = build_fib(PAPER_EXAMPLE_ENTRIES)
        program = flat_program(registry.build("binary-trie", fib))
        program.lookup_batch([0, 1, 2])  # may materialize view cache
        state = program.__getstate__()
        assert "_views" not in state
        clone = pickle.loads(pickle.dumps(program))
        assert clone.lookup(0) == program.lookup(0)


class TestPackedServing:
    def test_packed_labels_match_decoded(self):
        fib = build_fib(PAPER_EXAMPLE_ENTRIES)
        server = serve.FibServer("prefix-dag", fib, measure_staleness=False)
        rng = random.Random(3)
        addresses = [rng.getrandbits(32) for _ in range(333)]
        from array import array

        packed = array("q")
        packed.frombytes(server.lookup_batch_packed(addresses))
        decoded = server.lookup_batch(addresses)
        assert list(packed) == [label or 0 for label in decoded]

    def test_packed_dispatch_fallback(self):
        fib = build_fib(PAPER_EXAMPLE_ENTRIES)
        server = serve.FibServer(
            "binary-trie", fib, options={"compiled": False},
            measure_staleness=False,
        )
        from array import array

        packed = array("q")
        packed.frombytes(server.lookup_batch_packed([0, 1 << 31, (1 << 32) - 1]))
        assert list(packed) == [
            label or 0 for label in server.lookup_batch([0, 1 << 31, (1 << 32) - 1])
        ]

    def test_pack_events_replays_identically(self):
        fib = build_fib(PAPER_EXAMPLE_ENTRIES)
        events = serve.build_events(
            serve.scenario("uniform"), fib, lookups=256, updates=16, seed=9,
            batch_size=64,
        )
        packed = pack_events(events)
        assert len(packed) == len(events)
        plain = serve.serve_scenario("prefix-dag", fib, events, scenario="u")
        repacked = serve.serve_scenario("prefix-dag", fib, packed, scenario="u")
        assert plain.lookups == repacked.lookups
        assert plain.updates_applied == repacked.updates_applied


class TestVectorSplit:
    def test_split_vector_matches_group(self):
        np = pytest.importorskip("numpy")
        fib = build_fib(PAPER_EXAMPLE_ENTRIES)
        for partition, shards in (("prefix", 4), ("hash", 5)):
            plan = serve.plan_cluster(fib, shards, mode=partition)
            rng = random.Random(41)
            addresses = [rng.getrandbits(32) for _ in range(500)]
            grouped = plan.group(addresses)
            batch = np.fromiter(addresses, dtype=np.int64, count=len(addresses))
            vectored = plan.split_vector(batch)
            assert set(grouped) == set(vectored)
            for shard, (positions, slice_) in grouped.items():
                v_positions, v_slice = vectored[shard]
                assert v_positions.tolist() == positions
                assert v_slice.tolist() == slice_
