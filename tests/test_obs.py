"""Tests for repro.obs — the telemetry plane.

Covers the core instruments (log2 histogram bucketing, merge algebra,
the label-cardinality guard, the disabled no-op path), the exposition
formats (Prometheus text, snapshot validation, the stdlib HTTP
exporter), the update-visibility tracker, and the property the
multi-process plane depends on: a worker registry snapshot shipped
over the control channel and merged into the frontend registry counts
the same events an in-process run counts directly.
"""

from __future__ import annotations

import json
import math
import random
import urllib.error
import urllib.request

import pytest

from repro.obs import (
    NULL_REGISTRY,
    OVERFLOW_LABELS,
    SCHEMA,
    ZERO_BUCKET,
    MetricsExporter,
    Registry,
    VisibilityTracker,
    bucket_bounds,
    bucket_index,
    snapshot_count,
    snapshot_quantile,
    snapshot_value,
    to_prometheus,
    validate_metrics_payload,
)
from repro.serve import (
    build_events,
    scenario,
    serve_scenario,
    serve_worker_scenario,
)

from tests.conftest import random_fib


class TestBuckets:
    def test_powers_of_two_land_in_their_own_bucket(self):
        # Bucket e covers [2^(e-1), 2^e): an exact power of two is the
        # *lower* edge of the next bucket up.
        assert bucket_index(1.0) == 1
        assert bucket_index(2.0) == 2
        assert bucket_index(0.5) == 0
        assert bucket_index(1.5) == 1

    def test_bounds_invert_index(self):
        for value in (1e-9, 3.7e-6, 0.001, 0.999, 1.0, 12.0, 4096.5):
            lo, hi = bucket_bounds(bucket_index(value))
            assert lo <= value < hi, value

    def test_zero_and_negative_share_the_zero_bucket(self):
        assert bucket_index(0.0) == ZERO_BUCKET
        assert bucket_index(-1.5) == ZERO_BUCKET
        # The zero bucket collapses to the 0 edge (le="0" in the
        # Prometheus rendering).
        assert bucket_bounds(ZERO_BUCKET) == (0.0, 0.0)

    def test_histogram_quantiles_bracket_the_data(self):
        registry = Registry()
        hist = registry.histogram("h", "test")
        values = [0.001 * (i + 1) for i in range(100)]
        for value in values:
            hist.observe(value)
        snap = registry.snapshot()
        p50 = snapshot_quantile(snap, "h", 0.50)
        p99 = snapshot_quantile(snap, "h", 0.99)
        assert min(values) <= p50 <= p99 <= max(values)
        # Log2 buckets guarantee at worst a 2x bracket around the truth.
        assert p50 == pytest.approx(0.050, rel=1.0)
        assert p99 == pytest.approx(0.099, rel=1.0)


class TestMerge:
    @staticmethod
    def _registry(seed: int) -> Registry:
        rng = random.Random(seed)
        registry = Registry()
        counter = registry.counter("events_total", "t", labelnames=("kind",))
        hist = registry.histogram("latency", "t")
        gauge = registry.gauge("depth", "t")
        for _ in range(50):
            counter.labels(rng.choice("abc")).inc(rng.randint(1, 5))
            hist.observe(rng.uniform(1e-6, 1e-2))
            gauge.add(rng.uniform(-1, 1))
        return registry

    @staticmethod
    def _assert_equivalent(a: dict, b: dict) -> None:
        # Merging is associative up to float-summation rounding: counts
        # and bucket tallies must match exactly, running sums to 1 ulp-ish.
        assert a["metrics"].keys() == b["metrics"].keys()
        for name, record in a["metrics"].items():
            other = b["metrics"][name]
            for series_a, series_b in zip(record["series"], other["series"]):
                assert series_a["labels"] == series_b["labels"]
                for key, value in series_a.items():
                    if isinstance(value, float):
                        assert series_b[key] == pytest.approx(value), (name, key)
                    else:
                        assert series_b[key] == value, (name, key)

    def test_merge_is_associative_and_commutative(self):
        snaps = [self._registry(seed).snapshot() for seed in (1, 2, 3)]
        left = Registry()
        for snap in snaps:
            left.merge(snap)
        right = Registry()
        for snap in reversed(snaps):
            right.merge(snap)
        nested = Registry()
        inner = Registry()
        inner.merge(snaps[1])
        inner.merge(snaps[2])
        nested.merge(snaps[0])
        nested.merge(inner)
        self._assert_equivalent(left.snapshot(), right.snapshot())
        self._assert_equivalent(left.snapshot(), nested.snapshot())

    def test_merge_adds_counts_and_keeps_extremes(self):
        a, b = Registry(), Registry()
        a.histogram("h", "t").observe(0.25)
        b.histogram("h", "t").observe(8.0)
        a.merge(b)
        record = a.snapshot()["metrics"]["h"]["series"][0]
        assert record["count"] == 2
        assert record["min"] == 0.25
        assert record["max"] == 8.0
        assert record["sum"] == pytest.approx(8.25)

    def test_merge_registry_object_equals_merge_snapshot(self):
        a, b = self._registry(7), self._registry(8)
        via_object = Registry()
        via_object.merge(a)
        via_object.merge(b)
        via_snapshot = Registry()
        via_snapshot.merge(a.snapshot())
        via_snapshot.merge(b.snapshot())
        assert via_object.snapshot() == via_snapshot.snapshot()


class TestCardinalityGuard:
    def test_overflow_label_absorbs_past_the_cap(self):
        registry = Registry(max_series=4)
        counter = registry.counter("c", "t", labelnames=("peer",))
        for peer in range(10):
            counter.labels(peer).inc()
        record = registry.snapshot()["metrics"]["c"]
        label_sets = [tuple(s["labels"]) for s in record["series"]]
        assert len(label_sets) <= 5  # 4 real + the overflow sink
        assert OVERFLOW_LABELS in label_sets
        total = sum(s["value"] for s in record["series"])
        assert total == 10  # nothing dropped, only folded

    def test_conflicting_redeclaration_raises(self):
        registry = Registry()
        registry.counter("c", "t")
        with pytest.raises(ValueError):
            registry.gauge("c", "t")
        with pytest.raises(ValueError):
            registry.counter("c", "t", labelnames=("x",))


class TestDisabled:
    def test_null_registry_records_nothing(self):
        hist = NULL_REGISTRY.histogram("h", "t")
        hist.observe(1.0)
        NULL_REGISTRY.counter("c", "t").labels("x").inc(5)
        NULL_REGISTRY.gauge("g", "t").set(3)
        with NULL_REGISTRY.span("s"):
            pass
        assert NULL_REGISTRY.snapshot()["metrics"] == {}
        assert not NULL_REGISTRY.enabled

    def test_disabled_visibility_tracker_is_inert(self):
        tracker = VisibilityTracker(NULL_REGISTRY.histogram("v", "t"))
        tracker.stamp()
        tracker.observe()
        assert NULL_REGISTRY.snapshot()["metrics"] == {}


class TestVisibilityTracker:
    def test_one_slot_keeps_oldest_stamp(self):
        registry = Registry()
        tracker = VisibilityTracker(registry.histogram("v", "t"))
        tracker.stamp(1_000)
        tracker.stamp(2_000)  # younger update must not shorten the window
        elapsed = tracker.observe(4_000)
        assert elapsed == pytest.approx(3e-6)
        assert not tracker.pending
        assert snapshot_count(registry.snapshot(), "v") == 1

    def test_negative_window_is_skipped(self):
        registry = Registry()
        tracker = VisibilityTracker(registry.histogram("v", "t"))
        tracker.stamp(5_000)
        assert tracker.observe(1_000) is None
        assert snapshot_count(registry.snapshot(), "v") == 0


class TestExposition:
    @staticmethod
    def _sample() -> Registry:
        registry = Registry()
        registry.counter("events_total", "events", labelnames=("kind",)).labels(
            "lookup"
        ).inc(3)
        registry.histogram("latency_seconds", "lat").observe(0.5)
        return registry

    def test_prometheus_text_roundtrip_fields(self):
        text = to_prometheus(self._sample())
        assert '# TYPE repro_events_total counter' in text
        assert 'repro_events_total{kind="lookup"} 3' in text
        assert "repro_latency_seconds_count 1" in text
        assert 'le="+Inf"' in text

    def test_validate_accepts_snapshot_and_wrapper(self):
        snap = self._sample().snapshot()
        assert validate_metrics_payload(snap) == []
        wrapper = {"schema": SCHEMA, "rows": [{"name": "x", "snapshot": snap}]}
        assert validate_metrics_payload(wrapper) == []

    def test_validate_rejects_corrupt_histogram(self):
        snap = self._sample().snapshot()
        series = snap["metrics"]["latency_seconds"]["series"][0]
        series["count"] = 99  # no longer the bucket sum
        assert validate_metrics_payload(snap)

    def test_http_exporter_serves_both_formats(self):
        registry = self._sample()
        with MetricsExporter(registry, port=0) as exporter:
            base = f"http://127.0.0.1:{exporter.port}"
            text = urllib.request.urlopen(f"{base}/metrics").read().decode()
            assert "repro_events_total" in text
            payload = json.loads(urllib.request.urlopen(f"{base}/json").read())
            assert payload["schema"] == SCHEMA
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(f"{base}/other")


class TestCrossProcessMerge:
    def test_worker_snapshots_merge_to_in_process_totals(self, medium_fib):
        """The multi-process invariant: worker registries shipped over
        the control channel and merged frontend-side must count the
        same served lookups an in-process instrumented run counts."""
        events = build_events(
            scenario("bgp-churn"), medium_fib, 600, 40, seed=5, batch_size=64
        )
        local = serve_scenario(
            "prefix-dag", medium_fib, events, scenario="bgp-churn", obs=Registry()
        )
        pooled = serve_worker_scenario(
            "prefix-dag",
            medium_fib,
            events,
            scenario="bgp-churn",
            workers=2,
            transport="shm",
            obs=Registry(),
        )
        assert pooled.obs is not None
        assert snapshot_value(pooled.obs, "serve_lookups_total") == snapshot_value(
            local.obs, "serve_lookups_total"
        )
        assert snapshot_count(pooled.obs, "serve_lookup_latency_seconds") > 0
        assert pooled.lookup_latency_p99 is not None
        if pooled.transport == "shm":
            # Ring telemetry arrives from both producers: the frontend
            # (request rings) and the workers (response rings).
            labels = {
                tuple(s["labels"])
                for s in pooled.obs["metrics"]["ring_bytes_total"]["series"]
            }
            assert ("req:0",) in labels and ("res:0",) in labels
            assert snapshot_value(pooled.obs, "ring_bytes_total") > 0
