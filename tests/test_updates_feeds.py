"""Unit tests for the update feed generators (Fig 5 workloads)."""

import pytest

from repro.core.prefixdag import PrefixDag
from repro.datasets.updates import (
    UpdateOp,
    apply_updates,
    bgp_update_sequence,
    iter_batches,
    mean_length,
    random_update_sequence,
)


class TestRandomFeed:
    def test_count_and_lengths(self, medium_fib):
        ops = random_update_sequence(medium_fib, 500, seed=1)
        assert len(ops) == 500
        assert all(0 <= op.length <= 32 for op in ops)

    def test_mean_length_uniform(self, medium_fib):
        ops = random_update_sequence(medium_fib, 4000, seed=2)
        assert mean_length(ops) == pytest.approx(16.0, abs=0.7)

    def test_labels_from_fib(self, medium_fib):
        ops = random_update_sequence(medium_fib, 300, seed=3)
        valid = set(medium_fib.labels)
        assert all(op.label in valid for op in ops if not op.is_withdraw)

    def test_deterministic(self, medium_fib):
        assert random_update_sequence(medium_fib, 100, seed=4) == random_update_sequence(
            medium_fib, 100, seed=4
        )

    def test_withdraw_fraction(self, medium_fib):
        ops = random_update_sequence(medium_fib, 1000, seed=5, withdraw_fraction=0.3)
        withdraws = sum(1 for op in ops if op.is_withdraw)
        assert 200 <= withdraws <= 400

    def test_withdraws_target_existing_routes(self, medium_fib):
        ops = random_update_sequence(medium_fib, 500, seed=6, withdraw_fraction=0.5)
        existing = {(r.prefix, r.length) for r in medium_fib}
        assert all(
            (op.prefix, op.length) in existing for op in ops if op.is_withdraw
        )


class TestBgpFeed:
    def test_mean_length_matches_paper(self, medium_fib):
        # The paper's RouteViews feed has mean prefix length 21.87.
        ops = bgp_update_sequence(medium_fib, 6000, seed=7)
        assert mean_length(ops) == pytest.approx(21.87, abs=0.5)

    def test_biased_to_long_prefixes(self, medium_fib):
        ops = bgp_update_sequence(medium_fib, 3000, seed=8)
        share_24 = sum(1 for op in ops if op.length == 24) / len(ops)
        assert share_24 > 0.4

    def test_reannounces_existing_prefixes(self, medium_fib):
        ops = bgp_update_sequence(medium_fib, 2000, seed=9, reannounce_fraction=1.0)
        existing = {(r.prefix, r.length) for r in medium_fib}
        by_length = {}
        for prefix, length in existing:
            by_length.setdefault(length, set()).add(prefix)
        hits = sum(
            1 for op in ops if op.prefix in by_length.get(op.length, set())
        )
        # Lengths present in the FIB must re-announce existing values.
        assert hits > 0

    def test_empty_mean(self):
        assert mean_length([]) == 0.0


class TestApplication:
    def test_apply_to_dag(self, medium_fib):
        dag = PrefixDag(medium_fib, barrier=8)
        ops = random_update_sequence(medium_fib, 200, seed=10)
        applied = apply_updates(dag, ops)
        assert applied == 200
        dag.check_integrity()

    def test_apply_skips_bogus_withdraws(self, medium_fib):
        dag = PrefixDag(medium_fib, barrier=8)
        bogus = [UpdateOp(0b1010101, 7, None)]
        if medium_fib.get(0b1010101, 7) is None:
            assert apply_updates(dag, bogus) == 0

    def test_iter_batches(self):
        ops = [UpdateOp(0, 0, 1)] * 10
        batches = list(iter_batches(ops, 4))
        assert [len(b) for b in batches] == [4, 4, 2]
        with pytest.raises(ValueError):
            list(iter_batches(ops, 0))


class TestDeterminism:
    """Same seed ⇒ identical UpdateOp sequence, for every feed."""

    def test_random_feed_reproducible(self, medium_fib):
        ops = random_update_sequence(medium_fib, 250, seed=77, withdraw_fraction=0.2)
        again = random_update_sequence(medium_fib, 250, seed=77, withdraw_fraction=0.2)
        assert ops == again
        assert ops != random_update_sequence(
            medium_fib, 250, seed=78, withdraw_fraction=0.2
        )

    def test_bgp_feed_reproducible(self, medium_fib):
        ops = bgp_update_sequence(medium_fib, 250, seed=77, withdraw_fraction=0.2)
        again = bgp_update_sequence(medium_fib, 250, seed=77, withdraw_fraction=0.2)
        assert ops == again
        assert ops != bgp_update_sequence(
            medium_fib, 250, seed=78, withdraw_fraction=0.2
        )

    def test_fib_replay_matches_dag_adapter(self, medium_fib):
        # apply_updates drives both the tabular oracle (Fib.update) and
        # the pipeline adapter (apply_update); the two replays of one
        # feed must converge to the same forwarding function.
        from repro import pipeline

        ops = bgp_update_sequence(medium_fib, 300, seed=13, withdraw_fraction=0.25)
        oracle = medium_fib.copy()
        applied_fib = apply_updates(oracle, ops)
        dag = pipeline.build("prefix-dag", medium_fib, barrier=8)
        applied_dag = apply_updates(dag, ops)
        assert applied_fib == applied_dag
        probes = [(op.prefix << (32 - op.length)) if op.length else 0 for op in ops]
        probes += [0, (1 << 32) - 1]
        assert dag.lookup_batch(probes) == [oracle.lookup(a) for a in probes]
        dag.backend.check_integrity()
