"""Unit tests for the tabular baseline adapter."""

import pytest

from repro.baselines.tabular import TabularFib
from repro.core.trie import BinaryTrie

from tests.conftest import assert_forwarding_equivalent


class TestTabularFib:
    def test_equivalence(self, paper_fib, rng):
        adapter = TabularFib(paper_fib)
        trie = BinaryTrie.from_fib(paper_fib)
        assert_forwarding_equivalent(trie.lookup, adapter.lookup, rng, samples=200)

    def test_is_a_copy(self, paper_fib):
        adapter = TabularFib(paper_fib)
        paper_fib.remove(0, 0)
        assert adapter.lookup(0xF0000000) == 2  # default still there

    def test_size_model(self, paper_fib):
        adapter = TabularFib(paper_fib)
        assert adapter.size_in_bits() == (32 + 2) * 6
        assert adapter.size_in_kbytes() == pytest.approx((32 + 2) * 6 / 8192)

    def test_len_and_repr(self, paper_fib):
        adapter = TabularFib(paper_fib)
        assert len(adapter) == 6
        assert "TabularFib" in repr(adapter)
