"""Tests for benchmarks/check_trajectory.py — the CI regression gate."""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "check_trajectory",
    Path(__file__).resolve().parent.parent / "benchmarks" / "check_trajectory.py",
)
check_trajectory = importlib.util.module_from_spec(_SPEC)
sys.modules.setdefault("check_trajectory", check_trajectory)
_SPEC.loader.exec_module(check_trajectory)


def _pipeline(speedup, compiled_speedup, mlps=10.0):
    return {
        "rows": [
            {
                "name": "prefix-dag",
                "compiled": True,
                "speedup": speedup,
                "compiled_speedup": compiled_speedup,
                "batch_mlps": mlps,
            }
        ]
    }


def _cluster(four_shard):
    return {
        "speedups": {"4-prefix": four_shard, "1-prefix": 1.0},
        "baseline": {"lookup_mlps": 5.0},
    }


def _workers(four_worker, gated=True, shm_compiled=2.5):
    return {
        "speedups": {"4-prefix": four_worker},
        "gated": gated,
        "compiled_speedup": {"shm": shm_compiled, "pipe": 0.9},
        "model_agreement": {"shm": 0.8, "pipe": 0.5},
        "baseline_mlps": 1.0,
    }


def _workers_legacy(four_worker, gated=True):
    # Pre-shm schema: compiled_speedup/model_agreement were floats.
    return {
        "speedups": {"4-prefix": four_worker},
        "gated": gated,
        "compiled_speedup": 0.9,
        "model_agreement": 0.5,
        "baseline_mlps": 1.0,
    }


def _write(directory, name, payload):
    directory.mkdir(exist_ok=True)
    (directory / name).write_text(json.dumps(payload))


class TestCompare:
    def test_no_regression_passes(self, tmp_path):
        _write(tmp_path / "base", "BENCH_pipeline.json", _pipeline(80.0, 4.0))
        _write(tmp_path / "new", "BENCH_pipeline.json", _pipeline(75.0, 3.9))
        failures, _ = check_trajectory.check(tmp_path / "base", tmp_path / "new")
        assert failures == []

    def test_ratio_regression_fails(self, tmp_path):
        _write(tmp_path / "base", "BENCH_pipeline.json", _pipeline(80.0, 4.0))
        _write(tmp_path / "new", "BENCH_pipeline.json", _pipeline(40.0, 4.0))
        failures, _ = check_trajectory.check(tmp_path / "base", tmp_path / "new")
        assert len(failures) == 1
        assert "speedup" in failures[0]

    def test_within_tolerance_passes(self, tmp_path):
        # 29% down: inside the 30% default tolerance.
        _write(tmp_path / "base", "BENCH_cluster.json", _cluster(2.8))
        _write(tmp_path / "new", "BENCH_cluster.json", _cluster(2.0))
        failures, _ = check_trajectory.check(tmp_path / "base", tmp_path / "new")
        assert failures == []

    def test_cluster_regression_fails(self, tmp_path):
        _write(tmp_path / "base", "BENCH_cluster.json", _cluster(2.8))
        _write(tmp_path / "new", "BENCH_cluster.json", _cluster(1.5))
        failures, _ = check_trajectory.check(tmp_path / "base", tmp_path / "new")
        assert len(failures) == 1
        assert "4-prefix" in failures[0]

    def test_absolute_mlps_only_warns(self, tmp_path):
        _write(tmp_path / "base", "BENCH_pipeline.json", _pipeline(80.0, 4.0, mlps=20.0))
        _write(tmp_path / "new", "BENCH_pipeline.json", _pipeline(80.0, 4.0, mlps=2.0))
        failures, warnings = check_trajectory.check(
            tmp_path / "base", tmp_path / "new"
        )
        assert failures == []
        assert any("batch_mlps" in warning for warning in warnings)

    def test_worker_speedups_gated_only_when_both_gated(self, tmp_path):
        # Baseline recorded on a 1-core box (gated=False): a CI drop
        # must not fail against it, whichever way it moves.
        _write(tmp_path / "base", "BENCH_workers.json", _workers(0.7, gated=False))
        _write(tmp_path / "new", "BENCH_workers.json", _workers(0.3, gated=True))
        failures, warnings = check_trajectory.check(
            tmp_path / "base", tmp_path / "new"
        )
        assert failures == []
        assert any("4-prefix" in warning for warning in warnings)

    def test_worker_speedups_fail_when_both_gated(self, tmp_path):
        _write(tmp_path / "base", "BENCH_workers.json", _workers(3.0, gated=True))
        _write(tmp_path / "new", "BENCH_workers.json", _workers(1.2, gated=True))
        failures, _ = check_trajectory.check(tmp_path / "base", tmp_path / "new")
        assert len(failures) == 1

    def test_shm_compiled_speedup_gates_when_both_gated(self, tmp_path):
        # The zero-copy ratio is a gated metric; the pipe compiled
        # foil only warns.
        base = _workers(3.0, gated=True, shm_compiled=3.0)
        fresh = _workers(3.0, gated=True, shm_compiled=1.1)
        fresh["compiled_speedup"]["pipe"] = 0.1
        _write(tmp_path / "base", "BENCH_workers.json", base)
        _write(tmp_path / "new", "BENCH_workers.json", fresh)
        failures, warnings = check_trajectory.check(
            tmp_path / "base", tmp_path / "new"
        )
        assert len(failures) == 1
        assert "compiled_speedup.shm" in failures[0]
        assert any("compiled_speedup.pipe" in warning for warning in warnings)

    def test_model_agreement_gates_per_transport_when_both_gated(self, tmp_path):
        base = _workers(3.0, gated=True)
        fresh = _workers(3.0, gated=True)
        fresh["model_agreement"] = {"shm": 0.1, "pipe": 0.5}
        _write(tmp_path / "base", "BENCH_workers.json", base)
        _write(tmp_path / "new", "BENCH_workers.json", fresh)
        failures, _ = check_trajectory.check(tmp_path / "base", tmp_path / "new")
        assert len(failures) == 1
        assert "model_agreement.shm" in failures[0]

    def test_model_agreement_warns_when_ungated(self, tmp_path):
        # A 1-CPU agreement number is noise, never a ratchet.
        base = _workers(3.0, gated=False)
        fresh = _workers(3.0, gated=False)
        fresh["model_agreement"] = {"shm": 0.05, "pipe": 0.05}
        _write(tmp_path / "base", "BENCH_workers.json", base)
        _write(tmp_path / "new", "BENCH_workers.json", fresh)
        failures, warnings = check_trajectory.check(
            tmp_path / "base", tmp_path / "new"
        )
        assert failures == []
        assert any("model_agreement.shm" in warning for warning in warnings)

    def test_legacy_float_compiled_speedup_still_compares(self, tmp_path):
        # A pre-shm float baseline against a per-transport fresh run:
        # the keys no longer line up, so nothing gates — the reseeded
        # baseline picks the new schema up on the next commit.
        _write(
            tmp_path / "base", "BENCH_workers.json", _workers_legacy(3.0)
        )
        _write(tmp_path / "new", "BENCH_workers.json", _workers(3.0))
        failures, _ = check_trajectory.check(tmp_path / "base", tmp_path / "new")
        assert failures == []

    def test_missing_fresh_file_skips_unless_strict(self, tmp_path):
        _write(tmp_path / "base", "BENCH_pipeline.json", _pipeline(80.0, 4.0))
        (tmp_path / "new").mkdir()
        failures, warnings = check_trajectory.check(
            tmp_path / "base", tmp_path / "new"
        )
        assert failures == []
        assert any("missing" in warning for warning in warnings)
        failures, _ = check_trajectory.check(
            tmp_path / "base", tmp_path / "new", strict=True
        )
        assert failures


class TestMain:
    def test_exit_codes(self, tmp_path, capsys):
        _write(tmp_path / "base", "BENCH_pipeline.json", _pipeline(80.0, 4.0))
        _write(tmp_path / "new", "BENCH_pipeline.json", _pipeline(80.0, 4.0))
        argv = [
            "--baseline-dir", str(tmp_path / "base"),
            "--fresh-dir", str(tmp_path / "new"),
        ]
        assert check_trajectory.main(argv) == 0
        assert "trajectory gate OK" in capsys.readouterr().out
        _write(tmp_path / "new", "BENCH_pipeline.json", _pipeline(10.0, 4.0))
        assert check_trajectory.main(argv) == 1
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.err

    def test_tolerance_validation(self, tmp_path):
        with pytest.raises(SystemExit):
            check_trajectory.main(
                [
                    "--baseline-dir", str(tmp_path),
                    "--fresh-dir", str(tmp_path),
                    "--tolerance", "1.5",
                ]
            )

    def test_committed_baselines_parse(self):
        # The real committed trajectories must stay consumable by the
        # gate (self-compare: zero regressions by construction).
        repo = Path(__file__).resolve().parent.parent
        failures, _ = check_trajectory.check(repo, repo)
        assert failures == []


class TestConfigGuard:
    def test_config_mismatch_skips_with_warning(self, tmp_path):
        base = _pipeline(80.0, 4.0)
        base["scale"] = 0.02
        fresh = _pipeline(10.0, 1.0)  # would fail hard if compared
        fresh["scale"] = 0.01
        _write(tmp_path / "base", "BENCH_pipeline.json", base)
        _write(tmp_path / "new", "BENCH_pipeline.json", fresh)
        failures, warnings = check_trajectory.check(
            tmp_path / "base", tmp_path / "new"
        )
        assert failures == []
        assert any("config changed" in warning for warning in warnings)

    def test_matching_config_compares(self, tmp_path):
        base = _pipeline(80.0, 4.0)
        fresh = _pipeline(10.0, 4.0)
        for payload in (base, fresh):
            payload.update(scale=0.01, packets=5000, profile="taz", stride=16)
        _write(tmp_path / "base", "BENCH_pipeline.json", base)
        _write(tmp_path / "new", "BENCH_pipeline.json", fresh)
        failures, _ = check_trajectory.check(tmp_path / "base", tmp_path / "new")
        assert len(failures) == 1


class TestRatioCap:
    def test_huge_ratio_wobble_passes(self, tmp_path):
        # 2666x -> 1500x is machine noise at that altitude, not a
        # regression: both clamp to the cap.
        _write(tmp_path / "base", "BENCH_pipeline.json", _pipeline(2666.0, 4.0))
        _write(tmp_path / "new", "BENCH_pipeline.json", _pipeline(1500.0, 4.0))
        failures, _ = check_trajectory.check(tmp_path / "base", tmp_path / "new")
        assert failures == []

    def test_collapse_below_cap_still_fails(self, tmp_path):
        _write(tmp_path / "base", "BENCH_pipeline.json", _pipeline(2666.0, 4.0))
        _write(tmp_path / "new", "BENCH_pipeline.json", _pipeline(20.0, 4.0))
        failures, _ = check_trajectory.check(tmp_path / "base", tmp_path / "new")
        assert len(failures) == 1


class TestDegeneratePoint:
    def test_one_shard_point_only_warns(self, tmp_path):
        base = _cluster(2.8)
        fresh = _cluster(2.8)
        base["speedups"]["1-prefix"] = 1.0
        fresh["speedups"]["1-prefix"] = 0.5  # scheduler noise, not a regression
        _write(tmp_path / "base", "BENCH_cluster.json", base)
        _write(tmp_path / "new", "BENCH_cluster.json", fresh)
        failures, warnings = check_trajectory.check(
            tmp_path / "base", tmp_path / "new"
        )
        assert failures == []
        assert any("1-prefix" in warning for warning in warnings)


class TestEmptyBaseline:
    def test_empty_list_baseline_warns_not_crashes(self, tmp_path):
        # A seeded-but-never-run trajectory is committed as `[]`.
        _write(tmp_path / "base", "BENCH_serve.json", [])
        _write(tmp_path / "new", "BENCH_serve.json", {"rows": []})
        failures, warnings = check_trajectory.check(
            tmp_path / "base", tmp_path / "new"
        )
        assert failures == []
        assert any("not a trajectory object" in warning for warning in warnings)

    def test_empty_rows_baseline_warns_not_vacuous(self, tmp_path):
        # Zero comparable metrics must be announced, not silently passed.
        _write(tmp_path / "base", "BENCH_serve.json", {"rows": []})
        _write(tmp_path / "new", "BENCH_serve.json", {"rows": []})
        failures, warnings = check_trajectory.check(
            tmp_path / "base", tmp_path / "new"
        )
        assert failures == []
        assert any("no comparable metrics" in warning for warning in warnings)

    def test_unreadable_baseline_warns_not_crashes(self, tmp_path):
        (tmp_path / "base").mkdir()
        (tmp_path / "base" / "BENCH_serve.json").write_text("{not json")
        _write(tmp_path / "new", "BENCH_serve.json", {"rows": []})
        failures, warnings = check_trajectory.check(
            tmp_path / "base", tmp_path / "new"
        )
        assert failures == []
        assert any("unreadable baseline" in warning for warning in warnings)


class TestSeedMissing:
    def test_seed_missing_copies_fresh_to_baseline(self, tmp_path):
        fresh = _pipeline(80.0, 4.0)
        _write(tmp_path / "new", "BENCH_pipeline.json", fresh)
        failures, warnings = check_trajectory.check(
            tmp_path / "base", tmp_path / "new", seed_missing=True
        )
        assert failures == []
        assert any("seeded from the fresh run" in warning for warning in warnings)
        seeded = json.loads((tmp_path / "base" / "BENCH_pipeline.json").read_text())
        assert seeded == fresh
        # Armed from the next run on: a later regression now fails.
        _write(tmp_path / "new", "BENCH_pipeline.json", _pipeline(40.0, 4.0))
        failures, _ = check_trajectory.check(
            tmp_path / "base", tmp_path / "new", seed_missing=True
        )
        assert len(failures) == 1

    def test_seed_missing_replaces_unreadable_baseline(self, tmp_path):
        (tmp_path / "base").mkdir()
        (tmp_path / "base" / "BENCH_workers.json").write_text("")
        fresh = _workers(2.5)
        _write(tmp_path / "new", "BENCH_workers.json", fresh)
        failures, warnings = check_trajectory.check(
            tmp_path / "base", tmp_path / "new", seed_missing=True
        )
        assert failures == []
        assert any("seeded" in warning for warning in warnings)
        seeded = json.loads((tmp_path / "base" / "BENCH_workers.json").read_text())
        assert seeded == fresh

    def test_without_flag_missing_baseline_only_skips(self, tmp_path):
        _write(tmp_path / "new", "BENCH_pipeline.json", _pipeline(80.0, 4.0))
        failures, warnings = check_trajectory.check(
            tmp_path / "base", tmp_path / "new"
        )
        assert failures == []
        assert any("no committed baseline; skipped" in w for w in warnings)
        assert not (tmp_path / "base" / "BENCH_pipeline.json").exists()
