"""Unit and property tests for the LC-trie (fib_trie model) and Patricia."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.lctrie import LCTrie, fib_trie
from repro.baselines.patricia import PATRICIA_NODE_BYTES, PatriciaTrie
from repro.core.fib import Fib
from repro.core.trie import BinaryTrie

from tests.conftest import assert_forwarding_equivalent, random_fib


class TestConstruction:
    def test_rejects_bad_fill(self, paper_fib):
        with pytest.raises(ValueError):
            LCTrie(paper_fib, fill_factor=0.0)
        with pytest.raises(ValueError):
            LCTrie(paper_fib, fill_factor=1.5)

    def test_rejects_bad_stride(self, paper_fib):
        with pytest.raises(ValueError):
            LCTrie(paper_fib, max_bits=0)

    def test_empty_fib(self):
        trie = LCTrie(Fib())
        assert trie.lookup(0) is None
        assert trie.stats().leaves == 0

    def test_alias_merging(self):
        # 10/2 and 1000/4 share the key 1000...0: one leaf, two aliases.
        fib = Fib()
        fib.add(0b10, 2, 1)
        fib.add(0b1000, 4, 2)
        trie = LCTrie(fib)
        stats = trie.stats()
        assert stats.leaves == 1
        assert stats.aliases == 2
        assert trie.lookup(0b1000 << 28) == 2
        assert trie.lookup(0b1011 << 28) == 1


class TestLookup:
    def test_paper_example(self, paper_fib, rng):
        trie = BinaryTrie.from_fib(paper_fib)
        lc = fib_trie(paper_fib)
        assert_forwarding_equivalent(trie.lookup, lc.lookup, rng)

    def test_backtracking_through_skip(self):
        # Covering prefix found despite path compression skipping its bits.
        fib = Fib()
        fib.add(0b11, 2, 7)          # cover
        fib.add(0b110000, 6, 1)
        fib.add(0b110011, 6, 2)
        lc = LCTrie(fib)
        assert lc.lookup(0b111111 << 26) == 7
        assert lc.lookup(0b110000 << 26) == 1

    def test_no_default_no_match(self):
        fib = Fib()
        fib.add(0b0, 1, 1)
        lc = LCTrie(fib)
        assert lc.lookup(0xFFFFFFFF) is None

    def test_default_route(self):
        fib = Fib()
        fib.add(0, 0, 9)
        fib.add(0b1010, 4, 1)
        lc = LCTrie(fib)
        assert lc.lookup(0b1010 << 28) == 1
        assert lc.lookup(0b0101 << 28) == 9

    @given(st.integers(0, 2**31), st.floats(min_value=0.3, max_value=1.0),
           st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_equivalence_random(self, seed, fill, max_bits):
        rng = random.Random(seed)
        fib = random_fib(rng, 50, 4, max_length=14)
        trie = BinaryTrie.from_fib(fib)
        lc = LCTrie(fib, fill_factor=fill, max_bits=max_bits)
        for _ in range(80):
            address = rng.getrandbits(32)
            assert lc.lookup(address) == trie.lookup(address)

    def test_lookup_with_depth(self, medium_fib, rng):
        lc = fib_trie(medium_fib)
        label, depth = lc.lookup_with_depth(rng.getrandbits(32))
        assert depth >= 1


class TestStatsAndSizes:
    def test_level_compression_reduces_depth(self, medium_fib):
        wide = LCTrie(medium_fib, fill_factor=0.5, max_bits=16)
        binary = LCTrie(medium_fib, fill_factor=1.0, max_bits=1)
        assert wide.stats().average_depth < binary.stats().average_depth

    def test_average_depth_matches_sampling(self, medium_fib, rng):
        lc = fib_trie(medium_fib)
        stats = lc.stats()
        sampled = [lc.lookup_with_depth(rng.getrandbits(32))[1] for _ in range(4000)]
        assert abs(sum(sampled) / len(sampled) - stats.average_depth) < 0.6
        assert max(sampled) <= stats.max_depth

    def test_size_model(self, medium_fib):
        lc = fib_trie(medium_fib)
        assert lc.size_in_bytes() > 0
        assert lc.size_in_bits() == lc.size_in_bytes() * 8
        # The kernel model is tens of bytes per prefix.
        assert lc.size_in_bytes() > 40 * len(medium_fib)

    def test_trace_agrees_with_lookup(self, medium_fib, rng):
        lc = fib_trie(medium_fib)
        for _ in range(100):
            address = rng.getrandbits(32)
            label, trace = lc.lookup_trace(address)
            assert label == lc.lookup(address)
            assert trace


class TestPatricia:
    def test_is_binary(self, medium_fib):
        pat = PatriciaTrie(medium_fib)
        # Every tnode in a Patricia tree is binary.
        assert pat.stats().max_depth <= 32

    def test_equivalence(self, medium_fib, rng):
        trie = BinaryTrie.from_fib(medium_fib)
        pat = PatriciaTrie(medium_fib)
        assert_forwarding_equivalent(trie.lookup, pat.lookup, rng)

    def test_24_bytes_per_node(self, paper_fib):
        pat = PatriciaTrie(paper_fib)
        stats = pat.stats()
        assert pat.size_in_bytes() == (stats.tnodes + stats.leaves) * PATRICIA_NODE_BYTES

    def test_deeper_than_lctrie(self, medium_fib):
        assert (
            PatriciaTrie(medium_fib).stats().average_depth
            >= fib_trie(medium_fib).stats().average_depth
        )
