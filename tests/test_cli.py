"""Unit tests for the repro-fib command-line interface."""

import pytest

from repro.cli import main


class TestExperimentsCommands:
    def test_table1_subset(self, capsys):
        assert main(["table1", "--scale", "0.002", "--profiles", "access_v"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "access_v" in out

    def test_fig7(self, capsys):
        assert main(["fig7", "--log-length", "10"]) == 0
        out = capsys.readouterr().out
        assert "Fig 7" in out
        assert "0.500" in out

    def test_fig5(self, capsys):
        assert main(["fig5", "--scale", "0.002", "--updates", "40", "--step", "16"]) == 0
        assert "Fig 5" in capsys.readouterr().out

    def test_table2(self, capsys):
        assert main([
            "table2", "--scale", "0.002", "--packets", "300",
        ]) == 0
        out = capsys.readouterr().out
        assert "fib_trie" in out and "FPGA" in out


class TestFileCommands:
    def test_generate_compress_lookup(self, tmp_path, capsys):
        fib_path = str(tmp_path / "test.fib")
        assert main(["generate", "access_v", "--scale", "0.05", "-o", fib_path]) == 0
        assert main(["compress", fib_path, "--barrier", "8"]) == 0
        out = capsys.readouterr().out
        assert "FIB entropy" in out

        assert main(["lookup", fib_path, "10.0.0.1", "--barrier", "8"]) == 0
        out = capsys.readouterr().out
        assert "->" in out

    def test_compress_lists_every_representation(self, tmp_path, capsys):
        from repro import pipeline

        fib_path = str(tmp_path / "test.fib")
        main(["generate", "access_v", "--scale", "0.05", "-o", fib_path])
        capsys.readouterr()
        assert main(["compress", fib_path]) == 0
        out = capsys.readouterr().out
        for name in pipeline.names():
            assert name in out
        assert "lambda" in out and "entropy-chosen" in out

    def test_lookup_default_barrier_is_entropy_chosen(self, tmp_path, capsys):
        fib_path = str(tmp_path / "test.fib")
        main(["generate", "access_v", "--scale", "0.05", "-o", fib_path])
        capsys.readouterr()
        assert main(["lookup", fib_path, "10.0.0.1"]) == 0
        captured = capsys.readouterr()
        assert "->" in captured.out
        assert "lambda=" in captured.err and "entropy-chosen" in captured.err

    def test_lookup_other_representation(self, tmp_path, capsys):
        fib_path = str(tmp_path / "test.fib")
        main(["generate", "access_v", "--scale", "0.05", "-o", fib_path])
        assert main(["lookup", fib_path, "10.0.0.1", "--representation", "xbw"]) == 0
        assert "->" in capsys.readouterr().out

    def test_lookup_rejects_prefix(self, tmp_path, capsys):
        fib_path = str(tmp_path / "test.fib")
        main(["generate", "access_v", "--scale", "0.05", "-o", fib_path])
        assert main(["lookup", fib_path, "10.0.0.0/8"]) == 2

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_no_command_exits(self):
        with pytest.raises(SystemExit):
            main([])


class TestPipelineCommands:
    def test_compare_reports_full_parity(self, capsys):
        assert main([
            "compare", "--scale", "0.002", "--packets", "200",
            "--profiles", "access_v",
        ]) == 0
        captured = capsys.readouterr()
        assert "100.0%" in captured.out
        assert "parity OK" in captured.err

    def test_compare_subset(self, capsys):
        assert main([
            "compare", "--scale", "0.002", "--packets", "100",
            "--profiles", "access_v",
            "--representations", "prefix-dag", "tabular",
        ]) == 0
        out = capsys.readouterr().out
        assert "prefix-dag" in out and "xbw" not in out

    def test_bench_reports_speedup(self, capsys):
        assert main([
            "bench", "--scale", "0.002", "--packets", "500", "--repeat", "1",
            "--representations", "prefix-dag", "serialized-dag",
        ]) == 0
        out = capsys.readouterr().out
        assert "batch Mlps" in out and "prefix-dag" in out and "x" in out
