"""Unit tests for lookup-key trace generators (Table 2 workloads)."""

import pytest

from repro.core.fib import Fib
from repro.datasets.traces import caida_like_trace, trace_locality, uniform_trace


class TestUniformTrace:
    def test_length_and_range(self):
        trace = uniform_trace(500, seed=1)
        assert len(trace) == 500
        assert all(0 <= a < 2**32 for a in trace)

    def test_deterministic(self):
        assert uniform_trace(100, seed=2) == uniform_trace(100, seed=2)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            uniform_trace(-1)

    def test_low_locality(self):
        trace = uniform_trace(5000, seed=3)
        assert trace_locality(trace) < 0.05


class TestCaidaLikeTrace:
    def test_addresses_fall_under_routes(self, medium_fib):
        trace = caida_like_trace(medium_fib, 1000, seed=4)
        from repro.core.trie import BinaryTrie

        trie = BinaryTrie.from_fib(medium_fib)
        matched = sum(1 for a in trace if trie.lookup(a) is not None)
        assert matched == len(trace)  # flows are drawn from routed space

    def test_high_locality(self, medium_fib):
        trace = caida_like_trace(medium_fib, 5000, seed=5)
        assert trace_locality(trace) > 0.15

    def test_flow_population_bounds_distinct_destinations(self, medium_fib):
        trace = caida_like_trace(medium_fib, 2000, seed=6, flows=64)
        assert len(set(trace)) <= 64

    def test_empty_fib_falls_back_to_uniform(self):
        trace = caida_like_trace(Fib(), 100, seed=7)
        assert len(trace) == 100

    def test_rejects_bad_args(self, medium_fib):
        with pytest.raises(ValueError):
            caida_like_trace(medium_fib, -1)
        with pytest.raises(ValueError):
            caida_like_trace(medium_fib, 10, flows=0)


class TestLocalityMetric:
    def test_empty(self):
        assert trace_locality([]) == 0.0

    def test_single_destination(self):
        assert trace_locality([42] * 100) == 1.0
