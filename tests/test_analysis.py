"""Unit tests for the experiment assembly layer (tables, figures, bounds)."""

import pytest

from repro.analysis.bounds import (
    check_entropy_ordering,
    check_theorem1,
    check_theorem2,
    check_xbw_entropy_bound,
)
from repro.analysis.fig5 import measure_update_point, render_fig5, sweep_barriers
from repro.analysis.fig67 import (
    measure_fig6_point,
    measure_fig7_point,
    render_fig6,
    render_fig7,
    sweep_fig7,
)
from repro.analysis.report import banner, format_cell, render_series, render_table
from repro.analysis.table1 import measure_fib, render_table1, sanity_check_row
from repro.analysis.table2 import Table2Inputs, build_table2, render_table2
from repro.core.entropy import fib_entropy
from repro.core.stringmodel import FoldedString, theorem1_barrier
from repro.core.xbw import XBWb
from repro.datasets.synthetic import bernoulli_string
from repro.datasets.traces import uniform_trace
from repro.datasets.updates import random_update_sequence


class TestReportRendering:
    def test_format_cell(self):
        assert format_cell(3) == "3"
        assert format_cell(3.14159) == "3.142"
        assert format_cell(31.4159) == "31.4"
        assert format_cell(31415.9) == "31,416"
        assert format_cell(0.0) == "0"
        assert format_cell("x") == "x"

    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [[1, 2], [33, 444]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_render_series(self):
        text = render_series("title", "x", {"y": [1.0, 2.0]}, [10, 20])
        assert "title" in text and "10" in text

    def test_banner(self):
        assert "hello" in banner("hello")


class TestTable1:
    def test_measure_paper_fib(self, paper_fib):
        row = measure_fib(paper_fib, name="example", barrier=2)
        assert row.entries == 6
        assert row.next_hops == 3
        assert row.entropy_kb <= row.info_bound_kb
        assert row.eta_pdag > 0
        assert sanity_check_row(row) == []

    def test_render(self, paper_fib):
        row = measure_fib(paper_fib, name="example", barrier=2)
        text = render_table1([row])
        assert "example" in text and "eta_pDAG" in text

    def test_prebuilt_structures_reused(self, paper_fib):
        from repro.core.prefixdag import PrefixDag

        xbw = XBWb.from_fib(paper_fib)
        dag = PrefixDag(paper_fib, barrier=2)
        row = measure_fib(paper_fib, xbw=xbw, dag=dag)
        assert row.pdag_kb == pytest.approx(dag.size_in_kbytes())


class TestTable2:
    def test_build_and_render(self, medium_fib):
        inputs = Table2Inputs.build(medium_fib, barrier=8)
        streams = {"rand": uniform_trace(400, seed=1)}
        rows = build_table2(inputs, streams, xbw_sample=100)
        names = [row.name for row in rows]
        assert names == ["XBW-b", "pDAG", "fib_trie", "FPGA"]
        text = render_table2(rows)
        assert "fib_trie" in text

    def test_engines_agree_with_reference(self, medium_fib, rng):
        inputs = Table2Inputs.build(medium_fib, barrier=8)
        for _ in range(150):
            address = rng.getrandbits(32)
            want = inputs.reference.lookup(address)
            assert inputs.image.lookup(address) == want
            assert inputs.lctrie.lookup(address) == want
            assert inputs.xbw.lookup(address) == want


class TestFig5:
    def test_single_point(self, medium_fib):
        ops = random_update_sequence(medium_fib, 60, seed=2)
        point = measure_update_point(medium_fib, 8, ops, "random")
        assert point.updates_applied == 60
        assert point.size_kb > 0
        assert point.microseconds_per_update > 0

    def test_sweep_and_render(self, medium_fib):
        ops = random_update_sequence(medium_fib, 30, seed=3)
        points = sweep_barriers(medium_fib, {"random": ops}, barriers=[0, 8, 32])
        assert len(points) == 3
        assert "lambda" in render_fig5(points)

    def test_memory_monotone_in_barrier(self, medium_fib):
        ops = random_update_sequence(medium_fib, 10, seed=4)
        points = sweep_barriers(medium_fib, {"random": ops}, barriers=[0, 32])
        assert points[0].size_kb < points[1].size_kb


class TestFig67:
    def test_fig6_point(self, medium_fib):
        point = measure_fig6_point(medium_fib, 0.2, barrier=8)
        assert 0 < point.h0 <= 1.0
        assert point.pdag_kb > 0
        assert point.efficiency > 0

    def test_fig6_render(self, medium_fib):
        points = [measure_fig6_point(medium_fib, p, barrier=8, include_xbw=False)
                  for p in (0.1, 0.5)]
        assert "nu" in render_fig6(points)
        assert points[0].h0 < points[1].h0

    def test_fig7_sweep(self):
        points = sweep_fig7(length=1 << 10, grid=(0.05, 0.5))
        assert len(points) == 2
        assert points[0].h0 < points[1].h0
        assert "lambda" in render_fig7(points)

    def test_fig7_efficiency_regime(self):
        # The paper's nu hovers around 3 at moderate entropy.
        point = measure_fig7_point(1 << 14, 0.5, seed=1)
        assert 1.5 <= point.efficiency <= 6.0


class TestBounds:
    def test_entropy_ordering(self, medium_fib):
        check = check_entropy_ordering(fib_entropy(medium_fib))
        assert check.holds
        assert check.slack >= 1.0

    def test_xbw_bound(self, medium_fib):
        report = fib_entropy(medium_fib)
        check = check_xbw_entropy_bound(XBWb.from_fib(medium_fib), report)
        assert check.holds, str(check)

    def test_theorem1_on_string(self):
        symbols = bernoulli_string(1 << 14, 0.5, seed=2)
        barrier = theorem1_barrier(len(symbols), 2, 14)
        folded = FoldedString(symbols, barrier=barrier)
        check = check_theorem1(folded.report())
        assert check.holds, str(check)

    def test_theorem2_on_string(self):
        for p in (0.05, 0.2, 0.5):
            symbols = bernoulli_string(1 << 14, p, seed=3)
            folded = FoldedString(symbols)  # eq (3) barrier
            check = check_theorem2(folded.report())
            assert check.holds, str(check)

    def test_bound_check_str(self, medium_fib):
        check = check_entropy_ordering(fib_entropy(medium_fib))
        assert "OK" in str(check)
