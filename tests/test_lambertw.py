"""Unit tests for the Lambert W implementation."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

# SciPy is a test-only cross-check (it drags numpy in, which the
# pure-python CI leg deliberately lacks); only the comparison tests
# skip without it — the defining-identity tests run everywhere.
try:
    from scipy.special import lambertw as scipy_lambertw
except ImportError:  # pragma: no cover - exercised on the no-numpy leg
    scipy_lambertw = None

requires_scipy = pytest.mark.skipif(
    scipy_lambertw is None, reason="scipy reference implementation not installed"
)

from repro.utils.lambertw import lambert_w, lambert_w_floor_div_ln2


class TestLambertW:
    def test_zero(self):
        assert lambert_w(0.0) == 0.0

    def test_w_of_e(self):
        assert lambert_w(math.e) == pytest.approx(1.0, abs=1e-12)

    def test_small_value(self):
        # W(0.1) from the defining identity.
        w = lambert_w(0.1)
        assert w * math.exp(w) == pytest.approx(0.1, rel=1e-12)

    def test_large_value(self):
        w = lambert_w(1e12)
        assert w * math.exp(w) == pytest.approx(1e12, rel=1e-9)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            lambert_w(-0.1)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            lambert_w(float("nan"))

    def test_infinity(self):
        assert lambert_w(math.inf) == math.inf

    @given(st.floats(min_value=1e-9, max_value=1e15))
    def test_defining_identity(self, z):
        w = lambert_w(z)
        assert w * math.exp(w) == pytest.approx(z, rel=1e-8)

    @requires_scipy
    @given(st.floats(min_value=1e-6, max_value=1e12))
    def test_matches_scipy(self, z):
        assert lambert_w(z) == pytest.approx(float(scipy_lambertw(z).real), rel=1e-9)

    @given(st.floats(min_value=0.0, max_value=1e12), st.floats(min_value=0.0, max_value=1e12))
    def test_monotone(self, a, b):
        low, high = sorted((a, b))
        assert lambert_w(low) <= lambert_w(high) + 1e-12


class TestBarrierForm:
    def test_nonpositive_is_zero(self):
        assert lambert_w_floor_div_ln2(0.0) == 0
        assert lambert_w_floor_div_ln2(-5.0) == 0

    def test_known_value(self):
        # W(e)/ln 2 = 1/ln 2 ~ 1.4427 -> floor 1
        assert lambert_w_floor_div_ln2(math.e) == 1

    @requires_scipy
    def test_realistic_fib_scale(self):
        # n = 440K, H0 = 1: lambda = floor(W(440000 * ln 2) / ln 2).
        z = 440_000 * math.log(2)
        expected = int(math.floor(float(scipy_lambertw(z).real) / math.log(2)))
        assert lambert_w_floor_div_ln2(z) == expected
        assert 10 <= expected <= 14  # the paper's lambda = 11 regime
