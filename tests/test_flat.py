"""Tests for repro.pipeline.flat: the compiled, pointerless lookup plane.

The centerpiece is compiled-plane parity: every registered
representation, lowered to a :class:`FlatProgram`, must answer exactly
like its own scalar lookup — through the vectorized batch path, the
pure-Python fallback loop, and the sorted shared-prefix walk — on
random FIBs, on exhaustively checked small-width FIBs (hypothesis), and
after churn (patch-log replay, bloat-triggered recompiles, and serve
epoch swaps).
"""

from __future__ import annotations

from array import array

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import random_fib
from repro import pipeline, serve
from repro.core.fib import Fib
from repro.core.trie import BinaryTrie
from repro.datasets import random_update_sequence, uniform_trace
from repro.datasets.updates import UpdateOp
from repro.pipeline.flat import (
    FlatCompileError,
    FlatProgram,
    compile_binary,
    have_numpy,
)

ALL_NAMES = pipeline.names()
UPDATABLE = ["binary-trie", "prefix-dag", "tabular"]


def build_width8_fib(entries) -> Fib:
    fib = Fib(8)
    for value, length, label in entries:
        fib.add(value, length, label)
    return fib


entry_strategy = st.integers(0, 8).flatmap(
    lambda length: st.tuples(
        st.integers(0, max(0, (1 << length) - 1)),
        st.just(length),
        st.integers(1, 4),
    )
)
fib_strategy = st.lists(entry_strategy, min_size=0, max_size=24)


class TestProgramStructure:
    def test_arrays_are_int64_and_pointerless(self, medium_fib):
        program = compile_binary(BinaryTrie.from_fib(medium_fib).root, 32, 8)
        for arr in (program.root_ptr, program.root_val,
                    program.cell_ptr, program.cell_val):
            assert isinstance(arr, array)
            assert arr.typecode == "q"
        assert len(program.root_ptr) == len(program.root_val)
        assert len(program.cell_ptr) == len(program.cell_val)
        assert program.size_in_bits() == (
            (len(program.root_ptr) + len(program.cell_ptr)) * 128
        )

    def test_root_stride_clamped_to_structure_height(self):
        shallow = Fib(32)
        shallow.add(0b01, 2, 1)
        program = compile_binary(BinaryTrie.from_fib(shallow).root, 32, 16)
        assert program.root_stride == 2  # no deeper routes, no bigger table
        assert len(program.root_ptr) == 4
        assert program.lookup(0b01 << 30) == 1
        assert program.lookup(0) is None

    def test_degenerate_fib_compiles_tiny_table(self):
        default_only = Fib(32)
        default_only.add(0, 0, 7)
        program = compile_binary(BinaryTrie.from_fib(default_only).root, 32, 16)
        assert program.root_stride == 1
        assert program.lookup_batch([0, (1 << 32) - 1]) == [7, 7]
        empty = compile_binary(BinaryTrie(32).root, 32, 8)
        assert empty.lookup_batch([0, 123]) == [None, None]

    def test_cell_ceiling_raises_compile_error(self, medium_fib):
        with pytest.raises(FlatCompileError, match="cells"):
            compile_binary(BinaryTrie.from_fib(medium_fib).root, 32, 8, max_cells=8)

    def test_bad_strides_rejected(self):
        with pytest.raises(FlatCompileError):
            FlatProgram(32, 0)
        with pytest.raises(FlatCompileError):
            FlatProgram(32, 21)
        with pytest.raises(FlatCompileError):
            FlatProgram(32, 8, sub_stride=0)

    def test_dag_sharing_interns_blocks(self, rng):
        # The prefix DAG's folded regions must compile to fewer cells
        # than the unfolded trie of the same FIB.
        fib = random_fib(rng, 300, 2, max_length=16)
        trie_cells = len(pipeline.flat_program(
            pipeline.build("binary-trie", fib)).cell_ptr)
        dag_cells = len(pipeline.flat_program(
            pipeline.build("prefix-dag", fib, barrier=4)).cell_ptr)
        assert dag_cells < trie_cells


class TestProgramParity:
    def _probes(self, rng, width=32, count=600):
        probes = [0, (1 << width) - 1, 1 << (width - 1)]
        probes += [rng.getrandbits(width) for _ in range(count)]
        probes += probes[:50]  # duplicates for the shared walk
        return probes

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_every_representation_compiles_to_parity(self, rng, name):
        fib = random_fib(rng, 200, 4, max_length=14)
        representation = pipeline.build(name, fib)
        program = pipeline.flat_program(representation)
        assert program is not None, name
        probes = self._probes(rng)
        want = [representation.lookup(address) for address in probes]
        assert program.lookup_batch(probes) == want
        assert program.lookup_batch_shared(probes) == want
        assert [program.lookup(address) for address in probes] == want

    def test_vector_and_python_paths_agree(self, rng):
        fib = random_fib(rng, 150, 4, max_length=14)
        program = compile_binary(BinaryTrie.from_fib(fib).root, 32, 8)
        probes = self._probes(rng)
        vectorized = program.lookup_batch(probes)
        shared_vec = program.lookup_batch_shared(probes)
        program.vectorize = False
        assert not program.vectorized
        assert program.lookup_batch(probes) == vectorized
        assert program.lookup_batch_shared(probes) == shared_vec

    @given(fib_strategy)
    @settings(max_examples=25, deadline=None)
    def test_exhaustive_small_width(self, entries):
        fib = build_width8_fib(entries)
        trie = BinaryTrie.from_fib(fib)
        reference = [trie.lookup(address) for address in range(256)]
        program = compile_binary(trie.root, 8, 8)
        full = list(range(256))
        assert program.lookup_batch(full) == reference
        assert program.lookup_batch_shared(full) == reference
        program.vectorize = False
        assert program.lookup_batch(full) == reference

    def test_no_default_route_misses(self, rng):
        fib = Fib(32)
        while len(fib) < 120:
            length = rng.randint(6, 16)
            fib.add(rng.getrandbits(length), length, rng.randint(1, 5))
        program = compile_binary(BinaryTrie.from_fib(fib).root, 32, 8)
        probes = self._probes(rng)
        want = [fib.lookup(address) for address in probes]
        assert program.lookup_batch(probes) == want
        assert None in want  # the miss path really ran

    def test_wide_addresses_use_python_path(self, rng):
        # 128-bit addresses cannot ride int64 gathers: the program must
        # detect the width and stay on the big-int Python loop.
        fib = Fib(128)
        for _ in range(60):
            length = rng.randint(0, 24)
            fib.add(rng.getrandbits(length) if length else 0, length, rng.randint(1, 4))
        program = compile_binary(BinaryTrie.from_fib(fib).root, 128, 8)
        assert not program.vectorized
        probes = [rng.getrandbits(128) for _ in range(200)]
        assert program.lookup_batch(probes) == [fib.lookup(a) for a in probes]

    def test_range_checks_on_every_path(self, paper_fib):
        program = compile_binary(BinaryTrie.from_fib(paper_fib).root, 32, 8)
        for bad in (-1, 1 << 32):
            with pytest.raises(ValueError, match="outside"):
                program.lookup_batch([0, bad])
            with pytest.raises(ValueError, match="outside"):
                program.lookup_batch_shared([0, bad])
            with pytest.raises(ValueError, match="outside"):
                program.lookup(bad)
        program.vectorize = False
        for bad in (-1, 1 << 32):
            with pytest.raises(ValueError, match="outside"):
                program.lookup_batch([0, bad])

    def test_trace_agrees_with_lookup(self, rng, medium_fib):
        program = compile_binary(BinaryTrie.from_fib(medium_fib).root, 32, 8)
        for address in [rng.getrandbits(32) for _ in range(200)]:
            label, trace = program.lookup_trace(address)
            assert label == program.lookup(address)
            assert trace[0] < program.cells_base
            assert all(byte >= program.cells_base for byte in trace[1:])


class TestPatching:
    @pytest.mark.parametrize("name", UPDATABLE)
    def test_patch_log_replay_tracks_oracle(self, rng, name):
        fib = random_fib(rng, 150, 4, max_length=14)
        representation = pipeline.build(name, fib)
        mirror = fib.copy()
        probes = [rng.getrandbits(32) for _ in range(300)]
        representation.lookup_batch(probes)  # compile before the churn
        assert representation._flat is not None
        for op in random_update_sequence(mirror, 60, seed=19, withdraw_fraction=0.25):
            try:
                mirror.update(op.prefix, op.length, op.label)
            except KeyError:
                continue
            representation.apply_update(op)
        want = [mirror.lookup(address) for address in probes]
        assert representation.lookup_batch(probes) == want, name
        assert representation.lookup_batch_shared(probes) == want, name

    def test_patch_matches_full_recompile(self, rng):
        fib = random_fib(rng, 150, 4, max_length=14)
        trie = BinaryTrie.from_fib(fib)
        program = compile_binary(trie.root, 32, 8)
        mirror = fib.copy()
        for op in random_update_sequence(mirror, 40, seed=5, withdraw_fraction=0.3):
            try:
                mirror.update(op.prefix, op.length, op.label)
            except KeyError:
                continue
            if op.label is None:
                trie.delete(op.prefix, op.length)
            else:
                trie.insert(op.prefix, op.length, op.label)
            program.patch(op.prefix, op.length, trie.root)
        fresh = compile_binary(trie.root, 32, 8)
        probes = [rng.getrandbits(32) for _ in range(600)]
        assert program.lookup_batch(probes) == fresh.lookup_batch(probes)

    def test_bloat_triggers_recompile(self):
        # Alternate a deep route's label so every patch abandons blocks;
        # once the garbage passes the threshold the adapter must swap in
        # a freshly compiled program.
        fib = Fib(32)
        fib.add(0, 0, 1)
        fib.add(0xABCDEF, 24, 2)
        trie = pipeline.build("binary-trie", fib)
        trie.lookup_batch([0])
        first = trie._flat
        assert first is not None
        saw_recompile = False
        for round_number in range(4000):
            label = 2 + (round_number & 1)
            trie.apply_update(UpdateOp(0xABCDEF, 24, label))
            trie.lookup_batch([0xABCDEF00 + round_number % 256])
            if trie._flat is not first:
                saw_recompile = True
                break
        assert saw_recompile, "patch garbage never triggered a recompile"
        assert trie.lookup_batch([0xABCDEF42]) == [trie.lookup(0xABCDEF42)]

    def test_program_reports_bloat(self, paper_fib):
        program = compile_binary(BinaryTrie.from_fib(paper_fib).root, 32, 8)
        assert not program.bloated
        assert program.appended_cells == 0


class TestAdapterPlane:
    def test_flat_capability_matches_registry(self, paper_fib):
        assert [spec.name for spec in pipeline.flat_capable()] == ALL_NAMES
        for name in ALL_NAMES:
            representation = pipeline.build(name, paper_fib)
            assert pipeline.supports_flat(representation)
            assert pipeline.flat_program(representation) is not None

    def test_compiled_option_disables_the_plane(self, rng):
        fib = random_fib(rng, 100, 3, max_length=12)
        for name in ("prefix-dag", "tabular"):
            representation = pipeline.build(name, fib, compiled=False)
            probes = [rng.getrandbits(32) for _ in range(200)]
            assert pipeline.flat_program(representation) is None
            assert representation.lookup_batch(probes) == [
                representation.lookup(address) for address in probes
            ]
            assert representation._flat is None  # dispatch plane served

    def test_compile_refusal_falls_back_to_dispatch(self, rng, monkeypatch):
        from repro.pipeline import adapters as adapters_module

        def refuse(*args, **kwargs):
            raise FlatCompileError("forced refusal (test)")

        monkeypatch.setattr(adapters_module, "compile_binary", refuse)
        fib = random_fib(rng, 100, 3, max_length=12)
        representation = pipeline.build("binary-trie", fib)
        probes = [rng.getrandbits(32) for _ in range(200)]
        assert representation.lookup_batch(probes) == [
            representation.lookup(address) for address in probes
        ]
        assert representation._flat is None
        assert representation._flat_failed
        assert representation._dispatch is not None

    def test_shared_walk_handles_duplicates(self, rng):
        fib = random_fib(rng, 120, 4, max_length=12)
        representation = pipeline.build("prefix-dag", fib)
        hot = [rng.getrandbits(32) for _ in range(20)]
        probes = [hot[rng.randrange(len(hot))] for _ in range(500)]
        assert representation.lookup_batch_shared(probes) == \
            representation.lookup_batch(probes)

    def test_simulator_picks_up_compiled_plane(self, rng, medium_fib):
        # Tabular has no native lookup_trace: engine_for must fall back
        # to the compiled plane instead of raising.
        from repro.simulator.engine import engine_for, flat_engine

        representation = pipeline.build("tabular", medium_fib)
        engine = engine_for(representation)
        assert engine.name == "tabular+flat"
        probes = [rng.getrandbits(32) for _ in range(200)]
        engine.verify_against(representation.lookup, probes)
        report = engine.run(probes)
        assert report.lookups == len(probes)
        assert report.steps >= len(probes)
        # Explicit constructor works for natively traceable reps too.
        assert flat_engine(pipeline.build("lc-trie", medium_fib)) is not None
        # ...and the refusal path still raises for uncompiled planes.
        with pytest.raises(ValueError, match="cost model"):
            engine_for(pipeline.build("tabular", medium_fib, compiled=False))


class TestServeCompiledGenerations:
    def test_epoch_swap_recompiles_and_keeps_parity(self, rng):
        fib = random_fib(rng, 150, 4, max_length=14)
        events = serve.build_events(
            serve.scenario("bgp-churn"), fib, lookups=2000, updates=150, seed=9
        )
        probes = uniform_trace(1000, seed=11, width=fib.width)
        for name in ("lc-trie", "serialized-dag"):  # epoch-rebuild planes
            server = serve.FibServer(name, fib, rebuild_every=32)
            assert pipeline.flat_program(server.representation) is not None
            server.replay(events)
            assert server.rebuilds > 0
            # Every generation swap recompiled off the update plane.
            assert server.representation._flat is not None
            server.quiesce()
            assert server.parity_fraction(probes) == 1.0

    def test_incremental_plane_stays_compiled_under_churn(self, rng):
        fib = random_fib(rng, 150, 4, max_length=14)
        events = serve.build_events(
            serve.scenario("flap-storm"), fib, lookups=2000, updates=200, seed=13
        )
        server = serve.FibServer("prefix-dag", fib)
        server.replay(events)
        assert server.incremental
        assert server.representation._flat is not None  # never fell off the plane
        probes = uniform_trace(1000, seed=17, width=fib.width)
        assert server.parity_fraction(probes) == 1.0


class TestWrappedAdapters:
    def test_lctrie_wrapping_serves_both_planes(self, rng):
        from repro.baselines.lctrie import LCTrie
        from repro.pipeline.adapters import LCTrieAdapter

        fib = random_fib(rng, 120, 3, max_length=12)
        variant = LCTrie(fib, fill_factor=0.25)
        adapter = LCTrieAdapter.wrapping(fib, variant)
        probes = [rng.getrandbits(32) for _ in range(300)]
        want = [adapter.lookup(address) for address in probes]
        assert adapter.lookup_batch(probes) == want
        assert adapter.lookup_batch_dispatch(probes) == want
        assert pipeline.flat_program(adapter) is not None
        uncompiled = LCTrieAdapter.wrapping(fib, variant, compiled=False)
        assert pipeline.flat_program(uncompiled) is None
        assert uncompiled.lookup_batch(probes) == want


class TestBenchFloorGate:
    def test_floor_passes_on_compiled_plane(self, capsys):
        from repro.cli import main

        assert main([
            "bench", "--scale", "0.002", "--packets", "400", "--repeat", "1",
            "--representations", "prefix-dag", "--floor", "1.0",
        ]) == 0
        assert "bench floor OK" in capsys.readouterr().err

    def test_floor_rejects_no_compiled(self, capsys):
        from repro.cli import main

        assert main([
            "bench", "--scale", "0.002", "--packets", "400", "--repeat", "1",
            "--no-compiled", "--floor", "1.5",
        ]) == 2

    def test_floor_fails_when_plane_missing(self, capsys, monkeypatch):
        # A compile regression must break the gate, not vacuously pass.
        from repro.cli import main
        from repro.pipeline import adapters as adapters_module

        def refuse(*args, **kwargs):
            raise FlatCompileError("forced refusal (test)")

        monkeypatch.setattr(adapters_module, "compile_binary", refuse)
        assert main([
            "bench", "--scale", "0.002", "--packets", "400", "--repeat", "1",
            "--representations", "prefix-dag", "--floor", "1.0",
        ]) == 1
        assert "BENCH FLOOR BROKEN" in capsys.readouterr().err


class TestTraceHardening:
    def test_lookup_trace_range_checked(self, paper_fib):
        program = compile_binary(BinaryTrie.from_fib(paper_fib).root, 32, 8)
        for bad in (-1, 1 << 32):
            with pytest.raises(ValueError, match="outside"):
                program.lookup_trace(bad)

    def test_flat_engine_follows_recompiles(self, rng):
        # The engine must trace the live generation: after enough churn
        # the adapter swaps in a fresh program, and the simulated labels
        # must match the updated representation, not the stale compile.
        from repro.simulator.engine import engine_for

        fib = Fib(32)
        fib.add(0, 0, 1)
        fib.add(0xABCDEF, 24, 2)
        representation = pipeline.build("tabular", fib)
        engine = engine_for(representation)
        first = representation._flat
        for round_number in range(4000):
            label = 2 + (round_number & 1)
            representation.apply_update(UpdateOp(0xABCDEF, 24, label))
            representation.lookup_batch([0xABCDEF00])
            if representation._flat is not first:
                break
        assert representation._flat is not first
        probes = [0xABCDEF00 + i for i in range(64)] + [rng.getrandbits(32) for _ in range(64)]
        engine.verify_against(representation.lookup, probes)
