"""Unit and property tests for trie-folding / prefix DAGs (§4): build."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fib import Fib
from repro.core.prefixdag import PrefixDag
from repro.core.trie import BinaryTrie

from tests.conftest import assert_forwarding_equivalent, random_fib


class TestConstruction:
    def test_from_fib_and_trie_agree(self, paper_fib, rng):
        via_fib = PrefixDag(paper_fib, barrier=2)
        via_trie = PrefixDag(BinaryTrie.from_fib(paper_fib), barrier=2)
        assert via_fib.folded_interior_count() == via_trie.folded_interior_count()
        assert_forwarding_equivalent(via_fib.lookup, via_trie.lookup, rng)

    def test_control_trie_is_a_copy(self, paper_fib):
        trie = BinaryTrie.from_fib(paper_fib)
        dag = PrefixDag(trie, barrier=2)
        trie.insert(0b111, 3, 9)
        assert dag.control_trie.get(0b111, 3) is None

    def test_rejects_bad_barrier(self, paper_fib):
        with pytest.raises(ValueError):
            PrefixDag(paper_fib, barrier=-1)
        with pytest.raises(ValueError):
            PrefixDag(paper_fib, barrier=33)

    def test_rejects_bad_source(self):
        with pytest.raises(TypeError):
            PrefixDag([("not", "a", "fib")])

    def test_auto_barrier_uses_equation3(self, medium_fib):
        from repro.core.barrier import entropy_barrier

        dag = PrefixDag(medium_fib)
        report = dag.entropy_report()
        assert dag.barrier == entropy_barrier(report.leaves, report.h0, 32)

    def test_barrier_zero_folds_root(self, paper_fib):
        dag = PrefixDag(paper_fib, barrier=0)
        assert dag.above_node_count() == 0
        dag.check_integrity()

    def test_barrier_w_is_plain_trie(self, paper_fib):
        dag = PrefixDag(paper_fib, barrier=32)
        # Nothing to fold below depth 32 in this FIB.
        assert dag.folded_interior_count() == 0


class TestFig3Example:
    """The Fig 3 worked example: folding halves the example trie."""

    def test_lambda0_fold(self, fig3_fib, rng):
        trie = BinaryTrie.from_fib(fig3_fib)
        dag = PrefixDag(fig3_fib, barrier=0)
        # Fig 3(c): the fully folded DAG shares the two identical
        # sub-tries; it must be strictly smaller than the unfolded tree.
        assert dag.node_count() < dag.unfolded_node_count()
        assert_forwarding_equivalent(trie.lookup, dag.lookup, rng)
        dag.check_integrity()

    def test_fig3_sharing(self, fig3_fib):
        # In the leaf-pushed form of the Fig 3 trie the sub-tries under
        # 0/1 and 11/2 are identical: (leaf 2, leaf 3) — one interned
        # node serves both (plus under 10/2 after pushing).
        dag = PrefixDag(fig3_fib, barrier=0)
        shared = [
            node
            for node in dag.iter_unique_nodes()
            if not node.is_leaf and node.refcount >= 2
        ]
        assert shared, "expected at least one shared interior node"

    @pytest.mark.parametrize("barrier", [0, 1, 2, 3])
    def test_all_barriers_equivalent(self, fig3_fib, barrier, rng):
        trie = BinaryTrie.from_fib(fig3_fib)
        dag = PrefixDag(fig3_fib, barrier=barrier)
        assert_forwarding_equivalent(trie.lookup, dag.lookup, rng, samples=300)
        dag.check_integrity()

    def test_larger_barrier_larger_size(self, fig3_fib):
        # Fig 3(c) vs 3(e) vs 3(f): raising lambda grows the structure.
        sizes = [PrefixDag(fig3_fib, barrier=b).node_count() for b in (0, 1, 2)]
        assert sizes[0] <= sizes[1] <= sizes[2]


class TestLookupSemantics:
    def test_paper_example(self, paper_fib):
        dag = PrefixDag(paper_fib, barrier=2)
        assert dag.lookup(0b0111 << 28) == 1
        assert dag.lookup(0b0010 << 28) == 2
        assert dag.lookup(0b0000 << 28) == 3
        assert dag.lookup(0b1100 << 28) == 2

    def test_no_route_returns_none(self):
        fib = Fib()
        fib.add(0b1, 1, 4)
        dag = PrefixDag(fib, barrier=0)
        assert dag.lookup(0x80000000) == 4
        assert dag.lookup(0x7FFFFFFF) is None

    def test_invalid_label_leaf_defers_to_above_barrier(self):
        # A label above the barrier must shine through blackhole leaves
        # below it (the l(lp(bottom)) erasure of §4.1).
        fib = Fib()
        fib.add(0b0, 1, 7)          # label above barrier 3
        fib.add(0b00001, 5, 2)      # more specific below barrier
        dag = PrefixDag(fib, barrier=3)
        assert dag.lookup(0b00001 << 27) == 2
        assert dag.lookup(0b00000 << 27) == 7  # through the bottom leaf
        assert dag.lookup(0b01111 << 27) == 7

    def test_lookup_with_depth(self, paper_fib):
        dag = PrefixDag(paper_fib, barrier=2)
        label, depth = dag.lookup_with_depth(0b0111 << 28)
        assert label == 1
        assert depth >= 2

    @given(st.integers(0, 2**31), st.integers(0, 12))
    @settings(max_examples=40, deadline=None)
    def test_equivalence_random(self, seed, barrier):
        rng = random.Random(seed)
        fib = random_fib(rng, 50, 4, max_length=12)
        trie = BinaryTrie.from_fib(fib)
        dag = PrefixDag(fib, barrier=barrier)
        for _ in range(80):
            address = rng.getrandbits(32)
            assert dag.lookup(address) == trie.lookup(address)


class TestStructure:
    def test_folding_is_canonical(self, rng):
        # Two different insertion orders give identical folded structure.
        fib = random_fib(rng, 100, 3, max_length=10)
        entries = [(r.prefix, r.length, r.label) for r in fib]
        shuffled = list(entries)
        rng.shuffle(shuffled)
        a = PrefixDag(Fib.from_entries(entries), barrier=4)
        b = PrefixDag(Fib.from_entries(shuffled), barrier=4)
        assert a.folded_interior_count() == b.folded_interior_count()
        assert a.folded_leaf_count() == b.folded_leaf_count()

    def test_folding_shares_repeated_structure(self, rng):
        # A FIB with two identical /8 sub-universes folds them together.
        fib = Fib()
        rng2 = random.Random(77)
        subroutes = [(rng2.getrandbits(8), 8) for _ in range(40)]
        for top in (0b00000001, 0b00000010):
            for index, (suffix, length) in enumerate(subroutes):
                fib.add((top << length) | suffix, 8 + length, 1 + index % 3)
        dag = PrefixDag(fib, barrier=8)
        unfolded = dag.unfolded_node_count()
        assert dag.node_count() < 0.7 * unfolded

    def test_depth_profile_matches_sampling(self, medium_fib, rng):
        dag = PrefixDag(medium_fib, barrier=6)
        expected, maximum = dag.depth_profile()
        sampled = [dag.lookup_with_depth(rng.getrandbits(32))[1] for _ in range(4000)]
        assert max(sampled) <= maximum
        assert abs(sum(sampled) / len(sampled) - expected) < 0.5

    def test_stats_totals(self, medium_fib):
        dag = PrefixDag(medium_fib, barrier=6)
        stats = dag.stats()
        assert stats.total_nodes == dag.node_count()
        assert stats.barrier == 6
        assert stats.control_nodes == dag.control_trie.node_count()

    def test_size_model_positive(self, medium_fib):
        dag = PrefixDag(medium_fib, barrier=6)
        assert dag.size_in_bits() > 0
        assert dag.size_in_kbytes() == pytest.approx(dag.size_in_bits() / 8192)

    def test_integrity_after_build(self, medium_fib):
        for barrier in (0, 3, 6, 11, 32):
            PrefixDag(medium_fib, barrier=barrier).check_integrity()

    def test_repr(self, paper_fib):
        assert "PrefixDag" in repr(PrefixDag(paper_fib, barrier=2))
