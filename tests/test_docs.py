"""Documentation gates: links resolve, the docs cover the code.

The docs tree is part of the contract: every relative link in
README/ROADMAP/docs must point at a real file, the paper map must cover
every package and module under ``src/repro``, the benchmark reference
must document every ``BENCH_*.json`` trajectory, and the doctest
examples embedded in the docs must actually run (CI runs these same
checks in its docs job).
"""

from __future__ import annotations

import doctest
import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
DOC_FILES = sorted(
    [REPO / "README.md", REPO / "ROADMAP.md"] + list((REPO / "docs").glob("*.md"))
)

# [text](target) — target split from an optional #anchor or "title".
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")


def _links(path: Path):
    for target in _LINK.findall(path.read_text()):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        yield target.split("#", 1)[0]


def test_docs_tree_exists():
    for name in ("architecture.md", "paper-map.md", "benchmarks.md"):
        assert (REPO / "docs" / name).is_file(), f"docs/{name} missing"


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.relative_to(REPO).as_posix())
def test_relative_links_resolve(path):
    for target in _links(path):
        if not target:
            continue  # pure-anchor link into the same file
        resolved = (path.parent / target).resolve()
        assert resolved.exists(), (
            f"{path.relative_to(REPO)} links to {target!r}, which does not exist"
        )


def test_paper_map_covers_every_package_and_module():
    text = (REPO / "docs" / "paper-map.md").read_text()
    src = REPO / "src" / "repro"
    for package in sorted(p for p in src.iterdir() if (p / "__init__.py").is_file()):
        assert f"repro.{package.name}" in text, (
            f"docs/paper-map.md misses the package repro.{package.name}"
        )
        for module in sorted(package.glob("*.py")):
            if module.name == "__init__.py":
                continue
            assert f"{package.name}/{module.name}" in text, (
                f"docs/paper-map.md misses {package.name}/{module.name}"
            )
    assert "cli.py" in text  # the one top-level module


def test_architecture_covers_every_package():
    text = (REPO / "docs" / "architecture.md").read_text()
    src = REPO / "src" / "repro"
    for package in sorted(p for p in src.iterdir() if (p / "__init__.py").is_file()):
        assert package.name in text, (
            f"docs/architecture.md misses the {package.name} layer"
        )


def test_benchmarks_doc_covers_every_trajectory():
    text = (REPO / "docs" / "benchmarks.md").read_text()
    for trajectory in (
        "BENCH_pipeline.json",
        "BENCH_serve.json",
        "BENCH_cluster.json",
        "BENCH_workers.json",
        "BENCH_faults.json",
        "BENCH_autoscale.json",
    ):
        assert trajectory in text, f"docs/benchmarks.md misses {trajectory}"
        assert (REPO / trajectory).is_file(), f"{trajectory} baseline not committed"
    for floor in ("1.5x", "2.5x", "2.0x", "30%", "90%"):
        assert floor in text, f"docs/benchmarks.md misses the {floor} floor"
    for field in ("wall_lookup_seconds", "model_agreement", "spawn_seconds", "gated"):
        assert field in text, f"docs/benchmarks.md misses WorkerReport field {field}"


@pytest.mark.parametrize(
    "name", ["architecture.md", "benchmarks.md"], ids=lambda n: n
)
def test_docs_code_blocks_run(name):
    results = doctest.testfile(
        str(REPO / "docs" / name), module_relative=False, verbose=False
    )
    assert results.failed == 0, f"{results.failed} doctest failure(s) in docs/{name}"
    assert results.attempted > 0, f"no doctest examples found in docs/{name}"
