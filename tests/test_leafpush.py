"""Unit and property tests for leaf-pushing normalization."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fib import INVALID_LABEL
from repro.core.leafpush import (
    count_leaves,
    is_normalized,
    is_proper_leaf_labeled,
    leaf_labels,
    leaf_pushed_trie,
)
from repro.core.trie import BinaryTrie

from tests.conftest import assert_forwarding_equivalent, random_fib


class TestPaperExample:
    def test_fig1e_shape(self, paper_trie):
        # Fig 1(e): the leaf-pushed trie has leaves labeled 3,2,2,1 at
        # depth 3 and one leaf labeled 2 at depth 1 — 5 leaves, 9 nodes.
        pushed = leaf_pushed_trie(paper_trie)
        assert count_leaves(pushed) == 5
        assert pushed.node_count() == 9
        labels = sorted(leaf_labels(pushed))
        assert labels == [1, 2, 2, 2, 3]

    def test_fig1e_forwarding(self, paper_trie, rng):
        pushed = leaf_pushed_trie(paper_trie)
        assert_forwarding_equivalent(paper_trie.lookup, pushed.lookup, rng)


class TestInvariants:
    def test_proper_p1_p2(self, paper_trie):
        pushed = leaf_pushed_trie(paper_trie)
        assert is_proper_leaf_labeled(pushed)
        assert is_normalized(pushed)

    def test_p3_node_bound(self, paper_trie):
        pushed = leaf_pushed_trie(paper_trie)
        n = count_leaves(pushed)
        assert pushed.node_count() < 2 * n

    def test_original_not_proper(self, paper_trie):
        assert not is_proper_leaf_labeled(paper_trie)

    def test_empty_trie_becomes_bottom_leaf(self):
        pushed = leaf_pushed_trie(BinaryTrie())
        assert pushed.root.is_leaf
        assert pushed.root.label == INVALID_LABEL

    def test_default_only_fib(self):
        trie = BinaryTrie()
        trie.insert(0, 0, 7)
        pushed = leaf_pushed_trie(trie)
        assert pushed.root.is_leaf
        assert pushed.root.label == 7

    def test_sibling_collapse(self):
        # 0/1 -> 5 and 1/1 -> 5 collapse into a single root leaf.
        trie = BinaryTrie()
        trie.insert(0b0, 1, 5)
        trie.insert(0b1, 1, 5)
        pushed = leaf_pushed_trie(trie)
        assert pushed.root.is_leaf
        assert pushed.root.label == 5

    def test_collapse_cascades(self):
        # Four /2 entries with the same label collapse all the way up.
        trie = BinaryTrie()
        for value in range(4):
            trie.insert(value, 2, 9)
        pushed = leaf_pushed_trie(trie)
        assert pushed.root.is_leaf

    def test_custom_default_label(self):
        trie = BinaryTrie()
        trie.insert(0b1, 1, 3)
        pushed = leaf_pushed_trie(trie, default=8)
        # The uncovered left half inherits the supplied default.
        assert pushed.root.left.label == 8

    def test_uniqueness_for_equivalent_fibs(self):
        # Two syntactically different FIBs with identical forwarding
        # normalize to the same trie (what makes FIB entropy well-defined).
        a = BinaryTrie()
        a.insert(0, 0, 1)
        b = BinaryTrie()
        b.insert(0b0, 1, 1)
        b.insert(0b1, 1, 1)

        def shape(node):
            if node.is_leaf:
                return ("leaf", node.label)
            return ("node", shape(node.left), shape(node.right))

        assert shape(leaf_pushed_trie(a).root) == shape(leaf_pushed_trie(b).root)


class TestPropertyBased:
    @given(st.integers(0, 2**31))
    @settings(max_examples=30, deadline=None)
    def test_forwarding_preserved(self, seed):
        rng = random.Random(seed)
        fib = random_fib(rng, 50, 4, max_length=10)
        trie = BinaryTrie.from_fib(fib)
        pushed = leaf_pushed_trie(trie)

        def pushed_lookup(address):
            label = pushed.lookup(address)
            return None if label == INVALID_LABEL else label

        for _ in range(80):
            address = rng.getrandbits(32)
            assert pushed_lookup(address) == trie.lookup(address)

    @given(st.integers(0, 2**31))
    @settings(max_examples=30, deadline=None)
    def test_always_proper_and_normalized(self, seed):
        rng = random.Random(seed)
        fib = random_fib(rng, 40, 5, max_length=9)
        pushed = leaf_pushed_trie(BinaryTrie.from_fib(fib))
        assert is_proper_leaf_labeled(pushed)
        assert is_normalized(pushed)

    @given(st.integers(0, 2**31))
    @settings(max_examples=30, deadline=None)
    def test_idempotent(self, seed):
        rng = random.Random(seed)
        fib = random_fib(rng, 30, 3, max_length=8)
        once = leaf_pushed_trie(BinaryTrie.from_fib(fib))
        twice = leaf_pushed_trie(once)
        assert once.node_count() == twice.node_count()
        assert sorted(leaf_labels(once)) == sorted(leaf_labels(twice))
