"""Failure-injection tests for the serialized image validator.

A forwarding-plane blob that survives a corrupted download is a routing
incident; :meth:`SerializedDag.validate` must catch every class of
structural damage. Each test corrupts one field and expects a
ValueError.
"""

import pytest

from repro.core.prefixdag import PrefixDag
from repro.core.serialize import NULL_REF, SerializedDag


@pytest.fixture
def image(medium_fib):
    return SerializedDag(PrefixDag(medium_fib, barrier=8))


class TestValidImages:
    def test_fresh_image_validates(self, image):
        image.validate()

    def test_empty_fib_image_validates(self):
        from repro.core.fib import Fib

        SerializedDag(PrefixDag(Fib(), barrier=4)).validate()

    def test_image_after_updates_validates(self, medium_fib, rng):
        dag = PrefixDag(medium_fib, barrier=8)
        for _ in range(50):
            length = rng.randint(0, 16)
            dag.update(rng.getrandbits(length) if length else 0, length, rng.randint(1, 5))
        SerializedDag(dag).validate()


class TestCorruption:
    def test_truncated_table(self, image):
        image.table_ref.pop()
        with pytest.raises(ValueError, match="stride table"):
            image.validate()

    def test_mismatched_child_arrays(self, image):
        image.left.append(0)
        with pytest.raises(ValueError, match="child arrays"):
            image.validate()

    def test_out_of_range_table_ref(self, image):
        image.table_ref[0] = (image.interior_count + 5) << 1
        with pytest.raises(ValueError, match="out of range"):
            image.validate()

    def test_out_of_range_leaf_ref(self, image):
        image.table_ref[0] = ((image.leaf_count + 3) << 1) | 1
        with pytest.raises(ValueError, match="leaf reference"):
            image.validate()

    def test_negative_ref(self, image):
        for index in range(image.interior_count):
            if image.left[index] != NULL_REF:
                image.left[index] = -7
                break
        with pytest.raises(ValueError, match="negative reference"):
            image.validate()

    def test_null_child(self, image):
        assert image.interior_count > 0
        image.right[0] = NULL_REF
        with pytest.raises(ValueError, match="null child"):
            image.validate()

    def test_out_of_range_child(self, image):
        image.left[0] = (image.interior_count + 9) << 1
        with pytest.raises(ValueError, match="out of range"):
            image.validate()

    def test_negative_label(self, image):
        image.leaf_label[0] = -1
        with pytest.raises(ValueError, match="negative"):
            image.validate()

    def test_negative_table_label(self, image):
        image.table_label[0] = -2
        with pytest.raises(ValueError, match="negative"):
            image.validate()

    def test_self_cycle(self, image):
        assert image.interior_count > 0
        image.left[0] = 0 << 1  # node 0 points to itself
        with pytest.raises(ValueError, match="cycle"):
            image.validate()

    def test_two_node_cycle(self, image):
        if image.interior_count < 2:
            pytest.skip("image too small for a 2-cycle")
        image.left[0] = 1 << 1
        image.left[1] = 0 << 1
        with pytest.raises(ValueError, match="cycle"):
            image.validate()
