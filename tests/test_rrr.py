"""Unit and property tests for the RRR compressed bitvector."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.succinct.bitvector import BitVector
from repro.succinct.rrr import RRRBitVector


class TestConstruction:
    def test_rejects_bad_block_size(self):
        with pytest.raises(ValueError):
            RRRBitVector([1], block_bits=0)
        with pytest.raises(ValueError):
            RRRBitVector([1], block_bits=63)

    def test_rejects_bad_superblock(self):
        with pytest.raises(ValueError):
            RRRBitVector([1], superblock_blocks=0)

    def test_empty(self):
        rrr = RRRBitVector([])
        assert len(rrr) == 0
        assert rrr.rank1(0) == 0

    def test_roundtrip_simple(self):
        bits = [1, 0, 1, 1, 0, 0, 0, 1]
        assert RRRBitVector(bits).to_bits() == bits

    def test_partial_final_block(self):
        bits = [1] * 20  # not a multiple of the 15-bit block
        rrr = RRRBitVector(bits)
        assert rrr.to_bits() == bits
        assert rrr.ones == 20


class TestQueries:
    def test_access(self):
        bits = [i % 5 == 0 for i in range(100)]
        rrr = RRRBitVector(bits)
        for index in range(100):
            assert rrr.access(index) == bits[index]

    def test_access_bounds(self):
        rrr = RRRBitVector([1, 0])
        with pytest.raises(IndexError):
            rrr.access(2)

    def test_rank_matches_plain(self):
        rng = random.Random(3)
        bits = [rng.randint(0, 1) for _ in range(700)]
        rrr = RRRBitVector(bits)
        plain = BitVector(bits)
        for position in range(0, 701, 13):
            assert rrr.rank1(position) == plain.rank1(position)
            assert rrr.rank0(position) == plain.rank0(position)

    def test_select_matches_plain(self):
        rng = random.Random(4)
        bits = [rng.randint(0, 1) for _ in range(400)]
        rrr = RRRBitVector(bits)
        plain = BitVector(bits)
        for occurrence in range(1, rrr.ones + 1, 7):
            assert rrr.select1(occurrence) == plain.select1(occurrence)
        for occurrence in range(1, rrr.zeros + 1, 7):
            assert rrr.select0(occurrence) == plain.select0(occurrence)

    def test_select_bounds(self):
        rrr = RRRBitVector([1, 0, 1])
        with pytest.raises(IndexError):
            rrr.select1(3)
        with pytest.raises(IndexError):
            rrr.select0(2)

    def test_inclusive_rank_convention(self):
        rrr = RRRBitVector([0, 0, 1, 0, 0, 1, 1, 1, 1])
        assert rrr.rank0_inclusive(4) == 3
        assert rrr.rank1_inclusive(3) == 1

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=400))
    @settings(max_examples=60)
    def test_rank_property(self, bits):
        rrr = RRRBitVector(bits)
        step = max(1, len(bits) // 11)
        expected = 0
        checkpoints = {i: sum(bits[:i]) for i in range(0, len(bits) + 1, step)}
        for position, want in checkpoints.items():
            assert rrr.rank1(position) == want

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=200))
    @settings(max_examples=40)
    def test_roundtrip_property(self, bits):
        assert RRRBitVector(bits).to_bits() == bits


class TestCompression:
    def test_sparse_bits_compress(self):
        # 1% density: entropy ~0.08 bits/bit; RRR must beat plain storage.
        rng = random.Random(9)
        bits = [1 if rng.random() < 0.01 else 0 for _ in range(30_000)]
        rrr = RRRBitVector(bits)
        assert rrr.size_in_bits() < 0.5 * len(bits)

    def test_dense_random_bits_near_raw(self):
        # Max-entropy input cannot compress; overhead must stay modest.
        rng = random.Random(10)
        bits = [rng.randint(0, 1) for _ in range(30_000)]
        rrr = RRRBitVector(bits)
        assert rrr.size_in_bits() < 1.35 * len(bits)

    def test_size_tracks_entropy(self):
        rng = random.Random(11)
        n = 20_000

        def build(p):
            bits = [1 if rng.random() < p else 0 for _ in range(n)]
            return RRRBitVector(bits).size_in_bits()

        assert build(0.02) < build(0.1) < build(0.5)

    def test_entropy_bound_with_slack(self):
        # Size <= n*h(p) + o(n): check with generous constant slack.
        rng = random.Random(12)
        n, p = 40_000, 0.05
        bits = [1 if rng.random() < p else 0 for _ in range(n)]
        h = -(p * math.log2(p) + (1 - p) * math.log2(1 - p))
        rrr = RRRBitVector(bits)
        assert rrr.size_in_bits() <= n * h + 0.35 * n

    def test_trace_methods_return_addresses(self):
        bits = [i % 7 == 0 for i in range(1000)]
        rrr = RRRBitVector(bits)
        addresses = rrr.trace_access(500)
        assert addresses and all(a >= 0 for a in addresses)
        assert rrr.trace_rank(0) == []
        assert rrr.trace_rank(999)
