"""Unit tests for the Table 1 stand-in profiles."""

import pytest

from repro.core.entropy import fib_entropy, shannon_entropy
from repro.datasets.profiles import (
    TABLE1_PROFILES,
    build_profile_fib,
    configured_scale,
    profile,
)


class TestProfileTable:
    def test_eleven_rows(self):
        assert len(TABLE1_PROFILES) == 11

    def test_groups(self):
        groups = {p.group for p in TABLE1_PROFILES.values()}
        assert groups == {"access", "core", "synthetic"}

    def test_lookup_by_name(self):
        assert profile("taz").entries == 410_513
        with pytest.raises(KeyError):
            profile("nonexistent")

    def test_paper_columns_recorded(self):
        taz = profile("taz")
        assert taz.paper_pdag_kb == 178
        assert taz.paper_xbw_kb == 63


class TestGeneration:
    def test_scaled_size(self):
        fib = build_profile_fib(profile("access_v"), scale=1.0)
        assert len(fib) == 2986

    def test_scale_floor(self):
        fib = build_profile_fib(profile("access_v"), scale=0.001)
        assert len(fib) >= 64

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            build_profile_fib(profile("taz"), scale=0.0)
        with pytest.raises(ValueError):
            build_profile_fib(profile("taz"), scale=1.5)

    def test_deterministic(self):
        a = build_profile_fib(profile("mobile"), scale=0.5)
        b = build_profile_fib(profile("mobile"), scale=0.5)
        assert a == b

    def test_profiles_differ(self):
        a = build_profile_fib(profile("as1221"), scale=0.01)
        b = build_profile_fib(profile("as4637"), scale=0.02)
        assert a != b

    def test_delta_matches_target(self):
        prof = profile("as1221")
        fib = build_profile_fib(prof, scale=0.02)
        assert fib.delta <= prof.next_hops

    def test_entry_entropy_near_target(self):
        prof = profile("as6447")  # highest-entropy profile
        fib = build_profile_fib(prof, scale=0.02)
        measured = shannon_entropy(fib.label_histogram())
        assert measured == pytest.approx(prof.h0, abs=0.35)

    def test_default_route_flag(self):
        with_default = build_profile_fib(profile("access_d"), scale=0.005)
        without = build_profile_fib(profile("taz"), scale=0.005)
        assert with_default.get(0, 0) is not None
        assert without.get(0, 0) is None

    def test_split_generator_for_synthetic(self):
        fib = build_profile_fib(profile("fib_600k"), scale=0.002)
        # Split FIBs cover the whole space: every address matches.
        report = fib_entropy(fib)
        assert 0 not in report.label_histogram  # no bottom leaves


class TestScaleConfig:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert configured_scale(0.25) == 0.25

    def test_env_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert configured_scale() == 0.5

    def test_env_full(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        assert configured_scale() == 1.0

    def test_env_scale_validation(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        monkeypatch.setenv("REPRO_SCALE", "7")
        with pytest.raises(ValueError):
            configured_scale()
