"""Unit tests for the binary prefix tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fib import Fib
from repro.core.trie import BinaryTrie

from tests.conftest import random_fib


class TestEditing:
    def test_insert_and_get(self):
        trie = BinaryTrie()
        trie.insert(0b101, 3, 7)
        assert trie.get(0b101, 3) == 7
        assert trie.get(0b10, 2) is None

    def test_insert_root(self):
        trie = BinaryTrie()
        trie.insert(0, 0, 4)
        assert trie.get(0, 0) == 4
        assert trie.root.label == 4

    def test_overwrite(self):
        trie = BinaryTrie()
        trie.insert(0b1, 1, 1)
        trie.insert(0b1, 1, 2)
        assert trie.get(0b1, 1) == 2

    def test_delete_prunes_chain(self):
        trie = BinaryTrie()
        trie.insert(0b10110, 5, 9)
        assert trie.node_count() == 6
        assert trie.delete(0b10110, 5) == 9
        assert trie.node_count() == 1  # only the root remains

    def test_delete_keeps_needed_nodes(self):
        trie = BinaryTrie()
        trie.insert(0b10, 2, 1)
        trie.insert(0b101, 3, 2)
        trie.delete(0b101, 3)
        assert trie.get(0b10, 2) == 1
        assert trie.node_count() == 3

    def test_delete_interior_label_keeps_structure(self):
        trie = BinaryTrie()
        trie.insert(0b1, 1, 1)
        trie.insert(0b11, 2, 2)
        trie.delete(0b1, 1)
        assert trie.get(0b11, 2) == 2
        assert trie.lookup(0x80000000) is None  # 10... no longer matches

    def test_delete_missing_raises(self):
        trie = BinaryTrie()
        trie.insert(0b1, 1, 1)
        with pytest.raises(KeyError):
            trie.delete(0b11, 2)
        with pytest.raises(KeyError):
            trie.delete(0b0, 1)

    def test_rejects_bad_prefix(self):
        trie = BinaryTrie()
        with pytest.raises(ValueError):
            trie.insert(0b11, 1, 1)


class TestLookup:
    def test_paper_example(self, paper_trie):
        # The lookup table of §2: address 0111... matches 011/3 -> 1.
        assert paper_trie.lookup(0b0111 << 28) == 1
        assert paper_trie.lookup(0b0010 << 28) == 2
        assert paper_trie.lookup(0b0000 << 28) == 3
        assert paper_trie.lookup(0b1111 << 28) == 2

    def test_lookup_with_depth(self, paper_trie):
        label, depth = paper_trie.lookup_with_depth(0b0111 << 28)
        assert label == 1
        assert depth == 3  # terminates at the 011/3 node

    def test_empty_trie(self):
        assert BinaryTrie().lookup(0) is None

    @given(st.integers(0, 2**32 - 1))
    def test_matches_tabular_lookup(self, address):
        fib = Fib.from_entries(
            [(0, 0, 1), (0b1, 1, 2), (0b10, 2, 3), (0b1011, 4, 4), (0b001, 3, 5)]
        )
        trie = BinaryTrie.from_fib(fib)
        assert trie.lookup(address) == fib.lookup(address)


class TestTraversalsAndStats:
    def test_entries_roundtrip(self, paper_fib):
        trie = BinaryTrie.from_fib(paper_fib)
        assert trie.to_fib() == paper_fib

    def test_node_count(self, paper_trie):
        # The example FIB's 6 entries each label one node: root, 0, 00,
        # 001, 01, 011 (Fig 1(b) draws an extra unlabeled node).
        assert paper_trie.node_count() == 6

    def test_stats(self, paper_trie):
        stats = paper_trie.stats()
        assert stats.nodes == 6
        assert stats.labeled_nodes == 6
        assert stats.max_depth == 3
        assert stats.leaves == 2  # 001 and 011

    def test_nodes_at_depth(self, paper_trie):
        at_two = list(paper_trie.nodes_at_depth(2))
        prefixes = sorted(prefix for _, prefix, _ in at_two)
        assert prefixes == [0b00, 0b01]

    def test_copy_independent(self, paper_trie):
        duplicate = paper_trie.copy()
        duplicate.insert(0b111, 3, 9)
        assert paper_trie.get(0b111, 3) is None
        assert duplicate.get(0b111, 3) == 9

    def test_map_labels(self, paper_trie):
        paper_trie.map_labels(lambda label: label + 10)
        assert paper_trie.get(0b011, 3) == 11

    def test_custom_width(self):
        trie = BinaryTrie(width=8)
        trie.insert(0b1010, 4, 1)
        assert trie.lookup(0b10101111) == 1
        assert trie.lookup(0b01010000) is None


class TestRandomizedEquivalence:
    @given(st.integers(0, 2**31))
    @settings(max_examples=25, deadline=None)
    def test_trie_equals_tabular_on_random_fibs(self, seed):
        import random

        rng = random.Random(seed)
        fib = random_fib(rng, 40, 4, max_length=10)
        trie = BinaryTrie.from_fib(fib)
        for _ in range(60):
            address = rng.getrandbits(32)
            assert trie.lookup(address) == fib.lookup(address)

    @given(st.integers(0, 2**31))
    @settings(max_examples=20, deadline=None)
    def test_insert_delete_inverse(self, seed):
        import random

        rng = random.Random(seed)
        fib = random_fib(rng, 30, 3, max_length=8)
        trie = BinaryTrie.from_fib(fib)
        before = trie.node_count()
        extra = (rng.getrandbits(12), 12)
        trie.insert(extra[0], extra[1], 9)
        if fib.get(*extra) is None:
            trie.delete(*extra)
            assert trie.node_count() == before
            assert trie.to_fib() == fib
