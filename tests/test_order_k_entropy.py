"""Unit tests for the higher-order entropy estimator (§3.2 discussion)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.entropy import order_k_entropy, shannon_entropy


class TestOrderK:
    def test_rejects_negative_order(self):
        with pytest.raises(ValueError):
            order_k_entropy([1, 2], -1)

    def test_order_zero_matches_h0(self):
        rng = random.Random(1)
        symbols = [rng.choice([1, 2, 3]) for _ in range(2000)]
        histogram = {}
        for s in symbols:
            histogram[s] = histogram.get(s, 0) + 1
        assert order_k_entropy(symbols, 0) == pytest.approx(
            shannon_entropy(histogram), abs=1e-9
        )

    def test_short_sequence(self):
        assert order_k_entropy([1], 2) == 0.0
        assert order_k_entropy([], 0) == 0.0

    def test_deterministic_alternation_has_zero_h1(self):
        symbols = [1, 2] * 500
        assert order_k_entropy(symbols, 0) == pytest.approx(1.0, abs=1e-6)
        assert order_k_entropy(symbols, 1) == pytest.approx(0.0, abs=1e-6)

    def test_markov_chain_between_orders(self):
        # A sticky two-state chain: H1 well below H0.
        rng = random.Random(2)
        symbols = [1]
        for _ in range(5000):
            stay = rng.random() < 0.95
            symbols.append(symbols[-1] if stay else 3 - symbols[-1])
        h0 = order_k_entropy(symbols, 0)
        h1 = order_k_entropy(symbols, 1)
        assert h1 < 0.5 * h0

    @given(st.lists(st.integers(0, 3), min_size=10, max_size=400), st.integers(0, 3))
    @settings(max_examples=40)
    def test_conditioning_reduces_entropy(self, symbols, k):
        # Empirical conditional entropy over the SAME positions: a k+1
        # context can only reduce it (Jensen). Dropping the first symbol
        # aligns the order-k estimate onto the order-(k+1) sample window.
        if len(symbols) <= k + 1:
            return
        assert (
            order_k_entropy(symbols, k + 1)
            <= order_k_entropy(symbols[1:], k) + 1e-9
        )

    def test_iid_sequence_h1_close_to_h0(self):
        rng = random.Random(3)
        symbols = [rng.choice([1, 2, 3, 4]) for _ in range(20000)]
        h0 = order_k_entropy(symbols, 0)
        h1 = order_k_entropy(symbols, 1)
        assert h1 == pytest.approx(h0, abs=0.02)

    def test_fib_leaf_labels(self, medium_fib):
        # Applying the estimator to S_alpha as §3.2 suggests.
        from repro.core.leafpush import leaf_pushed_trie
        from repro.core.trie import BinaryTrie
        from repro.core.xbw import XBWb

        normalized = leaf_pushed_trie(BinaryTrie.from_fib(medium_fib))
        _, labels = XBWb._serialize(normalized)
        h0 = order_k_entropy(labels, 0)
        h1 = order_k_entropy(labels, 1)
        assert 0 <= h1 <= h0
