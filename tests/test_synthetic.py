"""Unit tests for the synthetic dataset generators."""

import math

import pytest

from repro.core.entropy import entropy_of_probabilities, shannon_entropy
from repro.datasets.synthetic import (
    bernoulli_fib,
    bernoulli_label_sampler,
    bernoulli_string,
    internet_like_fib,
    label_sampler_with_entropy,
    poisson_label_fib,
    random_prefix_split_fib,
    relabel_fib,
    truncated_poisson_weights,
)
from repro.utils.rng import DiscreteSampler, make_rng


class TestSamplers:
    def test_truncated_poisson_weights(self):
        weights = truncated_poisson_weights(4, 0.6)
        assert len(weights) == 4
        assert weights[0] > weights[1] > weights[2] > weights[3]

    def test_truncated_poisson_rejects_bad(self):
        with pytest.raises(ValueError):
            truncated_poisson_weights(0, 0.6)
        with pytest.raises(ValueError):
            truncated_poisson_weights(4, 0.0)

    def test_entropy_targeted_sampler(self):
        sampler = label_sampler_with_entropy(8, 1.5)
        assert entropy_of_probabilities(sampler.probabilities) == pytest.approx(
            1.5, abs=1e-6
        )
        assert sampler.values == list(range(1, 9))

    def test_bernoulli_sampler(self):
        sampler = bernoulli_label_sampler(0.25)
        assert sampler.values == [1, 2]
        assert sampler.probabilities[0] == pytest.approx(0.25)
        with pytest.raises(ValueError):
            bernoulli_label_sampler(1.5)


class TestPrefixSplitting:
    def test_entry_count(self):
        fib = random_prefix_split_fib(500, DiscreteSampler([1, 1], values=[1, 2]), seed=1)
        assert len(fib) == 500

    def test_prefixes_are_disjoint_cover(self):
        # Split prefixes partition the space: every address matches
        # exactly one entry.
        fib = random_prefix_split_fib(200, DiscreteSampler([1.0], values=[1]), seed=2)
        rng = make_rng(3)
        from repro.core.trie import BinaryTrie

        trie = BinaryTrie.from_fib(fib)
        for _ in range(300):
            assert trie.lookup(rng.getrandbits(32)) == 1

    def test_deterministic(self):
        sampler = DiscreteSampler([1, 2], values=[1, 2])
        a = random_prefix_split_fib(100, sampler, seed=7)
        b = random_prefix_split_fib(100, DiscreteSampler([1, 2], values=[1, 2]), seed=7)
        assert a == b

    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            random_prefix_split_fib(0, DiscreteSampler([1.0]), seed=1)

    def test_max_length_respected(self):
        fib = random_prefix_split_fib(
            300, DiscreteSampler([1.0], values=[1]), seed=4, max_length=10
        )
        assert all(route.length <= 10 for route in fib)

    def test_poisson_recipe(self):
        fib = poisson_label_fib(400, 5, seed=8)
        assert len(fib) == 400
        assert fib.delta <= 5


class TestInternetLike:
    def test_entry_count_and_delta(self):
        sampler = label_sampler_with_entropy(6, 1.2)
        fib = internet_like_fib(800, sampler, seed=5)
        assert len(fib) == 800
        assert fib.delta <= 6

    def test_default_route_flag(self):
        sampler = DiscreteSampler([1.0], values=[2])
        with_default = internet_like_fib(50, sampler, seed=6, default_route=True)
        without = internet_like_fib(50, sampler, seed=6, default_route=False)
        assert with_default.get(0, 0) is not None
        assert without.get(0, 0) is None

    def test_length_mix_is_dfz_like(self):
        sampler = DiscreteSampler([1.0], values=[1])
        fib = internet_like_fib(3000, sampler, seed=7)
        lengths = [route.length for route in fib]
        mean = sum(lengths) / len(lengths)
        assert 18 <= mean <= 24  # Internet tables sit around 22
        share_24 = sum(1 for l in lengths if l == 24) / len(lengths)
        assert share_24 > 0.25

    def test_saturation_error(self):
        sampler = DiscreteSampler([1.0], values=[1])
        with pytest.raises(RuntimeError):
            internet_like_fib(100, sampler, seed=8, length_histogram={2: 1.0})


class TestBernoulliWorkloads:
    def test_bernoulli_fib_labels(self):
        fib = bernoulli_fib(500, 0.1, seed=9)
        histogram = fib.label_histogram()
        assert set(histogram) <= {1, 2}
        assert histogram.get(2, 0) > histogram.get(1, 0)

    def test_bernoulli_string(self):
        symbols = bernoulli_string(4096, 0.05, seed=10)
        assert len(symbols) == 4096
        fraction = symbols.count(1) / len(symbols)
        assert 0.02 <= fraction <= 0.09

    def test_bernoulli_string_entropy(self):
        symbols = bernoulli_string(1 << 14, 0.2, seed=11)
        histogram = {1: symbols.count(1), 2: symbols.count(2)}
        expected = -(0.2 * math.log2(0.2) + 0.8 * math.log2(0.8))
        assert shannon_entropy(histogram) == pytest.approx(expected, abs=0.05)

    def test_relabel_preserves_structure(self, paper_fib):
        relabeled = relabel_fib(paper_fib, bernoulli_label_sampler(0.5), seed=12)
        assert len(relabeled) == len(paper_fib)
        assert {(r.prefix, r.length) for r in relabeled} == {
            (r.prefix, r.length) for r in paper_fib
        }
