"""Unit tests for FIB entropy and the space bounds of §2."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.entropy import (
    bits_per_prefix,
    compression_efficiency,
    distribution_with_entropy,
    entropy_of_probabilities,
    fib_entropy,
    shannon_entropy,
    trie_entropy,
)
from repro.core.fib import Fib
from repro.core.leafpush import leaf_pushed_trie
from repro.core.trie import BinaryTrie


class TestShannonEntropy:
    def test_uniform_two_symbols(self):
        assert shannon_entropy({1: 5, 2: 5}) == pytest.approx(1.0)

    def test_degenerate(self):
        assert shannon_entropy({1: 10}) == 0.0
        assert shannon_entropy({}) == 0.0

    def test_uniform_k_symbols(self):
        histogram = {i: 3 for i in range(8)}
        assert shannon_entropy(histogram) == pytest.approx(3.0)

    def test_skewed_below_uniform(self):
        assert shannon_entropy({1: 99, 2: 1}) < 1.0

    def test_ignores_zero_counts(self):
        assert shannon_entropy({1: 5, 2: 5, 3: 0}) == pytest.approx(1.0)

    def test_probability_form(self):
        assert entropy_of_probabilities([0.5, 0.5]) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            entropy_of_probabilities([-0.1, 1.1])

    @given(st.dictionaries(st.integers(0, 20), st.integers(1, 100), min_size=1, max_size=16))
    def test_bounds(self, histogram):
        h = shannon_entropy(histogram)
        assert 0.0 <= h <= math.log2(len(histogram)) + 1e-9


class TestFibEntropy:
    def test_paper_example(self, paper_fib):
        # Fig 1(e): 5 leaves labeled {3,2,2,2,1}: H0 = 1.371, and the
        # revised bounds I = 2n + n lg 3, E = 2n + n H0.
        report = fib_entropy(paper_fib)
        assert report.leaves == 5
        assert report.delta == 3
        expected_h0 = -(3 / 5 * math.log2(3 / 5) + 2 * (1 / 5) * math.log2(1 / 5))
        assert report.h0 == pytest.approx(expected_h0)
        assert report.info_bound_bits == 2 * 5 + 5 * 2
        assert report.entropy_bits == pytest.approx(2 * 5 + 5 * expected_h0)

    def test_entropy_never_exceeds_info_bound(self, medium_fib):
        report = fib_entropy(medium_fib)
        assert report.entropy_bits <= report.info_bound_bits + 1e-9

    def test_trie_and_fib_forms_agree(self, paper_fib):
        via_fib = fib_entropy(paper_fib)
        via_trie = trie_entropy(BinaryTrie.from_fib(paper_fib))
        assert via_fib == via_trie

    def test_assume_normalized_skips_push(self, paper_fib):
        normalized = leaf_pushed_trie(BinaryTrie.from_fib(paper_fib))
        direct = trie_entropy(normalized, assume_normalized=True)
        assert direct == fib_entropy(paper_fib)

    def test_single_label_fib_has_zero_h0(self):
        fib = Fib()
        fib.add(0, 0, 1)
        report = fib_entropy(fib)
        assert report.h0 == 0.0
        assert report.leaves == 1

    def test_uncovered_space_counts_bottom_label(self):
        fib = Fib()
        fib.add(0b1, 1, 4)  # half the space unrouted
        report = fib_entropy(fib)
        assert report.delta == 2  # label 4 and the invalid label
        assert report.h0 == pytest.approx(1.0)

    def test_kbyte_properties(self, paper_fib):
        report = fib_entropy(paper_fib)
        assert report.entropy_kbytes == pytest.approx(report.entropy_bits / 8192)
        assert report.info_bound_kbytes == pytest.approx(report.info_bound_bits / 8192)

    def test_helpers(self, paper_fib):
        report = fib_entropy(paper_fib)
        assert compression_efficiency(report.entropy_bits, report) == pytest.approx(1.0)
        assert bits_per_prefix(600, 6) == pytest.approx(100.0)
        with pytest.raises(ValueError):
            bits_per_prefix(100, 0)


class TestDistributionWithEntropy:
    def test_zero_entropy(self):
        probs = distribution_with_entropy(4, 0.0)
        assert max(probs) == pytest.approx(1.0, abs=1e-6)

    def test_max_entropy(self):
        probs = distribution_with_entropy(4, 2.0)
        assert all(p == pytest.approx(0.25, abs=1e-6) for p in probs)

    def test_single_symbol(self):
        assert distribution_with_entropy(1, 0.0) == [1.0]
        with pytest.raises(ValueError):
            distribution_with_entropy(1, 0.5)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            distribution_with_entropy(4, 2.5)
        with pytest.raises(ValueError):
            distribution_with_entropy(0, 0.0)

    @given(
        st.integers(2, 40),
        st.floats(min_value=0.01, max_value=0.99),
    )
    @settings(max_examples=50)
    def test_hits_target(self, delta, fraction):
        target = fraction * math.log2(delta)
        probs = distribution_with_entropy(delta, target)
        assert sum(probs) == pytest.approx(1.0)
        assert entropy_of_probabilities(probs) == pytest.approx(target, abs=1e-6)
