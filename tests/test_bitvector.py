"""Unit and property tests for the plain rank/select bitvector."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.succinct.bitvector import BitVector


def naive_rank1(bits, position):
    return sum(bits[:position])


def naive_select(bits, occurrence, value):
    seen = 0
    for index, bit in enumerate(bits):
        if bit == value:
            seen += 1
            if seen == occurrence:
                return index
    raise IndexError


class TestBasics:
    def test_empty(self):
        bv = BitVector([])
        assert len(bv) == 0
        assert bv.ones == 0
        assert bv.rank1(0) == 0

    def test_counts(self):
        bv = BitVector([1, 0, 1, 1, 0])
        assert bv.ones == 3
        assert bv.zeros == 2

    def test_access(self):
        bits = [1, 0, 0, 1]
        bv = BitVector(bits)
        assert [bv.access(i) for i in range(4)] == bits

    def test_rank_prefixes(self):
        bv = BitVector([1, 0, 1, 1, 0])
        assert [bv.rank1(i) for i in range(6)] == [0, 1, 1, 2, 3, 3]
        assert [bv.rank0(i) for i in range(6)] == [0, 0, 1, 1, 1, 2]

    def test_rank_bounds(self):
        bv = BitVector([1])
        with pytest.raises(IndexError):
            bv.rank1(2)
        with pytest.raises(IndexError):
            bv.rank1(-1)

    def test_select1(self):
        bv = BitVector([0, 1, 0, 1, 1])
        assert bv.select1(1) == 1
        assert bv.select1(2) == 3
        assert bv.select1(3) == 4

    def test_select0(self):
        bv = BitVector([0, 1, 0, 1, 1])
        assert bv.select0(1) == 0
        assert bv.select0(2) == 2

    def test_select_bounds(self):
        bv = BitVector([1, 0])
        with pytest.raises(IndexError):
            bv.select1(2)
        with pytest.raises(IndexError):
            bv.select1(0)
        with pytest.raises(IndexError):
            bv.select0(2)

    def test_paper_inclusive_rank(self):
        # rank_s(S, q) counts occurrences in the 1-based prefix S[1, q].
        bv = BitVector([0, 0, 1, 0, 0, 1, 1, 1, 1])  # S_I of Fig 2
        assert bv.rank0_inclusive(1) == 1
        assert bv.rank0_inclusive(4) == 3
        assert bv.rank1_inclusive(3) == 1

    def test_crosses_superblock_boundaries(self):
        bits = [i % 3 == 0 for i in range(5000)]
        bv = BitVector(bits)
        for position in (0, 63, 64, 511, 512, 513, 4999, 5000):
            assert bv.rank1(position) == naive_rank1(bits, position)

    def test_size_accounts_directory(self):
        bv = BitVector([1] * 1000)
        assert bv.size_in_bits() > 1000  # payload + directory


class TestProperties:
    @given(st.lists(st.integers(0, 1), min_size=1, max_size=600))
    def test_rank_matches_naive(self, bits):
        bv = BitVector(bits)
        for position in range(0, len(bits) + 1, max(1, len(bits) // 17)):
            assert bv.rank1(position) == naive_rank1(bits, position)

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=300))
    def test_select_matches_naive(self, bits):
        bv = BitVector(bits)
        for occurrence in range(1, bv.ones + 1):
            assert bv.select1(occurrence) == naive_select(bits, occurrence, 1)
        for occurrence in range(1, bv.zeros + 1):
            assert bv.select0(occurrence) == naive_select(bits, occurrence, 0)

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=300))
    def test_rank_select_inverse(self, bits):
        bv = BitVector(bits)
        for occurrence in range(1, bv.ones + 1):
            position = bv.select1(occurrence)
            assert bv.rank1(position + 1) == occurrence
            assert bv.access(position) == 1


class TestSelectDirectory:
    """The sampled select directory (every k-th set/clear position)."""

    def test_directory_is_lazy(self):
        bv = BitVector([1, 0, 1] * 100)
        assert bv.select_directory_bits() == 0  # rank-only users pay nothing
        bv.select1(1)
        assert bv.select_directory_bits() > 0
        bv.select0(1)
        assert bv.select_directory_bits() == 64 * (
            len(bv._select1_samples) + len(bv._select0_samples)
        )

    def test_sampled_positions_exact_on_boundaries(self):
        from repro.succinct.bitvector import _SELECT_SAMPLE

        # All-ones vector: the j-th one sits at position j-1, including
        # every occurrence that lands exactly on a directory sample.
        bv = BitVector([1] * (3 * _SELECT_SAMPLE + 5))
        for occurrence in (1, _SELECT_SAMPLE, _SELECT_SAMPLE + 1,
                           2 * _SELECT_SAMPLE, 3 * _SELECT_SAMPLE + 5):
            assert bv.select1(occurrence) == occurrence - 1

    def test_sparse_tail_zero_not_phantom(self):
        # A non-word-aligned vector must not invent zeros in the slack
        # bits of its final backing word.
        bits = [1] * 130 + [0]
        bv = BitVector(bits)
        assert bv.select0(1) == 130
        with pytest.raises(IndexError):
            bv.select0(2)

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=700))
    def test_directory_select_matches_naive(self, bits):
        bv = BitVector(bits)
        for occurrence in range(1, bv.ones + 1):
            assert bv.select1(occurrence) == naive_select(bits, occurrence, 1)
        for occurrence in range(1, bv.zeros + 1):
            assert bv.select0(occurrence) == naive_select(bits, occurrence, 0)

    def test_size_model_unchanged_by_directory(self):
        # The samples are an acceleration cache, not part of the paper's
        # succinct size model (like the batch dispatch arrays).
        bits = [1, 0] * 600
        cold = BitVector(bits).size_in_bits()
        warm = BitVector(bits)
        warm.select1(5)
        warm.select0(5)
        assert warm.size_in_bits() == cold
