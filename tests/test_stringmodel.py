"""Unit tests for the string model (Fig 4, Theorems 1–2 setting)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stringmodel import FoldedString, pad_to_power_of_two


class TestFig4Example:
    def test_banana_access(self):
        # Fig 4: "bananaba" on a complete depth-3 trie; the third
        # character is accessed by looking up key 3 - 1 = 010b.
        symbols = [ord(c) for c in "bananaba"]
        folded = FoldedString(symbols, barrier=0)
        assert folded.access(0b010) == ord("n")
        assert [chr(folded.access(i)) for i in range(8)] == list("bananaba")

    def test_banana_shares_leaves(self):
        symbols = [ord(c) for c in "bananaba"]
        folded = FoldedString(symbols, barrier=0)
        # Alphabet {b, a, n}: exactly 3 coalesced leaves (Fig 4(c)).
        assert folded.folded_leaf_count() == 3

    def test_banana_folds_repeated_pairs(self):
        # "na" appears twice and "ba" twice: the folded DAG must have
        # fewer interiors than the complete tree's 7.
        symbols = [ord(c) for c in "bananaba"]
        folded = FoldedString(symbols, barrier=0)
        assert folded.folded_interior_count() < 7


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            FoldedString([])

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            FoldedString([1, 2, 3])

    def test_rejects_bad_barrier(self):
        with pytest.raises(ValueError):
            FoldedString([1, 2, 3, 4], barrier=5)

    def test_pad_to_power_of_two(self):
        assert pad_to_power_of_two([1, 2, 3]) == [1, 2, 3, 3]
        assert pad_to_power_of_two([1, 2, 3], fill=0) == [1, 2, 3, 0]
        assert pad_to_power_of_two([5]) == [5]
        with pytest.raises(ValueError):
            pad_to_power_of_two([])

    def test_auto_barrier_in_range(self):
        rng = random.Random(1)
        symbols = [rng.randint(0, 3) for _ in range(1 << 10)]
        folded = FoldedString(symbols)
        assert 0 <= folded.barrier <= 10


class TestAccess:
    @pytest.mark.parametrize("barrier", [0, 2, 5, 8])
    def test_roundtrip(self, barrier):
        rng = random.Random(barrier)
        symbols = [rng.randint(0, 5) for _ in range(1 << 8)]
        folded = FoldedString(symbols, barrier=barrier)
        assert folded.to_list() == symbols

    def test_access_bounds(self):
        folded = FoldedString([1, 2, 3, 4])
        with pytest.raises(IndexError):
            folded.access(4)

    def test_degenerate_full_barrier(self):
        symbols = [3, 1, 4, 1]
        folded = FoldedString(symbols, barrier=2)
        assert folded.to_list() == symbols

    @given(st.lists(st.integers(0, 7), min_size=1, max_size=128))
    @settings(max_examples=40)
    def test_roundtrip_property(self, raw):
        symbols = pad_to_power_of_two(raw)
        folded = FoldedString(symbols)
        assert folded.to_list() == symbols


class TestCompression:
    def test_constant_string_collapses(self):
        folded = FoldedString([7] * 1024, barrier=0)
        assert folded.folded_interior_count() == 0
        assert folded.folded_leaf_count() == 1

    def test_periodic_string_folds_to_log_size(self):
        symbols = [1, 2] * 512
        folded = FoldedString(symbols, barrier=0)
        # Period-2 strings fold to a chain of ~log2(n) distinct nodes.
        assert folded.folded_interior_count() <= 10

    def test_low_entropy_smaller_than_high(self):
        rng = random.Random(5)
        n = 1 << 12
        low = [1 if rng.random() < 0.02 else 2 for _ in range(n)]
        high = [rng.randint(1, 2) for _ in range(n)]
        assert (
            FoldedString(low).size_in_bits() < FoldedString(high).size_in_bits()
        )

    def test_report_fields(self):
        rng = random.Random(6)
        symbols = [1 if rng.random() < 0.1 else 2 for _ in range(1 << 12)]
        report = FoldedString(symbols).report()
        assert report.length == 1 << 12
        assert report.delta == 2
        assert 0 < report.h0 < 1
        assert report.entropy_bits == pytest.approx(report.h0 * report.length)
        assert report.size_bits > 0
        assert report.efficiency == pytest.approx(
            report.size_bits / report.entropy_bits
        )
