"""Unit tests for the §4.2 memory model."""

import pytest

from repro.core.prefixdag import PrefixDag
from repro.core.sizemodel import (
    binary_trie_size_bits,
    kbytes,
    label_width,
    patricia_size_bits,
    pointer_width,
    prefix_dag_size_bits,
    tabular_size_bits,
)


class TestFieldWidths:
    def test_pointer_width_floors_at_one(self):
        assert pointer_width(0) == 1
        assert pointer_width(1) == 1

    def test_pointer_width_reserves_null(self):
        assert pointer_width(3) == 2
        assert pointer_width(255) == 8
        assert pointer_width(256) == 9  # 256 nodes + null needs 9 bits

    def test_label_width(self):
        assert label_width(1) == 1
        assert label_width(3) == 2
        assert label_width(255) == 8


class TestModels:
    def test_tabular(self):
        assert tabular_size_bits(0, 4, 32) == 0
        assert tabular_size_bits(100, 4, 32) == 100 * (32 + 2)

    def test_patricia_is_24_bytes_per_node(self):
        assert patricia_size_bits(10) == 10 * 24 * 8

    def test_binary_trie(self):
        bits = binary_trie_size_bits(100, 4)
        assert bits == 100 * (2 * pointer_width(100) + label_width(4))

    def test_kbytes(self):
        assert kbytes(8192) == pytest.approx(1.0)

    def test_dag_model_consistency(self, medium_fib):
        dag = PrefixDag(medium_fib, barrier=6)
        above = dag.above_node_count()
        interior = dag.folded_interior_count()
        leaves = dag.folded_leaf_count()
        ptr = pointer_width(above + interior + leaves)
        labels = label_width(max(leaves, dag.entropy_report().delta))
        expected = above * (ptr + labels) + interior * 2 * ptr + leaves * labels
        assert prefix_dag_size_bits(dag) == expected

    def test_dag_smaller_than_plain_trie(self, medium_fib):
        # The whole point of the paper: folding beats the trie it folds.
        dag = PrefixDag(medium_fib, barrier=4)
        control = dag.control_trie
        trie_bits = binary_trie_size_bits(control.node_count(), medium_fib.delta)
        assert prefix_dag_size_bits(dag) < trie_bits
