"""Exhaustive equivalence on small address universes.

With W = 8 the whole address space (256 addresses) can be checked
address by address, for every barrier and against every representation —
no sampling gaps. Hypothesis drives the FIB contents; the checks are
total.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.lctrie import LCTrie
from repro.baselines.ortc import ortc_compress
from repro.baselines.shapegraph import ShapeGraph
from repro.core.fib import INVALID_LABEL, Fib
from repro.core.multibit import MultibitDag
from repro.core.prefixdag import PrefixDag
from repro.core.serialize import SerializedDag
from repro.core.trie import BinaryTrie
from repro.core.xbw import XBWb

WIDTH = 8

entry_strategy = st.integers(0, WIDTH).flatmap(
    lambda length: st.tuples(
        st.integers(0, max(0, (1 << length) - 1)),
        st.just(length),
        st.integers(1, 4),
    )
)
fib_strategy = st.lists(entry_strategy, min_size=0, max_size=24)


def build_fib(entries) -> Fib:
    fib = Fib(WIDTH)
    for value, length, label in entries:
        fib.add(value, length, label)
    return fib


def full_table(lookup) -> list:
    return [lookup(address) for address in range(1 << WIDTH)]


class TestExhaustive:
    @given(fib_strategy)
    @settings(max_examples=40, deadline=None)
    def test_all_representations_agree_everywhere(self, entries):
        fib = build_fib(entries)
        reference = full_table(BinaryTrie.from_fib(fib).lookup)
        assert full_table(XBWb.from_fib(fib).lookup) == reference
        assert full_table(LCTrie(fib).lookup) == reference
        assert full_table(ShapeGraph(fib).lookup) == reference
        for barrier in (0, 3, WIDTH):
            dag = PrefixDag(fib, barrier=barrier)
            assert full_table(dag.lookup) == reference
            assert full_table(SerializedDag(dag).lookup) == reference
        for stride in (1, 2, 4):
            assert full_table(MultibitDag(fib, stride=stride).lookup) == reference

    @given(fib_strategy)
    @settings(max_examples=30, deadline=None)
    def test_ortc_exact_function(self, entries):
        fib = build_fib(entries)
        reference = full_table(BinaryTrie.from_fib(fib).lookup)
        aggregated = ortc_compress(fib).to_trie()
        got = [
            None if label in (None, INVALID_LABEL) else label
            for label in full_table(aggregated.lookup)
        ]
        assert got == reference

    @given(fib_strategy, st.integers(0, 2**20))
    @settings(max_examples=30, deadline=None)
    def test_update_sequence_exact(self, entries, seed):
        fib = build_fib(entries)
        dag = PrefixDag(fib, barrier=4)
        control = BinaryTrie.from_fib(fib)
        rng = random.Random(seed)
        for _ in range(15):
            length = rng.randint(0, WIDTH)
            value = rng.getrandbits(length) if length else 0
            if rng.random() < 0.3:
                try:
                    dag.update(value, length, None)
                    control.delete(value, length)
                except KeyError:
                    pass
            else:
                label = rng.randint(1, 4)
                dag.update(value, length, label)
                control.insert(value, length, label)
        assert full_table(dag.lookup) == full_table(control.lookup)
        dag.check_integrity()


class TestWideWidths:
    """The same machinery at W = 64 (nothing in the library is
    IPv4-specific; the paper's IPv6 remark)."""

    def test_w64_pipeline(self):
        rng = random.Random(9)
        fib = Fib(width=64)
        for _ in range(60):
            length = rng.randint(0, 48)
            value = rng.getrandbits(length) if length else 0
            fib.add(value, length, rng.randint(1, 5))
        reference = BinaryTrie.from_fib(fib)
        dag = PrefixDag(fib, barrier=16)
        xbw = XBWb.from_fib(fib)
        image = SerializedDag(dag)
        for _ in range(400):
            address = rng.getrandbits(64)
            want = reference.lookup(address)
            assert dag.lookup(address) == want
            assert xbw.lookup(address) == want
            assert image.lookup(address) == want

    def test_w16_multibit(self):
        rng = random.Random(10)
        fib = Fib(width=16)
        for _ in range(40):
            length = rng.randint(0, 16)
            value = rng.getrandbits(length) if length else 0
            fib.add(value, length, rng.randint(1, 3))
        reference = full = [BinaryTrie.from_fib(fib).lookup(a) for a in range(1 << 16)]
        dag = MultibitDag(fib, stride=4)
        assert [dag.lookup(a) for a in range(1 << 16)] == reference
