"""Unit tests for repro.utils.bits."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bits import (
    address_bits,
    bits_for,
    format_prefix,
    lg,
    parse_prefix,
    popcount,
    prefix_bit,
    prefix_contains,
    prefix_of,
    prefix_to_address,
    reverse_bits,
)


class TestLg:
    def test_lg_one_is_zero(self):
        assert lg(1) == 0

    def test_lg_powers_of_two(self):
        assert lg(2) == 1
        assert lg(4) == 2
        assert lg(1024) == 10

    def test_lg_rounds_up(self):
        assert lg(3) == 2
        assert lg(5) == 3
        assert lg(1025) == 11

    def test_lg_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            lg(0)
        with pytest.raises(ValueError):
            lg(-3)

    @given(st.integers(min_value=1, max_value=10**9))
    def test_lg_is_ceil_log2(self, x):
        assert (1 << lg(x)) >= x
        if x > 1:
            assert (1 << (lg(x) - 1)) < x


class TestBitsFor:
    def test_degenerate_counts(self):
        assert bits_for(0) == 0
        assert bits_for(1) == 0

    def test_small_counts(self):
        assert bits_for(2) == 1
        assert bits_for(3) == 2
        assert bits_for(256) == 8
        assert bits_for(257) == 9


class TestAddressBits:
    def test_msb_first(self):
        address = 0b1011 << 28
        assert address_bits(address, 0, 1) == 1
        assert address_bits(address, 1, 1) == 0
        assert address_bits(address, 2, 1) == 1
        assert address_bits(address, 3, 1) == 1

    def test_multi_bit_extract(self):
        address = 0xDEADBEEF
        assert address_bits(address, 0, 8) == 0xDE
        assert address_bits(address, 8, 8) == 0xAD
        assert address_bits(address, 24, 8) == 0xEF

    def test_full_width(self):
        assert address_bits(0x12345678, 0, 32) == 0x12345678

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            address_bits(0, 30, 4)
        with pytest.raises(ValueError):
            address_bits(0, -1, 1)

    def test_custom_width(self):
        assert address_bits(0b101, 0, 1, width=3) == 1
        assert address_bits(0b101, 2, 1, width=3) == 1


class TestPrefixOps:
    def test_prefix_of(self):
        assert prefix_of(0xFF000000, 8) == 0xFF
        assert prefix_of(0xFF000000, 0) == 0

    def test_prefix_roundtrip(self):
        assert prefix_to_address(0xFF, 8) == 0xFF000000
        assert prefix_to_address(0, 0) == 0

    def test_prefix_to_address_rejects_wide_value(self):
        with pytest.raises(ValueError):
            prefix_to_address(0b11, 1)

    def test_prefix_to_address_rejects_bad_length(self):
        with pytest.raises(ValueError):
            prefix_to_address(0, 33)

    def test_prefix_bit(self):
        assert prefix_bit(0b101, 3, 0) == 1
        assert prefix_bit(0b101, 3, 1) == 0
        assert prefix_bit(0b101, 3, 2) == 1

    def test_prefix_bit_range_check(self):
        with pytest.raises(ValueError):
            prefix_bit(0b101, 3, 3)

    def test_prefix_contains_basic(self):
        # 10/2 contains 101/3 but not vice versa.
        assert prefix_contains(0b10, 2, 0b101, 3)
        assert not prefix_contains(0b101, 3, 0b10, 2)

    def test_prefix_contains_self(self):
        assert prefix_contains(0b10, 2, 0b10, 2)

    def test_prefix_contains_root(self):
        assert prefix_contains(0, 0, 0b1011, 4)

    @given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(0, 32), st.integers(0, 32))
    def test_contains_matches_address_semantics(self, address, len_a, len_b):
        a = prefix_of(address, len_a)
        b = prefix_of(address, len_b)
        if len_a <= len_b:
            assert prefix_contains(a, len_a, b, len_b)


class TestFormatParse:
    def test_format_ipv4(self):
        assert format_prefix(0b1, 1) == "128.0.0.0/1"
        assert format_prefix(0, 0) == "0.0.0.0/0"
        assert format_prefix(0xC0A80101, 32) == "192.168.1.1/32"

    def test_parse_ipv4(self):
        assert parse_prefix("128.0.0.0/1") == (0b1, 1)
        assert parse_prefix("0.0.0.0/0") == (0, 0)
        assert parse_prefix("192.168.1.1") == (0xC0A80101, 32)

    def test_parse_hex(self):
        assert parse_prefix("0x80000000/1") == (1, 1)

    def test_parse_rejects_bad_octet(self):
        with pytest.raises(ValueError):
            parse_prefix("300.0.0.0/8")

    def test_parse_rejects_bad_length(self):
        with pytest.raises(ValueError):
            parse_prefix("10.0.0.0/40")

    @given(st.integers(0, 32).flatmap(lambda l: st.tuples(st.integers(0, max(0, 2**l - 1)), st.just(l))))
    def test_format_parse_roundtrip(self, pair):
        value, length = pair
        assert parse_prefix(format_prefix(value, length)) == (value, length)


class TestMisc:
    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3

    def test_reverse_bits(self):
        assert reverse_bits(0b100, 3) == 0b001
        assert reverse_bits(0b110, 3) == 0b011
        assert reverse_bits(0, 8) == 0

    @given(st.integers(0, 2**16 - 1))
    def test_reverse_involution(self, value):
        assert reverse_bits(reverse_bits(value, 16), 16) == value
