"""Differential update-fuzz suite for the flat plane's patch compiler.

The tentpole check: random announce/withdraw streams driven through
:meth:`FlatProgram.patch` must stay bit-identical to (a) the tabular
oracle (``Fib.lookup``), and (b) a from-scratch recompile of the same
trie — on every walk the program exposes: the scalar loop, the NumPy
gather (when available), the pure-Python batch fallback, and the packed
wire format. The hypothesis state machine shrinks failing update
sequences to minimal counterexamples; ``derandomize=True`` keeps CI
runs reproducible at a fixed seed.

``REPRO_FUZZ_EXAMPLES`` scales the example count (CI runs 200; the
default keeps tier-1 cheap). Deterministic satellites cover the overlay
edge cases: frozen programs refusing patches, overlay pickling and
image round-trips, merge idempotence, the empty-overlay fast path, and
the bounded-growth regression for repeated same-slot patches.
"""

from __future__ import annotations

import os
import pickle
import random
from array import array

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from tests.conftest import random_fib
from repro import pipeline
from repro.core.fib import Fib
from repro.core.trie import BinaryTrie
from repro.datasets import random_update_sequence
from repro.datasets.updates import UpdateOp
from repro.pipeline.flat import (
    FlatCompileError,
    compile_binary,
    have_numpy,
)

WIDTH = 8
DOMAIN = list(range(1 << WIDTH))
STRIDE = 6
FUZZ_EXAMPLES = int(os.environ.get("REPRO_FUZZ_EXAMPLES", "25"))
UPDATABLE = ["binary-trie", "prefix-dag", "tabular"]


def unpack(blob: bytes):
    """Decode the packed wire format back into optional labels."""
    return [label or None for label in array("q", blob)]


class PatchDifferential(RuleBasedStateMachine):
    """Width-8 FIB so every step checks the *entire* address domain.

    ``overlay_span_min`` is forced tiny so even narrow terminal runs
    land in the delta overlay — the fuzzer then exercises the overlay
    probe on every walk, plus ``merge_overlay`` folding it away
    mid-stream. Both ``leaf_pushed`` modes run: ``True`` (prune
    disabled, always sound) and ``False`` (longer-prefix prune enabled,
    sound for the binary trie whose labels are the routes themselves).
    """

    def __init__(self):
        super().__init__()
        self.fib = Fib(WIDTH)
        self.trie = BinaryTrie(WIDTH)
        self.program = compile_binary(self.trie.root, WIDTH, STRIDE)
        self.program.overlay_span_min = 2

    @rule(
        bits=st.integers(0, (1 << WIDTH) - 1),
        length=st.integers(0, WIDTH),
        label=st.integers(1, 5),
        leaf_pushed=st.booleans(),
    )
    def announce(self, bits, length, label, leaf_pushed):
        prefix = bits >> (WIDTH - length) if length else 0
        self.fib.update(prefix, length, label)
        self.trie.insert(prefix, length, label)
        self.program.patch(prefix, length, self.trie.root,
                           leaf_pushed=leaf_pushed)

    @rule(data=st.data(), leaf_pushed=st.booleans())
    def withdraw(self, data, leaf_pushed):
        routes = [(route.prefix, route.length) for route in self.fib]
        if not routes:
            return
        prefix, length = data.draw(st.sampled_from(routes))
        self.fib.update(prefix, length, None)
        self.trie.delete(prefix, length)
        self.program.patch(prefix, length, self.trie.root,
                           leaf_pushed=leaf_pushed)

    @rule()
    def merge(self):
        self.program.merge_overlay()
        assert self.program.overlay_len == 0

    @invariant()
    def every_walk_tracks_the_oracle(self):
        want = [self.fib.lookup(address) for address in DOMAIN]
        program = self.program
        assert [program.lookup(address) for address in DOMAIN] == want
        assert program._batch_python(DOMAIN) == want
        assert unpack(program.lookup_batch_packed(DOMAIN)) == want
        if have_numpy():
            assert program._batch_vector(DOMAIN) == want
        fresh = compile_binary(self.trie.root, WIDTH, STRIDE)
        assert fresh.lookup_batch(DOMAIN) == want


PatchDifferential.TestCase.settings = settings(
    max_examples=FUZZ_EXAMPLES, deadline=None, derandomize=True
)
TestPatchDifferential = PatchDifferential.TestCase


class TestAdapterFuzz:
    """Dispatch-plane parity under fuzzed churn, per updatable adapter.

    Drives the real serve path — ``apply_update`` into the adapter's
    patch log, drained by ``flat_plane`` on the next batch — including
    bloat-triggered recompiles and the adapter's overlay-merge policy.
    """

    @pytest.mark.parametrize("name", UPDATABLE)
    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=max(5, FUZZ_EXAMPLES // 5), deadline=None,
              derandomize=True)
    def test_dispatch_parity_under_fuzzed_churn(self, name, seed):
        rng = random.Random(seed)
        fib = random_fib(rng, 60, 4, max_length=16)
        representation = pipeline.build(name, fib)
        probes = [rng.getrandbits(32) for _ in range(128)]
        representation.lookup_batch(probes)  # compile before the churn
        mirror = fib.copy()
        ops = random_update_sequence(
            mirror, 24, seed=seed ^ 0x9E3779B9, withdraw_fraction=0.3
        )
        for op in ops:
            try:
                mirror.update(op.prefix, op.length, op.label)
            except KeyError:
                continue
            representation.apply_update(op)
            want = [mirror.lookup(address) for address in probes]
            assert representation.lookup_batch(probes) == want
        program = pipeline.flat_program(representation)
        if program is not None:
            assert unpack(program.lookup_batch_packed(probes)) == [
                mirror.lookup(address) for address in probes
            ]


def overlay_program():
    """A 32-bit program with a live overlay: routes only under 0/1,
    then a /1 announce across the empty upper half lands as one wide
    terminal run in the side table."""
    fib = Fib(32)
    fib.add(0b0001, 4, 1)
    fib.add(0b00000001, 8, 2)
    fib.add(0x0ABCD, 20, 3)
    trie = BinaryTrie.from_fib(fib)
    program = compile_binary(trie.root, 32, 8)
    program.overlay_span_min = 4
    trie.insert(1, 1, 7)
    fib.add(1, 1, 7)
    program.patch(1, 1, trie.root, leaf_pushed=False)
    assert program.overlay_len >= 1
    return fib, trie, program


class TestOverlayEdgeCases:
    def test_frozen_program_refuses_patch_and_merge(self):
        shm = pytest.importorskip("multiprocessing.shared_memory")
        del shm
        from repro.serve.shm import (
            attach_program, detach_program, publish_program,
        )
        fib, trie, program = overlay_program()
        segment = publish_program(program, 1)
        try:
            attached, _, mapped = attach_program(segment.name)
            with pytest.raises(FlatCompileError, match="immutable"):
                attached.patch(0, 0, trie.root)
            with pytest.raises(FlatCompileError, match="immutable"):
                attached.patch_many([(0, 0)], trie.root)
            with pytest.raises(FlatCompileError, match="immutable"):
                attached.merge_overlay()
            # ...but delta ingest only touches the process-local side
            # table, so it is allowed on frozen images.
            attached.overlay_ingest([(0, 2, 9)])
            assert attached.lookup(0) == 9
            detach_program(attached, mapped)
        finally:
            segment.close()
            segment.unlink()

    def test_overlay_survives_pickle_round_trip(self):
        fib, trie, program = overlay_program()
        clone = pickle.loads(pickle.dumps(program))
        assert clone.overlay_len == program.overlay_len
        rng = random.Random(11)
        probes = [rng.getrandbits(32) for _ in range(400)]
        assert clone.lookup_batch(probes) == program.lookup_batch(probes)
        assert clone.lookup_batch(probes) == [
            fib.lookup(address) for address in probes
        ]

    def test_publish_folds_overlay_into_the_image(self):
        from repro.serve.shm import (
            attach_program, detach_program, publish_program,
        )
        fib, trie, program = overlay_program()
        segment = publish_program(program, 3)
        try:
            assert program.overlay_len == 0  # merged before imaging
            attached, _, mapped = attach_program(segment.name)
            rng = random.Random(23)
            probes = [rng.getrandbits(32) for _ in range(400)]
            assert attached.lookup_batch(probes) == [
                fib.lookup(address) for address in probes
            ]
            detach_program(attached, mapped)
        finally:
            segment.close()
            segment.unlink()

    def test_merge_overlay_is_idempotent(self):
        fib, trie, program = overlay_program()
        rng = random.Random(5)
        probes = [rng.getrandbits(32) for _ in range(400)]
        before = program.lookup_batch(probes)
        assert program.merge_overlay() >= 1
        assert program._overlay is None
        assert program.merge_overlay() == 0
        assert program.lookup_batch(probes) == before
        assert before == [fib.lookup(address) for address in probes]

    def test_empty_overlay_fast_path_is_free(self, paper_fib):
        program = compile_binary(BinaryTrie.from_fib(paper_fib).root, 32, 8)
        assert program._overlay is None  # compile never allocates one
        assert program.merge_overlay() == 0
        assert program._overlay is None

    def test_repeated_identical_patches_do_not_grow_arrays(self):
        # Regression: re-announcing an unchanged route below the bloat
        # threshold must not append fresh cell blocks every time. The
        # per-slot source cache certifies the subtree is already
        # compiled and skips the re-emit.
        fib = Fib(32)
        fib.add(0xAB, 8, 1)
        fib.add(0xABCD, 16, 2)
        trie = BinaryTrie.from_fib(fib)
        program = compile_binary(trie.root, 32, 8)
        trie.insert(0xAB, 8, 1)
        program.patch(0xAB, 8, trie.root, leaf_pushed=False)
        settled = len(program.cell_ptr)
        for _ in range(100):
            trie.insert(0xAB, 8, 1)
            program.patch(0xAB, 8, trie.root, leaf_pushed=False)
        assert len(program.cell_ptr) == settled
        assert program.patch_skips_total >= 100
        assert not program.bloated
        assert program.lookup(0xABCD0000) == 2
        assert program.lookup(0xAB000000) == 1


class TestDeltaPublish:
    def test_terminal_updates_ride_delta_to_workers(self):
        from repro.serve.workers import WorkerPool

        rng = random.Random(42)
        fib = Fib(32)
        for _ in range(40):  # routes only under 0/1: upper half empty
            length = rng.randint(4, 14)
            fib.add(rng.getrandbits(length - 1), length, rng.randint(1, 4))
        with WorkerPool(
            "prefix-dag", fib, workers=2, transport="shm"
        ) as pool:
            if pool.transport != "shm":
                pytest.skip("shared memory unavailable on this host")
            assert pool.apply_update(UpdateOp(1, 1, 7)) is True
            pool.quiesce()
            assert pool.lookup(0xF0F0F0F0) == 7
            report = pool.report()
            assert report.delta_publishes >= 1
            probes = [rng.getrandbits(32) for _ in range(256)]
            mirror = fib.copy()
            mirror.update(1, 1, 7)
            assert pool.lookup_batch(probes) == [
                mirror.lookup(address) for address in probes
            ]
