"""Unit and property tests for the wavelet tree."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.succinct.rrr import RRRBitVector
from repro.succinct.wavelet import WaveletTree


def naive_rank(sequence, symbol, position):
    return sum(1 for s in sequence[:position] if s == symbol)


def naive_select(sequence, symbol, occurrence):
    seen = 0
    for index, s in enumerate(sequence):
        if s == symbol:
            seen += 1
            if seen == occurrence:
                return index
    raise IndexError


class TestConstruction:
    def test_empty_sequence(self):
        wt = WaveletTree([])
        assert len(wt) == 0
        assert wt.rank(1, 0) == 0

    def test_single_symbol_sequence(self):
        wt = WaveletTree([7, 7, 7])
        assert wt.access(1) == 7
        assert wt.rank(7, 3) == 3
        assert wt.select(7, 2) == 1

    def test_rejects_unknown_shape(self):
        with pytest.raises(ValueError):
            WaveletTree([1, 2], shape="mystery")

    def test_alphabet(self):
        wt = WaveletTree([3, 1, 2, 1])
        assert wt.alphabet == [1, 2, 3]


class TestQueries:
    SEQUENCE = [2, 3, 2, 2, 1, 3, 1, 2, 2]

    @pytest.fixture(params=["huffman", "balanced"])
    def tree(self, request):
        return WaveletTree(self.SEQUENCE, shape=request.param)

    def test_access(self, tree):
        for index, symbol in enumerate(self.SEQUENCE):
            assert tree.access(index) == symbol

    def test_access_bounds(self, tree):
        with pytest.raises(IndexError):
            tree.access(len(self.SEQUENCE))

    def test_rank(self, tree):
        for symbol in (1, 2, 3):
            for position in range(len(self.SEQUENCE) + 1):
                assert tree.rank(symbol, position) == naive_rank(
                    self.SEQUENCE, symbol, position
                )

    def test_rank_absent_symbol(self, tree):
        assert tree.rank(99, 5) == 0

    def test_select(self, tree):
        for symbol in (1, 2, 3):
            total = self.SEQUENCE.count(symbol)
            for occurrence in range(1, total + 1):
                assert tree.select(symbol, occurrence) == naive_select(
                    self.SEQUENCE, symbol, occurrence
                )

    def test_select_bounds(self, tree):
        with pytest.raises(IndexError):
            tree.select(1, 3)
        with pytest.raises(KeyError):
            tree.select(99, 1)

    def test_to_list(self, tree):
        assert tree.to_list() == self.SEQUENCE


class TestProperties:
    @given(st.lists(st.integers(0, 12), min_size=1, max_size=250),
           st.sampled_from(["huffman", "balanced"]))
    @settings(max_examples=50)
    def test_access_roundtrip(self, sequence, shape):
        wt = WaveletTree(sequence, shape=shape)
        assert wt.to_list() == sequence

    @given(st.lists(st.integers(0, 6), min_size=1, max_size=150))
    @settings(max_examples=40)
    def test_rank_select_consistency(self, sequence):
        wt = WaveletTree(sequence)
        for symbol in set(sequence):
            total = wt.rank(symbol, len(sequence))
            assert total == sequence.count(symbol)
            for occurrence in range(1, total + 1):
                position = wt.select(symbol, occurrence)
                assert sequence[position] == symbol
                assert wt.rank(symbol, position + 1) == occurrence


class TestShapesAndBacking:
    def test_huffman_smaller_on_skewed_data(self):
        rng = random.Random(2)
        sequence = [rng.choices([1, 2, 3, 4, 5, 6, 7, 8], weights=[128, 8, 4, 2, 1, 1, 1, 1])[0]
                    for _ in range(4000)]
        huff = WaveletTree(sequence, shape="huffman")
        flat = WaveletTree(sequence, shape="balanced")
        assert huff.size_in_bits() < flat.size_in_bits()

    def test_rrr_backing(self):
        rng = random.Random(6)
        sequence = [rng.choice([1, 2, 3]) for _ in range(500)]
        wt = WaveletTree(sequence, bitvector_factory=RRRBitVector)
        assert wt.to_list() == sequence
        for position in range(0, 501, 50):
            assert wt.rank(2, position) == naive_rank(sequence, 2, position)

    def test_trace_access(self):
        sequence = [1, 2, 1, 3, 1, 2] * 40
        wt = WaveletTree(sequence)
        symbol, addresses = wt.trace_access(13)
        assert symbol == sequence[13]
        assert addresses  # internal nodes were visited
