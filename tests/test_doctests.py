"""Run the doctest examples embedded in module and package docstrings.

The usage examples in docstrings are part of the public documentation;
this keeps them honest.
"""

import doctest

import pytest

import repro
import repro.pipeline
import repro.serve
import repro.serve.cluster
import repro.utils.bits
import repro.utils.lambertw


@pytest.mark.parametrize(
    "module",
    [
        repro,
        repro.pipeline,
        repro.serve,
        repro.serve.cluster,
        repro.utils.bits,
        repro.utils.lambertw,
    ],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failure(s) in {module.__name__}"
    assert results.attempted > 0, f"no doctests found in {module.__name__}"
