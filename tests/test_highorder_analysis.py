"""Unit tests for the higher-order S_α entropy analysis."""

import pytest

from repro.analysis.highorder import (
    label_string,
    measure_high_order,
    render_high_order,
)
from repro.datasets.profiles import build_profile_fib, profile


class TestHighOrder:
    def test_label_string_matches_fig2(self, paper_fib):
        assert label_string(paper_fib) == [2, 3, 2, 2, 1]

    def test_measure_fields(self, medium_fib):
        report = measure_high_order(medium_fib, name="medium")
        assert report.leaves > 0
        assert report.h0 >= report.h1 - 1e9  # both defined
        assert 0.0 <= report.h1
        assert 0.0 <= report.h2

    def test_headroom_range(self, medium_fib):
        report = measure_high_order(medium_fib)
        assert -0.1 <= report.order1_headroom <= 1.0
        assert -0.1 <= report.order2_headroom <= 1.0

    def test_realistic_fibs_show_context(self):
        # BFS clusters same-level leaves, so even our IID-labeled
        # stand-ins show H1 < H0 — the contextual dependency §3.2
        # speculates about. (Real FIBs, whose next-hops correlate with
        # topology, would show more.)
        fib = build_profile_fib(profile("as6447"), scale=0.01)
        report = measure_high_order(fib, name="as6447")
        assert report.h1 < report.h0
        assert report.order1_headroom > 0.05

    def test_iid_labels_show_little_context(self):
        fib = build_profile_fib(profile("taz"), scale=0.01)
        report = measure_high_order(fib, name="taz")
        assert report.h1 <= report.h0
        assert report.order1_headroom < 0.2

    def test_zero_entropy_fib(self):
        from repro.core.fib import Fib

        fib = Fib()
        fib.add(0, 0, 1)
        report = measure_high_order(fib)
        assert report.h0 == 0.0
        assert report.order1_headroom == 0.0

    def test_render(self, medium_fib):
        text = render_high_order([measure_high_order(medium_fib, name="m")])
        assert "headroom" in text and "m" in text
