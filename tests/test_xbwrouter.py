"""Unit tests for the XBW-b update-batching router wrapper."""

import random

import pytest

from repro.core.trie import BinaryTrie
from repro.core.xbwrouter import XBWbRouter

from tests.conftest import random_fib


class TestConstruction:
    def test_from_fib_and_trie(self, paper_fib):
        via_fib = XBWbRouter(paper_fib)
        via_trie = XBWbRouter(BinaryTrie.from_fib(paper_fib))
        assert via_fib.lookup(0b0111 << 28) == via_trie.lookup(0b0111 << 28) == 1

    def test_rejects_bad_inputs(self, paper_fib):
        with pytest.raises(TypeError):
            XBWbRouter(42)
        with pytest.raises(ValueError):
            XBWbRouter(paper_fib, rebuild_threshold=-1)

    def test_source_not_aliased(self, paper_fib):
        trie = BinaryTrie.from_fib(paper_fib)
        router = XBWbRouter(trie)
        trie.insert(0b111, 3, 9)
        assert router.lookup(0b1110 << 28) == 2  # unaffected


class TestUpdateBatching:
    def test_dirty_until_flush(self, paper_fib):
        router = XBWbRouter(paper_fib, rebuild_threshold=100)
        router.update(0b111, 3, 9)
        assert router.is_dirty
        assert router.pending_updates == 1
        router.flush()
        assert not router.is_dirty
        assert router.counters.rebuilds == 1

    def test_flush_noop_when_clean(self, paper_fib):
        router = XBWbRouter(paper_fib)
        router.flush()
        assert router.counters.rebuilds == 0

    def test_threshold_zero_rebuilds_every_update(self, paper_fib):
        router = XBWbRouter(paper_fib, rebuild_threshold=0)
        router.update(0b111, 3, 9)
        router.update(0b110, 3, 8)
        assert router.counters.rebuilds == 2
        assert not router.is_dirty

    def test_threshold_batches(self, paper_fib):
        router = XBWbRouter(paper_fib, rebuild_threshold=3)
        router.update(0b100, 3, 1)
        router.update(0b101, 3, 2)
        assert router.counters.rebuilds == 0
        router.update(0b110, 3, 3)
        assert router.counters.rebuilds == 1

    def test_withdraw_propagates(self, paper_fib):
        router = XBWbRouter(paper_fib, rebuild_threshold=0)
        router.update(0b011, 3, None)
        assert router.lookup(0b0111 << 28) == 2  # falls back to 01/2
        with pytest.raises(KeyError):
            router.update(0b011, 3, None)

    def test_rejects_invalid_label(self, paper_fib):
        router = XBWbRouter(paper_fib)
        with pytest.raises(ValueError):
            router.update(0, 1, 0)


class TestLookupCorrectness:
    def test_dirty_lookups_are_correct(self, paper_fib):
        router = XBWbRouter(paper_fib, rebuild_threshold=1000)
        router.update(0b111, 3, 9)
        # Image is stale, but lookups must reflect the update already.
        assert router.lookup(0b1110 << 28) == 9
        assert router.counters.slow_lookups == 1
        router.flush()
        assert router.lookup(0b1110 << 28) == 9
        assert router.counters.fast_lookups == 1

    def test_long_random_session(self, rng):
        fib = random_fib(rng, 50, 4, max_length=10)
        router = XBWbRouter(fib, rebuild_threshold=7)
        reference = BinaryTrie.from_fib(fib)
        for step in range(120):
            length = rng.randint(0, 10)
            value = rng.getrandbits(length) if length else 0
            if rng.random() < 0.25:
                try:
                    router.update(value, length, None)
                    reference.delete(value, length)
                except KeyError:
                    pass
            else:
                label = rng.randint(1, 4)
                router.update(value, length, label)
                reference.insert(value, length, label)
            if step % 3 == 0:
                address = rng.getrandbits(32)
                assert router.lookup(address) == reference.lookup(address)
        router.flush()
        for _ in range(150):
            address = rng.getrandbits(32)
            assert router.lookup(address) == reference.lookup(address)
        # Bogus withdrawals raise and do not count as updates.
        assert router.counters.rebuilds >= router.counters.updates // 7


class TestSizing:
    def test_size_is_image_size(self, paper_fib):
        router = XBWbRouter(paper_fib)
        assert router.size_in_bits() == router.image().size_in_bits()

    def test_repr(self, paper_fib):
        assert "XBWbRouter" in repr(XBWbRouter(paper_fib))
