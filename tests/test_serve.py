"""Tests for repro.serve: scenario scripts, FibServer planes, CLI.

The serving engine's contract mirrors the parity discipline of
``repro-fib compare`` under churn: every representation replaying the
same scenario script must end fully synchronized with the control
oracle (100% post-quiescence parity), staleness may only appear on the
epoch-rebuild plane, and the scripts themselves are deterministic per
seed so results are comparable across backends.
"""

from __future__ import annotations

import json

import pytest

from tests.conftest import random_fib
from repro import serve
from repro.analysis import assert_serve_parity, render_churn_rows
from repro.cli import main
from repro.datasets import apply_updates, caida_like_trace, uniform_trace
from repro.serve.scenarios import _interleave


class TestScenarios:
    def test_names_listed(self):
        assert serve.scenario_names() == [
            "bgp-churn",
            "flap-storm",
            "flash-renumbering",
            "uniform",
        ]

    def test_unknown_scenario_raises_with_listing(self):
        with pytest.raises(KeyError, match="bgp-churn"):
            serve.scenario("frobnicate")

    @pytest.mark.parametrize("name", ["uniform", "bgp-churn", "flash-renumbering", "flap-storm"])
    def test_scripts_deterministic(self, medium_fib, name):
        build = lambda: serve.build_events(
            serve.scenario(name), medium_fib, lookups=300, updates=40, seed=9
        )
        assert build() == build()

    def test_different_seeds_differ(self, medium_fib):
        one = serve.build_events(serve.scenario("uniform"), medium_fib, 300, 40, seed=1)
        two = serve.build_events(serve.scenario("uniform"), medium_fib, 300, 40, seed=2)
        assert one != two

    def test_event_counts_and_timestamps(self, medium_fib):
        events = serve.build_events(
            serve.scenario("bgp-churn"), medium_fib, lookups=500, updates=30,
            seed=3, batch_size=100,
        )
        lookups = [e for e in events if e.is_lookup]
        updates = [e for e in events if not e.is_lookup]
        assert sum(len(e.addresses) for e in lookups) == 500
        assert len(lookups) == 5
        assert len(updates) == 30
        times = [e.time for e in events]
        assert times == sorted(times)
        assert all(0.0 <= t < 1.0 for t in times)

    def test_even_placement_interleaves(self, medium_fib):
        events = serve.build_events(
            serve.scenario("uniform"), medium_fib, lookups=400, updates=40,
            seed=4, batch_size=100,
        )
        kinds = [e.kind for e in events]
        # Updates spread across the stream: some before the last batch
        # and some after the first, not one contiguous block.
        first_lookup = kinds.index("lookup")
        last_lookup = len(kinds) - 1 - kinds[::-1].index("lookup")
        assert "update" in kinds[first_lookup + 1 : last_lookup]

    def test_burst_placement_is_contiguous(self, medium_fib):
        events = serve.build_events(
            serve.scenario("flash-renumbering"), medium_fib,
            lookups=400, updates=20, seed=5, batch_size=100,
        )
        update_positions = [i for i, e in enumerate(events) if not e.is_lookup]
        assert update_positions  # the burst exists...
        span = update_positions[-1] - update_positions[0]
        assert span == len(update_positions) - 1  # ...and is contiguous
        assert update_positions[0] > 0            # mid-stream, not a prefix

    def test_flash_renumbering_targets_existing_routes(self, medium_fib):
        events = serve.build_events(
            serve.scenario("flash-renumbering"), medium_fib, 100, 25, seed=6
        )
        for event in events:
            if not event.is_lookup:
                op = event.op
                assert medium_fib.get(op.prefix, op.length) is not None
                assert not op.is_withdraw

    def test_flap_storm_withdraws_then_reannounces(self, medium_fib):
        events = serve.build_events(
            serve.scenario("flap-storm"), medium_fib, 100, 30, seed=7
        )
        ops = [e.op for e in events if not e.is_lookup]
        withdraws = [op for op in ops if op.is_withdraw]
        announces = [op for op in ops if not op.is_withdraw]
        assert withdraws and announces
        # Replaying the whole storm onto a copy never loses routes for
        # good: every withdrawal is eventually matched by a re-announce
        # of the same prefix (modulo a trailing in-flight withdrawal).
        flapped = {(op.prefix, op.length) for op in ops}
        assert flapped <= {(r.prefix, r.length) for r in medium_fib}

    def test_empty_script(self, paper_fib):
        assert serve.build_events(serve.scenario("uniform"), paper_fib, 0, 0, seed=1) == []

    def test_bad_arguments_rejected(self, paper_fib):
        with pytest.raises(ValueError, match="non-negative"):
            serve.build_events(serve.scenario("uniform"), paper_fib, -1, 0)
        with pytest.raises(ValueError, match="batch size"):
            serve.build_events(serve.scenario("uniform"), paper_fib, 10, 0, batch_size=0)

    def test_interleave_handles_more_updates_than_batches(self):
        from repro.datasets.updates import UpdateOp

        ops = [UpdateOp(0, 1, i + 1) for i in range(7)]
        events = _interleave([(1, 2), (3, 4)], ops, bursts=0)
        assert sum(1 for e in events if not e.is_lookup) == 7
        assert sum(1 for e in events if e.is_lookup) == 2


class TestFibServer:
    def _script(self, fib, **kw):
        kw.setdefault("lookups", 600)
        kw.setdefault("updates", 50)
        kw.setdefault("seed", 11)
        kw.setdefault("batch_size", 100)
        return serve.build_events(serve.scenario("bgp-churn"), fib, **kw)

    def test_incremental_plane_never_stale(self, rng):
        fib = random_fib(rng, 200, 4, max_length=14)
        server = serve.FibServer("prefix-dag", fib, options={"barrier": 8})
        server.replay(self._script(fib))
        assert server.incremental
        report = server.report(scenario="bgp-churn")
        assert report.rebuilds == 0
        assert report.stale_lookups == 0
        assert report.label_mismatches == 0
        assert report.staleness == 0.0
        probes = uniform_trace(400, seed=1)
        assert server.parity_fraction(probes) == 1.0

    def test_rebuild_plane_epochs_and_staleness(self, rng):
        fib = random_fib(rng, 200, 4, max_length=14)
        server = serve.FibServer("lc-trie", fib, rebuild_every=16)
        events = self._script(fib)
        server.replay(events)
        assert not server.incremental
        applied = server.report().updates_applied
        assert server.rebuilds == applied // 16
        report = server.report(scenario="bgp-churn")
        assert report.stale_lookups > 0
        # Post-quiescence the generation catches up completely.
        server.quiesce()
        assert not server.is_stale
        probes = uniform_trace(200, seed=2) + caida_like_trace(fib, 200, seed=3)
        assert server.parity_fraction(probes) == 1.0

    def test_quiesce_rebuilds_only_when_pending(self, paper_fib):
        server = serve.FibServer("xbw", paper_fib)
        server.quiesce()
        assert server.rebuilds == 0
        from repro.datasets.updates import UpdateOp

        assert server.apply_update(UpdateOp(0b111, 3, 2))
        assert server.is_stale
        server.quiesce()
        assert server.rebuilds == 1
        assert server.generation == 1
        assert not server.is_stale
        assert server.lookup((0b111 << 29) | 5) == 2

    def test_bogus_withdrawal_skipped_everywhere(self, paper_fib):
        from repro.datasets.updates import UpdateOp

        bogus = UpdateOp(0x7F, 7, None)  # no such route
        for name in ("prefix-dag", "lc-trie"):
            server = serve.FibServer(name, paper_fib)
            assert not server.apply_update(bogus)
            report = server.report()
            assert report.updates_skipped == 1
            assert report.updates_applied == 0
            assert not server.is_stale

    def test_peak_size_spans_generations(self, rng):
        fib = random_fib(rng, 150, 3, max_length=12)
        server = serve.FibServer("serialized-dag", fib, rebuild_every=8)
        server.replay(self._script(fib, updates=40))
        server.quiesce()
        report = server.report()
        # During an epoch swap the outgoing and fresh generations
        # coexist: the high-water mark must count both.
        assert report.peak_size_bits > report.size_bits
        assert report.rebuilds >= 1
        assert report.rebuild_cycles > 0

    def test_scalar_mode_matches_batched(self, rng):
        fib = random_fib(rng, 120, 3, max_length=12)
        events = self._script(fib, lookups=200, updates=10)
        batched = serve.serve_scenario("prefix-dag", fib, events)
        scalar = serve.serve_scenario("prefix-dag", fib, events, batched=False)
        assert batched.lookups == scalar.lookups == 200
        assert batched.updates_applied == scalar.updates_applied

    def test_serve_scenario_wrapper_reports_parity(self, rng):
        fib = random_fib(rng, 150, 4, max_length=12)
        events = self._script(fib)
        probes = uniform_trace(300, seed=4)
        reports = [
            serve.serve_scenario(
                name, fib, events, scenario="bgp-churn", parity_probes=probes
            )
            for name in ("prefix-dag", "lc-trie", "serialized-dag")
        ]
        assert_serve_parity(reports)  # no raise: all at 100%
        by_name = {report.name: report for report in reports}
        assert by_name["prefix-dag"].staleness == 0.0
        assert by_name["lc-trie"].staleness > 0.0
        assert by_name["serialized-dag"].staleness > 0.0
        table = render_churn_rows(reports)
        assert "prefix-dag" in table and "incremental" in table and "rebuild" in table

    def test_assert_serve_parity_raises(self, rng):
        fib = random_fib(rng, 50, 3, max_length=10)
        events = self._script(fib, lookups=100, updates=5)
        report = serve.serve_scenario("prefix-dag", fib, events, scenario="x")
        report.final_parity = 0.5
        with pytest.raises(AssertionError, match="parity broken"):
            assert_serve_parity([report])

    def test_oracle_matches_apply_updates_replay(self, rng):
        # The server's control FIB evolves exactly as apply_updates on a
        # plain Fib copy (the shared skip-bogus-withdrawals semantics).
        fib = random_fib(rng, 150, 4, max_length=12)
        events = self._script(fib)
        mirror = fib.copy()
        apply_updates(mirror, [e.op for e in events if not e.is_lookup])
        server = serve.FibServer("prefix-dag", fib)
        server.replay(events)
        assert server.control == mirror

    def test_bad_rebuild_every_rejected(self, paper_fib):
        with pytest.raises(ValueError, match="rebuild_every"):
            serve.FibServer("xbw", paper_fib, rebuild_every=0)

    def test_report_round_trips_to_json(self, rng):
        fib = random_fib(rng, 80, 3, max_length=10)
        report = serve.serve_scenario(
            "lc-trie", fib, self._script(fib, lookups=100, updates=10), scenario="bgp-churn"
        )
        record = json.loads(json.dumps(report.to_dict()))
        assert record["name"] == "lc-trie"
        assert record["plane"] == "rebuild"
        assert record["lookups"] == 100
        assert 0.0 <= record["staleness"] <= 1.0


class TestServeCli:
    def test_serve_smoke(self, capsys):
        assert (
            main(
                [
                    "serve",
                    "--scale",
                    "0.002",
                    "--scenario",
                    "bgp-churn",
                    "--updates",
                    "30",
                    "--lookups",
                    "300",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "prefix-dag" in out and "lc-trie" in out and "serialized-dag" in out
        assert "incremental" in out and "rebuild" in out

    def test_serve_json_written(self, tmp_path, capsys):
        path = tmp_path / "BENCH_serve.json"
        assert (
            main(
                [
                    "serve",
                    "--scale",
                    "0.002",
                    "--updates",
                    "20",
                    "--lookups",
                    "200",
                    "--representations",
                    "prefix-dag",
                    "xbw",
                    "--json",
                    str(path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        payload = json.loads(path.read_text())
        assert payload["command"] == "serve"
        assert [row["name"] for row in payload["rows"]] == ["prefix-dag", "xbw"]
        for row in payload["rows"]:
            assert row["final_parity"] == 1.0

    def test_serve_scenario_choices(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--scenario", "nonsense"])

    def test_bench_json_written(self, tmp_path, capsys):
        path = tmp_path / "bench.json"
        assert (
            main(
                [
                    "bench",
                    "--scale",
                    "0.002",
                    "--packets",
                    "500",
                    "--repeat",
                    "1",
                    "--representations",
                    "prefix-dag",
                    "--json",
                    str(path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        payload = json.loads(path.read_text())
        assert payload["command"] == "bench"
        (row,) = payload["rows"]
        assert row["name"] == "prefix-dag"
        assert row["speedup"] > 0


class TestServeCliWorkers:
    def test_workers_smoke_parity_gated(self, tmp_path, capsys):
        path = tmp_path / "workers.json"
        assert (
            main(
                [
                    "serve",
                    "--scale", "0.002",
                    "--scenario", "uniform",
                    "--updates", "30",
                    "--lookups", "300",
                    "--workers", "2",
                    "--representations", "prefix-dag",
                    "--json", str(path),
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "2 prefix-partitioned spawn workers" in captured.out
        assert "wall Mlps" in captured.out
        assert "serve parity OK" in captured.err
        payload = json.loads(path.read_text())
        assert payload["workers"] == 2
        assert payload["start_method"] == "spawn"
        (row,) = payload["rows"]
        assert row["final_parity"] == 1.0
        assert row["measured_lookup_mlps"] > 0

    def test_workers_and_shards_are_mutually_exclusive(self, capsys):
        assert (
            main(
                [
                    "serve",
                    "--scale", "0.002",
                    "--workers", "2",
                    "--shards", "2",
                ]
            )
            == 2
        )
        assert "pick one" in capsys.readouterr().err

    @staticmethod
    def _serve_payload(tmp_path, seed, run):
        path = tmp_path / f"serve-{seed}-{run}.json"
        assert (
            main(
                [
                    "serve",
                    "--scale", "0.002",
                    "--scenario", "flap-storm",
                    "--updates", "40",
                    "--lookups", "400",
                    "--seed", str(seed),
                    "--representations", "prefix-dag",
                    "--json", str(path),
                ]
            )
            == 0
        )
        payload = json.loads(path.read_text())
        # Strip wall-clock fields: determinism covers the script and
        # every counter, not machine timing.
        (row,) = payload["rows"]
        return {
            key: value
            for key, value in row.items()
            if not any(part in key for part in ("second", "mlps", "kops", "per_"))
        }

    def test_seed_makes_smoke_runs_deterministic(self, tmp_path, capsys):
        first = self._serve_payload(tmp_path, seed=7, run=1)
        second = self._serve_payload(tmp_path, seed=7, run=2)
        capsys.readouterr()
        assert first == second
        assert first["updates_applied"] > 0

    def test_different_seeds_script_different_runs(self, tmp_path, capsys):
        first = self._serve_payload(tmp_path, seed=7, run=1)
        other = self._serve_payload(tmp_path, seed=8, run=1)
        capsys.readouterr()
        assert first != other
