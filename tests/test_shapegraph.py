"""Unit tests for the Shape graph baseline (§6 related work)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.shapegraph import ShapeGraph
from repro.core.prefixdag import PrefixDag
from repro.core.trie import BinaryTrie

from tests.conftest import assert_forwarding_equivalent, random_fib


class TestLookup:
    def test_paper_example(self, paper_fib, rng):
        trie = BinaryTrie.from_fib(paper_fib)
        shape = ShapeGraph(paper_fib)
        assert_forwarding_equivalent(trie.lookup, shape.lookup, rng)

    @given(st.integers(0, 2**31))
    @settings(max_examples=30, deadline=None)
    def test_equivalence_random(self, seed):
        rng = random.Random(seed)
        fib = random_fib(rng, 40, 4, max_length=12)
        trie = BinaryTrie.from_fib(fib)
        shape = ShapeGraph(fib)
        for _ in range(60):
            address = rng.getrandbits(32)
            assert shape.lookup(address) == trie.lookup(address)

    def test_lookup_with_depth(self, medium_fib, rng):
        shape = ShapeGraph(medium_fib)
        label, depth = shape.lookup_with_depth(rng.getrandbits(32))
        assert 0 <= depth <= 32


class TestStructure:
    def test_shape_merging_is_aggressive(self, medium_fib):
        # Ignoring labels merges at least as much as respecting them.
        shape = ShapeGraph(medium_fib)
        labeled = PrefixDag(medium_fib, barrier=0)
        assert shape.shape_node_count() <= labeled.node_count()

    def test_hash_holds_all_labeled_leaves(self, paper_fib):
        shape = ShapeGraph(paper_fib)
        # Fig 1(e): 5 leaves, all labeled (no bottom leaves here).
        assert shape.hash_entries() == 5

    def test_bottom_leaves_not_hashed(self):
        from repro.core.fib import Fib

        fib = Fib()
        fib.add(0b1, 1, 4)  # half the space unrouted
        shape = ShapeGraph(fib)
        assert shape.hash_entries() == 1

    def test_hash_dominates_size(self, medium_fib):
        # The paper's criticism: the next-hop hash is the giant part.
        shape = ShapeGraph(medium_fib)
        assert shape.hash_size_in_bits() > shape.shape_size_in_bits()

    def test_pdag_beats_shapegraph_total(self, medium_fib):
        # Label-aware folding wins overall (the point of §6).
        shape = ShapeGraph(medium_fib)
        dag = PrefixDag(medium_fib, barrier=0)
        assert dag.size_in_bits() < shape.size_in_bits()

    def test_size_components(self, medium_fib):
        shape = ShapeGraph(medium_fib)
        assert shape.size_in_bits() == (
            shape.shape_size_in_bits() + shape.hash_size_in_bits()
        )
        assert shape.size_in_kbytes() == pytest.approx(shape.size_in_bits() / 8192)

    def test_repr(self, paper_fib):
        assert "ShapeGraph" in repr(ShapeGraph(paper_fib))
