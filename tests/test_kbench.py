"""Unit tests for the kbench wall-clock harness."""

import pytest

from repro.simulator.kbench import kbench, udpflood


class TestKbench:
    def test_basic_run(self):
        result = kbench(lambda a: a & 1, list(range(2000)), name="parity")
        assert result.name == "parity"
        assert result.lookups == 2000
        assert result.elapsed_seconds > 0
        assert result.lookups_per_second > 0
        assert result.nanoseconds_per_lookup > 0

    def test_repeat_takes_min(self):
        single = kbench(lambda a: a, list(range(500)), repeat=1)
        multi = kbench(lambda a: a, list(range(500)), repeat=3)
        assert multi.elapsed_seconds <= single.elapsed_seconds * 3

    def test_rejects_bad_repeat(self):
        with pytest.raises(ValueError):
            kbench(lambda a: a, [1], repeat=0)

    def test_mlps_consistency(self):
        result = kbench(lambda a: a, list(range(1000)))
        assert result.million_lookups_per_second == pytest.approx(
            result.lookups_per_second / 1e6
        )


class TestUdpflood:
    def test_cycles_through_addresses(self):
        seen = []
        udpflood(seen.append, [10, 20], 5)
        assert seen == [10, 20, 10, 20, 10]

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            udpflood(lambda a: a, [], 10)
        with pytest.raises(ValueError):
            udpflood(lambda a: a, [1], -1)
