"""Unit tests for the text interchange formats."""

import pytest

from repro.core.fib import Fib
from repro.datasets.fileio import dump_fib, dump_updates, load_fib, load_updates
from repro.datasets.updates import UpdateOp


class TestFibFiles:
    def test_roundtrip(self, paper_fib, tmp_path):
        path = tmp_path / "paper.fib"
        dump_fib(paper_fib, path)
        assert load_fib(path) == paper_fib

    def test_roundtrip_random(self, medium_fib, tmp_path):
        path = tmp_path / "medium.fib"
        dump_fib(medium_fib, path)
        assert load_fib(path) == medium_fib

    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "hand.fib"
        path.write_text("# comment\n\n10.0.0.0/8 3  # trailing comment\n")
        fib = load_fib(path)
        assert fib.get(10, 8) == 3

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "bad.fib"
        path.write_text("10.0.0.0/8\n")
        with pytest.raises(ValueError, match="bad.fib:1"):
            load_fib(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.fib"
        path.write_text("")
        assert len(load_fib(path)) == 0


class TestUpdateFiles:
    def test_roundtrip(self, tmp_path):
        ops = [
            UpdateOp(0b1010, 4, 3),
            UpdateOp(0, 0, 1),
            UpdateOp(0b11, 2, None),
        ]
        path = tmp_path / "feed.log"
        dump_updates(ops, path)
        assert load_updates(path) == ops

    def test_malformed_op(self, tmp_path):
        path = tmp_path / "bad.log"
        path.write_text("X 10.0.0.0/8 1\n")
        with pytest.raises(ValueError):
            load_updates(path)

    def test_announce_missing_label(self, tmp_path):
        path = tmp_path / "bad2.log"
        path.write_text("A 10.0.0.0/8\n")
        with pytest.raises(ValueError):
            load_updates(path)

    def test_generated_feed_roundtrip(self, medium_fib, tmp_path):
        from repro.datasets.updates import bgp_update_sequence

        ops = bgp_update_sequence(medium_fib, 50, seed=1, withdraw_fraction=0.2)
        path = tmp_path / "bgp.log"
        dump_updates(ops, path)
        assert load_updates(path) == ops
