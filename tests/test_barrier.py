"""Unit tests for leaf-push barrier selection (equations (2) and (3))."""

import math

import pytest

from repro.core.barrier import (
    barrier_sweep,
    entropy_barrier,
    info_theoretic_barrier,
    update_bound_nodes,
)


class TestEquation2:
    def test_degenerate_inputs(self):
        assert info_theoretic_barrier(0, 4) == 0
        assert info_theoretic_barrier(100, 1) == 0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            info_theoretic_barrier(-1, 2)
        with pytest.raises(ValueError):
            info_theoretic_barrier(10, 0)

    def test_realistic_fib(self):
        # 440K prefixes, 4 next-hops: the paper operates at lambda ~ 11.
        barrier = info_theoretic_barrier(440_000, 4)
        assert 10 <= barrier <= 15

    def test_clamped_to_width(self):
        assert info_theoretic_barrier(2**40, 256, width=32) == 32

    def test_monotone_in_n(self):
        barriers = [info_theoretic_barrier(n, 4) for n in (100, 10_000, 1_000_000)]
        assert barriers == sorted(barriers)


class TestEquation3:
    def test_degenerate_inputs(self):
        assert entropy_barrier(0, 1.0) == 0
        assert entropy_barrier(100, 0.0) == 0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            entropy_barrier(-1, 1.0)
        with pytest.raises(ValueError):
            entropy_barrier(10, -0.5)

    def test_realistic_fib(self):
        barrier = entropy_barrier(440_000, 1.0)
        assert 10 <= barrier <= 14

    def test_reduces_to_eq2_at_max_entropy(self):
        # Footnote 2: (3) transforms into (2) at H0 = lg delta.
        for n in (10_000, 500_000):
            for delta in (2, 4, 16):
                assert entropy_barrier(n, math.log2(delta)) == info_theoretic_barrier(
                    n, delta
                )

    def test_lower_entropy_lower_barrier(self):
        high = entropy_barrier(500_000, 4.0)
        low = entropy_barrier(500_000, 0.1)
        assert low <= high


class TestHelpers:
    def test_sweep(self):
        assert list(barrier_sweep(width=4)) == [0, 1, 2, 3, 4]
        assert list(barrier_sweep(width=8, step=4)) == [0, 4, 8]

    def test_update_bound(self):
        assert update_bound_nodes(32, 32) == 33
        assert update_bound_nodes(32, 11) == 32 + (1 << 21)
        assert update_bound_nodes(32, 0) == 32 + 2**32
