"""Bench-trajectory regression gate.

Compares freshly generated ``BENCH_*.json`` trajectory files against
the committed baselines and fails (exit 1) when a gated metric dropped
by more than the tolerance (default 30%).

What is gated — and what deliberately is not:

* **Ratio metrics only.** Absolute throughput (Mlps) depends on the
  machine: the committed baseline was produced on whatever hardware cut
  the PR, the fresh run on whatever runner CI handed out, so comparing
  them gate-hard would only measure the hardware lottery. Ratios —
  compiled-vs-scalar speedup, cluster-vs-single-server speedup,
  worker-vs-single-process wall speedup — divide the machine out:
  both sides of each ratio ran on the *same* host in the *same* run.
  Absolute fields are still reported, as warnings, when they drop.
* **Comparable runs only.** The workers trajectory is wall-clock and
  records whether its floor was ``gated`` (enough CPUs); a wall-clock
  ratio from a 1-core laptop baseline says nothing about a 4-core CI
  run, so worker speedups are compared only when *both* sides were
  gated.
* **Matching configs only.** A ratio from a 0.05-scale 2^16-lookup run
  says nothing about a 0.01-scale smoke run; when the workload knobs
  (scale, packet/lookup counts, seed, representation) differ between
  baseline and fresh, the file is skipped with a warning instead of
  compared — committed baselines are regenerated whenever the CI bench
  config changes.
* **Missing files skip.** A trajectory absent on either side is noted
  and skipped, so the gate can be adopted file by file (pass
  ``--strict`` to make a missing fresh file an error). With
  ``--seed-missing`` a missing or unreadable committed baseline is
  *seeded* from the fresh run — the gate stays inert for that file on
  this run (and says so) but bites from the next baseline commit on.
* **No silent vacuous passes.** A baseline that parses but yields no
  comparable metrics (an empty ``rows`` list, a ``[]`` file, a stale
  schema) compares nothing — the gate warns exactly which file was
  skipped and why instead of reporting success on zero comparisons.

Usage (what CI runs after regenerating the trajectories)::

    python benchmarks/check_trajectory.py \
        --baseline-dir .ci-baselines --fresh-dir . [--tolerance 0.30]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, Iterator, List, Tuple

#: Trajectory files the gate knows how to compare. BENCH_serve.json is
#: compared warn-only: it carries no machine-normalized ratio (its
#: parity gate lives in the ``repro-fib serve`` run that produces it).
TRAJECTORIES = (
    "BENCH_pipeline.json",
    "BENCH_serve.json",
    "BENCH_cluster.json",
    "BENCH_workers.json",
    "BENCH_faults.json",
    "BENCH_autoscale.json",
)

#: Default allowed relative drop of a gated ratio metric.
DEFAULT_TOLERANCE = 0.30

#: Gated ratios are clamped here before comparison. Far above every
#: floor the CI enforces (1.5x/2.0x/2.5x), far below the pathological
#: ratios (XBW's batch path is >1000x its scalar walk) whose exact
#: value is machine lottery: the gate exists to catch a plane sliding
#: toward 1x, not to referee noise at the three-digit end.
RATIO_CAP = 64.0


def _pipeline_metrics(payload: dict) -> Iterator[Tuple[str, float, bool]]:
    """(metric, value, gated) triples of one BENCH_pipeline.json."""
    for row in payload.get("rows", ()):
        name = row.get("name", "?")
        if "speedup" in row:
            yield f"{name}.speedup", row["speedup"], True
        if row.get("compiled") and "compiled_speedup" in row:
            yield f"{name}.compiled_speedup", row["compiled_speedup"], True
        if "batch_mlps" in row:
            yield f"{name}.batch_mlps", row["batch_mlps"], False


def _scaling_point(key: str) -> bool:
    """True for multi-shard/worker speedup keys. The degenerate
    ``1-*`` point measures fan-out overhead against an almost
    identical run: its ratio hovers near 1.0 with scheduler-noise
    swings far beyond any tolerance, so it warns instead of gating."""
    return not key.startswith("1-")


def _serve_metrics(payload: dict) -> Iterator[Tuple[str, float, bool]]:
    """Rows are warn-only: they hold absolute rates (runner lottery)
    and final_parity, whose hard gate is the producing command's. The
    ``patch_cost`` record's bounded ratio (naive region slots over
    write operations actually issued by the worst-case /2 patch) is a
    deterministic counter ratio — machine independent, higher is
    better — so it gates; its wall-clock and events/sec ride warn-only.
    """
    for row in payload.get("rows", ()):
        name = row.get("name", "?")
        for field in ("lookup_mlps", "update_kops", "final_parity"):
            value = row.get(field)
            if isinstance(value, (int, float)):
                yield f"{name}.{field}", value, False
    patch = payload.get("patch_cost")
    if isinstance(patch, dict):
        ratio = patch.get("bounded_ratio")
        if isinstance(ratio, (int, float)):
            yield "patch_cost.bounded_ratio", ratio, True
        for field in ("slots_touched", "seconds", "events_per_second"):
            value = patch.get(field)
            if isinstance(value, (int, float)):
                yield f"patch_cost.{field}", value, False


def _cluster_metrics(payload: dict) -> Iterator[Tuple[str, float, bool]]:
    for key, value in sorted(payload.get("speedups", {}).items()):
        yield f"speedup.{key}", value, _scaling_point(key)
    baseline = payload.get("baseline", {})
    if "lookup_mlps" in baseline:
        yield "baseline.lookup_mlps", baseline["lookup_mlps"], False


def _workers_metrics(payload: dict) -> Iterator[Tuple[str, float, bool]]:
    # Wall-clock ratios compare only between runs that actually had the
    # cores to scale (the producing bench records `gated`).
    gated = bool(payload.get("gated"))
    for key, value in sorted(payload.get("speedups", {}).items()):
        yield f"speedup.{key}", value, gated and _scaling_point(key)
    # compiled_speedup / model_agreement are per-transport dicts since
    # the shm plane landed ({"shm": x, "pipe": y}); older baselines
    # recorded a single float, which stays warn-only (a 1-CPU
    # agreement number is noise, not a ratchet). The shm compiled
    # ratio is the zero-copy acceptance bar and the agreement ratios
    # are the model validation — both gate only when the runs on both
    # sides had the cores; the pipe compiled foil always warns.
    for field in ("compiled_speedup", "model_agreement"):
        value = payload.get(field)
        if isinstance(value, dict):
            for transport, ratio in sorted(value.items()):
                gate = gated and (
                    field == "model_agreement"
                    or (field == "compiled_speedup" and transport == "shm")
                )
                yield f"{field}.{transport}", ratio, gate
        elif isinstance(value, (int, float)):
            yield field, value, False
    if "baseline_mlps" in payload:
        yield "baseline_mlps", payload["baseline_mlps"], False


def _faults_metrics(payload: dict) -> Iterator[Tuple[str, float, bool]]:
    # Availability and post-recovery parity are machine-independent
    # correctness ratios — gated. MTTR is wall-clock (dominated by the
    # respawned interpreter's boot, i.e. runner lottery) and the
    # degraded/retry split depends on failure-vs-respawn timing: both
    # warn-only.
    for case, row in sorted(payload.get("cases", {}).items()):
        for field, gate in (
            ("availability", True),
            ("final_parity", True),
            ("mttr_seconds", False),
            ("restarts", False),
        ):
            value = row.get(field)
            if isinstance(value, (int, float)):
                yield f"{case}.{field}", value, gate


def _autoscale_metrics(payload: dict) -> Iterator[Tuple[str, float, bool]]:
    # Window efficiency and parity are busy-time / agreement ratios —
    # both sides of each came from the same host in the same run, so
    # they gate. The flow-cache hit rate is a deterministic counter
    # ratio (same trace, same capacity -> same hits), gated too. The
    # drift-phase efficiency is *supposed* to be bad and the re-plan
    # count depends on when the threshold trips: warn-only.
    for field, gate in (
        ("converged_efficiency", True),
        ("final_parity", True),
        ("skewed_efficiency", False),
        ("replans", False),
        ("lookups_during_replan", False),
    ):
        value = payload.get(field)
        if isinstance(value, (int, float)):
            yield field, value, gate
    flow = payload.get("flow_cache")
    if isinstance(flow, dict):
        for field, gate in (("hit_rate", True), ("final_parity", True)):
            value = flow.get(field)
            if isinstance(value, (int, float)):
                yield f"flow_cache.{field}", value, gate


_EXTRACTORS = {
    "BENCH_pipeline.json": _pipeline_metrics,
    "BENCH_serve.json": _serve_metrics,
    "BENCH_cluster.json": _cluster_metrics,
    "BENCH_workers.json": _workers_metrics,
    "BENCH_faults.json": _faults_metrics,
    "BENCH_autoscale.json": _autoscale_metrics,
}

#: Workload knobs that must agree before two runs of a file compare.
_CONFIG_KEYS = {
    "BENCH_pipeline.json": ("profile", "scale", "packets", "stride"),
    "BENCH_serve.json": (
        "scenario", "profile", "scale", "lookups", "updates",
        "rebuild_every", "batch_size", "seed", "shards",
    ),
    "BENCH_cluster.json": (
        "profile", "scale", "lookups", "updates", "batch_size", "seed",
        "representation",
    ),
    "BENCH_workers.json": (
        "profile", "scale", "lookups", "updates", "batch_size", "seed",
        "representation",
    ),
    "BENCH_faults.json": (
        "profile", "scale", "lookups", "updates", "batch_size", "seed",
        "workers", "max_restarts", "representation",
    ),
    "BENCH_autoscale.json": (
        "profile", "scale", "lookups", "updates", "batch_size", "seed",
        "representation", "shards", "granularity", "imbalance_threshold",
    ),
}


def _config_mismatch(name: str, baseline: dict, fresh: dict) -> List[str]:
    """The config knobs on which the two runs disagree (empty = comparable)."""
    return [
        key
        for key in _CONFIG_KEYS[name]
        if baseline.get(key) != fresh.get(key)
    ]


def _metrics(name: str, payload: dict) -> Dict[str, Tuple[float, bool]]:
    return {
        metric: (value, gated)
        for metric, value, gated in _EXTRACTORS[name](payload)
    }


def compare_trajectory(
    name: str, baseline: dict, fresh: dict, tolerance: float
) -> Tuple[List[str], List[str]]:
    """(failures, warnings) from one baseline/fresh trajectory pair.

    A *gated* metric (a machine-normalized ratio, gated on both sides)
    fails when ``fresh < baseline * (1 - tolerance)``; any other metric
    that dropped past the tolerance only warns.
    """
    failures: List[str] = []
    warnings: List[str] = []
    if not isinstance(baseline, dict) or not isinstance(fresh, dict):
        # A seeded-but-never-run trajectory is committed as `[]`; a
        # bare list (or any non-object) holds no config and no rows.
        side = "baseline" if not isinstance(baseline, dict) else "fresh run"
        warnings.append(
            f"{name}: {side} is not a trajectory object "
            "(empty-seed `[]`?); nothing compared — regenerate it"
        )
        return failures, warnings
    mismatched = _config_mismatch(name, baseline, fresh)
    if mismatched:
        warnings.append(
            f"{name}: bench config changed ({', '.join(mismatched)}); "
            "baseline not comparable, skipped — regenerate the committed "
            "baseline with the new config"
        )
        return failures, warnings
    base = _metrics(name, baseline)
    new = _metrics(name, fresh)
    if not base:
        # Zero comparisons is not a pass: say which file contributed
        # nothing (empty rows, stale schema) instead of staying silent.
        warnings.append(
            f"{name}: baseline yields no comparable metrics "
            "(empty rows or stale schema); nothing gated — regenerate "
            "the committed baseline"
        )
        return failures, warnings
    if not new:
        warnings.append(
            f"{name}: fresh run yields no comparable metrics; nothing gated"
        )
        return failures, warnings
    for metric, (base_value, base_gated) in sorted(base.items()):
        if metric not in new:
            warnings.append(f"{name}: {metric} missing from the fresh run")
            continue
        new_value, new_gated = new[metric]
        if new_gated and not base_gated:
            # The fresh run could be gated but the committed baseline
            # was not (e.g. recorded on a <4-CPU box): the gate is
            # inert for this metric until the baseline is regenerated
            # on gated hardware — say so on every run, not just drops.
            warnings.append(
                f"{name}: {metric} baseline was recorded ungated — gate "
                "inert; regenerate the committed baseline on gated hardware"
            )
        if base_value <= 0:
            continue
        gate = base_gated and new_gated
        if gate:  # clamp: see RATIO_CAP
            compared_base = min(base_value, RATIO_CAP)
            compared_new = min(new_value, RATIO_CAP)
        else:
            compared_base, compared_new = base_value, new_value
        drop = 1.0 - compared_new / compared_base
        if drop <= tolerance:
            continue
        message = (
            f"{name}: {metric} regressed {drop * 100:.0f}% "
            f"({base_value:.3f} -> {new_value:.3f}, tolerance {tolerance * 100:.0f}%)"
        )
        if gate:
            failures.append(message)
        else:
            warnings.append(f"{message} [ungated metric: warning only]")
    return failures, warnings


def _load(path: Path) -> Tuple[object, str]:
    """(payload, error) — error is '' when the file parsed."""
    try:
        return json.loads(path.read_text()), ""
    except (OSError, ValueError) as error:
        return None, str(error)


def check(
    baseline_dir: Path,
    fresh_dir: Path,
    tolerance: float = DEFAULT_TOLERANCE,
    strict: bool = False,
    seed_missing: bool = False,
) -> Tuple[List[str], List[str]]:
    """(failures, warnings) across every known trajectory file.

    ``seed_missing`` copies the fresh trajectory over a missing or
    unparseable committed baseline instead of merely skipping it: the
    gate stays inert for that file on this run (the warning says so)
    but has a baseline to bite on from the next commit.
    """
    failures: List[str] = []
    warnings: List[str] = []
    for name in TRAJECTORIES:
        baseline_path = baseline_dir / name
        fresh_path = fresh_dir / name
        baseline, baseline_error = (
            _load(baseline_path) if baseline_path.is_file() else (None, "absent")
        )
        if not fresh_path.is_file():
            message = f"{name}: fresh trajectory missing"
            (failures if strict else warnings).append(message)
            continue
        if baseline_error:
            reason = (
                "no committed baseline"
                if baseline_error == "absent"
                else f"unreadable baseline ({baseline_error})"
            )
            if seed_missing:
                baseline_dir.mkdir(parents=True, exist_ok=True)
                baseline_path.write_text(fresh_path.read_text())
                warnings.append(
                    f"{name}: {reason}; seeded from the fresh run — gate "
                    "inert this run, commit the seeded baseline to arm it"
                )
            else:
                warnings.append(f"{name}: {reason}; skipped")
            continue
        fresh, fresh_error = _load(fresh_path)
        if fresh_error:
            message = f"{name}: unreadable fresh trajectory ({fresh_error})"
            (failures if strict else warnings).append(message)
            continue
        failures_, warnings_ = compare_trajectory(
            name, baseline, fresh, tolerance
        )
        failures.extend(failures_)
        warnings.extend(warnings_)
    return failures, warnings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="fail CI when a bench trajectory regressed past tolerance"
    )
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        required=True,
        help="directory holding the committed BENCH_*.json baselines",
    )
    parser.add_argument(
        "--fresh-dir",
        type=Path,
        required=True,
        help="directory holding the freshly generated BENCH_*.json files",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help=f"allowed relative drop (default {DEFAULT_TOLERANCE})",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="treat a missing fresh trajectory as a failure",
    )
    parser.add_argument(
        "--seed-missing",
        action="store_true",
        help="copy the fresh trajectory over a missing or unreadable "
        "committed baseline (gate inert for that file this run)",
    )
    args = parser.parse_args(argv)
    if not 0 <= args.tolerance < 1:
        parser.error(f"tolerance must be in [0, 1), got {args.tolerance}")
    failures, warnings = check(
        args.baseline_dir,
        args.fresh_dir,
        args.tolerance,
        args.strict,
        seed_missing=args.seed_missing,
    )
    for message in warnings:
        print(f"warning: {message}", file=sys.stderr)
    for message in failures:
        print(f"REGRESSION: {message}", file=sys.stderr)
    if failures:
        print(f"trajectory gate BROKEN ({len(failures)} regression(s))")
        return 1
    print("trajectory gate OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
