"""Shared fixtures for the benchmark harness.

Every ``bench_*`` file regenerates one paper artifact (table or figure).
Datasets are built once per session at ``REPRO_SCALE`` (default 0.05 —
taz becomes ~20K prefixes; set ``REPRO_FULL=1`` for the paper's full
410K–1M sizes) and rendered reports are written to ``results/`` as well
as printed, so ``pytest benchmarks/ --benchmark-only`` leaves the
reproduced tables on disk for EXPERIMENTS.md.
"""

from __future__ import annotations

import functools
from pathlib import Path

import pytest

from repro.datasets.profiles import TABLE1_PROFILES, build_profile_fib, configured_scale, profile

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

DEFAULT_SCALE = 0.05


@functools.lru_cache(maxsize=None)
def cached_profile_fib(name: str, scale: float):
    return build_profile_fib(profile(name), scale=scale)


@pytest.fixture(scope="session")
def scale() -> float:
    return configured_scale(DEFAULT_SCALE)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def profile_fib(scale):
    """Factory: scaled stand-in FIB for a named Table 1 profile."""

    def build(name: str):
        return cached_profile_fib(name, scale)

    return build


def write_report(results_dir: Path, name: str, text: str) -> None:
    """Print a reproduced artifact and persist it under results/."""
    print(text)
    (results_dir / name).write_text(text + "\n")


@pytest.fixture(scope="session")
def report_writer(results_dir):
    return functools.partial(write_report, results_dir)


def all_profile_names():
    return sorted(TABLE1_PROFILES)
