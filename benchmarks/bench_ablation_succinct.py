"""Ablation — XBW-b storage backends.

Lemma 2 uses RRR for ``S_I`` and Lemma 3 a Huffman-shaped wavelet tree
for ``S_α``; the paper's prototype took both from libcds. This ablation
swaps each component (plain bitvector vs RRR; balanced vs Huffman
wavelet; RRR block sizes) and reports size and lookup cost, quantifying
how much each choice contributes to "XBW-b very closely matches entropy
bounds". Written to ``results/ablation_succinct.txt``.
"""

from __future__ import annotations

import functools
import time

import pytest

from repro.analysis.report import banner, render_table
from repro.core.entropy import fib_entropy
from repro.core.xbw import XBWb
from repro.datasets.traces import uniform_trace
from repro.succinct.bitvector import BitVector
from repro.succinct.rrr import RRRBitVector

VARIANTS = {
    "rrr15+huffman": dict(bitvector_factory=RRRBitVector, wavelet_shape="huffman"),
    "rrr15+balanced": dict(bitvector_factory=RRRBitVector, wavelet_shape="balanced"),
    "plain+huffman": dict(bitvector_factory=BitVector, wavelet_shape="huffman"),
    "rrr7+huffman": dict(
        bitvector_factory=functools.partial(RRRBitVector, block_bits=7),
        wavelet_shape="huffman",
    ),
    "rrr31+huffman": dict(
        bitvector_factory=functools.partial(RRRBitVector, block_bits=31),
        wavelet_shape="huffman",
    ),
}

_ROWS = {}


@pytest.mark.parametrize("variant", sorted(VARIANTS))
def test_xbw_variant(benchmark, profile_fib, variant):
    fib = profile_fib("taz")

    def build():
        return XBWb.from_fib(fib, **VARIANTS[variant])

    xbw = benchmark.pedantic(build, iterations=1, rounds=1)
    addresses = uniform_trace(300, seed=5)
    start = time.perf_counter()
    for address in addresses:
        xbw.lookup(address)
    lookup_us = (time.perf_counter() - start) * 1e6 / len(addresses)
    _ROWS[variant] = (
        variant,
        round(xbw.size_in_kbytes(), 1),
        round(lookup_us, 1),
    )
    benchmark.extra_info.update(size_kb=round(xbw.size_in_kbytes(), 1))


def test_succinct_ablation_report(benchmark, profile_fib, report_writer):
    assert _ROWS
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    fib = profile_fib("taz")
    report = fib_entropy(fib)
    rows = [_ROWS[name] for name in sorted(_ROWS)]
    text = (
        banner(
            f"Ablation: XBW-b backends on taz "
            f"(E = {report.entropy_kbytes:.1f} KB, I = {report.info_bound_kbytes:.1f} KB)"
        )
        + "\n"
        + render_table(("variant", "size[KB]", "lookup[us]"), rows)
    )
    report_writer("ablation_succinct.txt", text)

    sizes = {name: row[1] for name, row in _ROWS.items()}
    # The entropy-aware pairing must be the smallest configuration.
    assert sizes["rrr15+huffman"] <= sizes["plain+huffman"]
    assert sizes["rrr15+huffman"] <= sizes["rrr15+balanced"] * 1.05
