"""Ablation — multibit prefix DAGs and the Shape-graph alternative.

Two §6/§7 comparisons on one table:

* **stride sweep** (§7 future work): folding over 2^s-ary tries cuts the
  lookup depth from W toward W/s at a measured memory cost;
* **Shape graphs** (§6 related work): merging sub-trees *without* labels
  shrinks the DAG itself but pays for a giant next-hop hash, losing to
  label-aware folding in total.

Written to ``results/ablation_multibit.txt``.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import banner, render_table
from repro.baselines.shapegraph import ShapeGraph
from repro.core.multibit import MultibitDag
from repro.core.prefixdag import PrefixDag
from repro.core.trie import BinaryTrie
from repro.datasets.traces import uniform_trace

STRIDES = (1, 2, 4, 8)
_ROWS = []


@pytest.fixture(scope="module")
def fib(profile_fib):
    return profile_fib("taz")


@pytest.fixture(scope="module")
def reference(fib):
    return BinaryTrie.from_fib(fib)


@pytest.mark.parametrize("stride", STRIDES)
def test_multibit_stride(benchmark, fib, reference, stride):
    def build():
        return MultibitDag(fib, stride=stride)

    dag = benchmark.pedantic(build, iterations=1, rounds=1)
    for address in uniform_trace(300, seed=9):
        assert dag.lookup(address) == reference.lookup(address)
    _ROWS.append(
        (
            f"multibit s={stride}",
            dag.interior_count(),
            dag.max_depth(),
            round(dag.size_in_kbytes(), 1),
        )
    )
    benchmark.extra_info.update(
        stride=stride, size_kb=round(dag.size_in_kbytes(), 1), depth=dag.max_depth()
    )


def test_shapegraph_vs_pdag(benchmark, fib, reference):
    def build():
        return ShapeGraph(fib)

    shape = benchmark.pedantic(build, iterations=1, rounds=1)
    for address in uniform_trace(300, seed=9):
        assert shape.lookup(address) == reference.lookup(address)
    pdag = PrefixDag(fib, barrier=0)
    _ROWS.append(
        (
            "shape graph",
            shape.shape_node_count(),
            32,
            round(shape.size_in_kbytes(), 1),
        )
    )
    _ROWS.append(
        (
            "pDAG (lambda=0)",
            pdag.node_count(),
            pdag.depth_profile()[1],
            round(pdag.size_in_kbytes(), 1),
        )
    )
    # §6's point, quantified: fewer shape nodes, but a larger total.
    assert shape.shape_node_count() < pdag.node_count()
    assert shape.size_in_bits() > pdag.size_in_bits()


def test_multibit_ablation_report(benchmark, report_writer):
    assert _ROWS
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    text = (
        banner("Ablation: multibit strides and shape graphs on taz")
        + "\n"
        + render_table(("structure", "nodes", "max depth", "size[KB]"), _ROWS)
    )
    report_writer("ablation_multibit.txt", text)

    by_name = {row[0]: row for row in _ROWS}
    # Depth falls with stride; size grows.
    assert by_name["multibit s=8"][2] <= by_name["multibit s=1"][2]
    assert by_name["multibit s=8"][3] >= by_name["multibit s=1"][3]
