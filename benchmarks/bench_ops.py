"""Operation-level micro-benchmarks.

Not a paper artifact: these pytest-benchmark timings give per-operation
wall-clock costs (build, lookup, update, succinct primitives) so that
regressions in any layer show up without rerunning the full table
harnesses.
"""

from __future__ import annotations

import random

import pytest

from repro.baselines.lctrie import fib_trie
from repro.core.prefixdag import PrefixDag
from repro.core.serialize import SerializedDag
from repro.core.trie import BinaryTrie
from repro.core.xbw import XBWb
from repro.datasets.profiles import PRIMARY_PROFILE
from repro.datasets.traces import uniform_trace
from repro.datasets.updates import bgp_update_sequence
from repro.succinct.rrr import RRRBitVector
from repro.succinct.wavelet import WaveletTree


@pytest.fixture(scope="module")
def fib(profile_fib):
    return profile_fib(PRIMARY_PROFILE)


@pytest.fixture(scope="module")
def dag(fib):
    return PrefixDag(fib, barrier=11)


@pytest.fixture(scope="module")
def image(dag):
    return SerializedDag(dag)


@pytest.fixture(scope="module")
def addresses():
    return uniform_trace(2000, seed=1)


class TestBuilds:
    def test_binary_trie_build(self, benchmark, fib):
        benchmark.pedantic(BinaryTrie.from_fib, args=(fib,), iterations=1, rounds=3)

    def test_prefix_dag_build(self, benchmark, fib):
        benchmark.pedantic(
            lambda: PrefixDag(fib, barrier=11), iterations=1, rounds=3
        )

    def test_xbw_build(self, benchmark, fib):
        benchmark.pedantic(XBWb.from_fib, args=(fib,), iterations=1, rounds=1)

    def test_serialize_build(self, benchmark, dag):
        benchmark.pedantic(lambda: SerializedDag(dag), iterations=1, rounds=3)

    def test_lctrie_build(self, benchmark, fib):
        benchmark.pedantic(lambda: fib_trie(fib), iterations=1, rounds=3)


class TestLookups:
    def test_binary_trie_lookup(self, benchmark, fib, addresses):
        trie = BinaryTrie.from_fib(fib)
        benchmark(lambda: [trie.lookup(a) for a in addresses[:500]])

    def test_dag_lookup(self, benchmark, dag, addresses):
        benchmark(lambda: [dag.lookup(a) for a in addresses[:500]])

    def test_image_lookup(self, benchmark, image, addresses):
        benchmark(lambda: [image.lookup(a) for a in addresses[:500]])

    def test_lctrie_lookup(self, benchmark, fib, addresses):
        lct = fib_trie(fib)
        benchmark(lambda: [lct.lookup(a) for a in addresses[:500]])

    def test_xbw_lookup(self, benchmark, fib, addresses):
        xbw = XBWb.from_fib(fib)
        benchmark(lambda: [xbw.lookup(a) for a in addresses[:50]])


class TestUpdates:
    def test_dag_bgp_updates(self, benchmark, fib):
        ops = bgp_update_sequence(fib, 200, seed=2)
        dag = PrefixDag(fib, barrier=11)

        def replay():
            for op in ops:
                try:
                    dag.update(op.prefix, op.length, op.label)
                except KeyError:
                    pass

        benchmark.pedantic(replay, iterations=1, rounds=3)

    def test_control_trie_updates(self, benchmark, fib):
        ops = bgp_update_sequence(fib, 200, seed=2)
        trie = BinaryTrie.from_fib(fib)

        def replay():
            for op in ops:
                trie.insert(op.prefix, op.length, op.label)

        benchmark.pedantic(replay, iterations=1, rounds=3)


class TestSuccinctPrimitives:
    @pytest.fixture(scope="class")
    def rrr(self):
        rng = random.Random(3)
        return RRRBitVector([rng.randint(0, 1) for _ in range(200_000)])

    @pytest.fixture(scope="class")
    def wavelet(self):
        rng = random.Random(4)
        return WaveletTree([rng.choice([1, 1, 1, 2, 3]) for _ in range(100_000)])

    def test_rrr_rank(self, benchmark, rrr):
        positions = list(range(0, 200_000, 97))
        benchmark(lambda: [rrr.rank1(p) for p in positions])

    def test_rrr_access(self, benchmark, rrr):
        positions = list(range(0, 200_000, 97))
        benchmark(lambda: [rrr.access(p) for p in positions])

    def test_wavelet_access(self, benchmark, wavelet):
        positions = list(range(0, 100_000, 97))
        benchmark(lambda: [wavelet.access(p) for p in positions])

    def test_wavelet_rank(self, benchmark, wavelet):
        positions = list(range(0, 100_000, 97))
        benchmark(lambda: [wavelet.rank(1, p) for p in positions])
