"""Online serving engine — mixed-workload throughput, batched vs scalar.

The serving engine replays one BGP-churn scenario script (lookups
interleaved with route updates, see :mod:`repro.serve.scenarios`)
through the prefix DAG twice: once serving lookup events through the
pipeline's ``lookup_batch`` fast path and once through the per-address
scalar loop. The acceptance floor — batched serving at least 1.5x the
scalar loop on the mixed workload — is asserted so a regression in the
serving path fails the harness. A churn-throughput table across one
incremental and two rebuild-based planes is recorded alongside.

Results go to ``results/serve_throughput.txt``.
"""

from __future__ import annotations

import json
import random
from pathlib import Path
from time import perf_counter

import pytest

from repro import serve
from repro.analysis import assert_serve_parity, render_churn_rows
from repro.analysis.report import banner
from repro.core.trie import BinaryTrie
from repro.datasets.profiles import PRIMARY_PROFILE
from repro.datasets.traces import uniform_trace
from repro.obs import NULL_REGISTRY, Registry
from repro.pipeline.flat import compile_binary

LOOKUPS = 20_000
UPDATES = 200
BATCH_SIZE = 512
BENCH_STRIDE = 16  # big dispatch for the throughput runs (2^16 slots)
#: Mixed-workload floor: batched serving vs the per-address loop.
SPEEDUP_FLOOR = 1.5
#: Telemetry cost bars: the instrumented fast path may not give up more
#: than 10% mixed-workload throughput (hard), 3% draws a warning.
OBS_OVERHEAD_WARN = 0.03
OBS_OVERHEAD_FAIL = 0.10
#: Bounded-cost bar for the worst-case short-prefix patch: write
#: operations issued must stay under the naive per-slot walk of the
#: edit's root region by at least this factor.
PATCH_BOUNDED_RATIO_FLOOR = 2.0
BENCH_SERVE_JSON = Path(__file__).resolve().parent.parent / "BENCH_serve.json"


@pytest.fixture(scope="module")
def events(profile_fib):
    fib = profile_fib(PRIMARY_PROFILE)
    return serve.build_events(
        serve.scenario("bgp-churn"),
        fib,
        lookups=LOOKUPS,
        updates=UPDATES,
        seed=42,
        batch_size=BATCH_SIZE,
    )


def _serve_once(fib, events, batched: bool):
    return serve.serve_scenario(
        "prefix-dag",
        fib,
        events,
        scenario="bgp-churn",
        options={"dispatch_stride": BENCH_STRIDE},
        batched=batched,
        measure_staleness=False,  # timing run: no oracle audits
    )


def test_batched_serving_beats_scalar(benchmark, profile_fib, events, report_writer, scale):
    fib = profile_fib(PRIMARY_PROFILE)
    scalar = _serve_once(fib, events, batched=False)

    batched_reports = []

    def run():
        batched_reports.append(_serve_once(fib, events, batched=True))

    benchmark(run)
    batched = batched_reports[-1]

    speedup = (
        scalar.serve_seconds / batched.serve_seconds
        if batched.serve_seconds
        else 0.0
    )
    text = banner(
        f"serve throughput on {PRIMARY_PROFILE} (scale {scale}, "
        f"{LOOKUPS} lookups / {UPDATES} updates, bgp-churn)"
    )
    text += "\n" + render_churn_rows([batched, scalar])
    text += (
        f"\nmixed-workload events/sec: batched {batched.events_per_second:,.0f}"
        f" vs scalar {scalar.events_per_second:,.0f} ({speedup:.2f}x)"
    )
    report_writer("serve_throughput.txt", text)

    assert batched.lookups == scalar.lookups == LOOKUPS
    assert speedup > SPEEDUP_FLOOR, (
        f"batched serving only {speedup:.2f}x over the per-address loop "
        f"(floor {SPEEDUP_FLOOR}x)"
    )


def test_obs_overhead_gate(profile_fib, events, report_writer, scale):
    """The telemetry plane must be near-free when enabled.

    Replays the same scenario with and without a live registry
    (best-of-3 each, interleaved so thermal drift hits both sides) and
    gates the events/sec gap: warn past 3%, fail past 10%. The measured
    overhead is merged into ``BENCH_serve.json`` so the trajectory
    artifact carries it (reported, never drop-gated — lower is better
    and a *drop* in overhead is an improvement).

    Deliberately no ``benchmark`` fixture: CI's quick lane runs this
    file with ``-k obs_overhead`` and without pytest-benchmark.
    """
    fib = profile_fib(PRIMARY_PROFILE)

    def run(instrumented: bool) -> float:
        obs = Registry() if instrumented else NULL_REGISTRY
        report = serve.serve_scenario(
            "prefix-dag",
            fib,
            events,
            scenario="bgp-churn",
            options={"dispatch_stride": BENCH_STRIDE},
            measure_staleness=False,
            obs=obs,
        )
        if instrumented:
            assert report.obs is not None
            assert report.lookup_latency_p99 is not None
        return report.events_per_second

    run(True)  # warm both code paths before timing
    disabled = enabled = 0.0
    best_ratio = 0.0
    for _ in range(5):
        off = run(False)
        on = run(True)
        disabled = max(disabled, off)
        enabled = max(enabled, on)
        if off:
            # Adjacent runs share time-correlated machine noise (other
            # tenants, thermal state), so the per-round ratio is a far
            # steadier overhead estimate than cross-round maxima.
            best_ratio = max(best_ratio, on / off)
    overhead = max(0.0, 1.0 - best_ratio) if disabled else 0.0

    text = banner(
        f"obs overhead on {PRIMARY_PROFILE} (scale {scale}, bgp-churn)"
    )
    text += (
        f"\nevents/sec: disabled {disabled:,.0f} vs instrumented "
        f"{enabled:,.0f} ({overhead * 100:.2f}% overhead, "
        f"warn {OBS_OVERHEAD_WARN * 100:.0f}% / "
        f"fail {OBS_OVERHEAD_FAIL * 100:.0f}%)"
    )
    report_writer("obs_overhead.txt", text)

    record = {
        "events_per_second_disabled": disabled,
        "events_per_second_enabled": enabled,
        "overhead": overhead,
        "warn": OBS_OVERHEAD_WARN,
        "fail": OBS_OVERHEAD_FAIL,
    }
    payload = {}
    if BENCH_SERVE_JSON.is_file():
        try:
            loaded = json.loads(BENCH_SERVE_JSON.read_text())
            if isinstance(loaded, dict):
                payload = loaded
        except ValueError:
            pass  # reseed around a corrupt trajectory file
    payload["obs_overhead"] = record
    BENCH_SERVE_JSON.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    if overhead > OBS_OVERHEAD_WARN:
        import warnings

        warnings.warn(
            f"obs overhead {overhead * 100:.2f}% exceeds the "
            f"{OBS_OVERHEAD_WARN * 100:.0f}% comfort bar",
            stacklevel=1,
        )
    assert overhead < OBS_OVERHEAD_FAIL, (
        f"instrumented serving lost {overhead * 100:.2f}% events/sec "
        f"(bar {OBS_OVERHEAD_FAIL * 100:.0f}%)"
    )


def test_patch_cost_microbench(profile_fib, events, report_writer, scale):
    """Worst-case short-prefix patch cost on the compiled plane.

    A /2 label flip over the full PRIMARY_PROFILE table at the serving
    stride is the patch compiler's nightmare case: the edit's root
    region spans ``2**(stride-2)`` slots. The bounded-cost claim is a
    *counter* claim, not a wall-clock one: ``last_patch_slots`` counts
    write operations (a contiguous terminal run counts once, a skipped
    block re-emit counts zero), so the region/ops ratio is machine
    independent and gated by the trajectory checker. Wall-clock seconds
    and mixed-workload events/sec ride along as warn-only visibility.

    Deliberately no ``benchmark`` fixture: CI's quick lane runs this
    file with ``-k patch_cost`` and without pytest-benchmark.
    """
    fib = profile_fib(PRIMARY_PROFILE)
    trie = BinaryTrie.from_fib(fib)
    # The raw (un-folded) trie at the serving stride outgrows the
    # default dispatch-plane cell cap; the cap is a serving guard, not
    # a compiler limit, so raise it for the cost measurement.
    program = compile_binary(trie.root, fib.width, BENCH_STRIDE,
                             max_cells=1 << 26)
    stride = program.root_stride
    region_slots = 1 << max(0, stride - 2)
    mirror = fib.copy()

    slots_touched = 0
    skipped = 0
    best_seconds = None
    for round_number in range(6):  # label flips: every round does work
        label = 1 + (round_number & 1)
        mirror.update(0b01, 2, label)
        trie.insert(0b01, 2, label)
        skips_before = program.patch_skips_total
        started = perf_counter()
        program.patch(0b01, 2, trie.root, leaf_pushed=False)
        elapsed = perf_counter() - started
        slots_touched = max(slots_touched, program.last_patch_slots)
        skipped = max(skipped, program.patch_skips_total - skips_before)
        best_seconds = (
            elapsed if best_seconds is None else min(best_seconds, elapsed)
        )

    rng = random.Random(31)
    probes = [rng.getrandbits(fib.width) for _ in range(2000)]
    assert program.lookup_batch(probes) == [
        mirror.lookup(address) for address in probes
    ]

    bounded_ratio = region_slots / max(1, slots_touched)
    report = _serve_once(fib, events, batched=True)

    text = banner(
        f"patch cost on {PRIMARY_PROFILE} (scale {scale}, "
        f"/2 flip at stride {stride})"
    )
    text += (
        f"\nregion {region_slots:,} slots -> {slots_touched:,} write ops "
        f"({bounded_ratio:.1f}x under naive, {skipped:,} block re-emits "
        f"skipped) in {best_seconds * 1e3:.2f} ms"
        f"\nmixed-workload events/sec alongside: "
        f"{report.events_per_second:,.0f}"
    )
    report_writer("patch_cost.txt", text)

    record = {
        "stride": stride,
        "region_slots": region_slots,
        "slots_touched": slots_touched,
        "skipped_blocks": skipped,
        "bounded_ratio": bounded_ratio,
        "seconds": best_seconds,
        "events_per_second": report.events_per_second,
        "floor": PATCH_BOUNDED_RATIO_FLOOR,
    }
    payload = {}
    if BENCH_SERVE_JSON.is_file():
        try:
            loaded = json.loads(BENCH_SERVE_JSON.read_text())
            if isinstance(loaded, dict):
                payload = loaded
        except ValueError:
            pass  # reseed around a corrupt trajectory file
    payload["patch_cost"] = record
    BENCH_SERVE_JSON.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    assert bounded_ratio > PATCH_BOUNDED_RATIO_FLOOR, (
        f"worst-case /2 patch issued {slots_touched:,} write ops over a "
        f"{region_slots:,}-slot region ({bounded_ratio:.2f}x, floor "
        f"{PATCH_BOUNDED_RATIO_FLOOR}x)"
    )


def test_churn_table_across_planes(profile_fib, events, report_writer, scale):
    fib = profile_fib(PRIMARY_PROFILE)
    probes = uniform_trace(2000, seed=7, width=fib.width)
    reports = [
        serve.serve_scenario(
            name,
            fib,
            events,
            scenario="bgp-churn",
            parity_probes=probes,
        )
        for name in ("prefix-dag", "lc-trie", "serialized-dag")
    ]
    assert_serve_parity(reports)
    by_name = {report.name: report for report in reports}
    assert by_name["prefix-dag"].staleness == 0.0
    assert by_name["lc-trie"].staleness > 0.0
    assert by_name["serialized-dag"].staleness > 0.0
    text = banner(
        f"churn throughput on {PRIMARY_PROFILE} (scale {scale}, bgp-churn)"
    )
    text += "\n" + render_churn_rows(reports)
    report_writer("serve_churn.txt", text)
