"""Online serving engine — mixed-workload throughput, batched vs scalar.

The serving engine replays one BGP-churn scenario script (lookups
interleaved with route updates, see :mod:`repro.serve.scenarios`)
through the prefix DAG twice: once serving lookup events through the
pipeline's ``lookup_batch`` fast path and once through the per-address
scalar loop. The acceptance floor — batched serving at least 1.5x the
scalar loop on the mixed workload — is asserted so a regression in the
serving path fails the harness. A churn-throughput table across one
incremental and two rebuild-based planes is recorded alongside.

Results go to ``results/serve_throughput.txt``.
"""

from __future__ import annotations

import pytest

from repro import serve
from repro.analysis import assert_serve_parity, render_churn_rows
from repro.analysis.report import banner
from repro.datasets.profiles import PRIMARY_PROFILE
from repro.datasets.traces import uniform_trace

LOOKUPS = 20_000
UPDATES = 200
BATCH_SIZE = 512
BENCH_STRIDE = 16  # big dispatch for the throughput runs (2^16 slots)
#: Mixed-workload floor: batched serving vs the per-address loop.
SPEEDUP_FLOOR = 1.5


@pytest.fixture(scope="module")
def events(profile_fib):
    fib = profile_fib(PRIMARY_PROFILE)
    return serve.build_events(
        serve.scenario("bgp-churn"),
        fib,
        lookups=LOOKUPS,
        updates=UPDATES,
        seed=42,
        batch_size=BATCH_SIZE,
    )


def _serve_once(fib, events, batched: bool):
    return serve.serve_scenario(
        "prefix-dag",
        fib,
        events,
        scenario="bgp-churn",
        options={"dispatch_stride": BENCH_STRIDE},
        batched=batched,
        measure_staleness=False,  # timing run: no oracle audits
    )


def test_batched_serving_beats_scalar(benchmark, profile_fib, events, report_writer, scale):
    fib = profile_fib(PRIMARY_PROFILE)
    scalar = _serve_once(fib, events, batched=False)

    batched_reports = []

    def run():
        batched_reports.append(_serve_once(fib, events, batched=True))

    benchmark(run)
    batched = batched_reports[-1]

    speedup = (
        scalar.serve_seconds / batched.serve_seconds
        if batched.serve_seconds
        else 0.0
    )
    text = banner(
        f"serve throughput on {PRIMARY_PROFILE} (scale {scale}, "
        f"{LOOKUPS} lookups / {UPDATES} updates, bgp-churn)"
    )
    text += "\n" + render_churn_rows([batched, scalar])
    text += (
        f"\nmixed-workload events/sec: batched {batched.events_per_second:,.0f}"
        f" vs scalar {scalar.events_per_second:,.0f} ({speedup:.2f}x)"
    )
    report_writer("serve_throughput.txt", text)

    assert batched.lookups == scalar.lookups == LOOKUPS
    assert speedup > SPEEDUP_FLOOR, (
        f"batched serving only {speedup:.2f}x over the per-address loop "
        f"(floor {SPEEDUP_FLOOR}x)"
    )


def test_churn_table_across_planes(profile_fib, events, report_writer, scale):
    fib = profile_fib(PRIMARY_PROFILE)
    probes = uniform_trace(2000, seed=7, width=fib.width)
    reports = [
        serve.serve_scenario(
            name,
            fib,
            events,
            scenario="bgp-churn",
            parity_probes=probes,
        )
        for name in ("prefix-dag", "lc-trie", "serialized-dag")
    ]
    assert_serve_parity(reports)
    by_name = {report.name: report for report in reports}
    assert by_name["prefix-dag"].staleness == 0.0
    assert by_name["lc-trie"].staleness > 0.0
    assert by_name["serialized-dag"].staleness > 0.0
    text = banner(
        f"churn throughput on {PRIMARY_PROFILE} (scale {scale}, bgp-churn)"
    )
    text += "\n" + render_churn_rows(reports)
    report_writer("serve_churn.txt", text)
