"""Fig 7 — compression efficiency vs. entropy in the string model.

A complete binary trie over 2^17 Bernoulli(p) symbols (2^15 at reduced
scale) is folded with the equation (3) barrier for the paper's p grid;
we report H0, the string entropy nH0, the measured D(S) size and
ν = size / nH0. The paper again finds ν ≈ 3 with a more prominent
low-entropy spike than Fig 6. Written to ``results/fig7.txt``.
"""

from __future__ import annotations

import pytest

from repro.analysis.fig67 import BERNOULLI_GRID, measure_fig7_point, render_fig7
from repro.analysis.report import banner

_POINTS = {}


def string_length(scale: float) -> int:
    return 1 << 17 if scale >= 0.5 else 1 << 15


@pytest.mark.parametrize("p", BERNOULLI_GRID)
def test_fig7_point(benchmark, scale, p):
    length = string_length(scale)

    def measure():
        return measure_fig7_point(length, p, seed=70)

    point = benchmark.pedantic(measure, iterations=1, rounds=1)
    _POINTS[p] = point
    benchmark.extra_info.update(
        p=p, h0=round(point.h0, 3), nu=round(point.efficiency, 2), barrier=point.barrier
    )


def test_fig7_report(benchmark, report_writer, scale):
    assert _POINTS, "sweep points must run first"
    points = [_POINTS[p] for p in sorted(_POINTS)]
    text = benchmark.pedantic(
        lambda: banner(f"Fig 7 reproduction (string model, n = {string_length(scale)})")
        + "\n"
        + render_fig7(points),
        iterations=1,
        rounds=1,
    )
    report_writer("fig7.txt", text)

    # Entropy rises with p; the eq (3) barrier rises with it.
    h0s = [point.h0 for point in points]
    assert h0s == sorted(h0s)
    barriers = [point.barrier for point in points]
    assert barriers == sorted(barriers)

    # nu ~ 3 at moderate entropy, spiking at the low-entropy end.
    moderate = [point.efficiency for point in points if point.p >= 0.1]
    assert all(2.0 <= nu <= 6.0 for nu in moderate)
    assert points[0].efficiency > points[-1].efficiency
    # The measured D(S) never exceeds the Theorem 2 bound.
    from repro.analysis.bounds import check_theorem2
    from repro.core.stringmodel import FoldedString
    from repro.datasets.synthetic import bernoulli_string

    length = string_length(scale)
    for p in (0.05, 0.5):
        folded = FoldedString(bernoulli_string(length, p, seed=70))
        check = check_theorem2(folded.report())
        assert check.holds, str(check)
