"""Multi-process serving workers — wall-clock scaling and parity gates.

``bench_cluster`` validates the sharding *design* on a simulated
critical-path clock; this benchmark validates the clock itself. The
same uniform scenario script runs through a single in-process
``FibServer`` (the baseline, timed wall-clock around its batch calls)
and through ``repro.serve.workers`` pools of 1/2/4 real worker
processes, and the speedups compare **measured wall seconds** — pipes,
pickling, fan-out, merge and all — not modeled time.

Two workload points are recorded:

* **compute-bound** (the gated point) — ``binary-trie`` with
  ``compiled=False``, i.e. the dispatch engine's Python walk. Per-batch
  compute dwarfs transport, so the curve shows what the process fan-out
  buys on real cores.
* **transport-bound** (gated on the shm transport) — ``prefix-dag`` on
  the vectorized compiled plane, as a pure lookup storm (no churn:
  uniform updates trigger near-full root recompiles whose cost would
  drown the transport signal this point exists to expose), run once per
  transport. Single-process lookups are so fast that pipe transport
  rivals the lookup itself — which is exactly why this point is the
  transport comparison: the shm rings must clear the floor the pickled
  pipes cannot. The ``model_agreement`` column is the
  measured-vs-critical-path validation the ROADMAP asks for.

Gates:

* **parity** — every pool run must agree 100% with the tabular oracle
  after quiescence, on all four scenarios and both transports
  (``test_worker_parity``);
* **scaling floor** — at 4 workers the compute-bound point must serve
  at least :data:`WORKER_SPEEDUP_FLOOR` x the single-process baseline's
  wall-clock lookup throughput, and the compiled point over shm must
  clear :data:`COMPILED_SPEEDUP_FLOOR` x the single-process *compiled*
  baseline. Wall-clock scaling needs real cores, so the floors are
  asserted only when :func:`effective_cpus` >= :data:`MIN_GATED_CPUS`
  (CI's runners qualify; a 1-core laptop records the curves without
  gating them) — the JSON notes ``gated`` either way.

Results go to ``results/workers_scaling.txt`` and the JSON trajectory
to ``BENCH_workers.json`` at the repository root (CI uploads it next to
the other ``BENCH_*.json`` files and feeds ``check_trajectory.py``).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro import serve
from repro.analysis import render_worker_rows
from repro.analysis.report import banner
from repro.datasets.profiles import PRIMARY_PROFILE
from repro.serve.workers import pack_events

LOOKUPS = 1 << 17
UPDATES = 128
BATCH_SIZE = 1 << 14
SEED = 42
WORKER_CURVE = (1, 2, 4)
REPEAT = 2  # best-of; spawns are expensive, compute dominates anyway

#: The gated, compute-bound point: the dispatch engine's Python walk.
GATED_REPRESENTATION = "binary-trie"
GATED_OPTIONS = {"compiled": False}

#: The transport-bound point: the vectorized compiled plane, run once
#: per transport so the trajectory records what the shm rings buy.
COMPILED_REPRESENTATION = "prefix-dag"

#: Scaling floor: 4-worker wall-clock lookup throughput vs one process.
WORKER_SPEEDUP_FLOOR = 2.0

#: Compiled-point floor: the 4-worker shm pool vs the single-process
#: compiled baseline (the zero-copy acceptance bar; pipe is recorded
#: beside it, ungated).
COMPILED_SPEEDUP_FLOOR = 2.0

#: Cores needed before the wall-clock floor is asserted (4 workers plus
#: the frontend cannot overlap on fewer).
MIN_GATED_CPUS = 4

#: Parity gate coverage: every scenario, through a 2-worker pool.
PARITY_WORKERS = 2

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_workers.json"


def effective_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _uniform_events(fib, updates):
    return pack_events(
        serve.build_events(
            serve.scenario("uniform"),
            fib,
            lookups=LOOKUPS,
            updates=updates,
            seed=SEED,
            batch_size=BATCH_SIZE,
        )
    )


@pytest.fixture(scope="module")
def events(profile_fib):
    return _uniform_events(profile_fib(PRIMARY_PROFILE), UPDATES)


@pytest.fixture(scope="module")
def storm_events(profile_fib):
    """The compiled point's script: the same uniform lookups, no churn."""
    return _uniform_events(profile_fib(PRIMARY_PROFILE), 0)


@pytest.fixture(scope="module")
def probes(profile_fib):
    return serve.parity_probes(profile_fib(PRIMARY_PROFILE), 1000, seed=SEED)


def _baseline_wall(name, fib, events, options):
    """Single-process wall clock around the same replay the pool runs:
    lookup-batch calls timed wall-to-wall (patch drains included — they
    sit on the serving path there exactly as they do in a worker),
    updates applied between them."""
    best = None
    for _ in range(REPEAT):
        server = serve.FibServer(
            name,
            fib,
            options=options,
            measure_staleness=False,
        )
        wall = 0.0
        for event in events:
            if event.is_lookup:
                started = time.perf_counter()
                server.lookup_batch(event.addresses)
                wall += time.perf_counter() - started
            else:
                server.apply_update(event.op)
        server.quiesce()
        if best is None or wall < best:
            best = wall
    return LOOKUPS / best / 1e6  # wall-clock Mlps


def _serve_pool(name, fib, events, probes, workers, options, transport=None):
    best = None
    for _ in range(REPEAT):
        report = serve.serve_worker_scenario(
            name,
            fib,
            events,
            scenario="uniform",
            workers=workers,
            options=options,
            parity_probes=probes,
            transport=transport or serve.DEFAULT_TRANSPORT,
        )
        if best is None or report.measured_lookup_mlps > best.measured_lookup_mlps:
            best = report
    return best


def test_worker_scaling_curve(
    profile_fib, events, storm_events, probes, report_writer, scale
):
    fib = profile_fib(PRIMARY_PROFILE)
    cpus = effective_cpus()
    gated = cpus >= MIN_GATED_CPUS

    baseline_mlps = _baseline_wall(GATED_REPRESENTATION, fib, events, GATED_OPTIONS)
    reports = []
    for workers in WORKER_CURVE:
        # compiled=False leaves nothing to publish, so the curve pins
        # the pipe transport explicitly — the record stays comparable
        # across seeds whatever the default resolves to.
        report = _serve_pool(
            GATED_REPRESENTATION, fib, events, probes, workers, GATED_OPTIONS,
            transport="pipe",
        )
        # The parity gate holds on every worker count, gated or not.
        assert report.final_parity == 1.0, workers
        assert report.pending_updates == 0
        reports.append(report)
    speedups = {
        report.workers: report.measured_lookup_mlps / baseline_mlps
        for report in reports
    }

    # The transport-bound compiled point, once per transport: the
    # trajectory's transport-comparison axis. The shm row is the gated
    # one; the pipe row is the foil it is measured against.
    compiled_baseline = _baseline_wall(
        COMPILED_REPRESENTATION, fib, storm_events, None
    )
    compiled_rows = {}
    for transport in serve.TRANSPORTS:
        compiled = _serve_pool(
            COMPILED_REPRESENTATION, fib, storm_events, probes, 4, None,
            transport=transport,
        )
        assert compiled.final_parity == 1.0, transport
        # The acceptance record: measured-vs-critical-path agreement
        # exists and is a real ratio (both clocks ticked).
        assert compiled.model_agreement > 0.0, transport
        compiled_rows[transport] = compiled
    if serve.shm_available():
        assert compiled_rows["shm"].transport == "shm"
        assert serve.leaked_segments() == []
    compiled_speedups = {
        transport: row.measured_lookup_mlps / compiled_baseline
        for transport, row in compiled_rows.items()
    }
    assert reports[-1].model_agreement > 0.0

    text = banner(
        f"worker scaling on {PRIMARY_PROFILE} (scale {scale}, {LOOKUPS} lookups "
        f"/ {UPDATES} updates, uniform, {GATED_REPRESENTATION} dispatch plane, "
        f"best of {REPEAT}, {cpus} cpus)"
    )
    text += "\n" + render_worker_rows(
        reports + [compiled_rows[t] for t in serve.TRANSPORTS if t in compiled_rows]
    )
    text += (
        f"\nsingle-process baseline: {baseline_mlps:.3f} Mlps wall "
        f"(compiled point: {compiled_baseline:.3f} Mlps)"
    )
    text += "\nwall-clock curve: " + "  ".join(
        f"{workers}w={speedups[workers]:.2f}x" for workers in WORKER_CURVE
    )
    for transport, row in compiled_rows.items():
        text += (
            f"\ncompiled 4w over {row.transport} (requested {transport}): "
            f"{compiled_speedups[transport]:.2f}x wall, "
            f"model agreement {row.model_agreement:.2f}"
        )
    if not gated:
        text += (
            f"\nscaling floor NOT gated: {cpus} < {MIN_GATED_CPUS} cpus "
            "(wall-clock scaling needs real cores)"
        )
    report_writer("workers_scaling.txt", text)

    payload = {
        "command": "bench_workers",
        "profile": PRIMARY_PROFILE,
        "scale": scale,
        "lookups": LOOKUPS,
        "updates": UPDATES,
        "batch_size": BATCH_SIZE,
        "seed": SEED,
        "representation": GATED_REPRESENTATION,
        "options": GATED_OPTIONS,
        "repeat": REPEAT,
        "floor": WORKER_SPEEDUP_FLOOR,
        "compiled_floor": COMPILED_SPEEDUP_FLOOR,
        "cpus": cpus,
        "gated": gated,
        "baseline_mlps": baseline_mlps,
        "compiled_baseline_mlps": compiled_baseline,
        "rows": [report.to_dict() for report in reports],
        "compiled_rows": {
            transport: row.to_dict() for transport, row in compiled_rows.items()
        },
        "speedups": {
            f"{workers}-prefix": speedup for workers, speedup in speedups.items()
        },
        "compiled_speedup": compiled_speedups,
        "model_agreement": {
            transport: row.model_agreement
            for transport, row in compiled_rows.items()
        },
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    if gated:
        # The wall-clock floor: 4 real workers vs one real process.
        assert speedups[4] > WORKER_SPEEDUP_FLOOR, (
            f"4-worker wall-clock lookup throughput only {speedups[4]:.2f}x "
            f"the single-process baseline (floor {WORKER_SPEEDUP_FLOOR}x, "
            f"{cpus} cpus)"
        )
        # More workers must not serve less than the degenerate pool.
        assert speedups[4] > speedups[1]
        # The zero-copy floor: the compiled point over shm must clear
        # the single-process compiled baseline (the pipe row exists to
        # show why pickled transport could not).
        if compiled_rows["shm"].transport == "shm":
            assert compiled_speedups["shm"] >= COMPILED_SPEEDUP_FLOOR, (
                f"4-worker shm compiled throughput only "
                f"{compiled_speedups['shm']:.2f}x the single-process "
                f"compiled baseline (floor {COMPILED_SPEEDUP_FLOOR}x, "
                f"{cpus} cpus)"
            )
    else:
        pytest.skip(
            f"wall-clock floor needs >= {MIN_GATED_CPUS} cpus (have {cpus}); "
            "curve recorded to BENCH_workers.json without gating"
        )


@pytest.mark.parametrize("transport", serve.TRANSPORTS)
@pytest.mark.parametrize("scenario", sorted(serve.SCENARIOS))
def test_worker_parity(profile_fib, probes, scenario, transport):
    # Post-quiescence parity vs the tabular oracle on all four
    # scenarios and both transports, through real processes (mixed
    # churn, smaller script).
    fib = profile_fib(PRIMARY_PROFILE)
    events = pack_events(
        serve.build_events(
            serve.scenario(scenario),
            fib,
            lookups=4096,
            updates=192,
            seed=SEED,
            batch_size=512,
        )
    )
    for name, options in (("prefix-dag", None), ("lc-trie", None)):
        report = serve.serve_worker_scenario(
            name,
            fib,
            events,
            scenario=scenario,
            workers=PARITY_WORKERS,
            options=options,
            parity_probes=probes,
            transport=transport,
        )
        assert report.final_parity == 1.0, (scenario, name, transport)
        assert report.pending_updates == 0
    assert serve.leaked_segments() == []
