"""Table 1 — storage sizes of XBW-b and trie-folding on all 11 FIBs.

For every profile this harness measures N, δ, H0, the I and E bounds,
the XBW-b and prefix-DAG (λ=11) sizes, compression efficiency ν and
bits/prefix η — the exact columns of the paper's Table 1 — and writes
the rendered table to ``results/table1.txt``.

The benchmarked operation is the prefix-DAG fold itself (the paper's
"O(t) construction", Lemma 4); the XBW-b transform build is measured in
``bench_ops.py``.
"""

from __future__ import annotations

import pytest

from repro.analysis.table1 import (
    TABLE1_BARRIER,
    measure_fib,
    render_table1,
    sanity_check_row,
)
from repro.analysis.report import banner
from repro.core.prefixdag import PrefixDag

from benchmarks.conftest import all_profile_names

_ROWS = {}


@pytest.mark.parametrize("name", all_profile_names())
def test_table1_row(benchmark, profile_fib, name):
    """Measure one Table 1 row; the timed section is the trie-fold."""
    fib = profile_fib(name)

    def fold():
        return PrefixDag(fib, barrier=TABLE1_BARRIER)

    dag = benchmark.pedantic(fold, iterations=1, rounds=1)
    row = measure_fib(fib, name=name, group="", barrier=TABLE1_BARRIER, dag=dag)
    problems = sanity_check_row(row)
    assert not problems, problems
    benchmark.extra_info.update(
        prefixes=row.entries,
        h0=round(row.h0, 3),
        pdag_kb=round(row.pdag_kb, 1),
        xbw_kb=round(row.xbw_kb, 1),
        nu=round(row.efficiency, 2),
    )
    _ROWS[name] = row


def test_table1_report(benchmark, report_writer, scale):
    """Render the assembled table (depends on the row benchmarks above)."""
    assert _ROWS, "row benchmarks must run first"
    ordered = [_ROWS[name] for name in sorted(_ROWS)]
    text = benchmark.pedantic(
        lambda: banner(f"Table 1 reproduction (scale {scale})")
        + "\n"
        + render_table1(ordered),
        iterations=1,
        rounds=1,
    )
    report_writer("table1.txt", text)

    # Paper shape checks across the assembled table. The small
    # instances (access_v, mobile) "compress poorly, as is usual in
    # data compression" -- the at-scale claims apply above ~10K routes.
    for row in ordered:
        assert row.entropy_kb <= row.info_bound_kb, row.name
        if row.entries < 10_000:
            continue
        # XBW-b sits essentially on the entropy bound (o(n) overheads
        # shrink further with scale; the paper measures 1.05-1.25x E)...
        assert row.xbw_kb <= 1.7 * row.entropy_kb, row.name
        # ...and trie-folding is within a small constant of it (the
        # constant decreases toward the paper's 2.6-4.1 as the tables
        # grow; REPRO_FULL=1 reproduces that regime).
        assert row.efficiency <= 11.0, row.name
