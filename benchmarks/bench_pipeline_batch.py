"""Pipeline lookup planes — scalar vs dispatch vs compiled throughput.

Every registered representation is driven over the same uniform
2^16-address trace three ways: the per-address scalar loop (the seed
codebase's only mode), the PR 1 stride-dispatch engine
(``lookup_batch_dispatch``), and the compiled flat plane that now backs
``lookup_batch`` (:mod:`repro.pipeline.flat` — pointerless array
programs, vectorized when NumPy is importable). The report records all
three throughputs; two acceptance floors are asserted so a regression
in either fast path fails the harness:

* the dispatch engine at least 1.5x its scalar loop (the PR 1 floor);
* the compiled plane at least 2.5x the dispatch engine on the
  binary trie and the prefix DAG (this PR's floor).

Results go to ``results/pipeline_batch.txt`` and the raw rows to
``BENCH_pipeline.json`` at the repo root — the trajectory file CI
uploads next to ``BENCH_serve.json``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import pipeline
from repro.analysis.report import banner
from repro.datasets.profiles import PRIMARY_PROFILE
from repro.datasets.traces import uniform_trace

PACKETS = 1 << 16
BENCH_STRIDE = 16  # big dispatch for the throughput runs (2^16 slots)
#: Representations whose dispatch path must beat the scalar loop by 1.5x.
SPEEDUP_FLOOR = {"prefix-dag": 1.5, "binary-trie": 1.5}
#: Representations whose compiled plane must beat the dispatch engine by
#: 2.5x (requires the vectorized plane, i.e. NumPy).
COMPILED_FLOOR = {"prefix-dag": 2.5, "binary-trie": 2.5}

TRAJECTORY = Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"


@pytest.fixture(scope="module")
def addresses():
    return uniform_trace(PACKETS, seed=42)


@pytest.fixture(scope="module")
def bench_rows(profile_fib, addresses):
    fib = profile_fib(PRIMARY_PROFILE)
    overrides = pipeline.option_overrides("dispatch_stride", BENCH_STRIDE)
    return pipeline.bench_all(fib, addresses, overrides=overrides)


def test_compiled_agrees_with_scalar_and_dispatch(profile_fib, addresses):
    fib = profile_fib(PRIMARY_PROFILE)
    representation = pipeline.build("prefix-dag", fib, dispatch_stride=BENCH_STRIDE)
    sample = addresses[:2000]
    scalar = [representation.lookup(address) for address in sample]
    assert representation.lookup_batch(sample) == scalar
    assert representation.lookup_batch_dispatch(sample) == scalar
    assert representation.lookup_batch_shared(sample) == scalar


def test_batch_speedup(benchmark, bench_rows, profile_fib, addresses, report_writer, scale):
    fib = profile_fib(PRIMARY_PROFILE)
    timed = pipeline.build("prefix-dag", fib, dispatch_stride=BENCH_STRIDE)
    timed.lookup_batch(addresses[:1])  # compiled plane built outside the timer
    benchmark(timed.lookup_batch, addresses)

    text = banner(
        f"pipeline lookup planes on {PRIMARY_PROFILE} (scale {scale}, "
        f"{PACKETS} packets, {'vectorized' if pipeline.have_numpy() else 'pure-python'})"
    )
    text += "\n" + pipeline.render_bench_rows(bench_rows)
    report_writer("pipeline_batch.txt", text)
    TRAJECTORY.write_text(
        json.dumps(
            {
                "command": "bench_pipeline_batch",
                "profile": PRIMARY_PROFILE,
                "scale": scale,
                "packets": PACKETS,
                "stride": BENCH_STRIDE,
                "vectorized": pipeline.have_numpy(),
                "rows": [row.to_dict() for row in bench_rows],
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )

    by_name = {row.name: row for row in bench_rows}
    for name, floor in SPEEDUP_FLOOR.items():
        row = by_name[name]
        dispatch_speedup = (
            row.scalar_seconds / row.dispatch_seconds if row.dispatch_seconds else 0.0
        )
        assert dispatch_speedup > floor, (
            f"{name}: dispatch path only {dispatch_speedup:.2f}x over the "
            f"scalar loop (floor {floor}x)"
        )


def test_compiled_speedup_over_dispatch(bench_rows):
    if not pipeline.have_numpy():
        pytest.skip("compiled-plane floor requires the vectorized path (NumPy)")
    by_name = {row.name: row for row in bench_rows}
    for name, floor in COMPILED_FLOOR.items():
        row = by_name[name]
        assert row.compiled, f"{name} did not compile a flat program"
        assert row.compiled_speedup > floor, (
            f"{name}: compiled plane only {row.compiled_speedup:.2f}x over the "
            f"dispatch engine (floor {floor}x)"
        )
