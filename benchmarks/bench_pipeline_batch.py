"""Pipeline batch engine — batched vs. per-address lookup throughput.

Every registered representation is driven over the same uniform trace
twice: once through the per-address scalar loop (the seed codebase's
only mode) and once through ``lookup_batch`` (the stride-dispatch fast
path of :mod:`repro.pipeline.batch`). The report records both
throughputs and the speedup per representation; the acceptance floor —
the prefix DAG's batch path at least 1.5x its scalar loop — is asserted
so a regression in the dispatch engine fails the harness.

Results go to ``results/pipeline_batch.txt``.
"""

from __future__ import annotations

import pytest

from repro import pipeline
from repro.analysis.report import banner
from repro.datasets.profiles import PRIMARY_PROFILE
from repro.datasets.traces import uniform_trace

PACKETS = 20_000
BENCH_STRIDE = 16  # big dispatch for the throughput runs (2^16 slots)
#: Representations whose batch path must beat the scalar loop by 1.5x.
SPEEDUP_FLOOR = {"prefix-dag": 1.5, "binary-trie": 1.5}


@pytest.fixture(scope="module")
def addresses():
    return uniform_trace(PACKETS, seed=42)


@pytest.fixture(scope="module")
def bench_rows(profile_fib, addresses):
    fib = profile_fib(PRIMARY_PROFILE)
    overrides = pipeline.option_overrides("dispatch_stride", BENCH_STRIDE)
    return pipeline.bench_all(fib, addresses, overrides=overrides)


def test_batch_agrees_with_scalar(profile_fib, addresses):
    fib = profile_fib(PRIMARY_PROFILE)
    representation = pipeline.build("prefix-dag", fib, dispatch_stride=BENCH_STRIDE)
    sample = addresses[:2000]
    assert representation.lookup_batch(sample) == [
        representation.lookup(address) for address in sample
    ]


def test_batch_speedup(benchmark, bench_rows, profile_fib, addresses, report_writer, scale):
    fib = profile_fib(PRIMARY_PROFILE)
    timed = pipeline.build("prefix-dag", fib, dispatch_stride=BENCH_STRIDE)
    timed.lookup_batch(addresses[:1])  # dispatch built outside the timer
    benchmark(timed.lookup_batch, addresses)

    text = banner(f"pipeline batch vs scalar on {PRIMARY_PROFILE} (scale {scale})")
    text += "\n" + pipeline.render_bench_rows(bench_rows)
    report_writer("pipeline_batch.txt", text)

    by_name = {row.name: row for row in bench_rows}
    for name, floor in SPEEDUP_FLOOR.items():
        assert by_name[name].speedup > floor, (
            f"{name}: batch path only {by_name[name].speedup:.2f}x over the "
            f"scalar loop (floor {floor}x)"
        )
