"""Self-healing worker plane — MTTR, availability and recovery parity.

``bench_workers`` measures what the process fan-out buys when nothing
goes wrong; this benchmark measures what supervision buys when things
do. Two scripted failures run against a supervised 4-worker shm pool
serving the uniform scenario:

* **kill** — the seeded victim shard exits hard (``os._exit``) just
  before serving its Nth batch: the pipe-EOF/ring-liveness detectors
  fire, the frontend serves the dead shard's range degraded from the
  publisher, and the supervisor respawns it against the current
  published generation.
* **hang** — the victim sleeps past the pool's reply deadline while
  staying alive: detection must come from the deadline, not EOF, and
  the hung process must be terminated and replaced.

Each case records **MTTR** (mean seconds from failure detection to the
respawned shard's re-admission), **availability** (fraction of offered
lookups answered — by a worker, a retry, or the degraded path) and
**post-recovery parity** vs the tabular oracle.

Gates (unconditional — recovery correctness does not need cores, so a
1-core laptop gates exactly like CI):

* at least one restart actually happened (the fault fired),
* availability >= :data:`AVAILABILITY_FLOOR`,
* post-quiescence parity is 100%,
* no shard was abandoned, and /dev/shm is clean afterwards.

Results go to ``results/faults_recovery.txt`` and the JSON trajectory
to ``BENCH_faults.json`` at the repository root (CI uploads it next to
the other ``BENCH_*.json`` files and feeds ``check_trajectory.py``).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import serve
from repro.analysis.report import banner
from repro.datasets.profiles import PRIMARY_PROFILE
from repro.serve.faults import FaultPlan
from repro.serve.workers import pack_events

LOOKUPS = 1 << 15
UPDATES = 64
BATCH_SIZE = 256
SEED = 42
WORKERS = 4
MAX_RESTARTS = 2
REPRESENTATION = "prefix-dag"

#: Offered lookups that must be answered despite the failure. The
#: degraded frontend path keeps serving the dead shard's range, so the
#: only unanswered window is the submit that was in flight at death.
AVAILABILITY_FLOOR = 0.99

#: The scripted failures: a hard death and a hung-but-alive worker.
#: ``*`` victims resolve deterministically from SEED. The hang case
#: tightens the pool's reply deadline so the 30s sleep is detected in
#: seconds, not minutes.
CASES = {
    "kill": {"chaos": "kill-worker:*@batch=30", "timeout": 120.0},
    "hang": {"chaos": "delay-reply:*@batch=30,seconds=30", "timeout": 2.0},
}

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_faults.json"


@pytest.fixture(scope="module")
def events(profile_fib):
    return pack_events(
        serve.build_events(
            serve.scenario("uniform"),
            profile_fib(PRIMARY_PROFILE),
            lookups=LOOKUPS,
            updates=UPDATES,
            seed=SEED,
            batch_size=BATCH_SIZE,
        )
    )


@pytest.fixture(scope="module")
def probes(profile_fib):
    return serve.parity_probes(profile_fib(PRIMARY_PROFILE), 1000, seed=SEED)


def test_fault_recovery_trajectory(profile_fib, events, probes, report_writer, scale):
    fib = profile_fib(PRIMARY_PROFILE)
    rows = {}
    for case, spec in CASES.items():
        report = serve.serve_worker_scenario(
            REPRESENTATION,
            fib,
            events,
            scenario="uniform",
            workers=WORKERS,
            parity_probes=probes,
            transport="shm",
            timeout=spec["timeout"],
            max_restarts=MAX_RESTARTS,
            faults=FaultPlan.parse(spec["chaos"], seed=SEED),
        )
        assert serve.leaked_segments() == [], case
        rows[case] = report

    text = banner(
        f"fault recovery on {PRIMARY_PROFILE} (scale {scale}, {LOOKUPS} "
        f"lookups / {UPDATES} updates, uniform, {WORKERS} shm workers, "
        f"max_restarts={MAX_RESTARTS}, seed {SEED})"
    )
    for case, report in rows.items():
        text += (
            f"\n{case:>6}: {CASES[case]['chaos']}"
            f"\n        restarts {report.worker_restarts}, "
            f"MTTR {report.mean_recovery_seconds * 1e3:.0f}ms, "
            f"availability {report.availability * 100:.3f}%, "
            f"degraded {report.degraded_lookups}, "
            f"retried batches {report.retried_batches}, "
            f"failed {report.failed_lookups}, "
            f"parity {report.final_parity * 100:.1f}%"
        )
    report_writer("faults_recovery.txt", text)

    payload = {
        "command": "bench_faults",
        "profile": PRIMARY_PROFILE,
        "scale": scale,
        "lookups": LOOKUPS,
        "updates": UPDATES,
        "batch_size": BATCH_SIZE,
        "seed": SEED,
        "workers": WORKERS,
        "max_restarts": MAX_RESTARTS,
        "representation": REPRESENTATION,
        "availability_floor": AVAILABILITY_FLOOR,
        "cases": {
            case: {
                "chaos": CASES[case]["chaos"],
                "timeout": CASES[case]["timeout"],
                "restarts": report.worker_restarts,
                "mttr_seconds": report.mean_recovery_seconds,
                "availability": report.availability,
                "final_parity": report.final_parity,
                "degraded_lookups": report.degraded_lookups,
                "retried_batches": report.retried_batches,
                "failed_lookups": report.failed_lookups,
                "workers_abandoned": report.workers_abandoned,
                "row": report.to_dict(),
            }
            for case, report in rows.items()
        },
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    for case, report in rows.items():
        assert report.worker_restarts >= 1, (case, "fault never fired")
        assert report.workers_abandoned == 0, case
        assert report.mean_recovery_seconds > 0.0, case
        assert report.availability >= AVAILABILITY_FLOOR, (
            f"{case}: availability {report.availability:.4f} below the "
            f"{AVAILABILITY_FLOOR:.2%} floor "
            f"({report.failed_lookups} failed lookups)"
        )
        assert report.final_parity == 1.0, (
            f"{case}: post-recovery parity {report.final_parity:.4f} < 1.0"
        )
