"""Fig 5 — update time vs. memory footprint across the barrier sweep.

Sweeps λ over [0, 32] on the taz stand-in and replays the two update
feeds of §5.1 (uniform random and BGP-inspired) at each setting,
reporting memory footprint and mean update latency — the two axes of
Fig 5. Written to ``results/fig5.txt``.

Shape assertions encode the paper's findings: the λ=0/λ=32 extremes,
the 5 ≤ λ ≤ 12 sweet spot, and the BGP feed's insensitivity to λ.
"""

from __future__ import annotations

import pytest

from repro.analysis.fig5 import measure_update_point, render_fig5
from repro.analysis.report import banner
from repro.core.prefixdag import PrefixDag
from repro.datasets.profiles import PRIMARY_PROFILE
from repro.datasets.updates import bgp_update_sequence, random_update_sequence

BARRIERS = (0, 2, 4, 6, 8, 11, 14, 17, 20, 24, 28, 32)
UPDATES = 600

_POINTS = []


@pytest.fixture(scope="module")
def feeds(profile_fib):
    fib = profile_fib(PRIMARY_PROFILE)
    return {
        "random": random_update_sequence(fib, UPDATES, seed=7),
        "BGP": bgp_update_sequence(fib, UPDATES, seed=7),
    }


def feed_slice(ops, barrier):
    """Random-feed updates at tiny barriers refold most of the trie —
    the very effect Fig 5 demonstrates (four orders of magnitude slower
    at λ=0). Replaying the full feed there would measure nothing new,
    so the mean is taken over fewer (still dozens of) updates."""
    if barrier < 3:
        return ops[:25]
    if barrier < 6:
        return ops[:120]
    return ops


@pytest.mark.parametrize("barrier", BARRIERS)
def test_fig5_point(benchmark, profile_fib, feeds, barrier):
    """One sweep point; the timed section is the random-feed replay."""
    fib = profile_fib(PRIMARY_PROFILE)
    random_point = measure_update_point(
        fib, barrier, feed_slice(feeds["random"], barrier), "random"
    )
    bgp_point = measure_update_point(fib, barrier, feeds["BGP"], "BGP")
    _POINTS.extend([random_point, bgp_point])

    dag = PrefixDag(fib, barrier=barrier)
    ops = feed_slice(feeds["random"], barrier)[:100]

    def replay():
        for op in ops:
            try:
                dag.update(op.prefix, op.length, op.label)
            except KeyError:
                pass

    benchmark.pedantic(replay, iterations=1, rounds=1)
    benchmark.extra_info.update(
        barrier=barrier,
        size_kb=round(random_point.size_kb, 1),
        us_per_update_random=round(random_point.microseconds_per_update, 1),
        us_per_update_bgp=round(bgp_point.microseconds_per_update, 1),
    )


def test_fig5_report(benchmark, report_writer, scale):
    assert _POINTS, "sweep points must run first"
    text = benchmark.pedantic(
        lambda: banner(
            f"Fig 5 reproduction on {PRIMARY_PROFILE} (scale {scale}, "
            f"up to {UPDATES} updates/feed)"
        )
        + "\n"
        + render_fig5(_POINTS),
        iterations=1,
        rounds=1,
    )
    report_writer("fig5.txt", text)

    random_points = {p.barrier: p for p in _POINTS if p.feed == "random"}
    bgp_points = {p.barrier: p for p in _POINTS if p.feed == "BGP"}

    # Memory: full folding wins an order of magnitude over plain tries.
    assert random_points[0].size_kb < 0.35 * random_points[32].size_kb
    # The sweet spot keeps nearly all of the compression ...
    assert random_points[11].size_kb < 1.6 * random_points[0].size_kb
    # ... while being drastically cheaper to update than lambda = 0
    # under the random feed (the paper's space-time trade-off).
    assert (
        random_points[11].work_per_update
        < 0.05 * random_points[0].work_per_update
    )
    # Update cost falls monotonically-ish with lambda on random feeds.
    assert random_points[32].work_per_update <= random_points[11].work_per_update
    # BGP updates are insensitive to lambda: the work spread across the
    # sweep stays within a small factor (paper: "no space-time trade-off
    # for BGP updates"), far below the random feed's 4-orders spread.
    bgp_work = [p.work_per_update for p in bgp_points.values() if p.barrier >= 2]
    random_work = [p.work_per_update for p in random_points.values() if p.barrier >= 2]
    bgp_spread = max(bgp_work) / max(1.0, min(bgp_work))
    random_spread = max(random_work) / max(1.0, min(random_work))
    assert bgp_spread < random_spread
