"""Table 2 — the lookup benchmark on taz: XBW-b vs pDAG vs fib_trie vs FPGA.

Reproduces both key streams (uniform random and the CAIDA-like locality
trace), reporting sizes, depths, simulated Mlookups/s, cycles/lookup and
cache misses/packet, plus the pure-Python kbench wall clock. Results go
to ``results/table2.txt``.

The pytest-benchmark timed section is the serialized-DAG lookup loop
(the structure the paper's kernel module runs); the simulated metrics
are computed once outside the timer.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import banner
from repro.analysis.table2 import Table2Inputs, build_table2, render_table2
from repro.datasets.profiles import PRIMARY_PROFILE
from repro.datasets.traces import caida_like_trace, uniform_trace

PACKETS = 20_000
XBW_SAMPLE = 1_500


@pytest.fixture(scope="module")
def inputs(profile_fib):
    return Table2Inputs.build(profile_fib(PRIMARY_PROFILE), barrier=11)


@pytest.fixture(scope="module")
def streams(profile_fib):
    fib = profile_fib(PRIMARY_PROFILE)
    return {
        "rand": uniform_trace(PACKETS, seed=42),
        "trace": caida_like_trace(fib, PACKETS, seed=42),
    }


def test_engines_forward_correctly(benchmark, inputs, streams):
    """All engines agree with the reference trie before being timed."""
    reference = inputs.reference

    def verify():
        for address in streams["rand"][:500]:
            want = reference.lookup(address)
            assert inputs.image.lookup(address) == want
            assert inputs.lctrie.lookup(address) == want
        for address in streams["rand"][:200]:
            assert inputs.xbw.lookup(address) == reference.lookup(address)

    benchmark.pedantic(verify, iterations=1, rounds=1)


def test_pdag_lookup_throughput(benchmark, inputs, streams):
    """Wall-clock throughput of the serialized prefix DAG."""
    addresses = streams["rand"][:5000]
    lookup = inputs.image.lookup

    def run():
        for address in addresses:
            lookup(address)

    benchmark(run)
    benchmark.extra_info["lookups_per_round"] = len(addresses)


def test_fib_trie_lookup_throughput(benchmark, inputs, streams):
    addresses = streams["rand"][:5000]
    lookup = inputs.lctrie.lookup

    def run():
        for address in addresses:
            lookup(address)

    benchmark(run)
    benchmark.extra_info["lookups_per_round"] = len(addresses)


def test_xbw_lookup_throughput(benchmark, inputs, streams):
    addresses = streams["rand"][:300]
    lookup = inputs.xbw.lookup

    def run():
        for address in addresses:
            lookup(address)

    benchmark(run)
    benchmark.extra_info["lookups_per_round"] = len(addresses)


def test_table2_report(benchmark, inputs, streams, report_writer, scale):
    """The full simulated Table 2, with the paper's shape assertions."""
    rows = benchmark.pedantic(
        build_table2, args=(inputs, streams), kwargs={"xbw_sample": XBW_SAMPLE},
        iterations=1, rounds=1,
    )
    text = (
        banner(f"Table 2 reproduction on {PRIMARY_PROFILE} (scale {scale}, "
               f"{PACKETS} packets/stream)")
        + "\n"
        + render_table2(rows)
    )
    report_writer("table2.txt", text)

    by_key = {(row.name, row.stream): row for row in rows}
    for stream in ("rand", "trace"):
        xbw = by_key[("XBW-b", stream)]
        dag = by_key[("pDAG", stream)]
        lct = by_key[("fib_trie", stream)]
        fpga = by_key[("FPGA", stream)]
        # pDAG fits in cache and beats fib_trie ("no space-time trade-off").
        assert dag.million_lookups_per_second > lct.million_lookups_per_second
        assert dag.size_kb < 0.2 * lct.size_kb
        assert dag.cache_misses_per_packet < lct.cache_misses_per_packet + 0.05
        # XBW-b is a distant third despite optimal asymptotics.
        assert xbw.cycles_per_lookup > 5 * dag.cycles_per_lookup
        # The FPGA does a lookup in a handful of SRAM cycles (paper: 7.1).
        assert 3.0 <= fpga.cycles_per_lookup <= 14.0
    # Address locality (the trace stream) helps the big structure most —
    # fib_trie's misses must drop relative to uniform keys.
    assert (
        by_key[("fib_trie", "trace")].cache_misses_per_packet
        <= by_key[("fib_trie", "rand")].cache_misses_per_packet
    )
