"""Ablation — is there higher-order structure in S_α? (§3.2's open question)

The paper: "if [contextual dependency] is present in real IP FIBs ...
then XBW-b can take advantage of this and compress an IP FIB to
higher-order entropy", explicitly deferring the measurement. This
harness performs it on every Table 1 stand-in: empirical H_0, H_1, H_2
of the BFS leaf-label string and the implied compression headroom.
Written to ``results/ablation_highorder.txt``.

Caveat recorded in EXPERIMENTS.md: the stand-ins draw next-hops IID, so
the context measured here comes from trie structure alone and is a
*floor* for real tables, whose next-hops correlate with topology.
"""

from __future__ import annotations

import pytest

from repro.analysis.highorder import measure_high_order, render_high_order
from repro.analysis.report import banner

PROFILES = ("taz", "access_d", "as1221", "as6447", "as6730", "hbone")
_REPORTS = {}


@pytest.mark.parametrize("name", PROFILES)
def test_highorder_profile(benchmark, profile_fib, name):
    fib = profile_fib(name)

    def measure():
        return measure_high_order(fib, name=name)

    report = benchmark.pedantic(measure, iterations=1, rounds=1)
    _REPORTS[name] = report
    benchmark.extra_info.update(
        h0=round(report.h0, 3),
        h1=round(report.h1, 3),
        headroom=f"{report.order1_headroom:.0%}",
    )
    # Conditioning on BFS context never hurts (H1 <= H0 on these sizes).
    assert report.h1 <= report.h0 + 1e-9
    assert report.h2 <= report.h1 + 0.02  # small-sample slack at order 2


def test_highorder_report(benchmark, report_writer):
    assert _REPORTS
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    reports = [_REPORTS[name] for name in sorted(_REPORTS)]
    text = (
        banner("Ablation: higher-order entropy of S_alpha (the §3.2 question)")
        + "\n"
        + render_high_order(reports)
    )
    report_writer("ablation_highorder.txt", text)
    # Label-rich FIBs show measurable first-order headroom even with
    # IID-generated next-hops.
    rich = [r for r in reports if r.name in ("as6447", "as6730", "hbone")]
    assert any(r.order1_headroom > 0.05 for r in rich)
