"""Ablation — composing ORTC aggregation with trie-folding.

§6 claims trie-folding "is complementary to [aggregation] schemes, as it
can be used in combination with basically any trie-based FIB
representation". This ablation measures that composition: entry counts
and folded sizes for the raw FIB, ORTC's minimal table, and the fold of
each. Below the barrier leaf-pushing normalizes forwarding-equivalent
tables, so folding already extracts most of the redundancy ORTC removes;
the measurable benefit of composing is that ORTC hoists labels above the
barrier, leaving slightly more uniform sub-tries to fold. Written to
``results/ablation_ortc.txt``.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import banner, render_table
from repro.baselines.ortc import ortc_compress
from repro.core.prefixdag import PrefixDag
from repro.datasets.traces import uniform_trace

PROFILES = ("taz", "as1221", "access_d")
_ROWS = []


@pytest.mark.parametrize("name", PROFILES)
def test_ortc_then_fold(benchmark, profile_fib, name):
    fib = profile_fib(name)

    def aggregate():
        return ortc_compress(fib)

    result = benchmark.pedantic(aggregate, iterations=1, rounds=1)
    # Null routes (needed on default-free tables) become a "drop"
    # next-hop — trie-folding assumes no explicit blackhole entries.
    drop = result.drop_label()
    aggregated_trie = result.to_trie(null_label=drop)

    raw_dag = PrefixDag(fib, barrier=11)
    ortc_dag = PrefixDag(aggregated_trie, barrier=11)

    # Equivalence of the composed pipeline (drop label == no route).
    from repro.core.trie import BinaryTrie

    reference = BinaryTrie.from_fib(fib)
    for address in uniform_trace(300, seed=8):
        got = ortc_dag.lookup(address)
        if got == drop:
            got = None
        assert got == reference.lookup(address)

    _ROWS.append(
        (
            name,
            len(fib),
            len(result),
            round(raw_dag.size_in_kbytes(), 1),
            round(ortc_dag.size_in_kbytes(), 1),
            raw_dag.folded_interior_count(),
            ortc_dag.folded_interior_count(),
        )
    )
    # ORTC reduces entries substantially on realistic tables.
    assert len(result) < 0.9 * len(fib)
    # Composition never hurts: ORTC hoists labels toward the root, which
    # leaves the below-barrier sub-tries as uniform or more uniform than
    # before, so the folded region stays the same size or shrinks.
    assert ortc_dag.folded_interior_count() <= raw_dag.folded_interior_count() * 1.02
    assert ortc_dag.size_in_bits() <= raw_dag.size_in_bits() * 1.05


def test_ortc_ablation_report(benchmark, report_writer):
    assert _ROWS
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    text = (
        banner("Ablation: ORTC aggregation composed with trie-folding (lambda=11)")
        + "\n"
        + render_table(
            (
                "FIB",
                "entries",
                "ORTC entries",
                "fold[KB]",
                "ORTC+fold[KB]",
                "folded nodes",
                "ORTC folded nodes",
            ),
            _ROWS,
        )
    )
    report_writer("ablation_ortc.txt", text)
