"""Fig 6 — compression efficiency vs. next-hop entropy on a FIB.

Keeps the access(d)-shaped prefix structure and redraws next-hops from
Bernoulli(p) for the paper's p grid, measuring H0, the XBW-b and
prefix-DAG sizes, and the compression efficiency ν. The paper finds
ν ≈ 3 across the grid with a spike at extremely biased distributions.
Written to ``results/fig6.txt``.
"""

from __future__ import annotations

import pytest

from repro.analysis.fig67 import BERNOULLI_GRID, measure_fig6_point, render_fig6
from repro.analysis.report import banner

_POINTS = {}


@pytest.mark.parametrize("p", BERNOULLI_GRID)
def test_fig6_point(benchmark, profile_fib, p):
    fib = profile_fib("access_d")

    def measure():
        return measure_fig6_point(fib, p, barrier=11, seed=60)

    point = benchmark.pedantic(measure, iterations=1, rounds=1)
    _POINTS[p] = point
    benchmark.extra_info.update(
        p=p, h0=round(point.h0, 3), nu=round(point.efficiency, 2)
    )


def test_fig6_report(benchmark, report_writer, scale):
    assert _POINTS, "sweep points must run first"
    points = [_POINTS[p] for p in sorted(_POINTS)]
    text = benchmark.pedantic(
        lambda: banner(f"Fig 6 reproduction (access(d)-shaped FIB, scale {scale})")
        + "\n"
        + render_fig6(points),
        iterations=1,
        rounds=1,
    )
    report_writer("fig6.txt", text)

    # H0 rises with p overall (leaf-level label proportions are not
    # exactly p, so the middle of the curve can wiggle at small scale).
    assert points[0].h0 < points[-1].h0
    assert points[-1].h0 > 0.75

    # The FIB entropy E itself grows monotonically with p...
    entropies = [point.entropy_kb for point in points]
    assert entropies == sorted(entropies)
    # ...while the efficiency nu falls monotonically toward its
    # moderate-entropy plateau: the low-entropy spike of Fig 6. (The
    # plateau value decreases toward the paper's ~3 with table size;
    # REPRO_FULL=1 reproduces that regime.)
    efficiencies = [point.efficiency for point in points]
    assert efficiencies == sorted(efficiencies, reverse=True)
    assert 1.5 <= points[-1].efficiency <= 8.0
