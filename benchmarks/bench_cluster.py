"""Sharded serving cluster — scaling curve and parity gate.

The cluster replays one 2^16-address bgp-churn scenario script (the
mixed lookup/update workload of ``bench_serve_throughput``) through
``repro.serve.cluster`` at 1/2/4/8 prefix-partitioned shards, plus a
4-shard hash-partitioned point, and compares aggregate lookup
throughput against the single ``FibServer`` baseline. Aggregate
throughput runs on the **critical-path clock**: each batch is charged
the slowest participating shard (shards are independent workers in a
deployment), so the curve shows what the fan-out actually buys after
partition imbalance — the locality trace concentrates both hot ranges
(prefix mode) and hot flows (hash mode), which is why efficiency sits
below 1.0.

Two acceptance gates:

* **parity** — every cluster run must agree 100% with the single-server
  tabular oracle after quiescence, on every shard count;
* **scaling floor** — at 4 shards (the better of the prefix and hash
  points; which one wins is workload- and machine-dependent) aggregate
  lookup throughput must be at least 2x the single-server baseline.

Results go to ``results/cluster_scaling.txt`` and the JSON trajectory
to ``BENCH_cluster.json`` at the repository root (CI uploads it next to
``BENCH_pipeline.json`` / ``BENCH_serve.json``; see docs/benchmarks.md
for the field reference).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import serve
from repro.analysis import render_cluster_rows
from repro.analysis.report import banner
from repro.datasets.profiles import PRIMARY_PROFILE

LOOKUPS = 1 << 16
UPDATES = 256
BATCH_SIZE = 8192
SEED = 42
REPRESENTATION = "prefix-dag"
SHARD_CURVE = (1, 2, 4, 8)
REPEAT = 3  # best-of, like the pipeline bench
#: Scaling floor: 4-shard aggregate lookup throughput vs one server.
CLUSTER_SPEEDUP_FLOOR = 2.0

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_cluster.json"


@pytest.fixture(scope="module")
def events(profile_fib):
    fib = profile_fib(PRIMARY_PROFILE)
    return serve.build_events(
        serve.scenario("bgp-churn"),
        fib,
        lookups=LOOKUPS,
        updates=UPDATES,
        seed=SEED,
        batch_size=BATCH_SIZE,
    )


@pytest.fixture(scope="module")
def probes(profile_fib):
    return serve.parity_probes(profile_fib(PRIMARY_PROFILE), 1000, seed=SEED)


def _best(reports):
    """Best-of-N by lookup throughput (the repo's bench discipline)."""
    return max(reports, key=lambda report: report.lookup_mlps)


def _serve_baseline(fib, events, probes):
    return _best(
        serve.serve_scenario(
            REPRESENTATION,
            fib,
            events,
            scenario="bgp-churn",
            measure_staleness=False,
            parity_probes=probes,
        )
        for _ in range(REPEAT)
    )


def _serve_cluster(fib, events, probes, shards, partition):
    return _best(
        serve.serve_cluster_scenario(
            REPRESENTATION,
            fib,
            events,
            scenario="bgp-churn",
            shards=shards,
            partition=partition,
            measure_staleness=False,
            parity_probes=probes,
        )
        for _ in range(REPEAT)
    )


def test_cluster_scaling_curve(profile_fib, events, probes, report_writer, scale):
    fib = profile_fib(PRIMARY_PROFILE)
    baseline = _serve_baseline(fib, events, probes)
    assert baseline.final_parity == 1.0

    runs = [(shards, "prefix") for shards in SHARD_CURVE] + [(4, "hash")]
    reports = []
    for shards, partition in runs:
        report = _serve_cluster(fib, events, probes, shards, partition)
        # The parity gate: post-quiescence agreement with the oracle on
        # every shard count and partition mode.
        assert report.final_parity == 1.0, (shards, partition)
        assert report.pending_updates == 0
        reports.append(report)

    speedups = {
        (report.shards, report.partition): report.lookup_mlps / baseline.lookup_mlps
        for report in reports
    }
    text = banner(
        f"cluster scaling on {PRIMARY_PROFILE} (scale {scale}, {LOOKUPS} lookups "
        f"/ {UPDATES} updates, bgp-churn, {REPRESENTATION}, best of {REPEAT})"
    )
    text += "\n" + render_cluster_rows(reports)
    text += f"\nsingle-server baseline: {baseline.lookup_mlps:.2f} Mlps"
    text += "\nscaling curve: " + "  ".join(
        f"{shards}x{partition[0]}={speedups[(shards, partition)]:.2f}"
        for shards, partition in runs
    )
    report_writer("cluster_scaling.txt", text)

    payload = {
        "command": "bench_cluster",
        "profile": PRIMARY_PROFILE,
        "scale": scale,
        "lookups": LOOKUPS,
        "updates": UPDATES,
        "batch_size": BATCH_SIZE,
        "seed": SEED,
        "representation": REPRESENTATION,
        "repeat": REPEAT,
        "floor": CLUSTER_SPEEDUP_FLOOR,
        "baseline": baseline.to_dict(),
        "rows": [report.to_dict() for report in reports],
        "speedups": {
            f"{shards}-{partition}": speedup
            for (shards, partition), speedup in speedups.items()
        },
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    # The scaling floor: 4 shards vs one server, better partition wins.
    gated = max(speedups[(4, "prefix")], speedups[(4, "hash")])
    assert gated > CLUSTER_SPEEDUP_FLOOR, (
        f"4-shard aggregate lookup throughput only {gated:.2f}x the "
        f"single-server baseline (floor {CLUSTER_SPEEDUP_FLOOR}x)"
    )
    # More workers must not serve *less* than the 1-shard degenerate
    # cluster (a regression in the fan-out itself).
    assert speedups[(4, "prefix")] > speedups[(1, "prefix")]


def test_cluster_replication_is_bounded(profile_fib):
    # Range partitioning replicates only boundary-spanning routes: a
    # small fraction of the table (hash mode replicates everything).
    fib = profile_fib(PRIMARY_PROFILE)
    cluster = serve.FibCluster(REPRESENTATION, fib, shards=4, partition="prefix")
    report = cluster.report()
    assert report.replicated_routes < len(fib) * 0.05
    assert sum(shard.routes for shard in cluster.shards) <= len(fib) + 3 * report.replicated_routes
