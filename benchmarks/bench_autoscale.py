"""Traffic-adaptive autoscaling — convergence curve and parity gate.

The cluster benchmark (``bench_cluster``) shows what fan-out buys on a
*state*-balanced partition; this one shows the autoscaler closing the
remaining gap. A 4-shard prefix-partitioned cluster serves the
locality-heavy Zipf flow trace (the same ``caida_like_trace`` family
the serve scenarios replay): the state-balanced plan gives every shard
a similar share of the *structure*, but the flow popularity skew pins
most of the *traffic* onto a couple of shards, and their clocks bound
the fan-out. The drift monitor must notice (``lookup_imbalance`` over
the policy threshold), re-plan on the observed per-slot traffic
**live** — one replacement shard per served event, the old plan
serving throughout, no global pause — and the post-flip window must
climb back to at least ``EFFICIENCY_FLOOR`` of perfect overlap.

**How efficiency is measured.** The gate runs on per-shard busy
*totals* over each window: ``sum(shard_busy) / (shards *
max(shard_busy))``, from the report's ``shard_rows`` deltas. This is
``parallel_efficiency`` with the per-batch critical path integrated
out: the per-batch variant charges every batch its slowest shard, so
one scheduler hiccup in a 2ms window reads as imbalance — it measures
jitter as much as placement, and a placement gate must not fail on
jitter. The per-batch numbers still ride in the JSON rows, ungated.

Three acceptance gates:

* **re-convergence floor** — between the report snapshot taken when
  the re-plan flips and the end of the converged lookup storm, window
  efficiency must reach ``EFFICIENCY_FLOOR`` on the best of ``REPEAT``
  runs, and must beat the drift-phase efficiency on the same run;
* **liveness** — at least one live re-plan completed and
  ``lookups_during_replan > 0`` (the data plane kept answering while
  replacement shards were built);
* **parity** — post-quiescence agreement with the cluster oracle is
  100% on *every* run, plus a separate flow-cache run whose
  generation-invalidated LRU must stay correct while serving at least
  ``FLOW_HIT_FLOOR`` of its lookups from the frontend.

Results go to ``results/autoscale_convergence.txt`` and the JSON
trajectory to ``BENCH_autoscale.json`` at the repository root (CI
uploads it next to ``BENCH_cluster.json``; see docs/benchmarks.md for
the field reference).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import serve
from repro.analysis import render_cluster_rows
from repro.analysis.report import banner
from repro.datasets.profiles import PRIMARY_PROFILE
from repro.datasets.traces import caida_like_trace

SHARDS = 4
BATCH_SIZE = 8192
SEED = 42
REPRESENTATION = "prefix-dag"
REPEAT = 3  # best-of, like the cluster bench
#: Batches the drift phase may take before the re-plan must have fired.
MAX_DRIFT_BATCHES = 48
#: Converged-window batches the floor is measured over.
CONVERGED_BATCHES = 24
UPDATES = 64
#: Nominal lookup budget (drift ceiling + converged window), a config
#: knob for the trajectory gate rather than the exact served count —
#: the drift phase stops at the first completed re-plan.
LOOKUPS = (MAX_DRIFT_BATCHES + CONVERGED_BATCHES) * BATCH_SIZE

#: Post-flip floor on window efficiency (see the module docstring).
EFFICIENCY_FLOOR = 0.90

#: Flow-cache run: capacity deliberately *below* the flow count, so the
#: LRU actually evicts, and a hit-rate floor the Zipf head must clear
#: even across update-driven invalidations.
FLOW_CACHE_CAPACITY = 1024
FLOW_FLOWS = 2048
FLOW_BATCHES = 16
FLOW_HIT_FLOOR = 0.5

POLICY = serve.AutoscalePolicy(
    imbalance_threshold=1.2,
    check_every=2,
    min_window=4 * BATCH_SIZE,
    cooldown=0,
    granularity=14,  # /14 slots: fine enough to see individual hot flows
    hot_share=0.05,
    max_hot=8,
    spray_seed=SEED,
)

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_autoscale.json"


@pytest.fixture(scope="module")
def flow_batches(profile_fib):
    """The drift workload: the locality trace's Zipf flow popularity is
    the skew — most packets hit a few flows, and those flows live
    wherever the FIB put them, not where the state-balanced cut did."""
    fib = profile_fib(PRIMARY_PROFILE)
    total = (MAX_DRIFT_BATCHES + CONVERGED_BATCHES) * BATCH_SIZE
    addresses = caida_like_trace(fib, total, seed=SEED + 1)
    return [
        addresses[start : start + BATCH_SIZE]
        for start in range(0, total, BATCH_SIZE)
    ]


@pytest.fixture(scope="module")
def churn_ops(profile_fib):
    fib = profile_fib(PRIMARY_PROFILE)
    return serve.scenario("bgp-churn").update_feed(fib, UPDATES, SEED + 3)


@pytest.fixture(scope="module")
def probes(profile_fib):
    return serve.parity_probes(profile_fib(PRIMARY_PROFILE), 1000, seed=SEED)


def _window_efficiency(before, after):
    """Per-shard-busy-total efficiency of the window between two report
    snapshots (``before=None`` measures from the cluster's start)."""
    start = (
        {row["shard"]: row["lookup_seconds"] for row in before.shard_rows}
        if before is not None
        else {}
    )
    deltas = [
        row["lookup_seconds"] - start.get(row["shard"], 0.0)
        for row in after.shard_rows
    ]
    slowest = max(deltas)
    if slowest <= 0:
        return 0.0
    return sum(deltas) / (len(deltas) * slowest)


def _converge_once(fib, batches, ops, probes):
    """One drift -> re-plan -> converged-storm run; returns the window
    measurements and the final (post-quiescence, parity-carrying)
    report."""
    cluster = serve.FibCluster(
        REPRESENTATION,
        fib,
        shards=SHARDS,
        partition="prefix",
        measure_staleness=False,
        autoscale=POLICY,
    )
    feed = iter(ops)
    flipped = None  # first snapshot after the re-plan completed
    batch_index = 0
    for batch_index, batch in enumerate(batches[:MAX_DRIFT_BATCHES]):
        cluster.lookup_batch(batch)
        if batch_index % 4 == 3:
            op = next(feed, None)
            if op is not None:
                cluster.apply_update(op)
        report = cluster.report()
        if report.replans:
            flipped = report
            break
    assert flipped is not None, (
        f"no live re-plan completed within {MAX_DRIFT_BATCHES} batches "
        f"(imbalance never crossed {POLICY.imbalance_threshold}?)"
    )
    # The liveness evidence: batches answered while replacements built.
    assert flipped.lookups_during_replan > 0

    for batch in batches[batch_index + 1 : batch_index + 1 + CONVERGED_BATCHES]:
        cluster.lookup_batch(batch)
    converged = cluster.report()
    # The trace is stationary, so one re-plan is the fixed point; a
    # second would reset shard clocks under the window.
    assert converged.replans == flipped.replans

    cluster.quiesce()
    parity = cluster.parity_fraction(probes)
    final = cluster.report(scenario="flow-skew", final_parity=parity)
    return {
        "flipped": flipped,
        "final": final,
        "skewed_efficiency": _window_efficiency(None, flipped),
        "converged_efficiency": _window_efficiency(flipped, converged),
        "parity": parity,
    }


def _serve_flow_cache(fib, ops, probes):
    """The frontend LRU tier on a repeat-flow storm: capacity below the
    flow count (so the LRU evicts) and churn mid-stream (so the
    wholesale invalidation is exercised, not just claimed)."""
    policy = serve.AutoscalePolicy(
        imbalance_threshold=1e9,  # this run measures the cache, not drift
        flow_cache=FLOW_CACHE_CAPACITY,
        spray_seed=SEED,
    )
    cluster = serve.FibCluster(
        REPRESENTATION,
        fib,
        shards=SHARDS,
        partition="prefix",
        measure_staleness=False,
        autoscale=policy,
    )
    trace = caida_like_trace(
        fib, FLOW_BATCHES * BATCH_SIZE, seed=SEED + 4, flows=FLOW_FLOWS
    )
    feed = iter(ops)
    for index in range(FLOW_BATCHES):
        cluster.lookup_batch(
            trace[index * BATCH_SIZE : (index + 1) * BATCH_SIZE]
        )
        if index in (FLOW_BATCHES // 3, 2 * FLOW_BATCHES // 3):
            op = next(feed, None)
            if op is not None:
                cluster.apply_update(op)
    cluster.quiesce()
    parity = cluster.parity_fraction(probes)
    return cluster.report(scenario="repeat-flows", final_parity=parity)


def test_autoscale_convergence(
    profile_fib, flow_batches, churn_ops, probes, report_writer, scale
):
    fib = profile_fib(PRIMARY_PROFILE)
    runs = [
        _converge_once(fib, flow_batches, churn_ops, probes)
        for _ in range(REPEAT)
    ]
    # Parity is a correctness property: it must hold on every run, not
    # just the best-of pick.
    for run in runs:
        assert run["parity"] == 1.0, run["parity"]
        assert run["final"].pending_updates == 0
    best = max(runs, key=lambda run: run["converged_efficiency"])

    flow = _serve_flow_cache(fib, churn_ops, probes)
    assert flow.final_parity == 1.0, flow.final_parity
    assert flow.flow_cache_evictions > 0  # capacity < flows: LRU is live
    assert flow.flow_cache_hit_rate > FLOW_HIT_FLOOR, (
        f"flow-cache hit rate {flow.flow_cache_hit_rate:.2f} under the "
        f"{FLOW_HIT_FLOOR} floor"
    )

    reports = [best["flipped"], best["final"], flow]
    text = banner(
        f"autoscale convergence on {PRIMARY_PROFILE} (scale {scale}, "
        f"{SHARDS} shards, Zipf flow trace, {REPRESENTATION}, "
        f"best of {REPEAT})"
    )
    text += "\n" + render_cluster_rows(reports)
    text += (
        f"\nwindow efficiency: drift {best['skewed_efficiency']:.2f}"
        f" -> converged {best['converged_efficiency']:.2f}"
        f" (floor {EFFICIENCY_FLOOR})"
        f"\nre-plans {best['final'].replans}, "
        f"{best['final'].lookups_during_replan} lookups served mid-re-plan, "
        f"{best['final'].hot_ranges} hot range(s) sprayed"
        f"\nflow cache: {flow.flow_cache_hit_rate:.1%} hit rate, "
        f"{flow.flow_cache_evictions} evictions "
        f"(capacity {FLOW_CACHE_CAPACITY} < {FLOW_FLOWS} flows)"
    )
    report_writer("autoscale_convergence.txt", text)

    payload = {
        "command": "bench_autoscale",
        "profile": PRIMARY_PROFILE,
        "scale": scale,
        "lookups": LOOKUPS,
        "updates": UPDATES,
        "batch_size": BATCH_SIZE,
        "seed": SEED,
        "representation": REPRESENTATION,
        "shards": SHARDS,
        "repeat": REPEAT,
        "granularity": POLICY.granularity,
        "imbalance_threshold": POLICY.imbalance_threshold,
        "floor": EFFICIENCY_FLOOR,
        "flow_hit_floor": FLOW_HIT_FLOOR,
        "skewed_efficiency": best["skewed_efficiency"],
        "converged_efficiency": best["converged_efficiency"],
        "replans": best["final"].replans,
        "lookups_during_replan": best["final"].lookups_during_replan,
        "hot_ranges": best["final"].hot_ranges,
        "final_parity": best["parity"],
        "flow_cache": {
            "capacity": FLOW_CACHE_CAPACITY,
            "flows": FLOW_FLOWS,
            "hit_rate": flow.flow_cache_hit_rate,
            "hits": flow.flow_cache_hits,
            "lookups": flow.flow_cache_lookups,
            "evictions": flow.flow_cache_evictions,
            "final_parity": flow.final_parity,
        },
        "rows": [report.to_dict() for report in reports],
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    # The re-convergence floor: the traffic-weighted re-plan must win
    # back at least EFFICIENCY_FLOOR of perfect overlap on the same
    # flow-skewed trace that broke the state-balanced plan.
    assert best["converged_efficiency"] >= EFFICIENCY_FLOOR, (
        f"post-re-plan window efficiency "
        f"{best['converged_efficiency']:.2f} under the "
        f"{EFFICIENCY_FLOOR} floor (drift phase sat at "
        f"{best['skewed_efficiency']:.2f})"
    )
    # And it must be a *recovery*: the drift phase on the state plan
    # has to have been measurably worse, or the trace tested nothing.
    assert best["skewed_efficiency"] < best["converged_efficiency"]
