"""Ablation — is the equation (3) barrier actually a good choice?

The paper sets λ by a closed formula (the Lambert-W expression of
Theorem 2) and then eyeballs Fig 5 to pick λ=11 for its evaluation.
This ablation quantifies the formula: for FIBs across an entropy grid we
exhaustively sweep λ and compare the formula's size/update trade-off
against the sweep optimum. Written to ``results/ablation_barrier.txt``.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import banner, render_table
from repro.core.barrier import entropy_barrier
from repro.core.entropy import fib_entropy
from repro.core.prefixdag import PrefixDag
from repro.datasets.synthetic import internet_like_fib, label_sampler_with_entropy

ENTROPY_GRID = (0.25, 0.5, 1.0, 2.0, 3.0)
ENTRIES = 8_000
_ROWS = []


@pytest.mark.parametrize("h0", ENTROPY_GRID)
def test_barrier_formula_vs_sweep(benchmark, h0):
    sampler = label_sampler_with_entropy(16, h0)
    fib = internet_like_fib(ENTRIES, sampler, seed=int(h0 * 100))
    report = fib_entropy(fib)
    formula = entropy_barrier(report.leaves, report.h0, fib.width)

    def build_at_formula():
        return PrefixDag(fib, barrier=formula)

    dag = benchmark.pedantic(build_at_formula, iterations=1, rounds=1)
    formula_bits = dag.size_in_bits()

    sweep = {}
    for barrier in range(0, 25, 2):
        sweep[barrier] = PrefixDag(fib, barrier=barrier).size_in_bits()
    best_barrier = min(sweep, key=sweep.get)
    best_bits = sweep[best_barrier]

    _ROWS.append(
        (
            h0,
            round(report.h0, 3),
            formula,
            best_barrier,
            round(formula_bits / 8192, 1),
            round(best_bits / 8192, 1),
            round(formula_bits / best_bits, 3),
        )
    )
    # The formula must land within 2x of the sweep optimum's size.
    assert formula_bits <= 2.0 * best_bits


def test_barrier_ablation_report(benchmark, report_writer):
    assert _ROWS
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    text = (
        banner("Ablation: equation (3) barrier vs exhaustive sweep")
        + "\n"
        + render_table(
            (
                "target H0",
                "measured H0",
                "eq(3) lambda",
                "best lambda",
                "eq(3) size[KB]",
                "best size[KB]",
                "ratio",
            ),
            _ROWS,
        )
    )
    report_writer("ablation_barrier.txt", text)
