"""Baseline FIB representations the paper evaluates against.

* :class:`LCTrie` / :func:`fib_trie` — the Linux kernel's level- and
  path-compressed multibit trie [41] (Table 2's reference);
* :class:`PatriciaTrie` — the BSD radix tree [46];
* :func:`ortc_compress` — optimal route-table construction [12];
* :class:`TabularFib` — the Fig 1(a) linear table.
"""

from repro.baselines.lctrie import LCTrie, LCTrieStats, fib_trie
from repro.baselines.ortc import OrtcResult, ortc_compress
from repro.baselines.patricia import PatriciaTrie
from repro.baselines.shapegraph import ShapeGraph
from repro.baselines.tabular import TabularFib

__all__ = [
    "LCTrie",
    "LCTrieStats",
    "fib_trie",
    "OrtcResult",
    "ortc_compress",
    "PatriciaTrie",
    "ShapeGraph",
    "TabularFib",
]
