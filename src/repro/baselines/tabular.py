"""The Fig 1(a) strawman: the linear-scan tabular FIB.

The :class:`~repro.core.fib.Fib` class itself implements the O(N) scan
lookup; this module adds the paper's size model and a thin adapter with
the same interface the other representations expose, so the baseline can
ride through the generic benchmark harness.
"""

from __future__ import annotations

from typing import Optional

from repro.core.fib import Fib
from repro.core.sizemodel import tabular_size_bits


class TabularFib:
    """Adapter giving the linear table the common representation API."""

    def __init__(self, fib: Fib):
        self._fib = fib.copy()

    def lookup(self, address: int) -> Optional[int]:
        """O(N) scan longest-prefix match."""
        return self._fib.lookup(address)

    def size_in_bits(self) -> int:
        """``(W + lg δ)·N`` bits."""
        return tabular_size_bits(len(self._fib), self._fib.delta, self._fib.width)

    def size_in_kbytes(self) -> float:
        return self.size_in_bits() / 8192.0

    def __len__(self) -> int:
        return len(self._fib)

    def __repr__(self) -> str:
        return f"TabularFib(entries={len(self._fib)}, size={self.size_in_kbytes():.1f} KB)"
