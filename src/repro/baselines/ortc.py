"""ORTC — Optimal Routing Table Constructor (Draves et al. [12]).

ORTC is the classic FIB *aggregation* baseline (Fig 1(c) of the paper):
it relabels the prefix tree so that the forwarding function is preserved
with the provably minimum number of table entries. The paper positions
trie-folding as complementary to such schemes ("it can be used in
combination with basically any trie-based FIB representation"), which
the ablation benchmark exercises by folding ORTC's output.

Three passes over the leaf-pushed normal form:

1. normalize (done by :func:`leaf_pushed_trie`),
2. bottom-up: each interior node's candidate set is the intersection of
   its children's sets when non-empty, else their union,
3. top-down: emit an entry only where the inherited label is not in the
   node's candidate set.

The invalid label ⊥ participates like any other label; an emitted ⊥
entry is a *null route* (it can arise when an uncovered region is
surrounded by covered ones). :class:`OrtcResult` keeps such entries
explicit; ``to_fib()`` refuses to produce a :class:`Fib` if any exist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.fib import INVALID_LABEL, Fib
from repro.core.leafpush import leaf_pushed_trie
from repro.core.trie import BinaryTrie, TrieNode


@dataclass
class OrtcResult:
    """The aggregated table: entries may include ⊥ (null routes)."""

    width: int
    entries: List[Tuple[int, int, int]]

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def null_routes(self) -> int:
        return sum(1 for (_, _, label) in self.entries if label == INVALID_LABEL)

    def to_trie(self, null_label: Optional[int] = None) -> BinaryTrie:
        """A binary trie holding the aggregated entries.

        ``null_label`` rewrites ⊥ entries (null routes) to a real label —
        the way a production router expresses "discard": a next-hop that
        points at a drop interface. This is required before handing the
        table to :class:`~repro.core.prefixdag.PrefixDag`, which (like
        the paper) assumes no explicit blackhole routes. By default ⊥ is
        kept verbatim (semantics: "no route").
        """
        trie = BinaryTrie(self.width)
        for prefix, length, label in self.entries:
            if label == INVALID_LABEL and null_label is not None:
                label = null_label
            trie.insert(prefix, length, label)
        return trie

    def drop_label(self) -> int:
        """A label value safe to use for null routes: one past the
        largest real next-hop in the table."""
        real = [label for (_, _, label) in self.entries if label != INVALID_LABEL]
        return (max(real) + 1) if real else 1

    def to_fib(self) -> Fib:
        """As a :class:`Fib`; raises if any null route was required."""
        if self.null_routes:
            raise ValueError(
                f"aggregated table needs {self.null_routes} null route(s); "
                f"use to_trie() which can represent them"
            )
        fib = Fib(self.width)
        for prefix, length, label in self.entries:
            fib.add(prefix, length, label)
        return fib

    def lookup(self, address: int) -> Optional[int]:
        """LPM over the aggregated entries (⊥ maps to 'no route')."""
        label = self.to_trie().lookup(address)
        return None if label in (None, INVALID_LABEL) else label


def ortc_compress(source: Fib | BinaryTrie) -> OrtcResult:
    """Run ORTC and return the minimal entry set."""
    trie = BinaryTrie.from_fib(source) if isinstance(source, Fib) else source
    normalized = leaf_pushed_trie(trie)

    # Pass 2 (bottom-up): candidate label sets.
    candidates: dict[int, frozenset] = {}

    def pass2(node: TrieNode) -> frozenset:
        if node.is_leaf:
            result = frozenset((node.label,))
        else:
            left = pass2(node.left)
            right = pass2(node.right)
            meet = left & right
            result = meet if meet else (left | right)
        candidates[id(node)] = result
        return result

    pass2(normalized.root)

    # Pass 3 (top-down): emit only where the inherited label stops working.
    entries: List[Tuple[int, int, int]] = []

    def pass3(node: TrieNode, prefix: int, length: int, inherited: Optional[int]):
        options = candidates[id(node)]
        if inherited is not None and inherited in options:
            chosen = inherited
        else:
            chosen = min(options)
            entries.append((prefix, length, chosen))
        if not node.is_leaf:
            pass3(node.left, prefix << 1, length + 1, chosen)
            pass3(node.right, (prefix << 1) | 1, length + 1, chosen)

    # ⊥ is the implicit state above the root: a root set containing ⊥
    # needs no default entry.
    pass3(normalized.root, 0, 0, INVALID_LABEL)
    return OrtcResult(width=trie.width, entries=entries)
