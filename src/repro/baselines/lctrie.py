"""Level- and path-compressed multibit trie — the Linux ``fib_trie`` model.

The paper benchmarks its compressors against the Linux kernel's stock
``fib_trie`` [41], an LC-trie: a binary trie over the *distinct prefix
keys* in which

* unary chains are skipped (path compression), and
* dense regions are collapsed into one 2^k-way branch node (level
  compression) when at least ``fill_factor`` of the 2^k slots would be
  occupied — the Nilsson–Karlsson rule that ``fib_trie`` applies
  dynamically via inflate/halve.

Prefixes whose left-aligned key coincides (e.g. 10/2 and 1000/4) share a
leaf and are kept as an *alias list* sorted by decreasing length, like
the kernel's ``fib_alias`` chains.

Longest-prefix match descends by index bits; when the reached leaf does
not match, every covering prefix must have a key equal to the address
with a zeroed tail, so the search re-descends along suffix-zeroed
indices of the recorded path (the kernel's backtracking loop does the
same walk in-place). Lookup correctness is exhaustively tested against
the binary trie.

The byte-size model mirrors the kernel structures (``struct tnode`` +
child pointer array, ``struct leaf``, ``struct leaf_info`` +
``fib_alias``), which is what makes the paper's headline comparison —
26 MB of fib_trie vs. 178 KB of prefix DAG for the same FIB — appear.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.core.fib import Fib
from repro.core.trie import BinaryTrie
# Kernel-inspired struct sizes (bytes); see module docstring.
TNODE_HEADER_BYTES = 32
CHILD_POINTER_BYTES = 8
LEAF_BYTES = 32
ALIAS_BYTES = 24


class _Leaf:
    """A key plus its alias list: ``[(prefix_length, label), ...]`` sorted
    by decreasing length."""

    __slots__ = ("key", "aliases")

    def __init__(self, key: int):
        self.key = key
        self.aliases: List[Tuple[int, int]] = []


class _Tnode:
    """A 2^bits-way branch discriminating address bits [pos, pos+bits)."""

    __slots__ = ("pos", "bits", "children")

    def __init__(self, pos: int, bits: int):
        self.pos = pos
        self.bits = bits
        self.children: List[Optional[Union["_Tnode", _Leaf]]] = [None] * (1 << bits)


@dataclass
class LCTrieStats:
    """Structural statistics (the fib_trie row of Table 2)."""

    leaves: int
    tnodes: int
    aliases: int
    max_depth: int
    average_depth: float
    size_bytes: int


class LCTrie:
    """Static LC-trie over a FIB.

    Parameters
    ----------
    fib:
        The forwarding table.
    fill_factor:
        Minimum slot occupancy for level compression (0.5 like the
        kernel's effective steady state; 1.0 disables speculative
        expansion).
    max_bits:
        Stride cap. ``max_bits=1`` degenerates into a classic
        path-compressed binary (PATRICIA) trie.
    root_bits:
        Minimum root stride (the kernel keeps a large root node); 0
        disables the floor.
    """

    def __init__(
        self,
        fib: Fib,
        fill_factor: float = 0.5,
        max_bits: int = 17,
        root_bits: int = 0,
    ):
        if not 0.0 < fill_factor <= 1.0:
            raise ValueError(f"fill factor {fill_factor} outside (0, 1]")
        if max_bits < 1:
            raise ValueError("stride cap must be at least 1")
        self._width = fib.width
        self._fill = fill_factor
        self._max_bits = max_bits
        self._root_bits = root_bits
        leaves = self._collect_leaves(fib)
        self._leaf_count = len(leaves)
        self._alias_count = sum(len(leaf.aliases) for leaf in leaves)
        self._tnode_count = 0
        self._root: Optional[Union[_Tnode, _Leaf]] = (
            self._build(leaves, 0) if leaves else None
        )
        self._assign_layout()

    # ---------------------------------------------------------------- build

    def _collect_leaves(self, fib: Fib) -> List[_Leaf]:
        by_key: Dict[int, _Leaf] = {}
        for route in fib:
            key = route.prefix << (self._width - route.length) if route.length else 0
            leaf = by_key.get(key)
            if leaf is None:
                leaf = _Leaf(key)
                by_key[key] = leaf
            leaf.aliases.append((route.length, route.label))
        leaves = sorted(by_key.values(), key=lambda l: l.key)
        for leaf in leaves:
            leaf.aliases.sort(key=lambda alias: -alias[0])
        return leaves

    def _key_bits(self, key: int, pos: int, count: int) -> int:
        shift = self._width - pos - count
        return (key >> shift) & ((1 << count) - 1)

    def _build(self, leaves: List[_Leaf], pos: int, at_root: bool = True) -> Union[_Tnode, _Leaf]:
        if len(leaves) == 1:
            return leaves[0]
        # Path compression: skip ahead to the first bit where keys diverge.
        while pos < self._width:
            first = self._key_bits(leaves[0].key, pos, 1)
            if any(self._key_bits(leaf.key, pos, 1) != first for leaf in leaves[1:]):
                break
            pos += 1
        if pos >= self._width:  # duplicate keys cannot happen (merged above)
            raise AssertionError("distinct leaves share a full key")
        # Level compression: widest stride that stays over the fill factor.
        bits = 1
        limit = min(self._max_bits, self._width - pos)
        while bits < limit:
            candidate = bits + 1
            occupied = len({self._key_bits(leaf.key, pos, candidate) for leaf in leaves})
            if occupied < self._fill * (1 << candidate):
                break
            bits = candidate
        if at_root and self._root_bits:
            bits = max(bits, min(self._root_bits, limit))
        node = _Tnode(pos, bits)
        self._tnode_count += 1
        buckets: Dict[int, List[_Leaf]] = {}
        for leaf in leaves:
            buckets.setdefault(self._key_bits(leaf.key, pos, bits), []).append(leaf)
        for index, bucket in buckets.items():
            node.children[index] = self._build(bucket, pos + bits, at_root=False)
        return node

    # ---------------------------------------------------------------- lookup

    @staticmethod
    def _leaf_match(leaf: _Leaf, address: int, width: int) -> Optional[Tuple[int, int]]:
        """Longest alias of ``leaf`` matching ``address`` as (plen, label)."""
        for plen, label in leaf.aliases:
            if plen == 0 or (address >> (width - plen)) == (leaf.key >> (width - plen)):
                return plen, label
        return None

    def lookup(self, address: int) -> Optional[int]:
        """Longest-prefix match."""
        label, _ = self.lookup_with_depth(address)
        return label

    def lookup_with_depth(self, address: int) -> Tuple[Optional[int], int]:
        """LPM plus the number of nodes visited on the primary descent."""
        label, depth, _ = self._search(address, want_trace=False)
        return label, depth

    def lookup_trace(self, address: int) -> Tuple[Optional[int], List[int]]:
        """LPM plus the byte addresses touched (for the cache simulator)."""
        label, _, trace = self._search(address, want_trace=True)
        return label, trace

    def _search(
        self, address: int, want_trace: bool
    ) -> Tuple[Optional[int], int, List[int]]:
        trace: List[int] = []
        if self._root is None:
            return None, 0, trace
        path: List[Tuple[_Tnode, int]] = []
        node = self._root
        depth = 0
        while isinstance(node, _Tnode):
            depth += 1
            if want_trace:
                trace.append(self._node_address(node))
            index = self._key_bits(address, node.pos, node.bits)
            path.append((node, index))
            child = node.children[index]
            if child is None:
                node = None
                break
            node = child
        best: Optional[Tuple[int, int]] = None
        if isinstance(node, _Leaf):
            if want_trace:
                trace.append(self._leaf_address(node))
            best = self._leaf_match(node, address, self._width)
        # Backtrack: covering prefixes live on suffix-zeroed index paths.
        for tnode, index in reversed(path):
            for zero in range(1, tnode.bits + 1):
                masked = index & ~((1 << zero) - 1)
                if masked == index:
                    continue  # identical to the primary path
                candidate = tnode.children[masked]
                steps = 0
                while isinstance(candidate, _Tnode):
                    if want_trace:
                        trace.append(self._node_address(candidate))
                    candidate = candidate.children[0]
                    steps += 1
                    if steps > self._width:
                        raise AssertionError("cycle in LC-trie")
                if isinstance(candidate, _Leaf):
                    if want_trace:
                        trace.append(self._leaf_address(candidate))
                    match = self._leaf_match(candidate, address, self._width)
                    if match is not None and (best is None or match[0] > best[0]):
                        best = match
        return (best[1] if best else None), depth, trace

    # -------------------------------------------------------- layout / sizes

    def _assign_layout(self) -> None:
        """Assign every node a stable byte offset, BFS order: tnodes (header
        plus child-pointer array) first, then leaves, then alias records —
        the address map the cache simulator replays lookups against."""
        self._offsets: Dict[int, int] = {}
        cursor = 0
        leaves: List[_Leaf] = []
        queue: List[Union[_Tnode, _Leaf]] = [self._root] if self._root is not None else []
        index = 0
        while index < len(queue):
            node = queue[index]
            index += 1
            if isinstance(node, _Tnode):
                self._offsets[id(node)] = cursor
                cursor += TNODE_HEADER_BYTES + CHILD_POINTER_BYTES * len(node.children)
                queue.extend(child for child in node.children if child is not None)
            else:
                leaves.append(node)
        for leaf in leaves:
            self._offsets[id(leaf)] = cursor
            cursor += LEAF_BYTES + ALIAS_BYTES * len(leaf.aliases)
        self._layout_bytes = cursor

    def _node_address(self, node: _Tnode) -> int:
        return self._offsets[id(node)]

    def _leaf_address(self, leaf: _Leaf) -> int:
        return self._offsets[id(leaf)]

    def size_in_bytes(self) -> int:
        """Kernel struct cost model (see module docstring)."""
        tnode_bytes = 0
        stack = [self._root] if self._root is not None else []
        while stack:
            node = stack.pop()
            if isinstance(node, _Tnode):
                tnode_bytes += TNODE_HEADER_BYTES + CHILD_POINTER_BYTES * len(node.children)
                stack.extend(child for child in node.children if child is not None)
        return (
            tnode_bytes
            + self._leaf_count * LEAF_BYTES
            + self._alias_count * ALIAS_BYTES
        )

    def size_in_bits(self) -> int:
        return self.size_in_bytes() * 8

    def size_in_kbytes(self) -> float:
        return self.size_in_bytes() / 1024.0

    def stats(self) -> LCTrieStats:
        """Node counts and the exact average/maximum descent depth over
        uniform random addresses (weighting each branch by its address
        coverage)."""
        max_depth = 0
        expected = 0.0
        stack: List[Tuple[Union[_Tnode, _Leaf, None], int, float]] = [(self._root, 0, 1.0)]
        while stack:
            node, depth, weight = stack.pop()
            if node is None:
                max_depth = max(max_depth, depth)
                continue
            if isinstance(node, _Leaf):
                max_depth = max(max_depth, depth)
                continue
            expected += weight  # one tnode visit for every address in range
            share = weight / len(node.children)
            for child in node.children:
                stack.append((child, depth + 1, share))
        return LCTrieStats(
            leaves=self._leaf_count,
            tnodes=self._tnode_count,
            aliases=self._alias_count,
            max_depth=max_depth,
            average_depth=expected,
            size_bytes=self.size_in_bytes(),
        )

    @property
    def width(self) -> int:
        return self._width

    def __repr__(self) -> str:
        return (
            f"LCTrie(leaves={self._leaf_count}, tnodes={self._tnode_count}, "
            f"size={self.size_in_kbytes():.0f} KB)"
        )


def fib_trie(fib: Fib) -> LCTrie:
    """The Linux ``fib_trie`` configuration: fill 0.5, kernel-sized root."""
    return LCTrie(fib, fill_factor=0.5, max_bits=17, root_bits=0)


def equivalent_binary_trie(fib: Fib) -> BinaryTrie:
    """The uncompressed reference for equivalence tests."""
    return BinaryTrie.from_fib(fib)
