"""PATRICIA / BSD radix tree baseline (Sklower [46]).

The paper's §6 starting point: "This representation consumes a massive
24 bytes per node, and a single IP lookup might cost 32 random memory
accesses." Structurally a Patricia tree is the stride-1 special case of
the LC-trie (path compression only, no level compression), so this
module wraps :class:`~repro.baselines.lctrie.LCTrie` with ``max_bits=1``
and applies the 24-byte/node cost model.
"""

from __future__ import annotations

from repro.baselines.lctrie import LCTrie
from repro.core.fib import Fib
from repro.core.sizemodel import patricia_size_bits

PATRICIA_NODE_BYTES = 24


class PatriciaTrie(LCTrie):
    """Path-compressed binary radix tree over a FIB."""

    def __init__(self, fib: Fib):
        super().__init__(fib, fill_factor=1.0, max_bits=1, root_bits=0)

    def size_in_bytes(self) -> int:
        """24 bytes for every internal node and leaf, as quoted in §6."""
        return (self._tnode_count + self._leaf_count) * PATRICIA_NODE_BYTES

    def size_in_bits(self) -> int:
        return self.size_in_bytes() * 8


def patricia_size_for_nodes(node_count: int) -> int:
    """Size in bits of a Patricia tree with ``node_count`` nodes."""
    return patricia_size_bits(node_count)
