"""Shape graphs (Song et al. [47]) — the closest prior art to trie-folding.

§6: "Perhaps the closest to trie-folding is Shape graphs, where common
sub-trees, *without regard to the labels*, are merged into a DAG.
However, this necessitates storing a giant hash for the next-hops,
making updates expensive especially considering that the underlying trie
is leaf-pushed."

This baseline implements exactly that design: the leaf-pushed trie is
folded purely by *shape* (every leaf is equivalent to every other leaf),
which merges far more aggressively than label-aware folding — and then
the labels, which the shape DAG can no longer carry, live in a hash
keyed by the leaf's covering prefix. Lookup walks the shape DAG to find
the depth of the matching leaf and finishes with one hash probe.

The point the ablation makes is the paper's: the shape DAG itself is
tiny, but the next-hop hash costs ``n·(W + lg δ)``-ish bits, so the
total loses to the label-aware prefix DAG.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

from repro.core.fib import INVALID_LABEL, Fib
from repro.core.leafpush import leaf_pushed_trie
from repro.core.sizemodel import label_width, pointer_width
from repro.core.trie import BinaryTrie, TrieNode
from repro.utils.bits import address_bits, lg


class _ShapeNode:
    __slots__ = ("left", "right", "node_id", "refcount")

    def __init__(self, left=None, right=None, node_id=None):
        self.left = left
        self.right = right
        self.node_id = node_id
        self.refcount = 1

    @property
    def is_leaf(self) -> bool:
        return self.left is None and self.right is None


class ShapeGraph:
    """Shape-merged FIB with an external next-hop hash."""

    def __init__(self, source: Union[Fib, BinaryTrie]):
        trie = BinaryTrie.from_fib(source) if isinstance(source, Fib) else source
        self._width = trie.width
        normalized = leaf_pushed_trie(trie)
        self._intern: Dict[tuple, _ShapeNode] = {}
        self._the_leaf = _ShapeNode(node_id=(0, 0))
        self._the_leaf.refcount = 0
        self._serial = 0
        self._next_hops: Dict[Tuple[int, int], int] = {}
        self._root = self._fold(normalized.root, 0, 0)

    def _fold(self, node: TrieNode, prefix: int, depth: int) -> _ShapeNode:
        if node.is_leaf:
            if node.label != INVALID_LABEL:
                self._next_hops[(prefix, depth)] = node.label
            self._the_leaf.refcount += 1
            return self._the_leaf
        left = self._fold(node.left, prefix << 1, depth + 1)
        right = self._fold(node.right, (prefix << 1) | 1, depth + 1)
        key = (left.node_id, right.node_id)
        existing = self._intern.get(key)
        if existing is not None:
            existing.refcount += 1
            left.refcount -= 1
            right.refcount -= 1
            return existing
        self._serial += 1
        shaped = _ShapeNode(left=left, right=right, node_id=(1, self._serial))
        self._intern[key] = shaped
        return shaped

    # ----------------------------------------------------------------- lookup

    def lookup(self, address: int) -> Optional[int]:
        """Walk the shape to the covering leaf, then one hash probe."""
        node = self._root
        prefix = 0
        depth = 0
        while not node.is_leaf:
            bit = address_bits(address, depth, 1, self._width)
            node = node.right if bit else node.left
            prefix = (prefix << 1) | bit
            depth += 1
        return self._next_hops.get((prefix, depth))

    def lookup_with_depth(self, address: int) -> Tuple[Optional[int], int]:
        node = self._root
        prefix = 0
        depth = 0
        while not node.is_leaf:
            bit = address_bits(address, depth, 1, self._width)
            node = node.right if bit else node.left
            prefix = (prefix << 1) | bit
            depth += 1
        return self._next_hops.get((prefix, depth)), depth

    # ------------------------------------------------------------- statistics

    def shape_node_count(self) -> int:
        """Distinct shape nodes (including the single shared leaf)."""
        return len(self._intern) + 1

    def hash_entries(self) -> int:
        return len(self._next_hops)

    def shape_size_in_bits(self) -> int:
        """The DAG part: two pointers per interior node."""
        ptr = pointer_width(self.shape_node_count())
        return len(self._intern) * 2 * ptr

    def hash_size_in_bits(self) -> int:
        """The 'giant hash': one (prefix key, label) record per labeled
        leaf. Keys are stored as (W + lg W)-bit prefix descriptors."""
        if not self._next_hops:
            return 0
        delta = len(set(self._next_hops.values()))
        record = self._width + lg(self._width + 1) + label_width(delta)
        return len(self._next_hops) * record

    def size_in_bits(self) -> int:
        return self.shape_size_in_bits() + self.hash_size_in_bits()

    def size_in_kbytes(self) -> float:
        return self.size_in_bits() / 8192.0

    @property
    def width(self) -> int:
        return self._width

    def __repr__(self) -> str:
        return (
            f"ShapeGraph(shapes={self.shape_node_count()}, "
            f"hash={self.hash_entries()}, size={self.size_in_kbytes():.1f} KB)"
        )
