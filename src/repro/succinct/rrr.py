"""RRR entropy-compressed bitvector (Raman, Raman, Rao [42]).

The input bitstring is cut into fixed-size blocks of ``b`` bits; each
block is stored as a pair

* **class** ``c`` — its popcount, in ``ceil(lg(b+1))`` bits, and
* **offset** — the index of the block's exact bit pattern within the
  enumeration of all ``C(b, c)`` patterns of that class, in
  ``ceil(lg C(b, c))`` bits (the combinatorial number system).

Summed over the input this is ``n * H0 + o(n)`` bits. A superblock
directory stores sampled ranks and offset-stream positions so rank runs
in O(superblock) = O(1) time for fixed sampling rate, exactly the role
RRR plays for the ``S_I`` string of XBW-b (Lemma 2 of the paper).
"""

from __future__ import annotations

from typing import Iterable

from repro.succinct.bitbuffer import BitBuffer
from repro.utils.bits import bits_for

DEFAULT_BLOCK_BITS = 15
DEFAULT_SUPERBLOCK_BLOCKS = 32


def _binomial_table(block_bits: int) -> list[list[int]]:
    table = [[0] * (block_bits + 1) for _ in range(block_bits + 1)]
    for n in range(block_bits + 1):
        table[n][0] = 1
        for k in range(1, n + 1):
            table[n][k] = table[n - 1][k - 1] + (table[n - 1][k] if k <= n - 1 else 0)
    return table


class RRRBitVector:
    """Static compressed bitvector with access / rank / select.

    Parameters
    ----------
    bits:
        The input bit sequence.
    block_bits:
        Block size ``b`` (15 by default; the offset of a block never
        exceeds ``C(15, 7) = 6435`` so all arithmetic stays tiny).
    superblock_blocks:
        Blocks per superblock; controls the rank-sample density and the
        constant factor of every query.
    """

    def __init__(
        self,
        bits: Iterable[int] | BitBuffer,
        block_bits: int = DEFAULT_BLOCK_BITS,
        superblock_blocks: int = DEFAULT_SUPERBLOCK_BLOCKS,
    ):
        if block_bits < 1 or block_bits > 62:
            raise ValueError(f"block size {block_bits} outside [1, 62]")
        if superblock_blocks < 1:
            raise ValueError("superblock must contain at least one block")
        source = bits if isinstance(bits, BitBuffer) else BitBuffer(bits)
        self._length = len(source)
        self._block_bits = block_bits
        self._superblock_blocks = superblock_blocks
        self._binomial = _binomial_table(block_bits)
        self._class_width = bits_for(block_bits + 1)
        self._offset_widths = [bits_for(self._binomial[block_bits][c]) for c in range(block_bits + 1)]
        self._build(source)

    # ------------------------------------------------------------------ build

    def _build(self, source: BitBuffer) -> None:
        b = self._block_bits
        block_count = (self._length + b - 1) // b
        self._block_count = block_count
        self._classes = BitBuffer()
        self._offsets = BitBuffer()
        self._superblock_rank: list[int] = []
        self._superblock_offset_position: list[int] = []
        running_ones = 0
        for block_index in range(block_count):
            if block_index % self._superblock_blocks == 0:
                self._superblock_rank.append(running_ones)
                self._superblock_offset_position.append(len(self._offsets))
            start = block_index * b
            width = min(b, self._length - start)
            pattern = source.get_int(start, width)
            if width < b:  # final partial block, zero-padded on the right
                pattern <<= b - width
            cls = pattern.bit_count()
            self._classes.append_int(cls, self._class_width)
            self._offsets.append_int(self._rank_pattern(pattern, cls), self._offset_widths[cls])
            running_ones += cls
        self._total_ones = running_ones

    def _rank_pattern(self, pattern: int, cls: int) -> int:
        """Combinatorial rank of a b-bit pattern within its class."""
        offset = 0
        remaining_ones = cls
        for position in range(self._block_bits):
            if remaining_ones == 0:
                break
            bit = (pattern >> (self._block_bits - 1 - position)) & 1
            remaining_positions = self._block_bits - 1 - position
            if bit:
                offset += self._binomial[remaining_positions][remaining_ones]
                remaining_ones -= 1
        return offset

    def _unrank_pattern(self, offset: int, cls: int) -> int:
        """Inverse of :meth:`_rank_pattern`."""
        pattern = 0
        remaining_ones = cls
        for position in range(self._block_bits):
            if remaining_ones == 0:
                break
            remaining_positions = self._block_bits - 1 - position
            ways_with_zero = self._binomial[remaining_positions][remaining_ones]
            if offset >= ways_with_zero:
                pattern |= 1 << remaining_positions
                offset -= ways_with_zero
                remaining_ones -= 1
        return pattern

    # ----------------------------------------------------------------- access

    def __len__(self) -> int:
        return self._length

    def __repr__(self) -> str:
        return (
            f"RRRBitVector(length={self._length}, ones={self._total_ones}, "
            f"b={self._block_bits}, size={self.size_in_bits()} bits)"
        )

    @property
    def ones(self) -> int:
        return self._total_ones

    @property
    def zeros(self) -> int:
        return self._length - self._total_ones

    def _block_fields(self, block_index: int) -> tuple[int, int, int]:
        """(class, offset_position, offset_width) of a block, by scanning
        forward from the covering superblock sample."""
        superblock = block_index // self._superblock_blocks
        position = self._superblock_offset_position[superblock]
        first_block = superblock * self._superblock_blocks
        for scan in range(first_block, block_index):
            cls = self._classes.get_int(scan * self._class_width, self._class_width)
            position += self._offset_widths[cls]
        cls = self._classes.get_int(block_index * self._class_width, self._class_width)
        return cls, position, self._offset_widths[cls]

    def _block_pattern(self, block_index: int) -> int:
        cls, position, width = self._block_fields(block_index)
        offset = self._offsets.get_int(position, width) if width else 0
        return self._unrank_pattern(offset, cls)

    def access(self, index: int) -> int:
        """Bit at 0-based ``index``."""
        if index < 0 or index >= self._length:
            raise IndexError(f"bit {index} outside vector of {self._length} bits")
        block_index, within = divmod(index, self._block_bits)
        pattern = self._block_pattern(block_index)
        return (pattern >> (self._block_bits - 1 - within)) & 1

    def rank1(self, position: int) -> int:
        """Ones in the half-open range ``[0, position)``."""
        if position < 0 or position > self._length:
            raise IndexError(f"rank position {position} outside [0, {self._length}]")
        if position == 0:
            return 0
        block_index, within = divmod(position, self._block_bits)
        if block_index >= self._block_count:
            return self._total_ones
        superblock = block_index // self._superblock_blocks
        count = self._superblock_rank[superblock]
        offset_position = self._superblock_offset_position[superblock]
        first_block = superblock * self._superblock_blocks
        for scan in range(first_block, block_index):
            cls = self._classes.get_int(scan * self._class_width, self._class_width)
            count += cls
            offset_position += self._offset_widths[cls]
        if within:
            cls = self._classes.get_int(block_index * self._class_width, self._class_width)
            width = self._offset_widths[cls]
            offset = self._offsets.get_int(offset_position, width) if width else 0
            pattern = self._unrank_pattern(offset, cls)
            count += (pattern >> (self._block_bits - within)).bit_count()
        return count

    def rank0(self, position: int) -> int:
        """Zeros in ``[0, position)``."""
        if position < 0 or position > self._length:
            raise IndexError(f"rank position {position} outside [0, {self._length}]")
        return position - self.rank1(position)

    def rank1_inclusive(self, position_1based: int) -> int:
        """Paper-style ``rank1(S, q)`` over the 1-based prefix ``S[1, q]``."""
        return self.rank1(position_1based)

    def rank0_inclusive(self, position_1based: int) -> int:
        """Paper-style ``rank0(S, q)`` over the 1-based prefix ``S[1, q]``."""
        return self.rank0(position_1based)

    def select1(self, occurrence: int) -> int:
        """0-based position of the ``occurrence``-th set bit."""
        if occurrence < 1 or occurrence > self._total_ones:
            raise IndexError(f"select1({occurrence}) outside [1, {self._total_ones}]")
        return self._select(occurrence, want_one=True)

    def select0(self, occurrence: int) -> int:
        """0-based position of the ``occurrence``-th clear bit."""
        total_zeros = self.zeros
        if occurrence < 1 or occurrence > total_zeros:
            raise IndexError(f"select0({occurrence}) outside [1, {total_zeros}]")
        return self._select(occurrence, want_one=False)

    def _select(self, occurrence: int, want_one: bool) -> int:
        low, high = 0, self._length
        while low < high:
            middle = (low + high) // 2
            count = self.rank1(middle + 1) if want_one else self.rank0(middle + 1)
            if count < occurrence:
                low = middle + 1
            else:
                high = middle
        return low

    # ------------------------------------------------------------ trace model

    def _layout(self) -> tuple[int, int, int]:
        """(dir_base, classes_base, offsets_base) byte offsets of the
        encoded regions, laid out directory-first."""
        dir_bytes = (len(self._superblock_rank) + len(self._superblock_offset_position)) * 8
        classes_bytes = (len(self._classes) + 7) // 8
        return 0, dir_bytes, dir_bytes + classes_bytes

    def trace_access(self, index: int) -> list[int]:
        """Byte addresses an :meth:`access` at ``index`` touches: the
        superblock directory entry, the class-stream scan range, and the
        offset word of the target block."""
        dir_base, classes_base, offsets_base = self._layout()
        block_index = index // self._block_bits
        superblock = block_index // self._superblock_blocks
        first_block = superblock * self._superblock_blocks
        addresses = [dir_base + superblock * 16]
        addresses.append(classes_base + (first_block * self._class_width) // 8)
        addresses.append(classes_base + (block_index * self._class_width) // 8)
        _, position, _ = self._block_fields(block_index)
        addresses.append(offsets_base + position // 8)
        return addresses

    def trace_rank(self, position: int) -> list[int]:
        """Byte addresses a rank at ``position`` touches (same regions)."""
        if position == 0:
            return []
        return self.trace_access(min(position, self._length) - 1)

    # ------------------------------------------------------------------- size

    def size_in_bits(self) -> int:
        """Encoded size: class stream + offset stream + directory."""
        directory = 0
        rank_width = bits_for(self._length + 1)
        position_width = bits_for(len(self._offsets) + 1)
        directory += len(self._superblock_rank) * rank_width
        directory += len(self._superblock_offset_position) * position_width
        return len(self._classes) + len(self._offsets) + directory

    def to_bits(self) -> list[int]:
        """Decompress back to the original bit list (for testing)."""
        out: list[int] = []
        for block_index in range(self._block_count):
            pattern = self._block_pattern(block_index)
            width = min(self._block_bits, self._length - block_index * self._block_bits)
            for position in range(width):
                out.append((pattern >> (self._block_bits - 1 - position)) & 1)
        return out
