"""Plain bitvector with a constant-time rank directory.

This is Jacobson's classic two-level rank structure [28]: the bit payload
is kept verbatim (1 bit per input bit) and a directory of superblock and
block counters is added so that

* ``rank1(i)`` — ones in positions ``[0, i)`` — is O(1),
* ``select1(k)`` / ``select0(k)`` are near-constant: a **sampled select
  directory** (the position of every ``k``-th set/clear bit, built
  lazily on first use) brackets the answer between two adjacent
  samples, and a rank binary search finishes inside the bracket — in
  place of the original O(log n) search over the whole vector. Wavelet
  tree and XBW lookups, which lean on select when walking back up,
  inherit the win.

It is both a useful structure on its own (wavelet tree internals default
to it) and the uncompressed baseline against which :mod:`repro.succinct.rrr`
is evaluated.

Rank/select conventions follow the paper's pseudo-code: positions are
1-based in :meth:`rank1_inclusive` (``rank_s(S, q)`` counts occurrences in
``S[1, q]``), while the Pythonic 0-based half-open :meth:`rank1` is what
internal code uses.
"""

from __future__ import annotations

from typing import Iterable

from repro.succinct.bitbuffer import BitBuffer

_BLOCK_BITS = 64          # one backing word per block
_SUPERBLOCK_BLOCKS = 8    # 512 bits per superblock
_SELECT_SAMPLE = 64       # one sampled position per 64 target bits


class BitVector:
    """Static bitvector supporting access / rank / select.

    Parameters
    ----------
    bits:
        Iterable of 0/1 (or a prebuilt :class:`BitBuffer`).
    """

    def __init__(self, bits: Iterable[int] | BitBuffer):
        if isinstance(bits, BitBuffer):
            self._buffer = bits
        else:
            self._buffer = BitBuffer(bits)
        self._length = len(self._buffer)
        self._build_directory()

    def _build_directory(self) -> None:
        words = self._buffer.words()
        self._superblock_ranks: list[int] = []
        self._block_ranks: list[int] = []
        running = 0
        for block_index, word in enumerate(words):
            if block_index % _SUPERBLOCK_BLOCKS == 0:
                self._superblock_ranks.append(running)
            self._block_ranks.append(running - self._superblock_ranks[-1])
            running += word.bit_count()
        self._total_ones = running
        # Sampled select directories, built lazily on the first select:
        # rank-only users (the common case) never pay for them.
        self._select1_samples: list[int] | None = None
        self._select0_samples: list[int] | None = None

    def __len__(self) -> int:
        return self._length

    def __repr__(self) -> str:
        return f"BitVector(length={self._length}, ones={self._total_ones})"

    @property
    def ones(self) -> int:
        """Total number of set bits."""
        return self._total_ones

    @property
    def zeros(self) -> int:
        """Total number of clear bits."""
        return self._length - self._total_ones

    def access(self, index: int) -> int:
        """Bit at 0-based ``index``."""
        return self._buffer.get_bit(index)

    def rank1(self, position: int) -> int:
        """Number of ones in the half-open range ``[0, position)``."""
        if position < 0 or position > self._length:
            raise IndexError(f"rank position {position} outside [0, {self._length}]")
        if position == 0:
            return 0
        word_index = position >> 6
        offset = position & 63
        if word_index >= len(self._block_ranks):
            return self._total_ones
        superblock = word_index // _SUPERBLOCK_BLOCKS
        count = self._superblock_ranks[superblock] + self._block_ranks[word_index]
        if offset:
            word = self._buffer.words()[word_index]
            count += (word & ((1 << offset) - 1)).bit_count()
        return count

    def rank0(self, position: int) -> int:
        """Number of zeros in ``[0, position)``."""
        if position < 0 or position > self._length:
            raise IndexError(f"rank position {position} outside [0, {self._length}]")
        return position - self.rank1(position)

    def rank1_inclusive(self, position_1based: int) -> int:
        """Paper-style ``rank1(S, q)``: ones in the 1-based prefix ``S[1, q]``."""
        return self.rank1(position_1based)

    def rank0_inclusive(self, position_1based: int) -> int:
        """Paper-style ``rank0(S, q)``: zeros in the 1-based prefix ``S[1, q]``."""
        return self.rank0(position_1based)

    def select1(self, occurrence: int) -> int:
        """0-based position of the ``occurrence``-th one (1-based count).

        ``select1(k)`` is the smallest ``p`` with ``rank1(p + 1) == k``.
        """
        if occurrence < 1 or occurrence > self._total_ones:
            raise IndexError(f"select1({occurrence}) outside [1, {self._total_ones}]")
        return self._select(occurrence, want_one=True)

    def select0(self, occurrence: int) -> int:
        """0-based position of the ``occurrence``-th zero (1-based count)."""
        total_zeros = self._length - self._total_ones
        if occurrence < 1 or occurrence > total_zeros:
            raise IndexError(f"select0({occurrence}) outside [1, {total_zeros}]")
        return self._select(occurrence, want_one=False)

    def _build_select_samples(self, want_one: bool) -> list[int]:
        """Positions of the 1st, (k+1)-th, (2k+1)-th, ... target bit
        (k = :data:`_SELECT_SAMPLE`), collected in one word scan."""
        samples: list[int] = []
        seen = 0
        next_sample = 1  # 1-based occurrence the next sample records
        for word_index, word in enumerate(self._buffer.words()):
            if not want_one:
                # Mask to the payload: the final word's slack bits are
                # neither ones nor zeros of the vector.
                valid = min(64, self._length - (word_index << 6))
                word = ~word & ((1 << valid) - 1)
            count = word.bit_count()
            while seen + count >= next_sample:
                # Position of the (next_sample - seen)-th set bit in word.
                needed = next_sample - seen
                probe = word
                for _ in range(needed - 1):
                    probe &= probe - 1  # clear lowest set bits
                samples.append((word_index << 6) + (probe & -probe).bit_length() - 1)
                next_sample += _SELECT_SAMPLE
            seen += count
        return samples

    def _select(self, occurrence: int, want_one: bool) -> int:
        """Bracket the answer between two adjacent directory samples,
        then binary-search rank inside the bracket (near-constant: the
        bracket spans one sampling interval, not the whole vector)."""
        if want_one:
            samples = self._select1_samples
            if samples is None:
                samples = self._select1_samples = self._build_select_samples(True)
        else:
            samples = self._select0_samples
            if samples is None:
                samples = self._select0_samples = self._build_select_samples(False)
        bucket = (occurrence - 1) // _SELECT_SAMPLE
        offset = (occurrence - 1) % _SELECT_SAMPLE
        low = samples[bucket]
        if offset == 0:
            return low
        high = samples[bucket + 1] if bucket + 1 < len(samples) else self._length
        while low < high:
            middle = (low + high) // 2
            count = self.rank1(middle + 1) if want_one else self.rank0(middle + 1)
            if count < occurrence:
                low = middle + 1
            else:
                high = middle
        return low

    def select_directory_bits(self) -> int:
        """Size of the (lazily built) select acceleration directory.

        Reported separately from :meth:`size_in_bits`: the samples are a
        host-side acceleration cache, not part of the paper's succinct
        size model (exactly like the batch dispatch arrays of
        :mod:`repro.pipeline.batch`)."""
        built = (self._select1_samples or []), (self._select0_samples or [])
        return 64 * sum(len(samples) for samples in built)

    def size_in_bits(self) -> int:
        """Payload + directory size in bits (what tables report)."""
        directory = 64 * len(self._superblock_ranks) + 16 * len(self._block_ranks)
        return self._length + directory

    def trace_access(self, index: int) -> list[int]:
        """Byte addresses an access touches: the payload word."""
        directory_bytes = 8 * len(self._superblock_ranks) + 2 * len(self._block_ranks)
        return [directory_bytes + (index >> 6) * 8]

    def trace_rank(self, position: int) -> list[int]:
        """Byte addresses a rank touches: directory entries + payload word."""
        if position == 0:
            return []
        word_index = min(position - 1, self._length - 1) >> 6
        superblock = word_index // _SUPERBLOCK_BLOCKS
        directory_bytes = 8 * len(self._superblock_ranks) + 2 * len(self._block_ranks)
        return [
            superblock * 8,
            8 * len(self._superblock_ranks) + word_index * 2,
            directory_bytes + word_index * 8,
        ]

    def payload(self) -> BitBuffer:
        """The raw bit payload."""
        return self._buffer
