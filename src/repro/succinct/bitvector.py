"""Plain bitvector with a constant-time rank directory.

This is Jacobson's classic two-level rank structure [28]: the bit payload
is kept verbatim (1 bit per input bit) and a directory of superblock and
block counters is added so that

* ``rank1(i)`` — ones in positions ``[0, i)`` — is O(1),
* ``select1(k)`` / ``select0(k)`` are O(log n) by binary search on rank.

It is both a useful structure on its own (wavelet tree internals default
to it) and the uncompressed baseline against which :mod:`repro.succinct.rrr`
is evaluated.

Rank/select conventions follow the paper's pseudo-code: positions are
1-based in :meth:`rank1_inclusive` (``rank_s(S, q)`` counts occurrences in
``S[1, q]``), while the Pythonic 0-based half-open :meth:`rank1` is what
internal code uses.
"""

from __future__ import annotations

from typing import Iterable

from repro.succinct.bitbuffer import BitBuffer

_BLOCK_BITS = 64          # one backing word per block
_SUPERBLOCK_BLOCKS = 8    # 512 bits per superblock


class BitVector:
    """Static bitvector supporting access / rank / select.

    Parameters
    ----------
    bits:
        Iterable of 0/1 (or a prebuilt :class:`BitBuffer`).
    """

    def __init__(self, bits: Iterable[int] | BitBuffer):
        if isinstance(bits, BitBuffer):
            self._buffer = bits
        else:
            self._buffer = BitBuffer(bits)
        self._length = len(self._buffer)
        self._build_directory()

    def _build_directory(self) -> None:
        words = self._buffer.words()
        self._superblock_ranks: list[int] = []
        self._block_ranks: list[int] = []
        running = 0
        for block_index, word in enumerate(words):
            if block_index % _SUPERBLOCK_BLOCKS == 0:
                self._superblock_ranks.append(running)
            self._block_ranks.append(running - self._superblock_ranks[-1])
            running += word.bit_count()
        self._total_ones = running

    def __len__(self) -> int:
        return self._length

    def __repr__(self) -> str:
        return f"BitVector(length={self._length}, ones={self._total_ones})"

    @property
    def ones(self) -> int:
        """Total number of set bits."""
        return self._total_ones

    @property
    def zeros(self) -> int:
        """Total number of clear bits."""
        return self._length - self._total_ones

    def access(self, index: int) -> int:
        """Bit at 0-based ``index``."""
        return self._buffer.get_bit(index)

    def rank1(self, position: int) -> int:
        """Number of ones in the half-open range ``[0, position)``."""
        if position < 0 or position > self._length:
            raise IndexError(f"rank position {position} outside [0, {self._length}]")
        if position == 0:
            return 0
        word_index = position >> 6
        offset = position & 63
        if word_index >= len(self._block_ranks):
            return self._total_ones
        superblock = word_index // _SUPERBLOCK_BLOCKS
        count = self._superblock_ranks[superblock] + self._block_ranks[word_index]
        if offset:
            word = self._buffer.words()[word_index]
            count += (word & ((1 << offset) - 1)).bit_count()
        return count

    def rank0(self, position: int) -> int:
        """Number of zeros in ``[0, position)``."""
        if position < 0 or position > self._length:
            raise IndexError(f"rank position {position} outside [0, {self._length}]")
        return position - self.rank1(position)

    def rank1_inclusive(self, position_1based: int) -> int:
        """Paper-style ``rank1(S, q)``: ones in the 1-based prefix ``S[1, q]``."""
        return self.rank1(position_1based)

    def rank0_inclusive(self, position_1based: int) -> int:
        """Paper-style ``rank0(S, q)``: zeros in the 1-based prefix ``S[1, q]``."""
        return self.rank0(position_1based)

    def select1(self, occurrence: int) -> int:
        """0-based position of the ``occurrence``-th one (1-based count).

        ``select1(k)`` is the smallest ``p`` with ``rank1(p + 1) == k``.
        """
        if occurrence < 1 or occurrence > self._total_ones:
            raise IndexError(f"select1({occurrence}) outside [1, {self._total_ones}]")
        return self._select(occurrence, want_one=True)

    def select0(self, occurrence: int) -> int:
        """0-based position of the ``occurrence``-th zero (1-based count)."""
        total_zeros = self._length - self._total_ones
        if occurrence < 1 or occurrence > total_zeros:
            raise IndexError(f"select0({occurrence}) outside [1, {total_zeros}]")
        return self._select(occurrence, want_one=False)

    def _select(self, occurrence: int, want_one: bool) -> int:
        low, high = 0, self._length
        while low < high:
            middle = (low + high) // 2
            count = self.rank1(middle + 1) if want_one else self.rank0(middle + 1)
            if count < occurrence:
                low = middle + 1
            else:
                high = middle
        return low

    def size_in_bits(self) -> int:
        """Payload + directory size in bits (what tables report)."""
        directory = 64 * len(self._superblock_ranks) + 16 * len(self._block_ranks)
        return self._length + directory

    def trace_access(self, index: int) -> list[int]:
        """Byte addresses an access touches: the payload word."""
        directory_bytes = 8 * len(self._superblock_ranks) + 2 * len(self._block_ranks)
        return [directory_bytes + (index >> 6) * 8]

    def trace_rank(self, position: int) -> list[int]:
        """Byte addresses a rank touches: directory entries + payload word."""
        if position == 0:
            return []
        word_index = min(position - 1, self._length - 1) >> 6
        superblock = word_index // _SUPERBLOCK_BLOCKS
        directory_bytes = 8 * len(self._superblock_ranks) + 2 * len(self._block_ranks)
        return [
            superblock * 8,
            8 * len(self._superblock_ranks) + word_index * 2,
            directory_bytes + word_index * 8,
        ]

    def payload(self) -> BitBuffer:
        """The raw bit payload."""
        return self._buffer
