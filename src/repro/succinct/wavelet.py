"""Wavelet trees with access / rank / select over integer sequences.

The wavelet tree stores a sequence ``S`` over alphabet Σ as one bitvector
per tree node: each symbol is routed root-to-leaf along its codeword and
contributes one bit per visited node. With a balanced (fixed-width) shape
queries cost ``O(lg δ)``; with a Huffman shape the *expected* cost and the
total size drop to ``H0 + 1`` bits per symbol — this is the
"Huffman-shaped WaveletTree" of [19] that the paper's XBW-b prototype
uses for the label string ``S_α`` (Lemma 3).

Node bitvectors default to the plain :class:`~repro.succinct.bitvector.BitVector`;
pass ``bitvector_factory=RRRBitVector`` for compressed nodes.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Sequence

from repro.succinct.bitvector import BitVector
from repro.succinct.huffman import Codeword, HuffmanCode
from repro.utils.bits import bits_for


class _Node:
    __slots__ = ("bitvector", "zero_child", "one_child", "symbol")

    def __init__(self):
        self.bitvector = None
        self.zero_child: Optional[_Node] = None
        self.one_child: Optional[_Node] = None
        self.symbol = None  # set on leaves only

    @property
    def is_leaf(self) -> bool:
        return self.symbol is not None


def _balanced_codewords(symbols: Sequence) -> Dict[object, Codeword]:
    ordered = sorted(set(symbols))
    width = max(1, bits_for(len(ordered)))
    return {symbol: Codeword(index, width) for index, symbol in enumerate(ordered)}


class WaveletTree:
    """Static wavelet tree.

    Parameters
    ----------
    sequence:
        The symbols to index (any hashable, mutually sortable values;
        this library always uses small ints — next-hop labels).
    shape:
        ``"huffman"`` (default) or ``"balanced"``.
    bitvector_factory:
        Constructor called with an iterable of bits for every node;
        defaults to the plain rank/select :class:`BitVector`.
    """

    def __init__(
        self,
        sequence: Iterable,
        shape: str = "huffman",
        bitvector_factory: Callable = BitVector,
    ):
        self._sequence_length = 0
        symbols = list(sequence)
        self._sequence_length = len(symbols)
        self._shape = shape
        self._factory = bitvector_factory
        if not symbols:
            self._root = None
            self._codewords: Dict[object, Codeword] = {}
            return
        if shape == "huffman":
            frequencies: Dict[object, int] = {}
            for symbol in symbols:
                frequencies[symbol] = frequencies.get(symbol, 0) + 1
            if len(frequencies) == 1:
                only = next(iter(frequencies))
                self._codewords = {only: Codeword(0, 0)}
            else:
                self._codewords = {
                    s: HuffmanCode(frequencies).codeword(s) for s in frequencies
                }
        elif shape == "balanced":
            self._codewords = _balanced_codewords(symbols)
            if len(self._codewords) == 1:
                only = next(iter(self._codewords))
                self._codewords = {only: Codeword(0, 0)}
        else:
            raise ValueError(f"unknown wavelet shape {shape!r}")
        self._root = self._build(symbols, depth=0)

    def _build(self, symbols: list, depth: int) -> _Node:
        node = _Node()
        first_code = self._codewords[symbols[0]]
        if first_code.length == depth:
            # All symbols routed here completed their codeword: leaf.
            node.symbol = symbols[0]
            return node
        bits = []
        zeros: list = []
        ones: list = []
        for symbol in symbols:
            code = self._codewords[symbol]
            bit = (code.bits >> (code.length - 1 - depth)) & 1
            bits.append(bit)
            (ones if bit else zeros).append(symbol)
        node.bitvector = self._factory(bits)
        if zeros:
            node.zero_child = self._build(zeros, depth + 1)
        if ones:
            node.one_child = self._build(ones, depth + 1)
        return node

    # ------------------------------------------------------------ trace model

    def _node_base(self, node: _Node) -> int:
        """Byte offset of a node's bitvector in the serialized layout
        (preorder, computed lazily and cached)."""
        bases = getattr(self, "_bases", None)
        if bases is None:
            bases = {}
            cursor = 0
            stack = [self._root] if self._root else []
            while stack:
                current = stack.pop()
                bases[id(current)] = cursor
                if current.bitvector is not None:
                    cursor += (current.bitvector.size_in_bits() + 7) // 8
                if current.one_child:
                    stack.append(current.one_child)
                if current.zero_child:
                    stack.append(current.zero_child)
            self._bases = bases
        return bases[id(node)]

    def trace_access(self, index: int) -> tuple[object, list[int]]:
        """Symbol at ``index`` plus the byte addresses the walk touches."""
        if index < 0 or index >= self._sequence_length:
            raise IndexError(f"index {index} outside sequence of {self._sequence_length}")
        addresses: list[int] = []
        node = self._root
        while not node.is_leaf:
            base = self._node_base(node)
            if hasattr(node.bitvector, "trace_access"):
                addresses.extend(base + a for a in node.bitvector.trace_access(index))
            bit = node.bitvector.access(index)
            if bit:
                index = node.bitvector.rank1(index)
                node = node.one_child
            else:
                index = node.bitvector.rank0(index)
                node = node.zero_child
        return node.symbol, addresses

    # ------------------------------------------------------------------- api

    def __len__(self) -> int:
        return self._sequence_length

    def __repr__(self) -> str:
        return (
            f"WaveletTree(length={self._sequence_length}, "
            f"alphabet={len(self._codewords)}, shape={self._shape!r})"
        )

    @property
    def alphabet(self) -> list:
        return sorted(self._codewords)

    def access(self, index: int):
        """Symbol at 0-based ``index``."""
        if index < 0 or index >= self._sequence_length:
            raise IndexError(f"index {index} outside sequence of {self._sequence_length}")
        node = self._root
        while not node.is_leaf:
            bit = node.bitvector.access(index)
            if bit:
                index = node.bitvector.rank1(index)
                node = node.one_child
            else:
                index = node.bitvector.rank0(index)
                node = node.zero_child
        return node.symbol

    def rank(self, symbol, position: int) -> int:
        """Occurrences of ``symbol`` in the half-open prefix ``[0, position)``."""
        if position < 0 or position > self._sequence_length:
            raise IndexError(
                f"rank position {position} outside [0, {self._sequence_length}]"
            )
        code = self._codewords.get(symbol)
        if code is None:
            return 0
        node = self._root
        for depth in range(code.length):
            if node is None or node.is_leaf:
                return 0
            bit = (code.bits >> (code.length - 1 - depth)) & 1
            if bit:
                position = node.bitvector.rank1(position)
                node = node.one_child
            else:
                position = node.bitvector.rank0(position)
                node = node.zero_child
        return position if node is not None else 0

    def select(self, symbol, occurrence: int) -> int:
        """0-based position of the ``occurrence``-th ``symbol`` (1-based count)."""
        code = self._codewords.get(symbol)
        if code is None:
            raise KeyError(f"symbol {symbol!r} not in tree")
        total = self.rank(symbol, self._sequence_length)
        if occurrence < 1 or occurrence > total:
            raise IndexError(f"select({symbol!r}, {occurrence}) outside [1, {total}]")
        # Walk down recording the path, then walk back up with select.
        path: list[tuple[_Node, int]] = []
        node = self._root
        for depth in range(code.length):
            bit = (code.bits >> (code.length - 1 - depth)) & 1
            path.append((node, bit))
            node = node.one_child if bit else node.zero_child
        position = occurrence - 1
        for parent, bit in reversed(path):
            if bit:
                position = parent.bitvector.select1(position + 1)
            else:
                position = parent.bitvector.select0(position + 1)
        return position

    def to_list(self) -> list:
        """Decompress the full sequence (testing helper)."""
        return [self.access(i) for i in range(self._sequence_length)]

    # ------------------------------------------------------------------- size

    def size_in_bits(self) -> int:
        """Total node-bitvector bits plus the serialized codebook."""
        total = 0
        stack = [self._root] if self._root else []
        while stack:
            node = stack.pop()
            if node.bitvector is not None:
                total += node.bitvector.size_in_bits()
            if node.zero_child:
                stack.append(node.zero_child)
            if node.one_child:
                stack.append(node.one_child)
        symbol_width = max(1, bits_for(len(self._codewords)))
        length_width = 6  # codeword lengths < 64 in any realistic FIB
        total += len(self._codewords) * (symbol_width + length_width)
        return total
