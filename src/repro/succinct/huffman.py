"""Canonical Huffman codes.

Used to shape the wavelet tree of XBW-b's label string ``S_α``
(Huffman-shaped wavelet trees store ``S_α`` in ``n(H0 + 1)`` bits and
answer access/rank in ``O(H0 + 1)`` expected time [19]) and as a
standalone entropy coder for size accounting.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Mapping, Sequence

from repro.succinct.bitbuffer import BitBuffer


@dataclass(frozen=True)
class Codeword:
    """A single prefix-free codeword: ``length`` bits of ``bits``."""

    bits: int
    length: int

    def __iter__(self):
        for position in range(self.length - 1, -1, -1):
            yield (self.bits >> position) & 1


class HuffmanCode:
    """Canonical Huffman code for a finite alphabet.

    Parameters
    ----------
    frequencies:
        Mapping from symbol to a positive weight. Symbols must be
        sortable against each other (ints throughout this library).

    Notes
    -----
    * A one-symbol alphabet is assigned a single 1-bit codeword so the
      code stays uniquely decodable (the wavelet tree special-cases this
      away and stores zero bits).
    * Codes are *canonical*: lexicographically assigned by (length,
      symbol), so the codebook serializes as just the length of every
      symbol's codeword.
    """

    def __init__(self, frequencies: Mapping[Hashable, float]):
        if not frequencies:
            raise ValueError("empty alphabet")
        if any(weight <= 0 for weight in frequencies.values()):
            raise ValueError("non-positive symbol weight")
        self._lengths = self._code_lengths(frequencies)
        self._codewords = self._canonicalize(self._lengths)
        self._decoder = {
            (code.length, code.bits): symbol for symbol, code in self._codewords.items()
        }

    @staticmethod
    def _code_lengths(frequencies: Mapping[Hashable, float]) -> Dict[Hashable, int]:
        symbols = sorted(frequencies)
        if len(symbols) == 1:
            return {symbols[0]: 1}
        # Heap items: (weight, tiebreak, set-of-symbols). The tiebreak
        # keeps heap comparisons away from unorderable payloads.
        heap: list[tuple[float, int, list]] = []
        for tiebreak, symbol in enumerate(symbols):
            heapq.heappush(heap, (float(frequencies[symbol]), tiebreak, [symbol]))
        counter = len(symbols)
        depths: Dict[Hashable, int] = {symbol: 0 for symbol in symbols}
        while len(heap) > 1:
            weight_a, _, group_a = heapq.heappop(heap)
            weight_b, _, group_b = heapq.heappop(heap)
            for symbol in group_a:
                depths[symbol] += 1
            for symbol in group_b:
                depths[symbol] += 1
            heapq.heappush(heap, (weight_a + weight_b, counter, group_a + group_b))
            counter += 1
        return depths

    @staticmethod
    def _canonicalize(lengths: Mapping[Hashable, int]) -> Dict[Hashable, Codeword]:
        ordered = sorted(lengths.items(), key=lambda item: (item[1], item[0]))
        codewords: Dict[Hashable, Codeword] = {}
        code = 0
        previous_length = 0
        for symbol, length in ordered:
            code <<= length - previous_length
            codewords[symbol] = Codeword(code, length)
            code += 1
            previous_length = length
        return codewords

    # ------------------------------------------------------------------- api

    @property
    def alphabet(self) -> list:
        return sorted(self._lengths)

    def codeword(self, symbol) -> Codeword:
        """The codeword assigned to ``symbol``."""
        try:
            return self._codewords[symbol]
        except KeyError:
            raise KeyError(f"symbol {symbol!r} not in codebook") from None

    def length(self, symbol) -> int:
        """Codeword length of ``symbol`` in bits."""
        return self.codeword(symbol).length

    def lengths(self) -> Dict[Hashable, int]:
        """Symbol → codeword length (the canonical codebook serialization)."""
        return dict(self._lengths)

    def expected_length(self, frequencies: Mapping[Hashable, float]) -> float:
        """Average codeword length under ``frequencies`` (bits/symbol)."""
        total = float(sum(frequencies.values()))
        if total <= 0:
            raise ValueError("weights sum to zero")
        return sum(
            frequencies[s] / total * self._lengths[s] for s in frequencies if s in self._lengths
        )

    def encode(self, symbols: Iterable) -> BitBuffer:
        """Encode a symbol sequence into a bit buffer."""
        out = BitBuffer()
        for symbol in symbols:
            code = self.codeword(symbol)
            out.append_int(code.bits, code.length)
        return out

    def decode(self, buffer: BitBuffer, count: int) -> list:
        """Decode ``count`` symbols from a buffer produced by :meth:`encode`."""
        out = []
        position = 0
        max_length = max(self._lengths.values())
        for _ in range(count):
            bits = 0
            length = 0
            while True:
                if position >= len(buffer):
                    raise ValueError("truncated Huffman stream")
                bits = (bits << 1) | buffer.get_bit(position)
                position += 1
                length += 1
                symbol = self._decoder.get((length, bits))
                if symbol is not None:
                    out.append(symbol)
                    break
                if length > max_length:
                    raise ValueError("invalid Huffman stream")
        return out

    def codebook_size_in_bits(self, symbol_width: int) -> int:
        """Serialized codebook cost: (symbol, length) pairs."""
        length_width = max(1, max(self._lengths.values()).bit_length())
        return len(self._lengths) * (symbol_width + length_width)


def huffman_encoded_size(sequence: Sequence, symbol_width: int) -> int:
    """Total encoded bits (payload + codebook) of ``sequence``.

    Convenience used by size ablations; returns ``len(sequence) *
    symbol_width`` when the sequence has a single distinct symbol or is
    empty (Huffman cannot beat that trivially small case).
    """
    if not sequence:
        return 0
    frequencies: Dict[Hashable, int] = {}
    for symbol in sequence:
        frequencies[symbol] = frequencies.get(symbol, 0) + 1
    code = HuffmanCode(frequencies)
    payload = sum(code.length(symbol) for symbol in sequence)
    return payload + code.codebook_size_in_bits(symbol_width)
