"""Succinct data structures: the substrate of the XBW-b FIB compressor.

* :class:`BitBuffer` — packed bit storage,
* :class:`BitVector` — plain bits + O(1) rank directory (Jacobson [28]),
* :class:`RRRBitVector` — entropy-compressed bits (RRR [42]),
* :class:`HuffmanCode` — canonical Huffman coding,
* :class:`WaveletTree` — Huffman-shaped / balanced wavelet trees [19].
"""

from repro.succinct.bitbuffer import BitBuffer
from repro.succinct.bitvector import BitVector
from repro.succinct.huffman import Codeword, HuffmanCode, huffman_encoded_size
from repro.succinct.rrr import RRRBitVector
from repro.succinct.wavelet import WaveletTree

__all__ = [
    "BitBuffer",
    "BitVector",
    "Codeword",
    "HuffmanCode",
    "huffman_encoded_size",
    "RRRBitVector",
    "WaveletTree",
]
