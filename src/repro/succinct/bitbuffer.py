"""Packed bit buffers.

Every succinct structure in this package stores its payload in
:class:`BitBuffer` (a growable, word-packed bit array) so that reported
sizes are the true number of encoded bits, not Python object overhead.
"""

from __future__ import annotations

from typing import Iterable, Iterator

_WORD_BITS = 64
_WORD_MASK = (1 << _WORD_BITS) - 1


class BitBuffer:
    """A growable array of bits with random read access.

    Bits are appended most-significant-first within each logical field
    (i.e. ``append_int(0b101, 3)`` stores bits 1, 0, 1 in that order) and
    addressed by absolute bit position starting at 0.
    """

    __slots__ = ("_words", "_length")

    def __init__(self, bits: Iterable[int] = ()):
        self._words: list[int] = []
        self._length = 0
        for bit in bits:
            self.append_bit(bit)

    def __len__(self) -> int:
        return self._length

    def __iter__(self) -> Iterator[int]:
        return (self.get_bit(i) for i in range(self._length))

    def __eq__(self, other) -> bool:
        if not isinstance(other, BitBuffer):
            return NotImplemented
        return self._length == other._length and self._words == other._words

    def __repr__(self) -> str:
        preview = "".join(str(self.get_bit(i)) for i in range(min(self._length, 48)))
        suffix = "..." if self._length > 48 else ""
        return f"BitBuffer({self._length} bits: {preview}{suffix})"

    def append_bit(self, bit: int) -> None:
        """Append a single bit (any truthy value counts as 1)."""
        word_index = self._length >> 6
        if word_index == len(self._words):
            self._words.append(0)
        if bit:
            self._words[word_index] |= 1 << (self._length & 63)
        self._length += 1

    def append_int(self, value: int, width: int) -> None:
        """Append ``value`` as a ``width``-bit big-endian field."""
        if width < 0:
            raise ValueError(f"negative width {width}")
        if width and value >> width:
            raise ValueError(f"value {value:#x} does not fit in {width} bits")
        for position in range(width - 1, -1, -1):
            self.append_bit((value >> position) & 1)

    def get_bit(self, index: int) -> int:
        """Read the bit at absolute position ``index``."""
        if index < 0 or index >= self._length:
            raise IndexError(f"bit {index} outside buffer of {self._length} bits")
        return (self._words[index >> 6] >> (index & 63)) & 1

    def get_int(self, index: int, width: int) -> int:
        """Read a ``width``-bit big-endian field starting at ``index``."""
        if width < 0:
            raise ValueError(f"negative width {width}")
        if index < 0 or index + width > self._length:
            raise IndexError(
                f"field [{index}, {index + width}) outside buffer of {self._length} bits"
            )
        value = 0
        remaining = width
        position = index
        while remaining:
            word_index = position >> 6
            offset = position & 63
            take = min(remaining, _WORD_BITS - offset)
            chunk = (self._words[word_index] >> offset) & ((1 << take) - 1)
            # Chunks come out LSB-first within the word; reassemble the
            # big-endian field by placing earlier bits at higher positions.
            for i in range(take):
                bit = (chunk >> i) & 1
                value |= bit << (width - 1 - (position - index + i))
            position += take
            remaining -= take
        return value

    def size_in_bits(self) -> int:
        """Number of payload bits stored (the figure reported in tables)."""
        return self._length

    def size_in_bytes(self) -> int:
        """Payload size rounded up to whole bytes."""
        return (self._length + 7) // 8

    def to_bytes(self) -> bytes:
        """Serialize to bytes, LSB-first within each byte (word order)."""
        out = bytearray((self._length + 7) // 8)
        for i in range(self._length):
            if (self._words[i >> 6] >> (i & 63)) & 1:
                out[i >> 3] |= 1 << (i & 7)
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes, length: int) -> "BitBuffer":
        """Rebuild a buffer of ``length`` bits from :meth:`to_bytes` output."""
        if length > len(data) * 8:
            raise ValueError(f"{length} bits do not fit in {len(data)} bytes")
        buf = cls()
        for i in range(length):
            buf.append_bit((data[i >> 3] >> (i & 7)) & 1)
        return buf

    def words(self) -> list[int]:
        """The raw 64-bit word backing (read-only view for rank directories)."""
        return self._words
