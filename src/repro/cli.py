"""repro-fib — command-line front end.

Subcommands regenerate the paper's experiments and operate on FIB files:

* ``table1`` / ``table2`` / ``fig5`` / ``fig6`` / ``fig7`` — print the
  reproduction of the corresponding paper artifact;
* ``generate`` — write a stand-in dataset to a FIB file;
* ``compress`` — compress a FIB file through every registered
  representation and report sizes against the entropy bounds;
* ``lookup`` — longest-prefix-match addresses against a FIB file;
* ``bench`` — batched vs. per-address lookup throughput per
  representation;
* ``compare`` — run every registered representation over the same trace
  and assert label parity against the tabular oracle;
* ``serve`` — replay a mixed lookup/update scenario through the online
  serving engine and report churn throughput, staleness and parity;
  with ``--shards N`` the scenario runs through a partitioned cluster
  of N simulated workers (``--partition prefix|hash``) instead of one
  server, and with ``--workers N`` through N *real* worker processes
  (shared-nothing shards behind pipes, asyncio-pipelined fan-out)
  reporting measured wall-clock throughput next to the critical-path
  model's prediction. Every shape is opened through the one
  :func:`repro.serve.open_plane` front door; ``--autoscale`` arms the
  traffic-adaptive control loop (live re-planning under skew, hot-range
  replication, ``--flow-cache`` frontend caching) on any sharded plane.

Example::

    repro-fib table1 --scale 0.05
    repro-fib generate taz --scale 0.02 -o taz.fib
    repro-fib compress taz.fib --barrier 11
    repro-fib lookup taz.fib 193.6.20.1 8.8.8.8
    repro-fib bench --profile taz --scale 0.02 --packets 20000
    repro-fib compare --scale 0.01
    repro-fib serve --scenario bgp-churn --updates 500 --lookups 5000
    repro-fib serve --shards 4 --partition prefix --scenario flap-storm
    repro-fib serve --workers 4 --scenario uniform --seed 7
    repro-fib serve --shards 4 --autoscale --flow-cache 4096
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, Optional, Sequence

from repro import pipeline, serve
from repro.obs import (
    NULL_REGISTRY,
    SCHEMA as OBS_SCHEMA,
    MetricsExporter,
    Registry,
    write_json as write_metrics_json,
)
from repro.analysis import (
    Table2Inputs,
    banner,
    build_table2,
    measure_fib,
    render_churn_rows,
    render_cluster_rows,
    render_worker_rows,
    render_fig5,
    render_fig6,
    registry_sizes,
    render_fig7,
    render_table,
    render_table1,
    render_table2,
    sweep_barriers,
    sweep_fig6,
    sweep_fig7,
)
from repro.core.entropy import fib_entropy
from repro.datasets import (
    TABLE1_PROFILES,
    bgp_update_sequence,
    build_profile_fib,
    caida_like_trace,
    dump_fib,
    load_fib,
    profile,
    random_update_sequence,
    uniform_trace,
)
from repro.utils.bits import format_prefix, parse_prefix


def _add_scale(parser: argparse.ArgumentParser, default: float = 0.05) -> None:
    parser.add_argument(
        "--scale",
        type=float,
        default=default,
        help=f"dataset scale relative to the paper's sizes (default {default})",
    )


def _cmd_table1(args: argparse.Namespace) -> int:
    names = args.profiles or sorted(TABLE1_PROFILES)
    rows = []
    for name in names:
        prof = profile(name)
        fib = build_profile_fib(prof, scale=args.scale)
        rows.append(measure_fib(fib, name=name, group=prof.group))
        print(f"measured {name} ({len(fib)} prefixes)", file=sys.stderr)
    print(banner(f"Table 1 (scale {args.scale})"))
    print(render_table1(rows))
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    prof = profile(args.profile)
    fib = build_profile_fib(prof, scale=args.scale)
    inputs = Table2Inputs.build(fib, barrier=args.barrier)
    streams = {
        "rand": uniform_trace(args.packets, seed=42),
        "trace": caida_like_trace(fib, args.packets, seed=42),
    }
    rows = build_table2(inputs, streams)
    print(banner(f"Table 2 on {args.profile} (scale {args.scale}, {args.packets} packets)"))
    print(render_table2(rows))
    return 0


def _cmd_fig5(args: argparse.Namespace) -> int:
    prof = profile(args.profile)
    fib = build_profile_fib(prof, scale=args.scale)
    feeds = {
        "random": random_update_sequence(fib, args.updates, seed=7),
        "BGP": bgp_update_sequence(fib, args.updates, seed=7),
    }
    barriers = list(range(0, fib.width + 1, args.step))
    points = sweep_barriers(fib, feeds, barriers)
    print(banner(f"Fig 5 on {args.profile} (scale {args.scale}, {args.updates} updates/feed)"))
    print(render_fig5(points))
    return 0


def _cmd_fig6(args: argparse.Namespace) -> int:
    prof = profile("access_d")
    fib = build_profile_fib(prof, scale=args.scale)
    points = sweep_fig6(fib)
    print(banner(f"Fig 6 (access(d)-shaped FIB, scale {args.scale})"))
    print(render_fig6(points))
    return 0


def _cmd_fig7(args: argparse.Namespace) -> int:
    points = sweep_fig7(length=1 << args.log_length)
    print(banner(f"Fig 7 (string model, n = 2^{args.log_length})"))
    print(render_fig7(points))
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    prof = profile(args.profile)
    fib = build_profile_fib(prof, scale=args.scale)
    dump_fib(fib, args.output)
    print(f"wrote {len(fib)} routes ({fib.delta} next-hops) to {args.output}")
    return 0


def _barrier_overrides(barrier: Optional[int]) -> Dict[str, Dict[str, int]]:
    """Carry the CLI ``--barrier`` to every representation accepting one."""
    if barrier is None:
        return {}
    return pipeline.option_overrides("barrier", barrier)


def _cmd_compress(args: argparse.Namespace) -> int:
    fib = load_fib(args.fib)
    report = fib_entropy(fib)
    built = pipeline.build_all(fib, overrides=_barrier_overrides(args.barrier))
    chosen = built["prefix-dag"].barrier
    origin = "given" if args.barrier is not None else "entropy-chosen, eq. 3"
    print(f"FIB: {len(fib)} routes, {fib.delta} next-hops, H0 = {report.h0:.3f}")
    print(f"information-theoretic limit I = {report.info_bound_kbytes:.1f} KB")
    print(f"FIB entropy E               = {report.entropy_kbytes:.1f} KB")
    print(f"leaf-push barrier lambda    = {chosen} ({origin})")
    rows = registry_sizes(fib, built=built)
    print(render_table(("representation", "paper", "size[KB]"), rows))
    return 0


def _cmd_lookup(args: argparse.Namespace) -> int:
    fib = load_fib(args.fib)
    options: Dict[str, int] = {}
    spec = pipeline.get(args.representation)
    if args.barrier is not None:
        if spec.option("barrier") is None:
            print(
                f"{args.representation} takes no --barrier; ignoring",
                file=sys.stderr,
            )
        else:
            options["barrier"] = args.barrier
    representation = pipeline.build(args.representation, fib, **options)
    chosen = getattr(representation, "barrier", None)
    if chosen is not None:
        origin = "given" if args.barrier is not None else "entropy-chosen, eq. 3"
        print(f"using {args.representation} with lambda={chosen} ({origin})", file=sys.stderr)
    status = 0
    for text in args.addresses:
        value, length = parse_prefix(text)
        if length != fib.width:
            print(f"{text}: need a full address, not a prefix", file=sys.stderr)
            status = 2
            continue
        label = representation.lookup(value)
        rendered = format_prefix(value, fib.width, fib.width).rsplit("/", 1)[0]
        if label is None:
            print(f"{rendered} -> no route")
        else:
            print(f"{rendered} -> next-hop {label}")
    return status


def _write_json(path: str, payload: dict) -> None:
    """Write a JSON report to ``path`` ('-' = stdout)."""
    text = json.dumps(payload, indent=2, sort_keys=True)
    if path == "-":
        print(text)
    else:
        with open(path, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote JSON report to {path}", file=sys.stderr)


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.floor is not None and args.no_compiled:
        print("--floor guards the compiled plane; drop --no-compiled", file=sys.stderr)
        return 2
    prof = profile(args.profile)
    fib = build_profile_fib(prof, scale=args.scale)
    addresses = uniform_trace(args.packets, seed=42, width=fib.width)
    only = args.representations or None
    overrides = pipeline.option_overrides("dispatch_stride", args.stride)
    if args.no_compiled:
        for name, options in pipeline.option_overrides("compiled", False).items():
            overrides.setdefault(name, {}).update(options)
    rows = pipeline.bench_all(
        fib,
        addresses,
        only=only,
        overrides=overrides,
        repeat=args.repeat,
    )
    print(banner(f"bench on {args.profile} (scale {args.scale}, {args.packets} packets)"))
    print(pipeline.render_bench_rows(rows))
    status = 0
    if args.floor is not None:
        # The CI trajectory guard: every benched representation must
        # actually compile AND its compiled batch must beat its own
        # scalar loop by the floor — a representation silently dropping
        # to the dispatch engine is itself a regression, not a pass.
        for row in rows:
            if not row.compiled:
                status = 1
                print(
                    f"{row.name}: compiled plane missing (fell back to the "
                    f"dispatch engine)",
                    file=sys.stderr,
                )
            elif row.speedup < args.floor:
                status = 1
                print(
                    f"{row.name}: compiled batch only {row.speedup:.2f}x over "
                    f"the scalar loop (floor {args.floor}x)",
                    file=sys.stderr,
                )
        print(
            "bench floor OK" if status == 0 else "BENCH FLOOR BROKEN",
            file=sys.stderr,
        )
    if args.json is not None:
        _write_json(
            args.json,
            {
                "command": "bench",
                "profile": args.profile,
                "scale": args.scale,
                "packets": args.packets,
                "stride": args.stride,
                "floor": args.floor,
                "vectorized": pipeline.have_numpy(),
                "rows": [row.to_dict() for row in rows],
            },
        )
    return status


#: Default serving line-up: one incremental plane, two rebuild planes.
SERVE_DEFAULT_REPRESENTATIONS = ["prefix-dag", "lc-trie", "serialized-dag"]


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.workers > 0 and args.shards > 1:
        print(
            "--workers runs real processes, --shards the simulated cluster; "
            "pick one",
            file=sys.stderr,
        )
        return 2
    chaotic = bool(args.chaos) or args.max_restarts > 0
    if chaotic and args.workers <= 0:
        print(
            "--chaos and --max-restarts supervise real worker processes; "
            "add --workers N",
            file=sys.stderr,
        )
        return 2
    faults = None
    if args.chaos:
        try:
            faults = serve.FaultPlan.parse(args.chaos, seed=args.seed)
        except ValueError as error:
            print(f"bad --chaos spec: {error}", file=sys.stderr)
            return 2
    autoscaled = (
        args.autoscale or args.flow_cache > 0 or args.hot_share < 1.0
    )
    policy = None
    if autoscaled:
        if args.shards <= 1 and args.workers <= 0:
            print(
                "--autoscale / --flow-cache / --hot-share need a sharded "
                "plane; add --shards N or --workers N",
                file=sys.stderr,
            )
            return 2
        try:
            policy = serve.AutoscalePolicy(
                imbalance_threshold=args.imbalance_threshold,
                hot_share=args.hot_share,
                flow_cache=args.flow_cache,
                spray_seed=args.seed,
            )
        except ValueError as error:
            print(f"bad autoscale policy: {error}", file=sys.stderr)
            return 2
    prof = profile(args.profile)
    fib = build_profile_fib(prof, scale=args.scale)
    scenario = serve.scenario(args.scenario)
    events = serve.build_events(
        scenario,
        fib,
        lookups=args.lookups,
        updates=args.updates,
        seed=args.seed,
        batch_size=args.batch_size,
    )
    probes = serve.parity_probes(fib, 1000, seed=args.seed)
    overrides = _barrier_overrides(args.barrier)
    names = args.representations or SERVE_DEFAULT_REPRESENTATIONS
    sharded = args.shards > 1
    pooled = args.workers > 0
    instrumented = args.metrics_json is not None or args.metrics_port is not None
    registries: Dict[str, Registry] = {}
    exporter = None
    if args.metrics_port is not None:
        # Live view across every representation served so far (the
        # per-row snapshots in --metrics-json stay separate).
        def _merged_snapshot() -> dict:
            merged = Registry()
            for registry in registries.values():
                merged.merge(registry)
            return merged.snapshot()

        exporter = MetricsExporter(_merged_snapshot, port=args.metrics_port)
        print(
            f"metrics on http://127.0.0.1:{exporter.port}/metrics "
            f"(and /json) for the run's lifetime",
            file=sys.stderr,
        )
    reports = []
    for name in names:
        obs_registry = Registry() if instrumented else NULL_REGISTRY
        if instrumented:
            registries[name] = obs_registry
        # Every deployment shape goes through the one front door; the
        # factory picks single server / in-process cluster / worker
        # pool (+ async frontend) from the same argument record.
        reports.append(
            serve.serve_plane_scenario(
                name,
                fib,
                events,
                scenario=args.scenario,
                parity_probes=probes,
                shards=args.shards,
                workers=args.workers,
                window=args.window if pooled else 0,
                transport=args.transport,
                partition=args.partition,
                options=overrides.get(name, {}),
                rebuild_every=args.rebuild_every,
                start_method=args.start_method,
                autoscale=policy,
                obs=obs_registry,
                max_restarts=args.max_restarts,
                restart_window=args.restart_window,
                faults=faults,
            )
        )
        print(f"served {name} ({reports[-1].plane} plane)", file=sys.stderr)
    if pooled:
        served_transports = sorted({report.transport for report in reports})
        cluster_banner = (
            f", {args.workers} {args.partition}-partitioned "
            f"{args.start_method} workers over {'/'.join(served_transports)}"
        )
    elif sharded:
        cluster_banner = f", {args.shards} {args.partition}-partitioned shards"
    else:
        cluster_banner = ""
    print(
        banner(
            f"serve {args.scenario} on {args.profile} (scale {args.scale}, "
            f"{args.lookups} lookups / {args.updates} updates{cluster_banner})"
        )
    )
    if pooled:
        print(render_worker_rows(reports))
    elif sharded:
        print(render_cluster_rows(reports))
    else:
        print(render_churn_rows(reports))
    status = 0
    for report in reports:
        if report.final_parity is not None and report.final_parity < 1.0:
            status = 1
            print(
                f"{report.name}: post-quiescence parity "
                f"{report.final_parity * 100:.2f}% < 100%",
                file=sys.stderr,
            )
    if args.json is not None:
        _write_json(
            args.json,
            {
                "command": "serve",
                "scenario": args.scenario,
                "profile": args.profile,
                "scale": args.scale,
                "lookups": args.lookups,
                "updates": args.updates,
                "rebuild_every": args.rebuild_every,
                "batch_size": args.batch_size,
                "seed": args.seed,
                "shards": args.shards,
                "workers": args.workers,
                "start_method": args.start_method if pooled else None,
                "transport": args.transport if pooled else None,
                "partition": args.partition if (sharded or pooled) else None,
                "max_restarts": args.max_restarts if pooled else None,
                "chaos": args.chaos,
                "autoscale": autoscaled,
                "imbalance_threshold": (
                    args.imbalance_threshold if autoscaled else None
                ),
                "flow_cache": args.flow_cache if autoscaled else None,
                "hot_share": args.hot_share if autoscaled else None,
                "rows": [report.to_dict() for report in reports],
            },
        )
    if args.metrics_json is not None:
        write_metrics_json(
            args.metrics_json,
            {
                "schema": OBS_SCHEMA,
                "command": "serve-metrics",
                "scenario": args.scenario,
                "profile": args.profile,
                "scale": args.scale,
                "lookups": args.lookups,
                "updates": args.updates,
                "seed": args.seed,
                "shards": args.shards,
                "workers": args.workers,
                "transport": args.transport if pooled else None,
                "rows": [
                    {
                        "name": report.name,
                        "plane": report.plane,
                        "lookup_latency_p50": report.lookup_latency_p50,
                        "lookup_latency_p99": report.lookup_latency_p99,
                        "visibility_p99": report.visibility_p99,
                        "snapshot": report.obs,
                    }
                    for report in reports
                ],
            },
        )
        print(f"metrics snapshot written to {args.metrics_json}", file=sys.stderr)
    if exporter is not None:
        exporter.close()
    print("serve parity OK" if status == 0 else "SERVE PARITY BROKEN", file=sys.stderr)
    return status


def _cmd_compare(args: argparse.Namespace) -> int:
    names = args.profiles or ["access_v", "taz"]
    only = args.representations or None
    status = 0
    for name in names:
        prof = profile(name)
        fib = build_profile_fib(prof, scale=args.scale)
        addresses = uniform_trace(args.packets // 2, seed=42, width=fib.width)
        addresses += caida_like_trace(fib, args.packets - len(addresses), seed=43)
        rows = pipeline.compare_representations(fib, addresses, only=only)
        print(banner(f"compare on {name} (scale {args.scale}, {args.packets} packets)"))
        body = [
            (
                row.name,
                row.size_kb,
                row.checked,
                f"{row.parity * 100:.1f}%",
                "ok" if row.ok else f"{row.mismatch_count} mismatches",
            )
            for row in rows
        ]
        print(
            render_table(
                ("representation", "size[KB]", "checked", "parity", "verdict"), body
            )
        )
        for row in rows:
            if not row.ok:
                status = 1
                worst = row.mismatches[0]
                print(
                    f"{name}/{row.name}: {worst.path}({worst.address:#x}) = "
                    f"{worst.got!r}, oracle says {worst.expected!r}",
                    file=sys.stderr,
                )
    print("parity OK" if status == 0 else "PARITY BROKEN", file=sys.stderr)
    return status


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fib",
        description="Entropy-bounded FIB compression (SIGCOMM'13 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("table1", help="reproduce Table 1 (storage sizes)")
    _add_scale(p)
    p.add_argument("--profiles", nargs="*", help="subset of profile names")
    p.set_defaults(func=_cmd_table1)

    p = sub.add_parser("table2", help="reproduce Table 2 (lookup benchmark)")
    _add_scale(p)
    p.add_argument("--profile", default="taz")
    p.add_argument("--barrier", type=int, default=11)
    p.add_argument("--packets", type=int, default=20000)
    p.set_defaults(func=_cmd_table2)

    p = sub.add_parser("fig5", help="reproduce Fig 5 (update vs memory)")
    _add_scale(p)
    p.add_argument("--profile", default="taz")
    p.add_argument("--updates", type=int, default=1500)
    p.add_argument("--step", type=int, default=2, help="barrier sweep step")
    p.set_defaults(func=_cmd_fig5)

    p = sub.add_parser("fig6", help="reproduce Fig 6 (Bernoulli FIB sweep)")
    _add_scale(p)
    p.set_defaults(func=_cmd_fig6)

    p = sub.add_parser("fig7", help="reproduce Fig 7 (Bernoulli string sweep)")
    p.add_argument("--log-length", type=int, default=17, help="string length exponent")
    p.set_defaults(func=_cmd_fig7)

    p = sub.add_parser("generate", help="write a stand-in dataset to a file")
    p.add_argument("profile", choices=sorted(TABLE1_PROFILES))
    _add_scale(p)
    p.add_argument("-o", "--output", required=True)
    p.set_defaults(func=_cmd_generate)

    p = sub.add_parser("compress", help="compress a FIB file, report sizes")
    p.add_argument("fib")
    p.add_argument("--barrier", type=int, default=None)
    p.set_defaults(func=_cmd_compress)

    p = sub.add_parser("lookup", help="longest-prefix match addresses")
    p.add_argument("fib")
    p.add_argument("addresses", nargs="+")
    p.add_argument(
        "--barrier",
        type=int,
        default=None,
        help="leaf-push barrier lambda (default: entropy-chosen, eq. 3)",
    )
    p.add_argument(
        "--representation",
        default="prefix-dag",
        choices=pipeline.names(),
        help="registered representation to look up through",
    )
    p.set_defaults(func=_cmd_lookup)

    def stride_arg(text: str) -> int:
        try:
            return pipeline.check_stride(int(text))
        except ValueError as error:
            raise argparse.ArgumentTypeError(str(error)) from None

    def positive_int(text: str) -> int:
        value = int(text)
        if value < 1:
            raise argparse.ArgumentTypeError(f"must be at least 1, got {value}")
        return value

    def count_arg(text: str) -> int:
        value = int(text)
        if value < 0:
            raise argparse.ArgumentTypeError(f"must be non-negative, got {value}")
        return value

    p = sub.add_parser("bench", help="batched vs per-address lookup throughput")
    _add_scale(p, default=0.02)
    p.add_argument("--profile", default="taz")
    p.add_argument("--packets", type=int, default=20000)
    p.add_argument(
        "--stride", type=stride_arg, default=16, help="batch dispatch stride (1..20)"
    )
    p.add_argument(
        "--repeat", type=positive_int, default=3, help="timing runs (best-of)"
    )
    p.add_argument(
        "--representations",
        nargs="+",
        choices=pipeline.names(),
        help="subset of registered representations",
    )
    p.add_argument(
        "--no-compiled",
        action="store_true",
        help="serve lookup_batch through the PR 1 dispatch engine only",
    )
    p.add_argument(
        "--floor",
        type=float,
        default=None,
        metavar="X",
        help="fail (exit 1) if any compiled plane is < X times its scalar loop",
    )
    p.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the rows as JSON to PATH ('-' for stdout)",
    )
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "serve", help="online serving: mixed lookup/update scenario replay"
    )
    _add_scale(p, default=0.01)
    p.add_argument("--profile", default="taz")
    p.add_argument(
        "--scenario",
        default="bgp-churn",
        choices=serve.scenario_names(),
        help="workload script (default bgp-churn)",
    )
    p.add_argument("--lookups", type=count_arg, default=5000, help="addresses served")
    p.add_argument("--updates", type=count_arg, default=500, help="churn operations")
    p.add_argument(
        "--rebuild-every",
        type=positive_int,
        default=serve.DEFAULT_REBUILD_EVERY,
        help="pending updates per epoch rebuild on static representations",
    )
    p.add_argument(
        "--batch-size",
        type=positive_int,
        default=serve.DEFAULT_BATCH_SIZE,
        help="addresses per scripted lookup event",
    )
    p.add_argument("--seed", type=int, default=42, help="scenario script seed")
    p.add_argument(
        "--shards",
        type=positive_int,
        default=1,
        metavar="N",
        help="serve through a partitioned cluster of N workers (default 1)",
    )
    p.add_argument(
        "--workers",
        type=count_arg,
        default=0,
        metavar="N",
        help="serve through N real worker processes (multi-process plane; "
        "0 = off, mutually exclusive with --shards)",
    )
    p.add_argument(
        "--start-method",
        choices=["spawn", "fork"],
        default=serve.DEFAULT_START_METHOD,
        help="worker process start method (default spawn; fork where the "
        "platform offers it)",
    )
    p.add_argument(
        "--transport",
        choices=serve.TRANSPORTS,
        default=serve.DEFAULT_TRANSPORT,
        help="worker data plane: shared-memory rings with published "
        "program segments, or pickled pipes (default shm; falls back to "
        "pipe where shared memory or a compiled program is unavailable)",
    )
    p.add_argument(
        "--window",
        type=positive_int,
        default=serve.DEFAULT_WINDOW,
        help="in-flight lookup batches the async front-end pipelines "
        f"(default {serve.DEFAULT_WINDOW})",
    )
    p.add_argument(
        "--partition",
        choices=serve.PARTITION_MODES,
        default="prefix",
        help="cluster partition: prefix ranges balanced by trie leaf "
        "counts, or splitmix64 flow hashing (default prefix)",
    )
    p.add_argument(
        "--max-restarts",
        type=count_arg,
        default=0,
        metavar="N",
        help="supervise the worker pool: respawn a failed shard up to N "
        "times per restart window, serving its range degraded from the "
        "frontend meanwhile (0 = off, a worker death is terminal)",
    )
    p.add_argument(
        "--restart-window",
        type=float,
        default=serve.DEFAULT_RESTART_WINDOW,
        metavar="SECONDS",
        help="sliding window the restart budget counts within "
        f"(default {serve.DEFAULT_RESTART_WINDOW:.0f}s)",
    )
    p.add_argument(
        "--chaos",
        action="append",
        default=None,
        metavar="SPEC",
        help="inject a scripted fault (repeatable): "
        "kind[:worker]@trigger=N[,key=value...], e.g. "
        "kill-worker:2@batch=50, delay-reply:0@batch=10,seconds=3, "
        "fail-attach:1@attach=2, corrupt-segment@publish=1; '*' picks "
        "the victim with --seed; requires --workers",
    )
    p.add_argument(
        "--autoscale",
        action="store_true",
        help="arm the traffic-adaptive control loop on a sharded plane: "
        "observe per-range lookup load and re-plan the partition live "
        "when the imbalance drifts past --imbalance-threshold",
    )
    p.add_argument(
        "--imbalance-threshold",
        type=float,
        default=1.5,
        metavar="X",
        help="lookup_imbalance that triggers a live re-plan "
        "(1.0 = perfect balance; default 1.5)",
    )
    p.add_argument(
        "--flow-cache",
        type=count_arg,
        default=0,
        metavar="N",
        help="frontend LRU flow cache capacity in addresses, invalidated "
        "on churn and generation swaps (0 = off; implies --autoscale; "
        "in-process cluster plane)",
    )
    p.add_argument(
        "--hot-share",
        type=float,
        default=1.0,
        metavar="X",
        help="traffic share above which a range is carved hot — "
        "replicated to every shard and deterministically sprayed "
        "(1.0 = off; implies --autoscale)",
    )
    p.add_argument(
        "--barrier",
        type=int,
        default=None,
        help="leaf-push barrier lambda for barrier-taking representations",
    )
    p.add_argument(
        "--representations",
        nargs="+",
        choices=pipeline.names(),
        help=f"representations to serve (default: {' '.join(SERVE_DEFAULT_REPRESENTATIONS)})",
    )
    p.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the rows as JSON to PATH ('-' for stdout)",
    )
    p.add_argument(
        "--metrics-json",
        metavar="PATH",
        default=None,
        help="instrument the runs and write a repro.obs/v1 telemetry "
        "snapshot per representation to PATH",
    )
    p.add_argument(
        "--metrics-port",
        type=count_arg,
        default=None,
        metavar="PORT",
        help="instrument the runs and expose live Prometheus-text metrics "
        "on http://127.0.0.1:PORT/metrics for the process lifetime "
        "(0 picks a free port)",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "compare", help="assert lookup parity of every representation"
    )
    _add_scale(p, default=0.01)
    p.add_argument(
        "--profiles",
        nargs="+",
        help="profiles to compare on (default: access_v and taz)",
    )
    p.add_argument("--packets", type=int, default=2000)
    p.add_argument(
        "--representations",
        nargs="+",
        choices=pipeline.names(),
        help="subset of registered representations",
    )
    p.set_defaults(func=_cmd_compare)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
