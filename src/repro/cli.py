"""repro-fib — command-line front end.

Subcommands regenerate the paper's experiments and operate on FIB files:

* ``table1`` / ``table2`` / ``fig5`` / ``fig6`` / ``fig7`` — print the
  reproduction of the corresponding paper artifact;
* ``generate`` — write a stand-in dataset to a FIB file;
* ``compress`` — compress a FIB file and report sizes against bounds;
* ``lookup`` — longest-prefix-match addresses against a FIB file.

Example::

    repro-fib table1 --scale 0.05
    repro-fib generate taz --scale 0.02 -o taz.fib
    repro-fib compress taz.fib --barrier 11
    repro-fib lookup taz.fib 193.6.20.1 8.8.8.8
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis import (
    Table2Inputs,
    banner,
    build_table2,
    measure_fib,
    render_fig5,
    render_fig6,
    render_fig7,
    render_table1,
    render_table2,
    sweep_barriers,
    sweep_fig6,
    sweep_fig7,
)
from repro.core.entropy import fib_entropy
from repro.core.prefixdag import PrefixDag
from repro.core.xbw import XBWb
from repro.datasets import (
    TABLE1_PROFILES,
    bgp_update_sequence,
    build_profile_fib,
    caida_like_trace,
    dump_fib,
    load_fib,
    profile,
    random_update_sequence,
    uniform_trace,
)
from repro.utils.bits import format_prefix, parse_prefix


def _add_scale(parser: argparse.ArgumentParser, default: float = 0.05) -> None:
    parser.add_argument(
        "--scale",
        type=float,
        default=default,
        help=f"dataset scale relative to the paper's sizes (default {default})",
    )


def _cmd_table1(args: argparse.Namespace) -> int:
    names = args.profiles or sorted(TABLE1_PROFILES)
    rows = []
    for name in names:
        prof = profile(name)
        fib = build_profile_fib(prof, scale=args.scale)
        rows.append(measure_fib(fib, name=name, group=prof.group))
        print(f"measured {name} ({len(fib)} prefixes)", file=sys.stderr)
    print(banner(f"Table 1 (scale {args.scale})"))
    print(render_table1(rows))
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    prof = profile(args.profile)
    fib = build_profile_fib(prof, scale=args.scale)
    inputs = Table2Inputs.build(fib, barrier=args.barrier)
    streams = {
        "rand": uniform_trace(args.packets, seed=42),
        "trace": caida_like_trace(fib, args.packets, seed=42),
    }
    rows = build_table2(inputs, streams)
    print(banner(f"Table 2 on {args.profile} (scale {args.scale}, {args.packets} packets)"))
    print(render_table2(rows))
    return 0


def _cmd_fig5(args: argparse.Namespace) -> int:
    prof = profile(args.profile)
    fib = build_profile_fib(prof, scale=args.scale)
    feeds = {
        "random": random_update_sequence(fib, args.updates, seed=7),
        "BGP": bgp_update_sequence(fib, args.updates, seed=7),
    }
    barriers = list(range(0, fib.width + 1, args.step))
    points = sweep_barriers(fib, feeds, barriers)
    print(banner(f"Fig 5 on {args.profile} (scale {args.scale}, {args.updates} updates/feed)"))
    print(render_fig5(points))
    return 0


def _cmd_fig6(args: argparse.Namespace) -> int:
    prof = profile("access_d")
    fib = build_profile_fib(prof, scale=args.scale)
    points = sweep_fig6(fib)
    print(banner(f"Fig 6 (access(d)-shaped FIB, scale {args.scale})"))
    print(render_fig6(points))
    return 0


def _cmd_fig7(args: argparse.Namespace) -> int:
    points = sweep_fig7(length=1 << args.log_length)
    print(banner(f"Fig 7 (string model, n = 2^{args.log_length})"))
    print(render_fig7(points))
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    prof = profile(args.profile)
    fib = build_profile_fib(prof, scale=args.scale)
    dump_fib(fib, args.output)
    print(f"wrote {len(fib)} routes ({fib.delta} next-hops) to {args.output}")
    return 0


def _cmd_compress(args: argparse.Namespace) -> int:
    fib = load_fib(args.fib)
    report = fib_entropy(fib)
    dag = PrefixDag(fib, barrier=args.barrier)
    xbw = XBWb.from_fib(fib)
    print(f"FIB: {len(fib)} routes, {fib.delta} next-hops, H0 = {report.h0:.3f}")
    print(f"information-theoretic limit I = {report.info_bound_kbytes:.1f} KB")
    print(f"FIB entropy E               = {report.entropy_kbytes:.1f} KB")
    print(f"XBW-b                       = {xbw.size_in_kbytes():.1f} KB")
    print(f"prefix DAG (lambda={dag.barrier:2d})     = {dag.size_in_kbytes():.1f} KB")
    return 0


def _cmd_lookup(args: argparse.Namespace) -> int:
    fib = load_fib(args.fib)
    dag = PrefixDag(fib, barrier=args.barrier)
    status = 0
    for text in args.addresses:
        value, length = parse_prefix(text)
        if length != fib.width:
            print(f"{text}: need a full address, not a prefix", file=sys.stderr)
            status = 2
            continue
        address = value
        label = dag.lookup(address)
        rendered = format_prefix(value, fib.width, fib.width).rsplit("/", 1)[0]
        if label is None:
            print(f"{rendered} -> no route")
        else:
            print(f"{rendered} -> next-hop {label}")
    return status


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fib",
        description="Entropy-bounded FIB compression (SIGCOMM'13 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("table1", help="reproduce Table 1 (storage sizes)")
    _add_scale(p)
    p.add_argument("--profiles", nargs="*", help="subset of profile names")
    p.set_defaults(func=_cmd_table1)

    p = sub.add_parser("table2", help="reproduce Table 2 (lookup benchmark)")
    _add_scale(p)
    p.add_argument("--profile", default="taz")
    p.add_argument("--barrier", type=int, default=11)
    p.add_argument("--packets", type=int, default=20000)
    p.set_defaults(func=_cmd_table2)

    p = sub.add_parser("fig5", help="reproduce Fig 5 (update vs memory)")
    _add_scale(p)
    p.add_argument("--profile", default="taz")
    p.add_argument("--updates", type=int, default=1500)
    p.add_argument("--step", type=int, default=2, help="barrier sweep step")
    p.set_defaults(func=_cmd_fig5)

    p = sub.add_parser("fig6", help="reproduce Fig 6 (Bernoulli FIB sweep)")
    _add_scale(p)
    p.set_defaults(func=_cmd_fig6)

    p = sub.add_parser("fig7", help="reproduce Fig 7 (Bernoulli string sweep)")
    p.add_argument("--log-length", type=int, default=17, help="string length exponent")
    p.set_defaults(func=_cmd_fig7)

    p = sub.add_parser("generate", help="write a stand-in dataset to a file")
    p.add_argument("profile", choices=sorted(TABLE1_PROFILES))
    _add_scale(p)
    p.add_argument("-o", "--output", required=True)
    p.set_defaults(func=_cmd_generate)

    p = sub.add_parser("compress", help="compress a FIB file, report sizes")
    p.add_argument("fib")
    p.add_argument("--barrier", type=int, default=None)
    p.set_defaults(func=_cmd_compress)

    p = sub.add_parser("lookup", help="longest-prefix match addresses")
    p.add_argument("fib")
    p.add_argument("addresses", nargs="+")
    p.add_argument("--barrier", type=int, default=11)
    p.set_defaults(func=_cmd_lookup)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
