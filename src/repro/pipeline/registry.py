"""String-keyed registry of FIB representations with option schemas.

A representation registers once, with a decorator::

    @register(
        name="prefix-dag",
        title="pDAG",
        paper_section="§4",
        size_model="above·(ptr+lgδ) + interior·2·ptr + δ·lgδ",
        options=(OptionSpec("barrier", int, None, "leaf-push barrier λ"),),
        supports_update=True,
    )
    class PrefixDagAdapter(RepresentationAdapter):
        ...

and every layer — analysis tables, the lookup simulator, the CLI's
``compress``/``bench``/``compare`` subcommands, the benchmark harness,
the parity tests — enumerates it automatically. Options are validated
against the declared schema at :func:`build` time, so a typo'd or
ill-typed option fails fast with the list of what the representation
actually accepts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.fib import Fib


@dataclass(frozen=True)
class OptionSpec:
    """One build-time option a representation accepts."""

    name: str
    type: type
    default: Any
    help: str = ""

    def coerce(self, value: Any) -> Any:
        """Type-check (and int→float widen) a caller-supplied value.

        ``None`` is accepted only for options whose default is ``None``
        (e.g. the entropy-chosen barrier); bools are rejected for
        int-typed options so ``barrier=True`` cannot slip in as 1.
        """
        if value is None:
            if self.default is None:
                return None
        elif isinstance(value, bool) and self.type is not bool:
            pass  # fall through to the error
        elif isinstance(value, self.type):
            return value
        elif self.type is float and isinstance(value, int):
            return float(value)
        elif isinstance(value, str):
            try:
                return self.type(value)
            except ValueError:
                pass
        raise TypeError(
            f"option {self.name!r} expects {self.type.__name__}, "
            f"got {value!r} ({type(value).__name__})"
        )


@dataclass(frozen=True)
class RepresentationSpec:
    """Registry record of one representation."""

    name: str
    factory: Callable[..., Any]
    title: str                     # display name (Table 2's engine column)
    description: str
    paper_section: str
    size_model: str
    options: Tuple[OptionSpec, ...] = ()
    supports_update: bool = False
    supports_trace: bool = False
    supports_flat: bool = False    # compiles to a pointerless flat program
    trace_step_cycles: Optional[float] = None  # cost-model cycles per step
    heavy_trace: bool = False      # per-lookup primitive replay is costly

    def option(self, name: str) -> Optional[OptionSpec]:
        for spec in self.options:
            if spec.name == name:
                return spec
        return None

    def resolve_options(self, overrides: Dict[str, Any]) -> Dict[str, Any]:
        """Defaults merged with type-checked overrides; unknown keys fail."""
        known = {spec.name for spec in self.options}
        unknown = set(overrides) - known
        if unknown:
            accepted = ", ".join(sorted(known)) or "(none)"
            raise ValueError(
                f"representation {self.name!r} does not accept option(s) "
                f"{sorted(unknown)}; accepted: {accepted}"
            )
        resolved = {spec.name: spec.default for spec in self.options}
        for key, value in overrides.items():
            resolved[key] = self.option(key).coerce(value)
        return resolved


_REGISTRY: Dict[str, RepresentationSpec] = {}


def register(
    name: str,
    *,
    title: Optional[str] = None,
    description: str = "",
    paper_section: str = "",
    size_model: str = "",
    options: Tuple[OptionSpec, ...] = (),
    supports_update: bool = False,
    supports_trace: bool = False,
    supports_flat: bool = False,
    trace_step_cycles: Optional[float] = None,
    heavy_trace: bool = False,
):
    """Class decorator adding a representation factory to the registry.

    The decorated factory is called as ``factory(fib, **options)`` and
    must return a :class:`~repro.pipeline.base.CompressedFib`. The
    ``name`` is stamped onto the class (``cls.name``) and the spec is
    attached as ``cls.spec``.
    """
    if not name or name != name.strip().lower():
        raise ValueError(f"registry names are non-empty lower-case keys, got {name!r}")

    def decorate(factory):
        if name in _REGISTRY:
            raise ValueError(f"representation {name!r} already registered")
        doc = (factory.__doc__ or "").strip()
        spec = RepresentationSpec(
            name=name,
            factory=factory,
            title=title or name,
            description=description or (doc.splitlines()[0] if doc else ""),
            paper_section=paper_section,
            size_model=size_model,
            options=options,
            supports_update=supports_update,
            supports_trace=supports_trace,
            supports_flat=supports_flat,
            trace_step_cycles=trace_step_cycles,
            heavy_trace=heavy_trace,
        )
        factory.name = name
        factory.spec = spec
        _REGISTRY[name] = spec
        return factory

    return decorate


def names() -> List[str]:
    """All registered representation names, sorted."""
    return sorted(_REGISTRY)


def get(name: str) -> RepresentationSpec:
    """Spec for ``name``; raises KeyError listing what exists."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown representation {name!r}; registered: {', '.join(names())}"
        ) from None


def specs() -> List[RepresentationSpec]:
    """All registered specs, sorted by name."""
    return [_REGISTRY[name] for name in names()]


def trace_capable() -> List[RepresentationSpec]:
    """Specs whose representations feed the cache simulator."""
    return [spec for spec in specs() if spec.supports_trace]


def flat_capable() -> List[RepresentationSpec]:
    """Specs whose representations compile to the flat lookup plane."""
    return [spec for spec in specs() if spec.supports_flat]


def option_overrides(option: str, value: Any) -> Dict[str, Dict[str, Any]]:
    """An overrides dict giving ``option=value`` to every registered
    representation whose schema accepts that option — the common way a
    CLI flag (``--barrier``, ``--stride``) fans out across the registry.
    """
    return {
        spec.name: {option: value}
        for spec in specs()
        if spec.option(option) is not None
    }


def build(name: str, fib: Fib, **options):
    """Build representation ``name`` from a tabular FIB.

    Options are validated against the registered schema; omitted options
    take their declared defaults.
    """
    spec = get(name)
    resolved = spec.resolve_options(options)
    return spec.factory(fib, **resolved)


def build_all(
    fib: Fib,
    only: Optional[List[str]] = None,
    overrides: Optional[Dict[str, Dict[str, Any]]] = None,
) -> Dict[str, Any]:
    """Build every registered representation (or the ``only`` subset).

    ``overrides`` maps representation name → option dict; options for a
    representation not being built are ignored. When both ``prefix-dag``
    and ``serialized-dag`` are selected with the same barrier, the
    serialized image reuses the prefix DAG's fold instead of folding the
    FIB a second time (the dominant build cost).
    """
    overrides = overrides or {}
    selected = only if only is not None else names()
    share_fold = (
        "prefix-dag" in selected
        and "serialized-dag" in selected
        and overrides.get("serialized-dag", {}).get("barrier")
        == overrides.get("prefix-dag", {}).get("barrier")
    )
    prefix_dag = (
        build("prefix-dag", fib, **overrides.get("prefix-dag", {}))
        if share_fold
        else None
    )
    built: Dict[str, Any] = {}
    for name in selected:  # result keys follow the caller's order
        if name == "prefix-dag" and prefix_dag is not None:
            built[name] = prefix_dag
        elif name == "serialized-dag" and prefix_dag is not None:
            from repro.pipeline.adapters import SerializedDagAdapter

            # Sharing the fold must not drop the caller's non-barrier
            # options (e.g. compiled=False for a dispatch-only bench).
            resolved = get(name).resolve_options(overrides.get(name, {}))
            built[name] = SerializedDagAdapter.from_dag(
                fib, prefix_dag.backend, compiled=resolved["compiled"]
            )
        else:
            built[name] = build(name, fib, **overrides.get(name, {}))
    return built
