"""repro.pipeline — unified representation registry + batched lookups.

The architectural seam between the paper's many FIB representations and
everything that consumes them. Importing this package registers every
built-in representation:

>>> from repro import pipeline
>>> sorted(pipeline.names())  # doctest: +NORMALIZE_WHITESPACE
['binary-trie', 'lc-trie', 'multibit-dag', 'ortc', 'patricia',
 'prefix-dag', 'serialized-dag', 'shape-graph', 'tabular', 'xbw']

and any layer can build one by name with validated options:

>>> from repro.core.fib import Fib
>>> fib = Fib.from_entries([(0, 0, 1), (0b101, 3, 2)])
>>> dag = pipeline.build("prefix-dag", fib, barrier=3)
>>> dag.lookup_batch([0, 0b101 << 29])
[1, 2]
"""

from repro.pipeline.base import (
    CompressedFib,
    TraceableFib,
    UpdatableFib,
    flat_program,
    supports_flat,
    supports_trace,
    supports_updates,
)
from repro.pipeline.batch import (
    DEFAULT_STRIDE,
    MAX_STRIDE,
    LabelDispatch,
    NodeDispatch,
    batch_resolve,
    batch_walk,
    build_label_dispatch,
    build_node_dispatch,
    check_stride,
    patch_label_dispatch,
    patch_node_dispatch,
)
from repro.pipeline.flat import (
    DEFAULT_MAX_CELLS,
    DEFAULT_SUB_STRIDE,
    FlatCompileError,
    FlatProgram,
    compile_binary,
    compile_multibit,
    have_numpy,
)
from repro.pipeline.bench import (
    BENCH_HEADERS,
    BenchRow,
    bench_all,
    bench_representation,
    render_bench_rows,
)
from repro.pipeline.compare import (
    CompareRow,
    Mismatch,
    assert_parity,
    compare_representations,
)
from repro.pipeline.shard import (
    boundary_routes,
    prefix_span,
    restrict_fib,
    shard_fibs,
)
from repro.pipeline.registry import (
    OptionSpec,
    RepresentationSpec,
    build,
    build_all,
    flat_capable,
    get,
    names,
    option_overrides,
    register,
    specs,
    trace_capable,
)

# Importing the adapters module performs the registrations.
import repro.pipeline.adapters  # noqa: E402,F401  (registration side effect)

__all__ = [
    "CompressedFib",
    "TraceableFib",
    "UpdatableFib",
    "flat_program",
    "supports_flat",
    "supports_trace",
    "supports_updates",
    "DEFAULT_MAX_CELLS",
    "DEFAULT_SUB_STRIDE",
    "FlatCompileError",
    "FlatProgram",
    "compile_binary",
    "compile_multibit",
    "have_numpy",
    "flat_capable",
    "DEFAULT_STRIDE",
    "MAX_STRIDE",
    "LabelDispatch",
    "NodeDispatch",
    "batch_resolve",
    "batch_walk",
    "build_label_dispatch",
    "build_node_dispatch",
    "check_stride",
    "patch_label_dispatch",
    "patch_node_dispatch",
    "BENCH_HEADERS",
    "BenchRow",
    "bench_all",
    "bench_representation",
    "render_bench_rows",
    "CompareRow",
    "Mismatch",
    "assert_parity",
    "compare_representations",
    "boundary_routes",
    "prefix_span",
    "restrict_fib",
    "shard_fibs",
    "OptionSpec",
    "RepresentationSpec",
    "build",
    "build_all",
    "get",
    "names",
    "option_overrides",
    "register",
    "specs",
    "trace_capable",
]
