"""Batch vs. per-address lookup throughput measurement.

``repro-fib bench`` and ``benchmarks/bench_pipeline_batch.py`` both use
this module: for each representation, the same trace is pushed through
the scalar per-address loop (the seed codebase's only mode) and through
``lookup_batch`` (the pipeline fast path), and the speedup is reported.
Timings take the best of ``repeat`` runs, the usual defense against
scheduler noise in wall-clock microbenchmarks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.core.fib import Fib
from repro.pipeline import registry


@dataclass
class BenchRow:
    """Throughput of one representation over one trace."""

    name: str
    title: str
    lookups: int
    scalar_seconds: float
    batch_seconds: float
    size_kb: float

    @property
    def scalar_mlps(self) -> float:
        """Million lookups per second, per-address loop."""
        return self.lookups / self.scalar_seconds / 1e6 if self.scalar_seconds else 0.0

    @property
    def batch_mlps(self) -> float:
        """Million lookups per second, batched."""
        return self.lookups / self.batch_seconds / 1e6 if self.batch_seconds else 0.0

    @property
    def speedup(self) -> float:
        """scalar time / batch time (>1 means the batch path wins)."""
        return self.scalar_seconds / self.batch_seconds if self.batch_seconds else 0.0

    def to_dict(self) -> dict:
        """JSON-ready record (``repro-fib bench --json``): raw timings
        plus the derived throughput figures CI trajectories track."""
        return {
            "name": self.name,
            "title": self.title,
            "lookups": self.lookups,
            "scalar_seconds": self.scalar_seconds,
            "batch_seconds": self.batch_seconds,
            "size_kb": self.size_kb,
            "scalar_mlps": self.scalar_mlps,
            "batch_mlps": self.batch_mlps,
            "speedup": self.speedup,
        }


def bench_representation(
    representation, addresses: Sequence[int], repeat: int = 3
) -> BenchRow:
    """Time the scalar loop vs. ``lookup_batch`` on one built backend."""
    if repeat < 1:
        raise ValueError("need at least one timing run")
    lookup = representation.lookup
    representation.lookup_batch(addresses[:1])  # build the dispatch up front

    scalar_best = batch_best = float("inf")
    for _ in range(repeat):
        started = time.perf_counter()
        for address in addresses:
            lookup(address)
        scalar_best = min(scalar_best, time.perf_counter() - started)

        started = time.perf_counter()
        representation.lookup_batch(addresses)
        batch_best = min(batch_best, time.perf_counter() - started)

    spec = getattr(representation, "spec", None)
    name = getattr(representation, "name", type(representation).__name__)
    return BenchRow(
        name=name,
        title=spec.title if spec is not None else name,
        lookups=len(addresses),
        scalar_seconds=scalar_best,
        batch_seconds=batch_best,
        size_kb=representation.size_kbytes(),
    )


def bench_all(
    fib: Fib,
    addresses: Sequence[int],
    only: Optional[List[str]] = None,
    overrides: Optional[Dict[str, Dict[str, Any]]] = None,
    repeat: int = 3,
) -> List[BenchRow]:
    """Build and bench every registered representation (or a subset).

    Building goes through :func:`~repro.pipeline.registry.build_all`, so
    the prefix-dag / serialized-dag fold sharing applies here too.
    """
    built = registry.build_all(fib, only=only, overrides=overrides)
    return [
        bench_representation(representation, addresses, repeat=repeat)
        for representation in built.values()
    ]


BENCH_HEADERS = ("representation", "size[KB]", "scalar Mlps", "batch Mlps", "speedup")


def render_bench_rows(rows: Sequence[BenchRow]) -> str:
    """The bench report table shared by ``repro-fib bench`` and
    ``benchmarks/bench_pipeline_batch.py``."""
    from repro.analysis.report import render_table  # deferred: analysis imports pipeline

    body = [
        (row.name, row.size_kb, row.scalar_mlps, row.batch_mlps, f"{row.speedup:.2f}x")
        for row in rows
    ]
    return render_table(BENCH_HEADERS, body)
