"""Lookup throughput measurement across all three serving planes.

``repro-fib bench`` and ``benchmarks/bench_pipeline_batch.py`` both use
this module: for each representation, the same trace is pushed through

* the **scalar** per-address loop (the seed codebase's only mode),
* the **dispatch** engine (``lookup_batch_dispatch``, the PR 1 stride
  dispatch over Python nodes / scalar fallbacks), and
* the **compiled** flat plane (``lookup_batch`` when a
  :class:`~repro.pipeline.flat.FlatProgram` is available — pointerless
  integer indexing, vectorized when NumPy is importable),

and the speedups are reported. ``batch_seconds`` always times what
``lookup_batch`` actually serves, so when compilation is disabled (or
refused) the row degrades gracefully to the dispatch numbers. Timings
take the best of ``repeat`` runs, the usual defense against scheduler
noise in wall-clock microbenchmarks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.fib import Fib
from repro.pipeline import registry
from repro.pipeline.base import flat_program


@dataclass
class BenchRow:
    """Throughput of one representation over one trace."""

    name: str
    title: str
    lookups: int
    scalar_seconds: float
    batch_seconds: float
    size_kb: float
    dispatch_seconds: Optional[float] = None  # PR 1 engine (None = no such path)
    compiled: bool = False                    # batch path is the flat plane
    program_kb: float = 0.0                   # compiled program image size

    @property
    def scalar_mlps(self) -> float:
        """Million lookups per second, per-address loop."""
        return self.lookups / self.scalar_seconds / 1e6 if self.scalar_seconds else 0.0

    @property
    def batch_mlps(self) -> float:
        """Million lookups per second, batched (the serving path)."""
        return self.lookups / self.batch_seconds / 1e6 if self.batch_seconds else 0.0

    @property
    def dispatch_mlps(self) -> float:
        """Million lookups per second through the dispatch engine."""
        if not self.dispatch_seconds:
            return 0.0
        return self.lookups / self.dispatch_seconds / 1e6

    @property
    def speedup(self) -> float:
        """scalar time / batch time (>1 means the batch path wins)."""
        return self.scalar_seconds / self.batch_seconds if self.batch_seconds else 0.0

    @property
    def compiled_speedup(self) -> float:
        """dispatch time / batch time: the compiled plane's win over the
        PR 1 engine (0.0 when either plane is missing)."""
        if not self.compiled or not self.dispatch_seconds or not self.batch_seconds:
            return 0.0
        return self.dispatch_seconds / self.batch_seconds

    def to_dict(self) -> dict:
        """JSON-ready record (``repro-fib bench --json``): raw timings
        plus the derived throughput figures CI trajectories track."""
        return {
            "name": self.name,
            "title": self.title,
            "lookups": self.lookups,
            "scalar_seconds": self.scalar_seconds,
            "batch_seconds": self.batch_seconds,
            "dispatch_seconds": self.dispatch_seconds,
            "compiled": self.compiled,
            "size_kb": self.size_kb,
            "program_kb": self.program_kb,
            "scalar_mlps": self.scalar_mlps,
            "batch_mlps": self.batch_mlps,
            "dispatch_mlps": self.dispatch_mlps,
            "speedup": self.speedup,
            "compiled_speedup": self.compiled_speedup,
        }


def _best_of(repeat: int, run: Callable[[], Any]) -> float:
    best = float("inf")
    for _ in range(repeat):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


def bench_representation(
    representation, addresses: Sequence[int], repeat: int = 3
) -> BenchRow:
    """Time the scalar loop, dispatch engine and compiled plane on one
    built backend."""
    if repeat < 1:
        raise ValueError("need at least one timing run")
    lookup = representation.lookup
    representation.lookup_batch(addresses[:1])  # build the serving plane up front
    program = flat_program(representation)
    dispatch_fn = getattr(representation, "lookup_batch_dispatch", None)
    if callable(dispatch_fn):
        dispatch_fn(addresses[:1])  # build the dispatch arrays up front

    def scalar_run():
        for address in addresses:
            lookup(address)

    scalar_best = _best_of(repeat, scalar_run)
    batch_best = _best_of(repeat, lambda: representation.lookup_batch(addresses))
    dispatch_best = (
        _best_of(repeat, lambda: dispatch_fn(addresses))
        if callable(dispatch_fn)
        else None
    )

    spec = getattr(representation, "spec", None)
    name = getattr(representation, "name", type(representation).__name__)
    return BenchRow(
        name=name,
        title=spec.title if spec is not None else name,
        lookups=len(addresses),
        scalar_seconds=scalar_best,
        batch_seconds=batch_best,
        dispatch_seconds=dispatch_best,
        compiled=program is not None,
        size_kb=representation.size_kbytes(),
        program_kb=program.size_in_kbytes() if program is not None else 0.0,
    )


def bench_all(
    fib: Fib,
    addresses: Sequence[int],
    only: Optional[List[str]] = None,
    overrides: Optional[Dict[str, Dict[str, Any]]] = None,
    repeat: int = 3,
) -> List[BenchRow]:
    """Build and bench every registered representation (or a subset).

    Building goes through :func:`~repro.pipeline.registry.build_all`, so
    the prefix-dag / serialized-dag fold sharing applies here too.
    """
    built = registry.build_all(fib, only=only, overrides=overrides)
    return [
        bench_representation(representation, addresses, repeat=repeat)
        for representation in built.values()
    ]


BENCH_HEADERS = (
    "representation",
    "size[KB]",
    "scalar Mlps",
    "dispatch Mlps",
    "batch Mlps",
    "plane",
    "vs scalar",
    "vs dispatch",
)


def render_bench_rows(rows: Sequence[BenchRow]) -> str:
    """The bench report table shared by ``repro-fib bench`` and
    ``benchmarks/bench_pipeline_batch.py``."""
    from repro.analysis.report import render_table  # deferred: analysis imports pipeline

    body = [
        (
            row.name,
            row.size_kb,
            row.scalar_mlps,
            row.dispatch_mlps if row.dispatch_seconds else "-",
            row.batch_mlps,
            "compiled" if row.compiled else "dispatch",
            f"{row.speedup:.2f}x",
            f"{row.compiled_speedup:.2f}x" if row.compiled_speedup else "-",
        )
        for row in rows
    ]
    return render_table(BENCH_HEADERS, body)
