"""Adapters giving every representation the :class:`CompressedFib` API.

Each adapter wraps one existing structure (``backend``), normalizes its
construction to ``factory(fib, **options)``, and serves batched lookups
through two planes:

* the **compiled flat plane** (:mod:`repro.pipeline.flat`, default):
  the representation is lowered once into a pointerless
  :class:`~repro.pipeline.flat.FlatProgram` — binary-node structures
  (binary trie, prefix DAG, ORTC, the serialized image's source DAG)
  compile from their own nodes, the multibit DAG transcribes its fanout
  blocks, and everything else compiles from a control trie over the
  snapshotted source FIB (correct for any representation that preserves
  the forwarding function — the registry's contract, enforced by the
  parity suite);
* the **dispatch engine** (:mod:`repro.pipeline.batch`, the PR 1 fast
  path, kept as ``lookup_batch_dispatch``): stride-dispatch arrays over
  Python nodes or the representation's scalar lookup. It serves when
  compilation is disabled (``compiled=False``) or refused
  (:class:`~repro.pipeline.flat.FlatCompileError` — e.g. an expansion
  past the cell ceiling), and is what ``repro-fib bench`` measures the
  compiled plane against.

Updatable representations (tabular, binary trie, prefix DAG) keep their
compiled program live under churn with a **patch log**: ``apply_update``
records the edited span and the next batch replays the log through
:meth:`~repro.pipeline.flat.FlatProgram.patch` (recompiling only the
covered root slots); once patch garbage would exceed the original image
the program is recompiled from scratch.

The registry metadata (paper section, size model, option schema) lives
on the ``@register`` decorations below, which is the table README.md
renders.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.baselines.lctrie import LCTrie
from repro.baselines.ortc import ortc_compress
from repro.baselines.patricia import PatriciaTrie
from repro.baselines.shapegraph import ShapeGraph
from repro.core.fib import INVALID_LABEL, Fib
from repro.core.multibit import MultibitDag
from repro.core.prefixdag import PrefixDag
from repro.core.serialize import NULL_REF, SerializedDag
from repro.core.sizemodel import binary_trie_size_bits, tabular_size_bits
from repro.core.trie import BinaryTrie
from repro.core.xbw import XBWb
from repro.pipeline.batch import (
    DEFAULT_STRIDE,
    batch_resolve,
    batch_walk,
    build_label_dispatch,
    build_node_dispatch,
    check_addresses,
    check_stride,
    patch_label_dispatch,
    patch_node_dispatch,
)
from repro.pipeline.flat import (
    FlatCompileError,
    FlatProgram,
    compile_binary,
    compile_multibit,
)
from repro.pipeline.registry import OptionSpec, register
from repro.simulator.costmodel import (
    LCTRIE_STEP_CYCLES,
    SERIALIZED_DAG_STEP_CYCLES,
    XBW_PRIMITIVE_CYCLES,
)

_STRIDE_OPTION = OptionSpec(
    "dispatch_stride",
    int,
    DEFAULT_STRIDE,
    "stride of the batched-lookup root dispatch array (2^s slots, s in [1, 20])",
)

_COMPILED_OPTION = OptionSpec(
    "compiled",
    bool,
    True,
    "serve lookup_batch from the compiled flat plane (False = PR 1 dispatch engine)",
)

#: Options shared by every adapter below.
_COMMON_OPTIONS = (_STRIDE_OPTION, _COMPILED_OPTION)


class RepresentationAdapter:
    """Shared adapter plumbing: backend storage, size conversions, and
    the compiled-plane lifecycle (lazy compile, patch-log replay,
    bloat-triggered recompile, dispatch fallback)."""

    name = "?"  # overwritten by @register

    #: Label semantics of the structure the patch log replays from:
    #: True when labels may be leaf-pushed copies of shorter routes
    #: (disables the patch compiler's longer-prefix prune — see
    #: :meth:`FlatProgram.patch_many`). Adapters whose patch source is
    #: a plain route trie override this to False.
    _flat_leaf_pushed = True

    def __init__(
        self,
        fib: Fib,
        dispatch_stride: int = DEFAULT_STRIDE,
        compiled: bool = True,
    ):
        self._width = fib.width
        self._dispatch_stride = check_stride(dispatch_stride)
        self._dispatch = None
        self._compiled_enabled = bool(compiled)
        self._flat: Optional[FlatProgram] = None
        self._flat_failed = False
        self._flat_log: List[Tuple[int, int]] = []

    @property
    def backend(self):
        """The wrapped representation object."""
        return self._backend

    @property
    def width(self) -> int:
        return self._width

    def size_bits(self) -> int:
        raise NotImplementedError

    def size_kbytes(self) -> float:
        return self.size_bits() / 8192.0

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, size={self.size_kbytes():.1f} KB)"

    # -------------------------------------------------------- compiled plane

    def _compile_flat(self) -> Optional[FlatProgram]:
        """Build this representation's flat program (None = no compiler)."""
        return None

    def _flat_source_root(self):
        """Binary root the patch log replays from (updatable adapters)."""
        raise NotImplementedError(f"{self.name} has no patchable flat source")

    def flat_plane(self) -> Optional[FlatProgram]:
        """The compiled lookup program, or None when the adapter serves
        through the dispatch engine (compilation disabled or refused).

        Compiles lazily on first use; drains the patch log first, so the
        program a caller receives always reflects every applied update.
        """
        if not self._compiled_enabled or self._flat_failed:
            return None
        if self._flat is not None and self._flat_log:
            program = self._flat
            root = self._flat_source_root()
            try:
                program.patch_many(
                    self._flat_log, root, leaf_pushed=self._flat_leaf_pushed
                )
            except FlatCompileError:
                self._flat = None  # patch hit the ceiling: recompile below
            self._flat_log.clear()
            if self._flat is not None:
                if program.bloated:
                    self._flat = None  # recompile below, from the live state
                elif program.overlay_bloated:
                    # Enough side-table entries to slow the per-lookup
                    # probe: fold them into the base image (a handful of
                    # slice writes, still off the per-update clock).
                    program.merge_overlay()
        if self._flat is None:
            try:
                self._flat = self._compile_flat()
            except FlatCompileError:
                self._flat = None
            self._flat_log.clear()
            if self._flat is None:
                self._flat_failed = True
                return None
        return self._flat

    def _log_flat_patch(self, prefix: int, length: int) -> None:
        """Record an applied update for lazy patch-log replay."""
        if self._flat is not None:
            self._flat_log.append((prefix, length))

    # ---------------------------------------------------------------- batches

    def lookup_batch(self, addresses: Sequence[int]) -> List[Optional[int]]:
        """Batched LPM: the compiled flat plane when available, else the
        PR 1 dispatch engine."""
        if not len(addresses):
            return []
        program = self.flat_plane()
        if program is not None:
            return program.lookup_batch(addresses)
        return self.lookup_batch_dispatch(addresses)

    def lookup_batch_shared(self, addresses: Sequence[int]) -> List[Optional[int]]:
        """Batched LPM through the shared-fate walk (each distinct
        duplicate/terminal-slot cohort resolves once — see
        :meth:`FlatProgram.lookup_batch_shared` for when that pays);
        serves through the dispatch engine when uncompiled."""
        if not len(addresses):
            return []
        program = self.flat_plane()
        if program is not None:
            return program.lookup_batch_shared(addresses)
        return self.lookup_batch_dispatch(addresses)

    def lookup_batch_dispatch(self, addresses: Sequence[int]) -> List[Optional[int]]:
        raise NotImplementedError


def _trivial_batch(root, addresses: Sequence[int], width: int) -> Optional[List[Optional[int]]]:
    """The degenerate batches that skip the dispatch build entirely.

    An empty address list answers ``[]``, and a childless root (an empty
    or default-route-only FIB) forwards every address to the root label —
    neither is worth a 2^stride dispatch array. Returns None when the
    batch needs the real fast path.
    """
    if not len(addresses):  # len(), not truthiness: ndarrays are batches too
        return []
    if root is not None and root.left is None and root.right is None:
        check_addresses(addresses, width)
        return [root.label] * len(addresses)
    return None


class _FallbackBatchAdapter(RepresentationAdapter):
    """Serve representations without walkable binary nodes.

    The compiled plane (and the dispatch fallback, and the control trie
    both are derived from) is built lazily on the first ``lookup_batch``
    call, so size-only consumers like ``repro-fib compress`` pay nothing
    for it. The FIB is *snapshotted* (copied) at build time: mutating
    the caller's FIB afterwards cannot desynchronize the lookup planes
    from the frozen backend.
    """

    def __init__(
        self,
        fib: Fib,
        dispatch_stride: int = DEFAULT_STRIDE,
        compiled: bool = True,
    ):
        super().__init__(fib, dispatch_stride, compiled)
        self._source_fib = fib.copy()
        self._control: Optional[BinaryTrie] = None

    def _control_trie(self) -> BinaryTrie:
        """The control trie both lookup planes derive from, built once:
        bench/compare exercise the compiled and the dispatch plane on
        the same adapter, so the O(N·W) trie build must not repeat."""
        if self._control is None:
            self._control = BinaryTrie.from_fib(self._source_fib)
        return self._control

    def _compile_flat(self) -> Optional[FlatProgram]:
        return compile_binary(
            self._control_trie().root, self._width, self._dispatch_stride
        )

    def lookup_batch_dispatch(self, addresses: Sequence[int]) -> List[Optional[int]]:
        if not addresses:
            return []
        if self._dispatch is None:
            control = self._control_trie()
            trivial = _trivial_batch(control.root, addresses, self._width)
            if trivial is not None:
                return trivial
            self._dispatch = build_label_dispatch(control, self._dispatch_stride)
        return batch_resolve(self._dispatch, self.lookup, addresses)


@register(
    name="tabular",
    title="tabular",
    description="linear next-hop table served by a length-bucketed index",
    paper_section="§2, Fig 1(a)",
    size_model="(W + lg δ)·N",
    options=_COMMON_OPTIONS,
    supports_update=True,
    supports_flat=True,
)
class TabularAdapter(_FallbackBatchAdapter):
    _flat_leaf_pushed = False  # patch source is the plain control trie

    def __init__(
        self,
        fib: Fib,
        dispatch_stride: int = DEFAULT_STRIDE,
        compiled: bool = True,
    ):
        # The backend copy doubles as the dispatch snapshot.
        RepresentationAdapter.__init__(self, fib, dispatch_stride, compiled)
        self._backend = fib.copy()
        self._source_fib = self._backend
        self._control = None
        self.lookup = self._backend.lookup

    def _flat_source_root(self):
        # The cached control trie mirrors every applied update, so the
        # patch log can recompile spans without re-walking the table.
        return self._control_trie().root

    def apply_update(self, op) -> None:
        """In-place table edit; repairs both lookup planes' spans."""
        self._backend.update(op.prefix, op.length, op.label)
        if self._control is not None:
            if op.label is None:
                self._control.delete(op.prefix, op.length)
            else:
                self._control.insert(op.prefix, op.length, op.label)
        self._log_flat_patch(op.prefix, op.length)
        if self._dispatch is not None:
            patch_label_dispatch(self._dispatch, self.lookup, op.prefix, op.length)

    def size_bits(self) -> int:
        return tabular_size_bits(
            len(self._backend), self._backend.delta, self._width
        )


@register(
    name="binary-trie",
    title="binary trie",
    description="unibit prefix tree, the reference lookup structure",
    paper_section="§2, Fig 1(b)",
    size_model="t·(2·ptr + lg δ)",
    options=_COMMON_OPTIONS,
    supports_update=True,
    supports_flat=True,
)
class BinaryTrieAdapter(RepresentationAdapter):
    _flat_leaf_pushed = False  # labels are the routes themselves

    def __init__(
        self,
        fib: Fib,
        dispatch_stride: int = DEFAULT_STRIDE,
        compiled: bool = True,
    ):
        super().__init__(fib, dispatch_stride, compiled)
        self._backend = BinaryTrie.from_fib(fib)
        self._delta: Optional[int] = fib.delta
        self.lookup = self._backend.lookup

    def _compile_flat(self) -> Optional[FlatProgram]:
        return compile_binary(self._backend.root, self._width, self._dispatch_stride)

    def _flat_source_root(self):
        return self._backend.root

    def lookup_batch_dispatch(self, addresses: Sequence[int]) -> List[Optional[int]]:
        if self._dispatch is None:
            trivial = _trivial_batch(self._backend.root, addresses, self._width)
            if trivial is not None:
                return trivial
            self._dispatch = build_node_dispatch(
                self._backend.root, self._width, self._dispatch_stride
            )
        return batch_walk(self._dispatch, addresses)

    def apply_update(self, op) -> None:
        """Plain trie edit; repairs both lookup planes' spans."""
        if op.label is None:
            self._backend.delete(op.prefix, op.length)
        else:
            self._backend.insert(op.prefix, op.length, op.label)
        self._log_flat_patch(op.prefix, op.length)
        if self._dispatch is not None:
            patch_node_dispatch(self._dispatch, self._backend.root, op.prefix, op.length)
        self._delta = None  # recomputed lazily by size_bits

    def size_bits(self) -> int:
        if self._delta is None:
            self._delta = len({label for _, _, label in self._backend.entries()})
        return binary_trie_size_bits(self._backend.node_count(), max(2, self._delta))


@register(
    name="patricia",
    title="Patricia",
    description="BSD radix tree, 24 bytes a node (Sklower [46])",
    paper_section="§6",
    size_model="24·8·nodes",
    options=_COMMON_OPTIONS,
    supports_flat=True,
)
class PatriciaAdapter(_FallbackBatchAdapter):
    def __init__(
        self,
        fib: Fib,
        dispatch_stride: int = DEFAULT_STRIDE,
        compiled: bool = True,
    ):
        super().__init__(fib, dispatch_stride, compiled)
        self._backend = PatriciaTrie(fib)
        self.lookup = self._backend.lookup

    def size_bits(self) -> int:
        return self._backend.size_in_bits()


@register(
    name="lc-trie",
    title="fib_trie",
    description="level/path-compressed trie, the Linux fib_trie model",
    paper_section="§6 [41]",
    size_model="kernel structs: tnodes + child arrays + leaves + aliases",
    options=_COMMON_OPTIONS + (
        OptionSpec("fill_factor", float, 0.5, "minimum slot occupancy for level compression"),
        OptionSpec("max_bits", int, 17, "stride cap of one level-compressed node"),
        OptionSpec("root_bits", int, 0, "minimum root stride (0 disables the floor)"),
    ),
    supports_trace=True,
    supports_flat=True,
    trace_step_cycles=LCTRIE_STEP_CYCLES,
)
class LCTrieAdapter(_FallbackBatchAdapter):
    def __init__(
        self,
        fib: Fib,
        dispatch_stride: int = DEFAULT_STRIDE,
        compiled: bool = True,
        fill_factor: float = 0.5,
        max_bits: int = 17,
        root_bits: int = 0,
    ):
        super().__init__(fib, dispatch_stride, compiled)
        self._backend = LCTrie(
            fib, fill_factor=fill_factor, max_bits=max_bits, root_bits=root_bits
        )
        self.lookup = self._backend.lookup
        self.lookup_trace = self._backend.lookup_trace

    def size_bits(self) -> int:
        return self._backend.size_in_bits()

    def depth_profile(self) -> Tuple[float, int]:
        stats = self._backend.stats()
        return stats.average_depth, stats.max_depth

    @classmethod
    def wrapping(
        cls,
        fib: Fib,
        backend: LCTrie,
        dispatch_stride: int = DEFAULT_STRIDE,
        compiled: bool = True,
    ) -> "LCTrieAdapter":
        """Adapt an already-built LC-trie *variant* of ``fib``.

        ``backend`` must encode the same forwarding function as ``fib``
        (e.g. the same routes under a different fill factor): the batch
        planes are derived from ``fib``, exactly as in ``__init__``.
        """
        adapter = cls.__new__(cls)
        RepresentationAdapter.__init__(adapter, fib, dispatch_stride, compiled)
        adapter._source_fib = fib.copy()
        adapter._control = None
        adapter._backend = backend
        adapter.lookup = backend.lookup
        adapter.lookup_trace = backend.lookup_trace
        return adapter


@register(
    name="ortc",
    title="ORTC",
    description="optimal FIB aggregation (Draves et al. [12])",
    paper_section="§6, Fig 1(c)",
    size_model="(W + lg δ)·N_aggregated",
    options=_COMMON_OPTIONS,
    supports_flat=True,
)
class OrtcAdapter(RepresentationAdapter):
    def __init__(
        self,
        fib: Fib,
        dispatch_stride: int = DEFAULT_STRIDE,
        compiled: bool = True,
    ):
        super().__init__(fib, dispatch_stride, compiled)
        self._backend = ortc_compress(fib)
        # One trie over the aggregated entries, null routes kept as ⊥ so
        # they erase any shorter covering label during the walk.
        self._trie = self._backend.to_trie()
        self._delta = fib.delta

    def lookup(self, address: int) -> Optional[int]:
        label = self._trie.lookup(address)
        return None if label is None or label == INVALID_LABEL else label

    def _compile_flat(self) -> Optional[FlatProgram]:
        # The blackhole label ⊥ = 0 erases covering labels during the
        # leaf-push fill and lands in cells as the program's no-route
        # encoding — exactly ORTC's semantics, no post-processing.
        return compile_binary(self._trie.root, self._width, self._dispatch_stride)

    def lookup_batch_dispatch(self, addresses: Sequence[int]) -> List[Optional[int]]:
        if self._dispatch is None:
            raw = _trivial_batch(self._trie.root, addresses, self._width)
            if raw is None:
                self._dispatch = build_node_dispatch(
                    self._trie.root, self._width, self._dispatch_stride
                )
        if self._dispatch is not None:
            raw = batch_walk(self._dispatch, addresses)
        invalid = INVALID_LABEL
        return [None if label == invalid else label for label in raw]

    def size_bits(self) -> int:
        return tabular_size_bits(len(self._backend), max(2, self._delta), self._width)


@register(
    name="shape-graph",
    title="shape graph",
    description="label-blind sub-tree merging with a next-hop hash (Song et al. [47])",
    paper_section="§6 [47]",
    size_model="2·ptr·shapes + (W + lg W + lg δ)·leaves",
    options=_COMMON_OPTIONS,
    supports_flat=True,
)
class ShapeGraphAdapter(_FallbackBatchAdapter):
    def __init__(
        self,
        fib: Fib,
        dispatch_stride: int = DEFAULT_STRIDE,
        compiled: bool = True,
    ):
        super().__init__(fib, dispatch_stride, compiled)
        self._backend = ShapeGraph(fib)
        self.lookup = self._backend.lookup

    def size_bits(self) -> int:
        return self._backend.size_in_bits()


@register(
    name="xbw",
    title="XBW-b",
    description="succinct BWT-style transform: RRR(S_I) + wavelet(S_α)",
    paper_section="§3",
    size_model="2t + n·H0 + o(t)",
    options=_COMMON_OPTIONS + (
        OptionSpec("wavelet_shape", str, "huffman", "'huffman' or 'balanced' S_α tree"),
    ),
    supports_trace=True,
    supports_flat=True,
    trace_step_cycles=XBW_PRIMITIVE_CYCLES,
    heavy_trace=True,
)
class XBWAdapter(_FallbackBatchAdapter):
    def __init__(
        self,
        fib: Fib,
        dispatch_stride: int = DEFAULT_STRIDE,
        compiled: bool = True,
        wavelet_shape: str = "huffman",
    ):
        super().__init__(fib, dispatch_stride, compiled)
        self._backend = XBWb.from_fib(fib, wavelet_shape=wavelet_shape)
        self.lookup = self._backend.lookup
        self.lookup_trace = self._backend.lookup_trace

    def size_bits(self) -> int:
        return self._backend.size_in_bits()


@register(
    name="prefix-dag",
    title="pDAG",
    description="trie-folding with a leaf-push barrier λ",
    paper_section="§4",
    size_model="above·(ptr + lg δ) + interior·2·ptr + δ·lg δ",
    options=_COMMON_OPTIONS + (
        OptionSpec("barrier", int, None, "leaf-push barrier λ; None = entropy-chosen (eq. 3)"),
    ),
    supports_update=True,
    supports_flat=True,
)
class PrefixDagAdapter(RepresentationAdapter):
    def __init__(
        self,
        fib: Fib,
        dispatch_stride: int = DEFAULT_STRIDE,
        compiled: bool = True,
        barrier: Optional[int] = None,
    ):
        super().__init__(fib, dispatch_stride, compiled)
        self._backend = PrefixDag(fib, barrier=barrier)
        self.lookup = self._backend.lookup

    @property
    def barrier(self) -> int:
        return self._backend.barrier

    def _compile_flat(self) -> Optional[FlatProgram]:
        # Folded sub-tries intern to shared blocks (the compile memo),
        # so the program inherits the DAG's economy.
        return compile_binary(self._backend.root, self._width, self._dispatch_stride)

    def _flat_source_root(self):
        return self._backend.root

    def lookup_batch_dispatch(self, addresses: Sequence[int]) -> List[Optional[int]]:
        if self._dispatch is None:
            trivial = _trivial_batch(self._backend.root, addresses, self._width)
            if trivial is not None:
                return trivial
            self._dispatch = build_node_dispatch(
                self._backend.root, self._width, self._dispatch_stride
            )
        return batch_walk(self._dispatch, addresses)

    def apply_update(self, op) -> None:
        """Incremental §4.3 update; repairs both lookup planes' spans
        (safe on the DAG — updates privatize the nodes they change)."""
        self._backend.update(op.prefix, op.length, op.label)
        self._log_flat_patch(op.prefix, op.length)
        if self._dispatch is not None:
            patch_node_dispatch(self._dispatch, self._backend.root, op.prefix, op.length)

    def size_bits(self) -> int:
        return self._backend.size_in_bits()


@register(
    name="multibit-dag",
    title="multibit DAG",
    description="stride-s folded trie with controlled prefix expansion",
    paper_section="§7",
    size_model="2^s·ptr·interior + lg δ·leaves",
    options=(
        _COMPILED_OPTION,
        OptionSpec("stride", int, 4, "address bits consumed per node (divides W)"),
    ),
    supports_flat=True,
)
class MultibitDagAdapter(RepresentationAdapter):
    def __init__(self, fib: Fib, compiled: bool = True, stride: int = 4):
        super().__init__(fib, compiled=compiled)
        self._backend = MultibitDag(fib, stride=stride)
        self.lookup = self._backend.lookup

    def _compile_flat(self) -> Optional[FlatProgram]:
        return compile_multibit(self._backend)

    def lookup_batch_dispatch(self, addresses: Sequence[int]) -> List[Optional[int]]:
        """Inline walk over the fanout arrays, locals hoisted."""
        check_addresses(addresses, self._width)
        backend = self._backend
        root = backend.root
        stride = backend.stride
        width = self._width
        fan_mask = (1 << stride) - 1
        out: List[Optional[int]] = []
        append = out.append
        for address in addresses:
            node = root
            shift = width - stride
            children = node.children
            while children is not None:
                node = children[(address >> shift) & fan_mask]
                children = node.children
                shift -= stride
            append(node.label)
        return out

    def size_bits(self) -> int:
        return self._backend.size_in_bits()


@register(
    name="serialized-dag",
    title="pDAG",  # the engine name of the paper's Table 2
    description="flat pointerless kernel image with λ-level collapse",
    paper_section="§5.3",
    size_model="2^λ stride table + packed node/leaf arrays",
    options=(
        _COMPILED_OPTION,
        OptionSpec("barrier", int, None, "leaf-push barrier λ; None = entropy-chosen (eq. 3)"),
    ),
    supports_trace=True,
    supports_flat=True,
    trace_step_cycles=SERIALIZED_DAG_STEP_CYCLES,
)
class SerializedDagAdapter(RepresentationAdapter):
    def __init__(self, fib: Fib, compiled: bool = True, barrier: Optional[int] = None):
        super().__init__(fib, compiled=compiled)
        self._dag = PrefixDag(fib, barrier=barrier)
        self._backend = SerializedDag(self._dag)
        self.lookup = self._backend.lookup
        self.lookup_trace = self._backend.lookup_trace

    @property
    def barrier(self) -> int:
        return self._backend.barrier

    @property
    def source_dag(self) -> PrefixDag:
        """The prefix DAG the image was serialized from."""
        return self._dag

    def _compile_flat(self) -> Optional[FlatProgram]:
        # The image copies the DAG into flat arrays, so compiling from
        # the source DAG's nodes encodes the same forwarding function.
        return compile_binary(self._dag.root, self._width, DEFAULT_STRIDE)

    @classmethod
    def from_dag(
        cls, fib: Fib, dag: PrefixDag, compiled: bool = True
    ) -> "SerializedDagAdapter":
        """Serialize an already-folded DAG of ``fib``, skipping the
        second trie-folding pass (the image copies everything into flat
        arrays, so sharing the fold is safe)."""
        adapter = cls.__new__(cls)
        RepresentationAdapter.__init__(adapter, fib, compiled=compiled)
        adapter._dag = dag
        adapter._backend = SerializedDag(dag)
        adapter.lookup = adapter._backend.lookup
        adapter.lookup_trace = adapter._backend.lookup_trace
        return adapter

    def lookup_batch_dispatch(self, addresses: Sequence[int]) -> List[Optional[int]]:
        """Batched walk straight over the image arrays: the λ stride
        table already is the root dispatch, so the batch path only has
        to hoist the arrays into locals and run the tagged-reference
        loop inline."""
        check_addresses(addresses, self._width)
        image = self._backend
        shift = image.width - image.barrier
        table_ref = image.table_ref
        table_label = image.table_label
        left = image.left
        right = image.right
        leaf_label = image.leaf_label
        null_ref = NULL_REF
        out: List[Optional[int]] = []
        append = out.append
        for address in addresses:
            slot = address >> shift
            ref = table_ref[slot]
            best = table_label[slot]
            if ref != null_ref:
                position = shift - 1
                while not (ref & 1):
                    index = ref >> 1
                    if (address >> position) & 1:
                        ref = right[index]
                    else:
                        ref = left[index]
                    position -= 1
                label = leaf_label[ref >> 1]
                if label:
                    best = label
            append(best if best else None)
        return out

    def size_bits(self) -> int:
        return self._backend.size_in_bits()

    def depth_profile(self) -> Tuple[float, int]:
        return self._backend.depth_profile()
