"""The batched-lookup fast path: stride dispatch plus amortized walks.

Per-address Python lookups pay the same fixed costs over and over —
method dispatch, attribute loads, per-bit ``address_bits`` calls. The
batch engine removes them two ways:

* a **stride dispatch array** built once per representation: the first
  ``s`` trie levels (default 8, 16 for the big benchmarks — the same
  trick §5.3 plays with the serialized image's λ-level collapse) are
  flattened into a ``2^s``-slot table mapping the top address bits to
  the best label accumulated above the cut plus the node to resume the
  walk from (or nothing, when the region below is uniform);
* **amortized traversal**: `lookup_batch` hoists every attribute into a
  local once per call and walks the residual bits with plain integer
  masks, so the per-address inner loop is a handful of bytecodes.

Two dispatch flavors cover every representation:

* :func:`build_node_dispatch` — for structures whose nodes expose
  binary ``left``/``right``/``label`` (the binary trie and the prefix
  DAG; folding does not change the walk, Lemma 5);
* :func:`build_label_dispatch` — representation-agnostic: slots whose
  region is uniform resolve straight from the array, everything else
  falls back to the representation's own scalar lookup (memoized per
  batch, so duplicate addresses under a hot DEEP slot pay once). Built
  from the source FIB's control trie, it is correct for any
  representation that preserves the forwarding function — which is the
  registry's contract, enforced by the parity suite.

Since the compiled flat plane (:mod:`repro.pipeline.flat`) became the
default serving path, this module is the portable fallback — what
``lookup_batch_dispatch`` runs when compilation is disabled or refused —
and the donor of the in-place patching machinery the serve engine uses.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.trie import BinaryTrie

#: Default dispatch stride (table of 256 slots); benchmarks use 16.
DEFAULT_STRIDE = 8

#: Largest dispatch stride a caller may request: 2^20 slots is already a
#: multi-megabyte table, and beyond it the build cost swamps any batch
#: win (the same guard SerializedDag applies to its λ table).
MAX_STRIDE = 20

#: Sentinel marking a dispatch slot whose region needs a real traversal.
DEEP = object()


class NodeDispatch:
    """Flattened top levels of a binary-node structure.

    ``labels[slot]`` is the best label accumulated on the path to depth
    ``stride`` (None = no route so far); ``nodes[slot]`` is the node to
    resume the bit walk from, or None when the whole region below the
    slot forwards to ``labels[slot]``.
    """

    __slots__ = ("width", "stride", "shift", "labels", "nodes")

    def __init__(self, width: int, stride: int, labels: list, nodes: list):
        self.width = width
        self.stride = stride
        self.shift = width - stride
        self.labels = labels
        self.nodes = nodes


def check_stride(stride: int) -> int:
    """Validate a requested dispatch stride (raises ValueError).

    Called by the adapters at build time so a bad stride fails fast,
    before any lookups run.
    """
    if not 1 <= stride <= MAX_STRIDE:
        raise ValueError(
            f"dispatch stride must be in [1, {MAX_STRIDE}], got {stride}"
        )
    return stride


def _clamped(stride: int, width: int) -> int:
    check_stride(stride)
    return min(stride, width)  # never walk past the address width


def build_node_dispatch(root, width: int, stride: int = DEFAULT_STRIDE) -> NodeDispatch:
    """Flatten the top ``stride`` levels below ``root`` in one descent.

    ``root`` may be any binary node with ``left`` / ``right`` / ``label``
    attributes (trie nodes, DAG nodes). The fill is a single recursive
    descent — O(2^stride) total, not a per-slot walk.
    """
    stride = _clamped(stride, width)
    size = 1 << stride
    labels: List[Optional[int]] = [None] * size
    nodes: List[Optional[object]] = [None] * size

    def fill(node, depth: int, base: int, best: Optional[int]) -> None:
        if node.label is not None:
            best = node.label
        if depth == stride:
            labels[base] = best
            nodes[base] = node
            return
        half = 1 << (stride - depth - 1)
        left, right = node.left, node.right
        if left is None:
            for slot in range(base, base + half):
                labels[slot] = best
        else:
            fill(left, depth + 1, base, best)
        if right is None:
            for slot in range(base + half, base + 2 * half):
                labels[slot] = best
        else:
            fill(right, depth + 1, base + half, best)

    fill(root, 0, 0, None)
    return NodeDispatch(width, stride, labels, nodes)


def _update_span(stride: int, prefix: int, length: int) -> Tuple[int, int]:
    """The dispatch slots covered by an updated ``prefix/length``:
    one slot when the prefix reaches past the stride, else the whole
    ``2^(stride-length)``-slot aligned block under it."""
    if length > stride:
        return prefix >> (length - stride), 1
    return prefix << (stride - length), 1 << (stride - length)


def patch_node_dispatch(dispatch: NodeDispatch, root, prefix: int, length: int) -> None:
    """Repair a :class:`NodeDispatch` after a route update in place.

    A route edit at ``prefix/length`` can only change the answer of
    addresses under that prefix, i.e. the slots of :func:`_update_span`
    — each repaired by one O(stride) re-descent from ``root``, instead
    of rebuilding all ``2^stride`` slots. This is what keeps the batch
    fast path profitable for *incremental* representations under churn
    (the serving engine's update plane applies thousands of edits
    between batches).

    Safe for the prefix DAG as well as the plain trie: §4.3 updates
    privatize the nodes they change, so node objects referenced by
    slots outside the span still encode their (unchanged) regions.
    """
    stride = dispatch.stride
    labels = dispatch.labels
    nodes = dispatch.nodes
    base, count = _update_span(stride, prefix, length)
    for slot in range(base, base + count):
        node = root
        best = root.label
        for depth in range(stride):
            node = node.right if (slot >> (stride - depth - 1)) & 1 else node.left
            if node is None:
                break
            if node.label is not None:
                best = node.label
        labels[slot] = best
        nodes[slot] = node  # None when the walk fell off the structure


def patch_label_dispatch(
    dispatch: LabelDispatch,
    scalar_lookup: Callable[[int], Optional[int]],
    prefix: int,
    length: int,
) -> None:
    """Repair a :class:`LabelDispatch` after a route update in place.

    Updates past the stride force their slot :data:`DEEP` (the region
    is no longer provably uniform; conservative but always correct —
    DEEP slots resolve through the representation's live scalar
    lookup). Updates at or above the stride keep uniform regions
    uniform, so uniform slots are re-answered with one scalar lookup
    of the region base.
    """
    stride = dispatch.stride
    labels = dispatch.labels
    if length > stride:
        labels[prefix >> (length - stride)] = DEEP
        return
    base, count = _update_span(stride, prefix, length)
    shift = dispatch.shift
    for slot in range(base, base + count):
        if labels[slot] is not DEEP:
            labels[slot] = scalar_lookup(slot << shift)


def check_addresses(addresses: Sequence[int], width: int) -> None:
    """Range-check a whole batch in two C-speed passes (min/max), so the
    batched paths reject bad addresses exactly like the scalar lookups —
    instead of Python's negative indexing silently wrapping a dispatch
    slot into a fabricated route."""
    if not addresses:
        return
    lowest = min(addresses)
    if lowest < 0:
        raise ValueError(f"address {lowest:#x} outside {width}-bit space")
    highest = max(addresses)
    if highest >> width:
        raise ValueError(f"address {highest:#x} outside {width}-bit space")


def batch_walk(
    dispatch: NodeDispatch, addresses: Sequence[int]
) -> List[Optional[int]]:
    """Batched LPM over a :class:`NodeDispatch`: one table probe plus a
    mask-driven residual walk per address, all locals hoisted."""
    check_addresses(addresses, dispatch.width)
    shift = dispatch.shift
    labels = dispatch.labels
    nodes = dispatch.nodes
    top_mask = (1 << shift) >> 1  # mask of the first residual bit (0 if none)
    out: List[Optional[int]] = []
    append = out.append
    for address in addresses:
        slot = address >> shift
        best = labels[slot]
        node = nodes[slot]
        if node is not None:
            mask = top_mask
            while mask:
                node = node.right if address & mask else node.left
                if node is None:
                    break
                label = node.label
                if label is not None:
                    best = label
                mask >>= 1
        append(best)
    return out


class LabelDispatch:
    """Representation-agnostic dispatch: per-slot label or :data:`DEEP`."""

    __slots__ = ("width", "stride", "shift", "labels")

    def __init__(self, width: int, stride: int, labels: list):
        self.width = width
        self.stride = stride
        self.shift = width - stride
        self.labels = labels


def build_label_dispatch(
    control: BinaryTrie, stride: int = DEFAULT_STRIDE
) -> LabelDispatch:
    """Dispatch for representations without walkable binary nodes.

    Built from the *source* FIB's trie: a slot holds the answer when no
    routes live below depth ``stride`` inside it (the region forwards
    uniformly — including when a trie *leaf* sits exactly at the stride,
    the common /8 or /16 route under a stride-8/16 dispatch), else
    :data:`DEEP` to route the address to the scalar lookup of the
    representation itself.
    """
    node_dispatch = build_node_dispatch(control.root, control.width, stride)
    labels = [
        DEEP
        if node is not None and (node.left is not None or node.right is not None)
        else label
        for label, node in zip(node_dispatch.labels, node_dispatch.nodes)
    ]
    return LabelDispatch(control.width, node_dispatch.stride, labels)


def batch_resolve(
    dispatch: LabelDispatch,
    scalar_lookup: Callable[[int], Optional[int]],
    addresses: Sequence[int],
) -> List[Optional[int]]:
    """Batched LPM over a :class:`LabelDispatch`: uniform regions are one
    shift + one list probe; only :data:`DEEP` slots pay for a traversal.

    DEEP answers are memoized per batch, keyed by the address (i.e. the
    slot plus its residual bits): a hot slot probed by many duplicate
    addresses — the common shape of locality-heavy traces — runs the
    representation's full scalar lookup once per distinct address, not
    once per packet. The memo dies with the call, so a route update
    between batches can never serve a stale label.
    """
    check_addresses(addresses, dispatch.width)
    shift = dispatch.shift
    labels = dispatch.labels
    deep = DEEP
    memo: dict = {}
    missing = DEEP  # reuse the sentinel: never a valid memoized label
    memo_get = memo.get
    out: List[Optional[int]] = []
    append = out.append
    for address in addresses:
        label = labels[address >> shift]
        if label is deep:
            label = memo_get(address, missing)
            if label is missing:
                label = scalar_lookup(address)
                memo[address] = label
        append(label)
    return out
