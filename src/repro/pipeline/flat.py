"""repro.pipeline.flat — the compiled, pointerless lookup plane.

The batch engine of :mod:`repro.pipeline.batch` still resolves every
non-uniform dispatch slot by chasing Python node objects (attribute
loads, ``None`` checks) or by falling back to the representation's
scalar lookup. This module removes the last object dereference from the
hot path the way the paper's fastest structures do (§5.3's serialized,
λ-level-collapsed image; the pointerless encodings of Tapolcai et al.,
*Memory size bounds of prefix DAGs*): any registered representation is
**compiled** once into a :class:`FlatProgram` — parallel ``array('q')``
arrays holding a root stride table plus LC-trie-style variable-stride
child blocks — after which longest-prefix match is pure integer
indexing:

* ``root_ptr[slot]`` / ``root_val[slot]`` — per top-bits slot, either a
  terminal label or an encoded child block reference;
* ``cell_ptr[i]`` / ``cell_val[i]`` — the flattened blocks; a block
  reference packs ``(base << 6) | stride`` so the walk needs no side
  lookups to know how many address bits the next block consumes;
* labels are leaf-pushed into the cells during compilation, so the walk
  never tracks a "best so far" — the cell it lands on *is* the answer
  (``0`` = no route; table labels are ``1..δ``, and the ORTC trie's
  explicit blackhole label ``0`` erases covering routes for free).

**The image layout**, concretely — four parallel ``array('q')`` rows,
``ptr < 0`` (TERMINAL) meaning "the paired ``val`` is the answer"::

    slot = address >> (width - root_stride)       ptr >= 0 encodes the
    root_ptr: [ -1 | -1 | 830000…6 | -1 | … ]     next block as
    root_val: [  0 |  3 |        2 |  1 | … ]     (base << 6) | stride
                         |
                         v  base = 830000…6 >> 6, stride = …6 & 63
    cell_ptr: … [ -1 | -1 | (base'<<6)|s' | -1 ] …   <- one 2^stride block
    cell_val: … [  2 |  5 |            2 |  0 ] …      at cells [base, base+2^s)

    walk: shift -= stride; index = base + ((address >> shift) & (2^stride - 1))

Blocks are interned by source node during compilation, so a folded DAG's
shared sub-tries become shared cell blocks and the compiled image keeps
the DAG's economy.

**The patch-log lifecycle** (how updatable representations stay on this
plane under churn): (1) the adapter's ``apply_update`` edits its live
structure and appends the edited ``prefix/length`` span to a patch log
— the program is *not* touched on the update path; (2) the next
``flat_plane()`` call — the serve engine issues one at the top of every
batched lookup, on the update clock — replays the log through
:meth:`FlatProgram.patch`, recompiling only the root slots the spans
cover; (3) replaced child blocks are abandoned in place, and once that
garbage would exceed the original image (:attr:`FlatProgram.bloated`)
the owning adapter recompiles from scratch; (4) on an epoch swap the
serve engine rebuilds the representation and compiles a fresh program
off the lookup path, resetting the log. Compilation is therefore an
acceleration with no correctness window: lookups always run against a
program equivalent to the live structure.

``lookup_batch`` runs the program three ways, fastest available first:

* **vectorized** — when NumPy is importable (and the address width fits
  int64), the whole batch is resolved with gather operations: one fancy
  index per level over the still-live addresses, then an object-table
  gather decodes labels to Python ints/None in C;
* **pointer-free Python loop** — the portable fallback: a handful of
  bytecodes per level, no attribute loads, no object dereferences;
* **shared-fate walk** (:meth:`FlatProgram.lookup_batch_shared`) —
  resolves each distinct fate once: duplicates and terminal-root-slot
  cohorts share one probe (a sorted ``np.unique`` dedup on the vector
  path, per-batch memos on the portable path). An opt-in primitive for
  callers whose per-distinct-address cost dominates; the plain paths
  above usually win on raw lookup throughput.

Programs support **bounded-cost in-place patching**
(:meth:`FlatProgram.patch` / :meth:`~FlatProgram.patch_many`): a deep
edit (longer than the root stride) re-emits exactly its one owning
slot's block; a short-prefix edit descends only its root region,
skipping slots whose subtree and inherited label are unchanged (the
per-slot source cache), pruning slots owned by longer prefixes (for
structures whose labels are the routes themselves — leaf-pushed DAGs
must not prune, see ``leaf_pushed``), and collapsing empty subtrees
into contiguous **terminal runs**. Wide runs land in the
:class:`FlatOverlay` — a sorted ``[start, end) -> label`` side table
every walk probes before the root arrays (an empty overlay costs
nothing) — and :meth:`~FlatProgram.merge_overlay` folds them into the
image off the lookup clock. Terminal runs are also journaled
(:meth:`~FlatProgram.take_patch_delta`) so the shm serving plane can
ship a *clean* window of them to attached workers as a delta
(:meth:`~FlatProgram.overlay_ingest`) instead of republishing the
whole image. Replaced blocks are abandoned in the cell arrays and the
program reports itself :attr:`~FlatProgram.bloated` once the garbage
would exceed the original image, at which point the owning adapter
recompiles from scratch. This is what keeps incremental
representations on the compiled plane under churn (the serve engine's
patch-log replay).

The compiler refuses pathological inputs (:class:`FlatCompileError`,
e.g. an expansion larger than :data:`DEFAULT_MAX_CELLS`); adapters
catch it and fall back to the PR 1 dispatch engine, so compilation is
strictly an acceleration, never a correctness risk.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right
from typing import Iterable, List, Optional, Sequence, Tuple

try:  # NumPy is optional: the pure-Python program is always available.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via vectorize=False
    _np = None

from repro.pipeline.batch import check_addresses

#: Address bits consumed per child block below the root table.
DEFAULT_SUB_STRIDE = 8

#: Bits reserved for the stride field inside an encoded block reference.
STRIDE_BITS = 6
STRIDE_MASK = (1 << STRIDE_BITS) - 1

#: ``ptr`` value of a terminal cell (the paired ``val`` is the answer).
TERMINAL = -1

#: ``val`` encoding of "no route" (table labels are 1..δ).
NO_ROUTE = 0

#: Compilation ceiling: programs larger than this many cells refuse to
#: build (the adapter then serves through the dispatch engine instead).
DEFAULT_MAX_CELLS = 1 << 22

#: Largest address width the int64 vector path can shift safely.
_NUMPY_MAX_WIDTH = 62

#: Live-set size under which the vector walk hands the remaining
#: addresses to the pure-Python loop: each further level costs ~15
#: NumPy calls regardless of how few addresses are still live, so the
#: deep tail of a batch is cheaper to finish scalar than to drag the
#: gather machinery through (this caps the per-batch fixed cost, which
#: is what a sharded deployment's split batches are most sensitive to).
_VECTOR_TAIL_CUTOFF = 128

#: Largest root table a compiler may materialize (2^20 slots, matching
#: :data:`repro.pipeline.batch.MAX_STRIDE`).
MAX_ROOT_STRIDE = 20

#: Patched terminal runs at least this many root slots wide land in the
#: delta overlay instead of being written across the root arrays — one
#: side-table entry versus ``2^(stride-length)`` slot writes. Narrower
#: runs are cheaper as direct C-level slice assignments.
OVERLAY_SPAN_MIN = 4096

#: Overlay occupancy past which the owning adapter folds the side table
#: back into the base image (:meth:`FlatProgram.merge_overlay`) at the
#: next drain — the bound that keeps the per-lookup overlay probe cheap.
OVERLAY_LIMIT = 1024

#: Terminal patch-journal entries kept between epoch publishes; past
#: this a delta is not worth riding and the publisher ships a full
#: image instead.
DELTA_JOURNAL_LIMIT = 4096


class FlatOverlay:
    """Sorted, non-overlapping ``[start, end) -> label`` root-slot runs.

    The delta-program side table of the patch compiler: a short-prefix
    edit whose uncovered gap spans thousands of root slots records one
    interval here instead of rewriting every slot, and the lookup walks
    probe it (binary search over a handful of entries) before the main
    arrays. Entries are *terminal* answers only — a slot owned by a
    longer prefix is never overlaid, so a hit ends the walk.
    """

    __slots__ = ("starts", "ends", "vals")

    def __init__(self):
        self.starts: List[int] = []
        self.ends: List[int] = []
        self.vals: List[int] = []

    # array-of-columns with __slots__: spell out the pickle protocol.
    def __getstate__(self):
        return (self.starts, self.ends, self.vals)

    def __setstate__(self, state):
        self.starts, self.ends, self.vals = state

    def __len__(self) -> int:
        return len(self.starts)

    def get(self, slot: int):
        """Label covering ``slot``, or None when the base image rules."""
        i = bisect_right(self.starts, slot) - 1
        if i >= 0 and slot < self.ends[i]:
            return self.vals[i]
        return None

    def items(self) -> List[Tuple[int, int, int]]:
        return list(zip(self.starts, self.ends, self.vals))

    def set(self, start: int, end: int, val: int) -> None:
        """Overlay ``[start, end)`` with ``val``, splicing out whatever
        the run overlaps."""
        i = self._splice(start, end)
        self.starts.insert(i, start)
        self.ends.insert(i, end)
        self.vals.insert(i, val)

    def discard(self, start: int, end: int) -> bool:
        """Drop overlay coverage of ``[start, end)``; True if any entry
        overlapped the range (and was removed or trimmed)."""
        starts, ends = self.starts, self.ends
        i = bisect_left(starts, start)
        overlapped = (i > 0 and ends[i - 1] > start) or (
            i < len(starts) and starts[i] < end
        )
        if overlapped:
            self._splice(start, end)
        return overlapped

    def _splice(self, start: int, end: int) -> int:
        """Remove or trim every interval overlapping ``[start, end)``;
        returns the insertion index for a new interval at ``start``."""
        starts, ends, vals = self.starts, self.ends, self.vals
        i = bisect_left(starts, start)
        if i and ends[i - 1] > start:
            j = i - 1
            if ends[j] > end:
                # the run splits an existing interval: keep both flanks
                starts.insert(i, end)
                ends.insert(i, ends[j])
                vals.insert(i, vals[j])
                ends[j] = start
                return i
            ends[j] = start
        j = i
        while j < len(starts) and starts[j] < end:
            if ends[j] <= end:
                j += 1  # fully covered: drop
            else:
                starts[j] = end  # overhangs the right edge: trim
                break
        del starts[i:j]
        del ends[i:j]
        del vals[i:j]
        return i


class FlatCompileError(ValueError):
    """A representation cannot be compiled into a flat program."""


def have_numpy() -> bool:
    """True when the vectorized batch path is importable."""
    return _np is not None


class FlatProgram:
    """A compiled, pointerless LPM program over parallel int64 arrays."""

    __slots__ = (
        "width",
        "root_stride",
        "root_shift",
        "sub_stride",
        "max_cells",
        "root_ptr",
        "root_val",
        "cell_ptr",
        "cell_val",
        "vectorize",
        "max_label",
        "frozen",
        "_initial_cells",
        "_views",
        "_overlay",
        "_ov_views",
        "_src",
        "overlay_span_min",
        "patch_slots_total",
        "patch_spans_total",
        "patch_cells_total",
        "patch_skips_total",
        "last_patch_slots",
        "_delta_journal",
        "_delta_dirty",
    )

    def __init__(
        self,
        width: int,
        root_stride: int,
        sub_stride: int = DEFAULT_SUB_STRIDE,
        max_cells: int = DEFAULT_MAX_CELLS,
    ):
        if not 1 <= root_stride <= min(width, MAX_ROOT_STRIDE):
            raise FlatCompileError(
                f"flat root stride {root_stride} outside "
                f"[1, {min(width, MAX_ROOT_STRIDE)}] for width {width}"
            )
        if not 1 <= sub_stride <= STRIDE_MASK:
            raise FlatCompileError(
                f"flat sub stride {sub_stride} outside [1, {STRIDE_MASK}]"
            )
        self.width = width
        self.root_stride = root_stride
        self.root_shift = width - root_stride
        self.sub_stride = sub_stride
        self.max_cells = max_cells
        size = 1 << root_stride
        self.root_ptr = array("q", [TERMINAL]) * size
        self.root_val = array("q", [NO_ROUTE]) * size
        self.cell_ptr = array("q")
        self.cell_val = array("q")
        self.vectorize = True
        #: Largest label ever written (tracked incrementally: the decode
        #: table must never be rebuilt by scanning the cell arrays).
        self.max_label = 0
        #: True for programs attached to an externally-owned image (a
        #: shared-memory segment): the arrays are read-only views and
        #: :meth:`patch` refuses — churn publishes a fresh generation.
        self.frozen = False
        self._initial_cells = 0
        self._views = None
        #: Delta overlay (:class:`FlatOverlay`), or None while empty so
        #: the lookup walks pay a single attribute load when no patch is
        #: pending — the empty fast path costs nothing.
        self._overlay = None
        self._ov_views = None
        #: Per-root-slot source cache: ``slot -> (node, best)`` of the
        #: last block emitted for the slot by a patch, letting a replay
        #: skip re-emitting a subtree the edit did not change. Populated
        #: only by the patch paths (compilation never needs it).
        self._src = {}
        self.overlay_span_min = OVERLAY_SPAN_MIN
        #: Root-slot *write operations* by the patch compiler — a
        #: contiguous run written as one span (overlay entry or slice
        #: assignment) counts once. The pre-patch-compiler cost of the
        #: same edit was one tree walk per covered slot.
        self.patch_slots_total = 0
        self.patch_spans_total = 0
        self.patch_cells_total = 0
        self.patch_skips_total = 0
        self.last_patch_slots = 0
        #: Terminal writes since the last :meth:`take_patch_delta`, as
        #: ``(start, end, val)`` runs — the delta a publisher can ride
        #: to live workers instead of re-imaging the whole program.
        self._delta_journal = []
        self._delta_dirty = False

    # ------------------------------------------------------------- pickling

    def __getstate__(self):
        """Pickle the program as its raw arrays and scalars.

        The NumPy view cache is dropped: views alias the ``array('q')``
        buffers and must be re-derived in the receiving process. This is
        what lets a deployment ship a *compiled* shard across a process
        boundary for roughly the cost of copying the image bytes. A
        *frozen* (segment-attached) program pickles as a detached copy:
        its memoryview rows materialize into owned arrays, so the
        pickled twin outlives the segment it came from.

        Caches and process-local bookkeeping are dropped alongside the
        views: the source cache holds live node references, and the
        delta journal belongs to the publisher that owns the original.
        A pending overlay *is* shipped — it is part of the program's
        answer function — so a pickled twin keeps serving patched runs.
        """
        transient = ("_views", "_ov_views", "_src", "_delta_journal",
                     "_delta_dirty")
        state = {
            name: getattr(self, name)
            for name in self.__slots__
            if name not in transient
        }
        if self.frozen:
            for row in ("root_ptr", "root_val", "cell_ptr", "cell_val"):
                state[row] = array("q", state[row])
            state["frozen"] = False
        return state

    def __setstate__(self, state):
        # Defaults first: states pickled before a field existed.
        self.frozen = False
        self._overlay = None
        self.overlay_span_min = OVERLAY_SPAN_MIN
        self.patch_slots_total = 0
        self.patch_spans_total = 0
        self.patch_cells_total = 0
        self.patch_skips_total = 0
        self.last_patch_slots = 0
        for name, value in state.items():
            setattr(self, name, value)
        self._views = None
        self._ov_views = None
        self._src = {}
        self._delta_journal = []
        self._delta_dirty = False

    # -------------------------------------------------------- attached images

    @classmethod
    def from_image(
        cls,
        *,
        width: int,
        root_stride: int,
        sub_stride: int,
        max_label: int,
        root_ptr,
        root_val,
        cell_ptr,
        cell_val,
    ) -> "FlatProgram":
        """Rehydrate a program over externally-owned int64 row buffers.

        The rows are adopted as-is (``memoryview.cast('q')`` slices of a
        shared-memory segment, typically), so construction is O(1): no
        copy, no recompile — this is what lets a worker *attach* to a
        frontend-compiled program. The result is :attr:`frozen`: the
        scalar and batch walks (and their NumPy views) run straight off
        the foreign buffers, while :meth:`patch` refuses — an attached
        image changes only by publishing a whole new generation.
        """
        program = cls.__new__(cls)
        program.width = width
        program.root_stride = root_stride
        program.root_shift = width - root_stride
        program.sub_stride = sub_stride
        program.max_cells = DEFAULT_MAX_CELLS
        program.root_ptr = root_ptr
        program.root_val = root_val
        program.cell_ptr = cell_ptr
        program.cell_val = cell_val
        program.vectorize = True
        program.max_label = max_label
        program.frozen = True
        program._initial_cells = len(cell_ptr)
        program._views = None
        program._overlay = None
        program._ov_views = None
        program._src = {}
        program.overlay_span_min = OVERLAY_SPAN_MIN
        program.patch_slots_total = 0
        program.patch_spans_total = 0
        program.patch_cells_total = 0
        program.patch_skips_total = 0
        program.last_patch_slots = 0
        program._delta_journal = []
        program._delta_dirty = False
        return program

    # ------------------------------------------------------------ bookkeeping

    def seal(self) -> "FlatProgram":
        """Mark the current cell count as the compiled baseline (the
        reference point for :attr:`bloated`)."""
        self._initial_cells = len(self.cell_ptr)
        self._views = None
        return self

    @property
    def appended_cells(self) -> int:
        """Cells appended by patches since the program was compiled."""
        return len(self.cell_ptr) - self._initial_cells

    @property
    def bloated(self) -> bool:
        """True once patch garbage warrants a from-scratch recompile:
        patches abandon replaced blocks in place, so after enough churn
        the dead cells would exceed the original image."""
        return self.appended_cells > max(4096, self._initial_cells)

    @property
    def overlay_len(self) -> int:
        """Pending delta-overlay intervals (0 = empty fast path)."""
        overlay = self._overlay
        return len(overlay) if overlay is not None else 0

    @property
    def overlay_bloated(self) -> bool:
        """True once the overlay probe is worth folding away: the side
        table has grown past :data:`OVERLAY_LIMIT` entries."""
        return self.overlay_len > OVERLAY_LIMIT

    def _overlay_table(self) -> FlatOverlay:
        overlay = self._overlay
        if overlay is None:
            overlay = self._overlay = FlatOverlay()
        return overlay

    def _journal(self, start: int, end: int, val: int) -> None:
        """Record a terminal run write for the publishable delta; past
        the cap the delta stops being worth riding (dirty = ship a full
        image)."""
        journal = self._delta_journal
        if len(journal) < DELTA_JOURNAL_LIMIT:
            journal.append((start, end, val))
        else:
            self._delta_dirty = True

    def take_patch_delta(self) -> Tuple[List[Tuple[int, int, int]], bool]:
        """Drain the terminal patch journal: ``(entries, clean)``.

        ``entries`` are the ``(start, end, val)`` root-slot runs written
        since the last take; ``clean`` is False when a patch in the
        window also rewrote block structure (or overflowed the journal),
        in which case the delta cannot represent the change and the
        caller must publish a full image. Resets the journal either way.
        """
        entries = self._delta_journal
        clean = not self._delta_dirty
        self._delta_journal = []
        self._delta_dirty = False
        return entries, clean

    def merge_overlay(self) -> int:
        """Fold every pending overlay interval into the base image.

        Runs off the lookup clock (epoch swap, or the adapter's
        :attr:`overlay_bloated` policy): each interval becomes one
        C-level slice assignment over the root arrays, after which the
        overlay probe disappears from the walks entirely. Idempotent —
        a second call is a no-op returning 0.
        """
        if self.frozen:
            raise FlatCompileError(
                "attached flat programs are immutable; publish a new "
                "segment generation instead of merging in place"
            )
        overlay = self._overlay
        if overlay is None or not len(overlay):
            self._overlay = None
            self._ov_views = None
            return 0
        self._views = None
        self._ov_views = None
        root_ptr = self.root_ptr
        root_val = self.root_val
        src = self._src
        merged = 0
        for start, end, val in overlay.items():
            n = end - start
            root_ptr[start:end] = array("q", [TERMINAL]) * n
            root_val[start:end] = array("q", [val]) * n
            if src:
                for slot in [s for s in src if start <= s < end]:
                    del src[slot]
            merged += 1
        self._overlay = None
        return merged

    def overlay_ingest(self, entries: Iterable[Tuple[int, int, int]]) -> None:
        """Apply published terminal delta runs to this program's overlay.

        The receiving half of the delta-publish path: a worker attached
        to a frozen image cannot write the shared arrays, but its side
        table is process-local, so ridden updates land here and the
        walks see them immediately. Allowed on frozen programs.
        """
        overlay = self._overlay_table()
        max_label = self.max_label
        for start, end, val in entries:
            overlay.set(start, end, val)
            if val > max_label:
                max_label = val
        self.max_label = max_label
        self._views = None  # decode table may need to grow
        self._ov_views = None

    @property
    def vectorized(self) -> bool:
        """True when batches will run through the NumPy gather path."""
        return self.vectorize and _np is not None and self.width <= _NUMPY_MAX_WIDTH

    def size_in_bits(self) -> int:
        """Program image size (both tables, ptr+val at 64 bits each)."""
        return (len(self.root_ptr) + len(self.cell_ptr)) * 2 * 64

    def size_in_kbytes(self) -> float:
        return self.size_in_bits() / 8192.0

    def __repr__(self) -> str:
        return (
            f"FlatProgram(width={self.width}, root=2^{self.root_stride}, "
            f"cells={len(self.cell_ptr)}, "
            f"{'vector' if self.vectorized else 'python'}, "
            f"size={self.size_in_kbytes():.1f} KB)"
        )

    # ----------------------------------------------------------- compilation

    def emit_block(self, node, best: int, remaining: int, memo: dict, depths: dict) -> int:
        """Expand binary ``node`` (non-leaf) into a fresh child block;
        returns the encoded ``(base << 6) | stride`` reference.

        ``best`` is the label accumulated above the block (leaf-pushed
        into every cell the sub-trie leaves uncovered); ``remaining`` is
        the address bits left below the block's top. ``memo`` interns
        blocks by ``(id(node), best, remaining)`` so DAG-shaped inputs
        (folded sub-tries) compile each shared region once.
        """
        if remaining <= 0:
            raise FlatCompileError("interior node below the address width")
        key = (id(node), best, remaining)
        cached = memo.get(key)
        if cached is not None:
            return cached
        stride = min(self.sub_stride, remaining, max(1, _depth_below(node, depths)))
        fan = 1 << stride
        base = len(self.cell_ptr)
        if base + fan > self.max_cells:
            raise FlatCompileError(
                f"flat program exceeds {self.max_cells} cells; "
                "serve this representation through the dispatch engine"
            )
        self.cell_ptr.extend([TERMINAL] * fan)
        self.cell_val.extend([NO_ROUTE] * fan)
        self._fill(self.cell_ptr, self.cell_val, base, node, 0, stride,
                   0, best, remaining - stride, memo, depths)
        encoded = (base << STRIDE_BITS) | stride
        memo[key] = encoded
        return encoded

    def _fill(self, ptrs, vals, offset, node, depth, stride, slot, best,
              remaining, memo, depths) -> None:
        """Recursive descent filling one block's ``2^stride`` cells.

        ``remaining`` counts the address bits below the block being
        filled; a node still interior at the block floor becomes a
        nested block reference.
        """
        label = node.label
        if label is not None:
            best = label
            if label > self.max_label:
                self.max_label = label
        if depth == stride:
            index = offset + slot
            if node.left is None and node.right is None:
                vals[index] = best
            else:
                vals[index] = best
                ptrs[index] = self.emit_block(node, best, remaining, memo, depths)
            return
        half = 1 << (stride - depth - 1)
        left, right = node.left, node.right
        if left is None:
            start = offset + slot
            for index in range(start, start + half):
                vals[index] = best
        else:
            self._fill(ptrs, vals, offset, left, depth + 1, stride,
                       slot, best, remaining, memo, depths)
        if right is None:
            start = offset + slot + half
            for index in range(start, start + half):
                vals[index] = best
        else:
            self._fill(ptrs, vals, offset, right, depth + 1, stride,
                       slot + half, best, remaining, memo, depths)

    # -------------------------------------------------------------- patching

    def patch(self, prefix: int, length: int, root,
              *, leaf_pushed: bool = True) -> None:
        """Recompile the state covered by one updated ``prefix/length``
        span; see :meth:`patch_many` for the cost model."""
        self.patch_many(((prefix, length),), root, leaf_pushed=leaf_pushed)

    def patch_many(self, spans, root, *, leaf_pushed: bool = True) -> int:
        """Recompile the root slots covered by updated ``(prefix,
        length)`` spans from the live binary structure under ``root``,
        in place. Returns the number of slot-write operations.

        A route edit can only change answers under its prefix: one slot
        when the prefix reaches past the root stride, else the aligned
        ``2^(stride-length)`` region. The region path never walks its
        slots one by one — it descends the live structure once:

        * a labelled node *deeper than the edit* owns everything below
          it, so that subtree's slots are untouched (the edit cannot be
          their best match) and the descent prunes;
        * an absent child is a contiguous terminal run — one overlay
          entry (:data:`OVERLAY_SPAN_MIN` or wider) or one C-level
          slice write, never per-slot work;
        * a subtree reaching the slot boundary re-emits its block only
          when its ``(node, best)`` pair differs from what the slot
          already encodes (the per-slot source cache).

        Worst-case cost is therefore proportional to the edited
        structure — the affected leaves — not to ``2^(stride-length)``.
        Replaced child blocks are abandoned (see :attr:`bloated`);
        cells of untouched slots are never mutated, so compile-time
        block sharing stays safe.

        ``leaf_pushed`` declares the source structure's label
        semantics. The default (True) is the conservative one: labels
        may be leaf-pushed copies of shorter routes (the prefix DAG),
        so a label deeper than the edit does *not* prove its subtree
        untouched and the prune above is disabled — the descent still
        span-writes gaps and skips unchanged boundary blocks. Pass
        False for structures whose labels are the routes themselves
        (the binary trie, the tabular control trie) to enable the
        longer-prefix prune.
        """
        if self.frozen:
            raise FlatCompileError(
                "attached flat programs are immutable; publish a new "
                "segment generation instead of patching in place"
            )
        spans = list(dict.fromkeys(spans))
        if not spans:
            return 0
        self._views = None  # releases buffer exports so the arrays may grow
        stride = self.root_stride
        before_ops = self.patch_slots_total
        before_cells = len(self.cell_ptr)
        memo: dict = {}
        depths: dict = {}
        for prefix, length in spans:
            if length > stride:
                self._patch_slot(prefix >> (length - stride), root, memo, depths)
            else:
                self._patch_region(prefix, length, root, memo, depths,
                                   leaf_pushed)
        self.patch_cells_total += len(self.cell_ptr) - before_cells
        self.last_patch_slots = self.patch_slots_total - before_ops
        return self.last_patch_slots

    def _patch_slot(self, slot: int, root, memo: dict, depths: dict) -> None:
        """Recompile one root slot (an edit deeper than the stride).

        Always recomputes: the edit mutated the structure *below* the
        boundary node, so boundary identity cannot certify the subtree
        unchanged — only the region descent may consult the source
        cache (there the edited route itself determines ``best``).
        """
        stride = self.root_stride
        node = root
        best = root.label if root.label is not None else NO_ROUTE
        for depth in range(stride):
            node = node.right if (slot >> (stride - depth - 1)) & 1 else node.left
            if node is None:
                break
            if node.label is not None:
                best = node.label
        if node is None or (node.left is None and node.right is None):
            self._write_terminal(slot, best)
        else:
            self._write_block(slot, node, best, memo, depths, cacheable=False)

    def _patch_region(self, prefix: int, length: int, root,
                      memo: dict, depths: dict, leaf_pushed: bool) -> None:
        """Recompile the aligned ``2^(stride-length)`` region of a
        short-prefix edit by one descent of the live structure."""
        stride = self.root_stride
        lo = prefix << (stride - length)
        hi = lo + (1 << (stride - length))
        node = root
        best = NO_ROUTE
        for depth in range(length):
            if node.label is not None:
                best = node.label
            node = node.right if (prefix >> (length - depth - 1)) & 1 else node.left
            if node is None:
                self._write_run(lo, hi, best)
                return
        prune_depth = length if not leaf_pushed else self.root_stride + 1
        self._descend(node, length, prune_depth, lo, hi, best, memo, depths)

    def _descend(self, node, depth: int, prune_depth: int, lo: int, hi: int,
                 best: int, memo: dict, depths: dict) -> None:
        """Region descent: ``node`` covers root slots ``[lo, hi)`` at
        ``depth`` bits; ``best`` is the label accumulated strictly above
        it. Prunes at prefixes longer than the edit (when the label
        semantics allow — see :meth:`patch_many`), span-writes gaps,
        and re-emits boundary blocks only when their source changed."""
        label = node.label
        if label is not None:
            if depth > prune_depth:
                # Owned by a longer route: the edit can never be the
                # best match anywhere below — the slots (arrays and
                # overlay alike) are already current.
                return
            best = label
        if hi - lo == 1:
            if node.left is None and node.right is None:
                self._write_terminal(lo, best)
            else:
                self._write_block(lo, node, best, memo, depths, cacheable=True)
            return
        mid = (lo + hi) >> 1
        left, right = node.left, node.right
        if left is None:
            self._write_run(lo, mid, best)
        else:
            self._descend(left, depth + 1, prune_depth, lo, mid, best,
                          memo, depths)
        if right is None:
            self._write_run(mid, hi, best)
        else:
            self._descend(right, depth + 1, prune_depth, mid, hi, best,
                          memo, depths)

    def _write_terminal(self, slot: int, best: int) -> None:
        """One boundary slot resolved to a terminal label."""
        if best > self.max_label:
            self.max_label = best
        self.root_ptr[slot] = TERMINAL
        self.root_val[slot] = best
        self._src.pop(slot, None)
        overlay = self._overlay
        if overlay is not None and overlay.starts:
            if overlay.discard(slot, slot + 1):
                self._ov_views = None
        self.patch_slots_total += 1
        self._journal(slot, slot + 1, best)

    def _write_run(self, lo: int, hi: int, val: int) -> None:
        """A contiguous terminal run (an absent subtree's gap): one
        overlay entry when wide, one slice assignment when narrow."""
        n = hi - lo
        if n <= 0:
            return
        if val > self.max_label:
            self.max_label = val
        if n >= self.overlay_span_min:
            self._overlay_table().set(lo, hi, val)
            self._ov_views = None
        else:
            self.root_ptr[lo:hi] = array("q", [TERMINAL]) * n
            self.root_val[lo:hi] = array("q", [val]) * n
            src = self._src
            if src:
                for slot in [s for s in src if lo <= s < hi]:
                    del src[slot]
            overlay = self._overlay
            if overlay is not None and overlay.starts:
                if overlay.discard(lo, hi):
                    self._ov_views = None
        if n > 1:
            self.patch_spans_total += 1
        self.patch_slots_total += 1
        self._journal(lo, hi, val)

    def _write_block(self, slot: int, node, best: int, memo: dict,
                     depths: dict, *, cacheable: bool) -> None:
        """A boundary slot whose subtree reaches past the stride: emit
        (or skip, when the source cache proves the arrays current) the
        child block."""
        src = self._src
        overlay = self._overlay
        covered = False
        if overlay is not None and overlay.starts:
            covered = overlay.discard(slot, slot + 1)
            if covered:
                self._ov_views = None
        cached = src.get(slot) if cacheable else None
        if cached is not None and cached[0] is node and cached[1] == best:
            # The arrays already encode exactly this (node, best) block:
            # every root write funnels through the patch paths, which
            # keep the cache coherent, so skipping is sound. Uncovering
            # a previously overlaid slot still changed the answer.
            self.patch_skips_total += 1
            if covered:
                self._delta_dirty = True
            return
        if best > self.max_label:
            self.max_label = best
        self.root_ptr[slot] = self.emit_block(
            node, best, self.width - self.root_stride, memo, depths
        )
        self.root_val[slot] = best
        src[slot] = (node, best)
        self.patch_slots_total += 1
        self._delta_dirty = True

    # --------------------------------------------------------------- lookups

    def lookup(self, address: int) -> Optional[int]:
        """Scalar LPM over the program arrays (mirrors the batch walk)."""
        if address < 0 or address >> self.width:
            raise ValueError(f"address {address:#x} outside {self.width}-bit space")
        slot = address >> self.root_shift
        overlay = self._overlay
        if overlay is not None and overlay.starts:
            label = overlay.get(slot)
            if label is not None:
                return label if label else None
        encoded = self.root_ptr[slot]
        if encoded < 0:
            label = self.root_val[slot]
            return label if label else None
        shift = self.root_shift
        cell_ptr = self.cell_ptr
        cell_val = self.cell_val
        while True:
            stride = encoded & STRIDE_MASK
            shift -= stride
            index = (encoded >> STRIDE_BITS) + ((address >> shift) & ((1 << stride) - 1))
            encoded = cell_ptr[index]
            if encoded < 0:
                label = cell_val[index]
                return label if label else None

    def lookup_batch(self, addresses: Sequence[int]) -> List[Optional[int]]:
        """Batched LPM: vectorized gathers when NumPy is available, the
        pointer-free Python loop otherwise."""
        if not len(addresses):
            return []
        if self.vectorized:
            return self._batch_vector(addresses)
        check_addresses(addresses, self.width)
        return self._batch_python(addresses)

    def lookup_batch_packed(self, addresses: Sequence[int]) -> bytes:
        """Batched LPM returning packed int64 labels (0 = no route).

        The wire-format twin of :meth:`lookup_batch` for callers that
        forward label ids instead of boxing them into Python objects —
        the multi-process serving plane's workers. On the vector path
        this skips both the object-table gather and the ``tolist`` box
        loop; the portable path packs the decoded labels.
        """
        if not len(addresses):
            return b""
        if self.vectorized:
            np = _np
            root_ptr, root_val, cell_ptr, cell_val, _ = self._ensure_views()
            batch = self._to_vector(np, addresses)
            labels = self._resolve_vector(np, batch, root_ptr, root_val,
                                          cell_ptr, cell_val)
            return labels.tobytes()
        check_addresses(addresses, self.width)
        return array("q", [label or 0 for label in
                           self._batch_python(addresses)]).tobytes()

    def lookup_batch_packed_into(self, addresses: Sequence[int], out) -> int:
        """Resolve a batch straight into a caller-owned buffer.

        The zero-copy twin of :meth:`lookup_batch_packed` for the
        shared-memory transport: ``out`` is a writable buffer (a ring
        payload slice) of at least ``8 * len(addresses)`` bytes, and the
        int64 labels land in it without an intermediate ``bytes`` object
        ever existing. ``addresses`` may itself be a ring slice — an
        ``memoryview.cast('q')`` of the request payload — so a worker
        serves a batch with no allocation beyond NumPy's gather
        temporaries. Returns the number of bytes written.
        """
        count = len(addresses)
        if not count:
            return 0
        if self.vectorized:
            np = _np
            root_ptr, root_val, cell_ptr, cell_val, _ = self._ensure_views()
            batch = self._to_vector(np, addresses)
            labels = self._resolve_vector(np, batch, root_ptr, root_val,
                                          cell_ptr, cell_val)
            dest = np.frombuffer(out, dtype=np.int64, count=count)
            dest[:] = labels
            return count * 8
        check_addresses(addresses, self.width)
        dest = memoryview(out)[: count * 8].cast("q")
        root_shift = self.root_shift
        root_ptr = self.root_ptr
        root_val = self.root_val
        cell_ptr = self.cell_ptr
        cell_val = self.cell_val
        stride_mask = STRIDE_MASK
        stride_bits = STRIDE_BITS
        overlay = self._overlay
        overlay_get = (
            overlay.get if overlay is not None and overlay.starts else None
        )
        for position, address in enumerate(addresses):
            slot = address >> root_shift
            if overlay_get is not None:
                label = overlay_get(slot)
                if label is not None:
                    dest[position] = label
                    continue
            encoded = root_ptr[slot]
            shift = root_shift
            while encoded >= 0:
                stride = encoded & stride_mask
                shift -= stride
                index = (encoded >> stride_bits) + (
                    (address >> shift) & ((1 << stride) - 1)
                )
                encoded = cell_ptr[index]
            dest[position] = (
                cell_val[index] if shift != root_shift else root_val[slot]
            )
        return count * 8

    def lookup_batch_shared(self, addresses: Sequence[int]) -> List[Optional[int]]:
        """Batched LPM resolving shared-fate addresses together.

        Duplicate addresses resolve once, and addresses landing in the
        same terminal root slot share one probe: on the vector path via
        a sorted dedup (``np.unique`` + inverse gather), on the portable
        path via per-batch slot/address memos. Measured against plain
        :meth:`lookup_batch` this only pays off when a distinct
        resolution costs far more than the sharing bookkeeping — very
        deep programs, extreme duplicate ratios on the Python path, or
        callers whose downstream work is per-distinct-address. The
        vectorized plain path is usually faster because its gathers are
        duplicate-insensitive; benchmark before preferring this walk.
        """
        if not len(addresses):
            return []
        if self.vectorized:
            np = _np
            root_ptr, root_val, cell_ptr, cell_val, decode = self._ensure_views()
            batch = self._to_vector(np, addresses)
            unique, inverse = np.unique(batch, return_inverse=True)
            labels = self._resolve_vector(np, unique, root_ptr, root_val,
                                          cell_ptr, cell_val)
            return decode[labels[inverse]].tolist()
        check_addresses(addresses, self.width)
        return self._batch_python_shared(addresses)

    # ------------------------------------------------------ vectorized plane

    def _to_vector(self, np, addresses: Sequence[int]):
        """Convert and range-check a batch in C (the vector-path twin of
        :func:`~repro.pipeline.batch.check_addresses`).

        Packed batches — ``array('q')`` buffers or int64 ndarrays, the
        wire format of the multi-process serving plane — convert by
        buffer view instead of per-element iteration, so a worker fed
        over a pipe never pays the Python-object conversion loop.
        """
        if isinstance(addresses, array) and addresses.typecode == "q":
            batch = np.frombuffer(addresses, dtype=np.int64)
        elif isinstance(addresses, memoryview):
            # Ring-buffer slices from the shared-memory transport: raw
            # int64 payload, viewed in place — nothing is copied.
            batch = np.frombuffer(addresses, dtype=np.int64)
        elif isinstance(addresses, np.ndarray) and addresses.dtype == np.int64:
            batch = addresses
        else:
            try:
                batch = np.fromiter(
                    addresses, dtype=np.int64, count=len(addresses)
                )
            except OverflowError:
                # Too wide for int64 means out of range for width <= 62.
                raise ValueError(
                    f"address outside {self.width}-bit space"
                ) from None
        return self._check_range(batch)

    def _check_range(self, batch):
        """Range-check an int64 batch against the address width in C."""
        lowest = batch.min()
        if lowest < 0:
            raise ValueError(
                f"address {int(lowest):#x} outside {self.width}-bit space"
            )
        highest = batch.max()
        if int(highest) >> self.width:
            raise ValueError(
                f"address {int(highest):#x} outside {self.width}-bit space"
            )
        return batch

    def _ensure_views(self):
        """Zero-copy NumPy views over the ``array('q')`` storage plus the
        label-decode object table (rebuilt after any patch)."""
        views = self._views
        if views is None:
            np = _np
            root_ptr = np.frombuffer(self.root_ptr, dtype=np.int64)
            root_val = np.frombuffer(self.root_val, dtype=np.int64)
            if len(self.cell_ptr):
                cell_ptr = np.frombuffer(self.cell_ptr, dtype=np.int64)
                cell_val = np.frombuffer(self.cell_val, dtype=np.int64)
            else:
                cell_ptr = np.empty(0, dtype=np.int64)
                cell_val = np.empty(0, dtype=np.int64)
            decode = np.empty(self.max_label + 1, dtype=object)
            decode[0] = None
            for label in range(1, self.max_label + 1):
                decode[label] = label
            views = (root_ptr, root_val, cell_ptr, cell_val, decode)
            self._views = views
        return views

    def _ensure_overlay_views(self):
        """Int64 column vectors over the overlay intervals, for the
        vector walk's searchsorted probe (rebuilt after any change)."""
        views = self._ov_views
        if views is None:
            np = _np
            overlay = self._overlay
            views = (
                np.array(overlay.starts, dtype=np.int64),
                np.array(overlay.ends, dtype=np.int64),
                np.array(overlay.vals, dtype=np.int64),
            )
            self._ov_views = views
        return views

    def _resolve_vector(self, np, batch, root_ptr, root_val, cell_ptr, cell_val):
        """Resolve an int64 address vector to an int64 label vector.

        Gathers level by level over the still-live addresses; once the
        live set shrinks under :data:`_VECTOR_TAIL_CUTOFF` the deep tail
        is finished by the scalar walk (see the cutoff's rationale)."""
        slot = batch >> self.root_shift
        encoded = root_ptr[slot]
        out = root_val[slot]
        overlay = self._overlay
        if overlay is not None and overlay.starts:
            # Delta-overlay fixup: covered slots are terminal answers,
            # applied before the gather walk (encoded/out are fancy-
            # index copies, so in-place writes never touch the image).
            starts, ends, vals = self._ensure_overlay_views()
            idx = np.searchsorted(starts, slot, side="right") - 1
            clamped = np.maximum(idx, 0)
            covered = (idx >= 0) & (slot < ends[clamped])
            if covered.any():
                out[covered] = vals[clamped[covered]]
                encoded[covered] = TERMINAL
        live = np.nonzero(encoded >= 0)[0]
        if live.size:
            enc_live = encoded[live]
            addr = batch[live]
            shift = np.full(live.size, self.root_shift, dtype=np.int64)
            one = np.int64(1)
            while True:
                if live.size <= _VECTOR_TAIL_CUTOFF:
                    self._finish_python(out, live, enc_live, addr, shift)
                    break
                stride = enc_live & STRIDE_MASK
                shift -= stride
                cell = (enc_live >> STRIDE_BITS) + ((addr >> shift) & ((one << stride) - one))
                enc_live = cell_ptr[cell]
                done = enc_live < 0
                if done.all():
                    out[live] = cell_val[cell]
                    break
                out[live[done]] = cell_val[cell[done]]
                alive = ~done
                live = live[alive]
                enc_live = enc_live[alive]
                addr = addr[alive]
                shift = shift[alive]
        return out

    def _finish_python(self, out, live, enc_live, addr, shift) -> None:
        """Resolve the vector walk's remaining live addresses with the
        pointer-free scalar loop, writing labels straight into ``out``."""
        cell_ptr = self.cell_ptr
        cell_val = self.cell_val
        stride_mask = STRIDE_MASK
        stride_bits = STRIDE_BITS
        for position, encoded, address, depth_shift in zip(
            live.tolist(), enc_live.tolist(), addr.tolist(), shift.tolist()
        ):
            while True:
                stride = encoded & stride_mask
                depth_shift -= stride
                index = (encoded >> stride_bits) + (
                    (address >> depth_shift) & ((1 << stride) - 1)
                )
                encoded = cell_ptr[index]
                if encoded < 0:
                    out[position] = cell_val[index]
                    break

    def _batch_vector(self, addresses: Sequence[int]) -> List[Optional[int]]:
        np = _np
        root_ptr, root_val, cell_ptr, cell_val, decode = self._ensure_views()
        batch = self._to_vector(np, addresses)
        labels = self._resolve_vector(np, batch, root_ptr, root_val,
                                      cell_ptr, cell_val)
        return decode[labels].tolist()

    # ----------------------------------------------------- pure-Python plane

    def _batch_python(self, addresses: Sequence[int]) -> List[Optional[int]]:
        """Portable batch walk: integer indexing only, locals hoisted."""
        root_shift = self.root_shift
        root_ptr = self.root_ptr
        root_val = self.root_val
        cell_ptr = self.cell_ptr
        cell_val = self.cell_val
        stride_mask = STRIDE_MASK
        stride_bits = STRIDE_BITS
        overlay = self._overlay
        overlay_get = (
            overlay.get if overlay is not None and overlay.starts else None
        )
        out: List[Optional[int]] = []
        append = out.append
        for address in addresses:
            slot = address >> root_shift
            if overlay_get is not None:
                label = overlay_get(slot)
                if label is not None:
                    append(label if label else None)
                    continue
            encoded = root_ptr[slot]
            if encoded < 0:
                label = root_val[slot]
                append(label if label else None)
                continue
            shift = root_shift
            while True:
                stride = encoded & stride_mask
                shift -= stride
                index = (encoded >> stride_bits) + ((address >> shift) & ((1 << stride) - 1))
                encoded = cell_ptr[index]
                if encoded < 0:
                    label = cell_val[index]
                    append(label if label else None)
                    break
        return out

    def _batch_python_shared(self, addresses: Sequence[int]) -> List[Optional[int]]:
        """Shared-fate walk without a sort: per-batch memos keyed by
        terminal root slot (every address under it forwards alike) and
        by full address (for deep regions), so each distinct fate walks
        once. A Python sort of the batch costs more than the walk it
        would save — measured — hence dictionaries, not ordering."""
        root_shift = self.root_shift
        root_ptr = self.root_ptr
        root_val = self.root_val
        cell_ptr = self.cell_ptr
        cell_val = self.cell_val
        stride_mask = STRIDE_MASK
        stride_bits = STRIDE_BITS
        slot_memo: dict = {}
        addr_memo: dict = {}
        slot_get = slot_memo.get
        addr_get = addr_memo.get
        missing = TERMINAL  # never a valid label object
        out: List[Optional[int]] = []
        append = out.append
        overlay = self._overlay
        overlay_get = (
            overlay.get if overlay is not None and overlay.starts else None
        )
        for address in addresses:
            slot = address >> root_shift
            label = slot_get(slot, missing)
            if label is not missing:
                append(label)
                continue
            if overlay_get is not None:
                value = overlay_get(slot)
                if value is not None:
                    label = value if value else None
                    slot_memo[slot] = label
                    append(label)
                    continue
            encoded = root_ptr[slot]
            if encoded < 0:
                value = root_val[slot]
                label = value if value else None
                slot_memo[slot] = label
                append(label)
                continue
            label = addr_get(address, missing)
            if label is missing:
                shift = root_shift
                while True:
                    stride = encoded & stride_mask
                    shift -= stride
                    index = (encoded >> stride_bits) + (
                        (address >> shift) & ((1 << stride) - 1)
                    )
                    encoded = cell_ptr[index]
                    if encoded < 0:
                        value = cell_val[index]
                        label = value if value else None
                        break
                addr_memo[address] = label
            append(label)
        return out

    # ------------------------------------------------------------ simulation

    @property
    def cells_base(self) -> int:
        """Byte offset of the cell arrays in the modeled image layout
        (root entries first, 16 bytes per ptr+val pair)."""
        return len(self.root_ptr) * 16

    def lookup_trace(self, address: int) -> Tuple[Optional[int], List[int]]:
        """LPM plus the byte addresses touched, for the cache simulator:
        one 16-byte entry (ptr+val pair) per level visited."""
        if address < 0 or address >> self.width:
            raise ValueError(f"address {address:#x} outside {self.width}-bit space")
        slot = address >> self.root_shift
        trace = [slot * 16]
        overlay = self._overlay
        if overlay is not None and overlay.starts:
            label = overlay.get(slot)
            if label is not None:
                # One side-table touch; modeled as the root entry's line.
                return (label if label else None), trace
        encoded = self.root_ptr[slot]
        if encoded < 0:
            label = self.root_val[slot]
            return (label if label else None), trace
        shift = self.root_shift
        cells_base = self.cells_base
        while True:
            stride = encoded & STRIDE_MASK
            shift -= stride
            index = (encoded >> STRIDE_BITS) + ((address >> shift) & ((1 << stride) - 1))
            trace.append(cells_base + index * 16)
            encoded = self.cell_ptr[index]
            if encoded < 0:
                label = self.cell_val[index]
                return (label if label else None), trace


def _depth_below(node, memo: dict) -> int:
    """Height of the sub-structure under a binary ``node`` (levels to the
    deepest descendant), memoized by id so folded DAG regions cost one
    visit per shared sub-trie."""
    cached = memo.get(id(node))
    if cached is None:
        left, right = node.left, node.right
        cached = 0
        if left is not None:
            cached = 1 + _depth_below(left, memo)
        if right is not None:
            cached = max(cached, 1 + _depth_below(right, memo))
        memo[id(node)] = cached
    return cached


def compile_binary(
    root,
    width: int,
    root_stride: int,
    sub_stride: int = DEFAULT_SUB_STRIDE,
    max_cells: int = DEFAULT_MAX_CELLS,
) -> FlatProgram:
    """Compile any binary-node structure (``left``/``right``/``label``)
    into a :class:`FlatProgram`.

    Works for trie nodes, prefix-DAG nodes (folding preserves the walk,
    Lemma 5) and the ORTC output trie (whose blackhole label ``0``
    coincides with the program's no-route encoding). The requested root
    stride is clamped to the structure's height, so shallow or
    degenerate FIBs get proportionally small tables.
    """
    depths: dict = {}
    height = _depth_below(root, depths)
    effective = max(1, min(root_stride, width, max(height, 1)))
    program = FlatProgram(width, effective, sub_stride, max_cells)
    memo: dict = {}
    program._fill(program.root_ptr, program.root_val, 0, root, 0, effective,
                  0, NO_ROUTE, width - effective, memo, depths)
    return program.seal()


def compile_multibit(dag, max_cells: int = DEFAULT_MAX_CELLS) -> FlatProgram:
    """Compile a :class:`~repro.core.multibit.MultibitDag` by direct
    block transcription: every interior node already is a ``2^s``-fanout
    table with fully expanded labels, so each folded node becomes one
    block (shared nodes intern to shared blocks, preserving the DAG's
    economy in the compiled image)."""
    width = dag.width
    stride = dag.stride
    root = dag.root
    if root.is_leaf:
        program = FlatProgram(width, 1, min(stride, STRIDE_MASK), max_cells)
        label = root.label if root.label is not None else NO_ROUTE
        program.root_val[0] = label
        program.root_val[1] = label
        program.max_label = label
        return program.seal()
    if stride > MAX_ROOT_STRIDE:
        raise FlatCompileError(
            f"multibit stride {stride} exceeds the 2^{MAX_ROOT_STRIDE} root table cap"
        )
    program = FlatProgram(width, stride, min(stride, STRIDE_MASK), max_cells)
    cell_ptr = program.cell_ptr
    cell_val = program.cell_val
    memo: dict = {}

    def emit(node, remaining: int) -> int:
        key = (id(node), remaining)
        cached = memo.get(key)
        if cached is not None:
            return cached
        node_stride = min(stride, remaining)
        fan = 1 << node_stride
        base = len(cell_ptr)
        if base + fan > max_cells:
            raise FlatCompileError(
                f"flat program exceeds {max_cells} cells; "
                "serve this representation through the dispatch engine"
            )
        cell_ptr.extend([TERMINAL] * fan)
        cell_val.extend([NO_ROUTE] * fan)
        for combo, child in enumerate(node.children):
            if child.is_leaf:
                if child.label is not None:
                    cell_val[base + combo] = child.label
                    if child.label > program.max_label:
                        program.max_label = child.label
            else:
                cell_ptr[base + combo] = emit(child, remaining - node_stride)
        encoded = (base << STRIDE_BITS) | node_stride
        memo[key] = encoded
        return encoded

    remaining = width - stride
    for combo, child in enumerate(root.children):
        if child.is_leaf:
            if child.label is not None:
                program.root_val[combo] = child.label
                if child.label > program.max_label:
                    program.max_label = child.label
        else:
            program.root_ptr[combo] = emit(child, remaining)
    return program.seal()
