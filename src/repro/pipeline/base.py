"""The common compressed-FIB interface every representation adapts to.

The paper compares many FIB representations — tabular, Patricia,
LC-trie, ORTC, shape graphs, XBW-b, prefix DAGs, multibit DAGs and the
serialized kernel image — but each grew its own ad-hoc API in the seed
codebase. :class:`CompressedFib` is the one protocol they all share now:

* ``name`` — the registry key of the representation;
* ``build``-time construction from a tabular :class:`~repro.core.fib.Fib`
  (done by the registry's :func:`~repro.pipeline.registry.build`);
* ``lookup`` / ``lookup_batch`` — longest-prefix match, scalar and
  batched (the batch path amortizes dispatch through a shared stride
  table, see :mod:`repro.pipeline.batch`);
* ``size_bits`` — the paper's analytic memory model for the structure;
* optional ``apply_update`` (incremental updates, §4.3) and
  ``lookup_trace`` (byte-address streams for the cache simulator).

Every analysis, simulator, CLI and benchmark layer talks to FIB
representations through this protocol and the registry, so a new
backend plugs into all of them with one decorated adapter class.
"""

from __future__ import annotations

from typing import List, Optional, Protocol, Sequence, Tuple, runtime_checkable


@runtime_checkable
class CompressedFib(Protocol):
    """Structural protocol of one built FIB representation."""

    name: str

    def lookup(self, address: int) -> Optional[int]:
        """Longest-prefix match for one address (None = no route)."""
        ...

    def lookup_batch(self, addresses: Sequence[int]) -> List[Optional[int]]:
        """Longest-prefix match for a whole trace, label per address."""
        ...

    def size_bits(self) -> int:
        """Size of the representation under the paper's memory model."""
        ...


@runtime_checkable
class UpdatableFib(Protocol):
    """Optional extension: incremental route updates (§4.3)."""

    def apply_update(self, op) -> None:
        """Apply one :class:`~repro.datasets.updates.UpdateOp`."""
        ...


@runtime_checkable
class TraceableFib(Protocol):
    """Optional extension: byte-address traces for the cache simulator."""

    def lookup_trace(self, address: int) -> Tuple[Optional[int], List[int]]:
        """LPM plus the byte addresses touched during the lookup."""
        ...


def supports_updates(representation) -> bool:
    """True when the representation implements ``apply_update``."""
    return callable(getattr(representation, "apply_update", None))


def supports_trace(representation) -> bool:
    """True when the representation implements ``lookup_trace``."""
    return callable(getattr(representation, "lookup_trace", None))


def supports_flat(representation) -> bool:
    """True when the representation exposes the compiled flat plane
    (``flat_plane``; the call may still return None when compilation is
    disabled or was refused for this instance)."""
    return callable(getattr(representation, "flat_plane", None))


def flat_program(representation):
    """The representation's compiled program, or None (no capability,
    compilation disabled, or the compiler refused the input)."""
    plane = getattr(representation, "flat_plane", None)
    return plane() if callable(plane) else None
