"""Cross-representation parity: every backend vs. the tabular oracle.

``repro-fib compare`` (and the parity test suite) runs every registered
representation over the same address trace and checks that scalar
``lookup`` and batched ``lookup_batch`` both return exactly the labels
the tabular oracle returns — compression must be forwarding-equivalent,
bit for bit (Lemma 5's "no space/time trade-off" claim, generalized to
every representation in the registry). Since the compiled flat plane
became the default ``lookup_batch`` backend, a sample also goes through
``lookup_batch_dispatch`` (the PR 1 engine, still reachable when
compilation is disabled or refused) so the fallback cannot rot unseen.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.core.fib import Fib
from repro.pipeline import registry


@dataclass
class Mismatch:
    """One disagreement with the oracle."""

    address: int
    expected: Optional[int]
    got: Optional[int]
    path: str  # "lookup" or "lookup_batch"


@dataclass
class CompareRow:
    """Parity result of one representation over one trace."""

    name: str
    title: str
    size_kb: float
    build_seconds: float
    checked: int
    mismatch_count: int
    mismatches: List[Mismatch]  # stored examples, capped; count is exact

    @property
    def parity(self) -> float:
        """Fraction of checks agreeing with the oracle (1.0 = perfect)."""
        if not self.checked:
            return 1.0
        return 1.0 - self.mismatch_count / self.checked

    @property
    def ok(self) -> bool:
        return not self.mismatch_count


def compare_representations(
    fib: Fib,
    addresses: Sequence[int],
    only: Optional[List[str]] = None,
    overrides: Optional[Dict[str, Dict[str, Any]]] = None,
    scalar_sample: int = 200,
    mismatch_cap: int = 20,
) -> List[CompareRow]:
    """Build each registered representation and check label parity.

    The full trace goes through ``lookup_batch``; the first
    ``scalar_sample`` addresses additionally go through scalar
    ``lookup`` so a batch fast path cannot mask a scalar bug (or vice
    versa). Every disagreement counts toward ``mismatch_count`` (and
    the parity fraction); at most ``mismatch_cap`` example
    :class:`Mismatch` records are stored per representation to keep
    reports readable.
    """
    oracle = [fib.lookup(address) for address in addresses]
    rows: List[CompareRow] = []
    names = only if only is not None else registry.names()
    overrides = overrides or {}
    for name in names:
        spec = registry.get(name)
        started = time.perf_counter()
        representation = registry.build(name, fib, **overrides.get(name, {}))
        build_seconds = time.perf_counter() - started
        mismatches: List[Mismatch] = []
        mismatch_count = 0
        checked = 0

        batched = list(representation.lookup_batch(addresses))
        checked += len(addresses)
        if len(batched) != len(addresses):
            # A wrong-length batch is wholesale breakage, not a zip-short
            # pass: every address counts as disagreeing.
            mismatch_count += len(addresses)
            mismatches.append(
                Mismatch(
                    address=addresses[0] if addresses else 0,
                    expected=None,
                    got=None,
                    path=f"lookup_batch returned {len(batched)} labels "
                    f"for {len(addresses)} addresses",
                )
            )
        else:
            for address, want, got in zip(addresses, oracle, batched):
                if got != want:
                    mismatch_count += 1
                    if len(mismatches) < mismatch_cap:
                        mismatches.append(Mismatch(address, want, got, "lookup_batch"))
        for address, want in zip(addresses[:scalar_sample], oracle[:scalar_sample]):
            checked += 1
            got = representation.lookup(address)
            if got != want:
                mismatch_count += 1
                if len(mismatches) < mismatch_cap:
                    mismatches.append(Mismatch(address, want, got, "lookup"))
        dispatch_fn = getattr(representation, "lookup_batch_dispatch", None)
        if callable(dispatch_fn) and addresses:
            sample = list(addresses[:scalar_sample])
            for address, want, got in zip(sample, oracle, dispatch_fn(sample)):
                checked += 1
                if got != want:
                    mismatch_count += 1
                    if len(mismatches) < mismatch_cap:
                        mismatches.append(
                            Mismatch(address, want, got, "lookup_batch_dispatch")
                        )

        rows.append(
            CompareRow(
                name=name,
                title=spec.title,
                size_kb=representation.size_kbytes(),
                build_seconds=build_seconds,
                checked=checked,
                mismatch_count=mismatch_count,
                mismatches=mismatches,
            )
        )
    return rows


def assert_parity(rows: Sequence[CompareRow]) -> None:
    """Raise AssertionError describing every imperfect row."""
    bad = [row for row in rows if not row.ok]
    if not bad:
        return
    lines = []
    for row in bad:
        worst = row.mismatches[0]
        lines.append(
            f"{row.name}: {row.mismatch_count}/{row.checked} mismatches, e.g. "
            f"{worst.path}({worst.address:#x}) = {worst.got!r}, "
            f"oracle says {worst.expected!r}"
        )
    raise AssertionError("representation parity broken:\n" + "\n".join(lines))
