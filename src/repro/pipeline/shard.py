"""Shard-restricted FIBs: compiling a subrange of the address space.

A sharded deployment (:mod:`repro.serve.cluster`) partitions the
``width``-bit address space into contiguous half-open ranges
``[lo, hi)`` and gives each worker only the routes it needs. The
restriction rule is interval intersection: a prefix ``p/l`` covers the
address interval ``[p << (W-l), (p+1) << (W-l))``, and a shard serving
``[lo, hi)`` must hold every route whose interval intersects its range
— for any address the shard owns, the set of matching prefixes is then
exactly the set the full FIB would match, so longest-prefix-match
answers are *identical* to the unsharded table (the per-shard analogue
of the paper's Lemma 5 forwarding equivalence).

Prefixes whose interval crosses a shard boundary — short prefixes, and
in the limit the default route, which spans the whole space — intersect
more than one range and therefore **replicate** into every covering
shard. This is the state-duplication price of range partitioning;
:func:`boundary_routes` measures it, and because boundaries are always
cut on coarse slot alignments the replicated set is small (only routes
*shorter* than the cut granularity can cross a cut).

The composition ``registry.build(name, restrict_fib(fib, lo, hi))`` is
the shard-restricted compile: the restricted FIB flows through the
ordinary registry build and then the flat-plane compiler
(:mod:`repro.pipeline.flat`), which clamps its root table to the
restricted structure's height — a shard covering 1/N of the space
materializes roughly 1/N of the program cells.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.core.fib import Fib, Route

#: Default cut granularity: candidate shard boundaries are aligned to
#: ``2^(width - DEFAULT_GRANULARITY_BITS)``-address slots (a /12 on the
#: 32-bit space). Re-planning under skew may cut finer; both knobs are
#: clamped to the FIB width so narrow/wide address spaces stay valid —
#: this is what un-hard-codes the historical "/12" constant.
DEFAULT_GRANULARITY_BITS = 12

#: Granularity ceiling: finer cuts than this explode the weight vector
#: (``2^bits`` slots) for no balancing gain at the profiled scales.
MAX_GRANULARITY_BITS = 16


def granularity_bits(
    width: int, granularity: "int | None" = None, shards: int = 1
) -> int:
    """Resolve a cut granularity for a ``width``-bit plan.

    At least ``ceil(log2(shards))`` bits are needed so every shard can
    receive a distinct slot; the result is clamped to
    [needed, :data:`MAX_GRANULARITY_BITS`] and never exceeds ``width``.
    """
    needed = max(1, (shards - 1).bit_length())
    bits = max(granularity if granularity is not None else DEFAULT_GRANULARITY_BITS, needed)
    if granularity is not None and not needed <= granularity <= MAX_GRANULARITY_BITS:
        raise ValueError(
            f"granularity {granularity} outside [{needed}, {MAX_GRANULARITY_BITS}]"
        )
    return min(bits, width)


def prefix_span(prefix: int, length: int, width: int) -> Tuple[int, int]:
    """Half-open address interval ``[lo, hi)`` covered by ``prefix/length``."""
    if length < 0 or length > width:
        raise ValueError(f"prefix length {length} outside [0, {width}]")
    lo = prefix << (width - length)
    return lo, lo + (1 << (width - length))


def restrict_fib(
    fib: Fib, lo: int, hi: int, extra: Sequence[Tuple[int, int]] = ()
) -> Fib:
    """The sub-FIB answering exactly like ``fib`` on addresses in ``[lo, hi)``.

    Keeps every route whose address interval intersects the range (so
    boundary-spanning prefixes are kept by every range they touch) and
    carries the neighbor-table rows of the surviving labels. ``extra``
    names additional half-open ranges the shard must also answer for —
    the replication hook of hot-range spraying: a sprayed shard serves
    its contiguous slice *plus* every hot range, so the restricted FIB
    is the union intersection.
    """
    width = fib.width
    ranges = [(lo, hi), *extra]
    for range_lo, range_hi in ranges:
        if not 0 <= range_lo < range_hi <= (1 << width):
            raise ValueError(
                f"shard range [{range_lo:#x}, {range_hi:#x}) outside "
                f"the {width}-bit space"
            )
    restricted = Fib(width)
    for route in fib:
        span_lo, span_hi = prefix_span(route.prefix, route.length, width)
        if any(span_lo < r_hi and r_lo < span_hi for r_lo, r_hi in ranges):
            restricted.add(route.prefix, route.length, route.label)
    for label in restricted.labels:
        neighbor = fib.neighbor(label)
        if neighbor is not None:
            restricted.set_neighbor(neighbor)
    return restricted


@dataclass(frozen=True)
class ShardSpec:
    """One shard's build recipe: its range and its restricted sub-FIB.

    This is the unit a deployment ships to a worker — everything in it
    is plain data (ints and a :class:`~repro.core.fib.Fib` of dicts), so
    a spec pickles cheaply across a process boundary and the receiving
    worker rebuilds its representation and compiled program locally
    (shared-nothing: no live structure ever crosses the pipe).
    """

    index: int
    lo: int
    hi: int
    fib: Fib
    hot: Tuple[Tuple[int, int], ...] = field(default=())

    @property
    def routes(self) -> int:
        """Build-time route count of the restricted sub-FIB."""
        return len(self.fib)


def shard_specs(
    fib: Fib,
    bounds: Sequence[int],
    replicate: Sequence[Tuple[int, int]] = (),
) -> List[ShardSpec]:
    """One :class:`ShardSpec` per contiguous range of an ascending cut
    list (the spec form of :func:`shard_fibs`). A range covering the
    whole space gets a plain copy — the full-state replica of hash
    partitioning and of the 1-shard degenerate plan. ``replicate``
    ranges (hot, sprayed ranges) land in *every* spec, so any shard can
    answer for a sprayed address."""
    _check_bounds(fib.width, bounds)
    specs: List[ShardSpec] = []
    full = (0, 1 << fib.width)
    hot = tuple((int(lo), int(hi)) for lo, hi in replicate)
    for index in range(len(bounds) - 1):
        lo, hi = bounds[index], bounds[index + 1]
        restricted = (
            fib.copy()
            if (lo, hi) == full
            else restrict_fib(fib, lo, hi, extra=hot)
        )
        specs.append(ShardSpec(index, lo, hi, restricted, hot=hot))
    return specs


def shard_fibs(fib: Fib, bounds: Sequence[int]) -> List[Fib]:
    """One restricted FIB per contiguous range of an ascending cut list.

    ``bounds`` has one more entry than there are shards, starts at 0 and
    ends at ``2^width``; shard ``i`` serves ``[bounds[i], bounds[i+1])``.
    """
    return [spec.fib for spec in shard_specs(fib, bounds)]


def boundary_routes(fib: Fib, bounds: Sequence[int]) -> List[Route]:
    """Routes whose interval crosses an interior cut of ``bounds``.

    These are exactly the routes :func:`shard_fibs` replicates into more
    than one shard — the state-duplication cost of the partition.
    """
    _check_bounds(fib.width, bounds)
    interior = list(bounds[1:-1])
    crossing: List[Route] = []
    for route in fib:
        span_lo, span_hi = prefix_span(route.prefix, route.length, fib.width)
        # The first cut strictly above the interval's start: the route
        # crosses a boundary iff that cut falls inside the interval.
        position = bisect_right(interior, span_lo)
        if position < len(interior) and interior[position] < span_hi:
            crossing.append(route)
    return crossing


def _check_bounds(width: int, bounds: Sequence[int]) -> None:
    if len(bounds) < 2 or bounds[0] != 0 or bounds[-1] != (1 << width):
        raise ValueError(
            f"shard bounds must run from 0 to 2^{width}, got {list(bounds)!r}"
        )
    if any(bounds[i] >= bounds[i + 1] for i in range(len(bounds) - 1)):
        raise ValueError(f"shard bounds must be strictly ascending: {list(bounds)!r}")
