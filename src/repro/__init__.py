"""repro — entropy-bounded IP forwarding table compression.

A from-scratch Python reproduction of

    G. Rétvári, J. Tapolcai, A. Kőrösi, A. Majdán, Z. Heszberger:
    "Compressing IP Forwarding Tables: Towards Entropy Bounds and
    Beyond", ACM SIGCOMM 2013 (revised technical report constants).

Public API highlights
---------------------
>>> from repro import Fib, PrefixDag, XBWb
>>> fib = Fib()
>>> fib.add(0b0, 1, 3)       # 0.0.0.0/1    -> next-hop 3
>>> fib.add(0b001, 3, 2)     # 32.0.0.0/3   -> next-hop 2
>>> fib.add(0b011, 3, 1)     # 96.0.0.0/3   -> next-hop 1
>>> dag = PrefixDag(fib, barrier=2)
>>> dag.lookup(0x20000000)
2
>>> xbw = XBWb.from_fib(fib)
>>> xbw.lookup(0x20000000)
2
"""

from repro.core import (
    INVALID_LABEL,
    BinaryTrie,
    EntropyReport,
    Fib,
    FoldedString,
    Neighbor,
    PrefixDag,
    Route,
    SerializedDag,
    XBWb,
    compression_efficiency,
    entropy_barrier,
    fib_entropy,
    info_theoretic_barrier,
    leaf_pushed_trie,
    shannon_entropy,
    trie_entropy,
)

__version__ = "1.0.0"

__all__ = [
    "INVALID_LABEL",
    "BinaryTrie",
    "EntropyReport",
    "Fib",
    "FoldedString",
    "Neighbor",
    "PrefixDag",
    "Route",
    "SerializedDag",
    "XBWb",
    "compression_efficiency",
    "entropy_barrier",
    "fib_entropy",
    "info_theoretic_barrier",
    "leaf_pushed_trie",
    "shannon_entropy",
    "trie_entropy",
    "__version__",
]
