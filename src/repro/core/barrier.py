"""Leaf-push barrier selection (equations (2) and (3) of the paper).

The barrier λ balances compression against update cost: everything above
λ stays an ordinary trie (cheap updates, no sharing), everything below is
leaf-pushed and folded (shared, entropy-sized). The paper proves that

* ``λ = floor( W(n·ln δ) / ln 2 )``  — equation (2) — yields the
  information-theoretic 4·lg(δ)·n-bit bound (Theorem 1), and
* ``λ = floor( W(n·H0·ln 2) / ln 2 )`` — equation (3) — yields the
  zero-order entropy bound (Theorem 2) *and* the near-optimal
  ``O(W(1 + 1/H0))`` update time (Theorem 3),

where ``W()`` is the Lambert W-function. Equation (3) reduces to (2) at
maximum entropy ``H0 = lg δ``.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.utils.bits import IPV4_WIDTH
from repro.utils.lambertw import lambert_w_floor_div_ln2


def info_theoretic_barrier(n: int, delta: int, width: int = IPV4_WIDTH) -> int:
    """Equation (2): ``λ = floor(W(n ln δ) / ln 2)``, clamped to [0, width]."""
    if n < 0:
        raise ValueError(f"negative string length {n}")
    if delta < 1:
        raise ValueError(f"alphabet size {delta} must be >= 1")
    if n == 0 or delta == 1:
        return 0
    barrier = lambert_w_floor_div_ln2(n * math.log(delta))
    return max(0, min(width, barrier))


def entropy_barrier(n: int, h0: float, width: int = IPV4_WIDTH) -> int:
    """Equation (3): ``λ = floor(W(n H0 ln 2) / ln 2)``, clamped to [0, width]."""
    if n < 0:
        raise ValueError(f"negative leaf count {n}")
    if h0 < 0:
        raise ValueError(f"negative entropy {h0}")
    if n == 0 or h0 == 0.0:
        return 0
    barrier = lambert_w_floor_div_ln2(n * h0 * math.log(2.0))
    return max(0, min(width, barrier))


def barrier_sweep(width: int = IPV4_WIDTH, step: int = 1) -> Iterable[int]:
    """All barrier settings 0..width (the x-axis of Fig 5)."""
    return range(0, width + 1, step)


def update_bound_nodes(width: int, barrier: int) -> int:
    """Theorem 3's node budget for one update: ``W + 2^(W - λ)`` is the
    worst case for entries at or below the barrier; shorter entries touch
    at most W nodes."""
    return width + (1 << (width - barrier))
