"""Serialized prefix-DAG image — the "kernel blob" of §5.3.

The paper's prototype hands the forwarding plane a flat, pointerless
image of the prefix DAG in which the first λ trie levels are collapsed
into a 2^λ-entry stride table ("we used the standard trick to collapse
the first λ = 11 levels of the prefix DAGs in the serialized format
[61], as this greatly eases implementation and improves lookup time").

The image is four integer arrays:

* ``table_ref`` / ``table_label`` — per λ-bit address prefix, a tagged
  reference into the folded region (or null) and the best matching label
  accumulated above the barrier;
* ``left`` / ``right`` — child references of folded interior nodes;
* ``leaf_label`` — the coalesced leaves' labels (0 = ∅).

References pack a leaf/interior tag in the low bit. Lookup is a handful
of list indexing operations — this is the representation both the
wall-clock kbench and the cache simulator exercise.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.prefixdag import DagNode, PrefixDag
from repro.utils.bits import bits_for

NULL_REF = -1


def _encode_interior(index: int) -> int:
    return index << 1


def _encode_leaf(index: int) -> int:
    return (index << 1) | 1


class SerializedDag:
    """Flat-array image of a :class:`PrefixDag` with λ-level collapse."""

    MAX_TABLE_BARRIER = 24
    """Largest λ the stride table will materialize (2^24 entries)."""

    def __init__(self, dag: PrefixDag):
        if dag.barrier > self.MAX_TABLE_BARRIER:
            raise ValueError(
                f"barrier {dag.barrier} would need a 2^{dag.barrier}-entry "
                f"stride table; serialize DAGs with barrier <= "
                f"{self.MAX_TABLE_BARRIER}"
            )
        self._width = dag.width
        self._barrier = dag.barrier
        self._build(dag)

    # ---------------------------------------------------------------- build

    def _build(self, dag: PrefixDag) -> None:
        interior_index: Dict[int, int] = {}
        leaf_index: Dict[int, int] = {}
        self.left: List[int] = []
        self.right: List[int] = []
        self.leaf_label: List[int] = []

        def intern_ref(node: DagNode) -> int:
            if node.is_leaf:
                key = id(node)
                if key not in leaf_index:
                    leaf_index[key] = len(self.leaf_label)
                    self.leaf_label.append(node.label if node.label is not None else 0)
                return _encode_leaf(leaf_index[key])
            key = id(node)
            if key in interior_index:
                return _encode_interior(interior_index[key])
            index = len(self.left)
            interior_index[key] = index
            self.left.append(NULL_REF)
            self.right.append(NULL_REF)
            self.left[index] = intern_ref(node.left)
            self.right[index] = intern_ref(node.right)
            return _encode_interior(index)

        size = 1 << self._barrier
        self.table_ref: List[int] = [NULL_REF] * size
        self.table_label: List[int] = [0] * size
        for value in range(size):
            node, best = self._walk_above(dag, value)
            self.table_label[value] = best
            self.table_ref[value] = intern_ref(node) if node is not None else NULL_REF

    @staticmethod
    def _walk_above(dag: PrefixDag, value: int) -> Tuple[Optional[DagNode], int]:
        """Walk the above-barrier region along the λ bits of ``value``;
        return the folded node reached (or None) and the best label seen."""
        barrier = dag.barrier
        node = dag.root
        best = node.label if node.label is not None else 0
        if barrier == 0:
            return node, 0
        for position in range(barrier):
            bit = (value >> (barrier - 1 - position)) & 1
            node = node.child(bit)
            if node is None:
                return None, best
            if node.label is not None:
                best = node.label
        return node, best

    # ---------------------------------------------------------------- lookup

    def lookup(self, address: int) -> Optional[int]:
        """Longest-prefix match on the flat image."""
        shift = self._width - self._barrier
        slot = address >> shift if shift else address & ((1 << self._barrier) - 1)
        if self._barrier == 0:
            slot = 0
        ref = self.table_ref[slot]
        best = self.table_label[slot]
        if ref == NULL_REF:
            return best if best else None
        position = shift - 1
        while not (ref & 1):
            index = ref >> 1
            if (address >> position) & 1:
                ref = self.right[index]
            else:
                ref = self.left[index]
            position -= 1
        label = self.leaf_label[ref >> 1]
        result = label if label else best
        return result if result else None

    def lookup_trace(self, address: int) -> Tuple[Optional[int], List[int]]:
        """LPM plus the byte addresses touched, for the cache simulator.

        The layout places the stride table first, then the interior node
        array, then the leaf label array (see :meth:`layout`).
        """
        trace: List[int] = []
        shift = self._width - self._barrier
        slot = address >> shift if shift else 0
        if self._barrier == 0:
            slot = 0
        trace.append(self.table_base + slot * self.table_entry_bytes)
        ref = self.table_ref[slot]
        best = self.table_label[slot]
        if ref == NULL_REF:
            return (best if best else None), trace
        position = shift - 1
        while not (ref & 1):
            index = ref >> 1
            trace.append(self.node_base + index * self.node_entry_bytes)
            if (address >> position) & 1:
                ref = self.right[index]
            else:
                ref = self.left[index]
            position -= 1
        leaf = ref >> 1
        trace.append(self.leaf_base + leaf * self.leaf_entry_bytes)
        label = self.leaf_label[leaf]
        result = label if label else best
        return (result if result else None), trace

    def depth_profile(self) -> Tuple[float, int]:
        """(expected, maximum) nodes visited below the stride table for a
        uniform random address — Table 2's "average/maximum depth".

        Exact: node-visit counts are path-independent on the folded
        region, so a memoized recursion over tagged references suffices
        (leaves count as one visit; empty table slots as zero).
        """
        expected_memo: Dict[int, float] = {}
        max_memo: Dict[int, int] = {}

        def expected(ref: int) -> float:
            if ref & 1:
                return 1.0
            cached = expected_memo.get(ref)
            if cached is None:
                index = ref >> 1
                cached = 1.0 + (expected(self.left[index]) + expected(self.right[index])) / 2.0
                expected_memo[ref] = cached
            return cached

        def deepest(ref: int) -> int:
            if ref & 1:
                return 1
            cached = max_memo.get(ref)
            if cached is None:
                index = ref >> 1
                cached = 1 + max(deepest(self.left[index]), deepest(self.right[index]))
                max_memo[ref] = cached
            return cached

        slots = len(self.table_ref)
        total = 0.0
        maximum = 0
        for ref in self.table_ref:
            if ref == NULL_REF:
                continue
            total += expected(ref)
            maximum = max(maximum, deepest(ref))
        return total / slots, maximum

    # -------------------------------------------------------------- integrity

    def validate(self) -> None:
        """Structural validation of the image; raises ValueError on
        corruption.

        The forwarding plane treats the blob as trusted input, so the
        control plane validates it after (re)generation and after any
        download: reference ranges, array shapes, absence of cycles in
        the interior graph, and label sanity are all checked. The
        failure-injection tests corrupt each field and expect this to
        fire.
        """
        size = 1 << self._barrier
        if len(self.table_ref) != size or len(self.table_label) != size:
            raise ValueError(
                f"stride table has {len(self.table_ref)}/{len(self.table_label)} "
                f"entries, expected {size}"
            )
        if len(self.left) != len(self.right):
            raise ValueError(
                f"child arrays disagree: {len(self.left)} lefts, {len(self.right)} rights"
            )

        def check_ref(ref: int, where: str) -> None:
            if ref == NULL_REF:
                return
            if ref < 0:
                raise ValueError(f"{where}: negative reference {ref}")
            index = ref >> 1
            if ref & 1:
                if index >= self.leaf_count:
                    raise ValueError(f"{where}: leaf reference {index} out of range")
            elif index >= self.interior_count:
                raise ValueError(f"{where}: interior reference {index} out of range")

        for slot, ref in enumerate(self.table_ref):
            check_ref(ref, f"table[{slot}]")
        for index in range(self.interior_count):
            if self.left[index] == NULL_REF or self.right[index] == NULL_REF:
                raise ValueError(f"interior node {index} has a null child")
            check_ref(self.left[index], f"left[{index}]")
            check_ref(self.right[index], f"right[{index}]")
        for slot, label in enumerate(self.table_label):
            if label < 0:
                raise ValueError(f"table label[{slot}] negative: {label}")
        for index, label in enumerate(self.leaf_label):
            if label < 0:
                raise ValueError(f"leaf label[{index}] negative: {label}")
        # The interior graph must be acyclic (it is a DAG by construction):
        # iterative three-color DFS over interior indices.
        state = [0] * self.interior_count  # 0 new, 1 open, 2 done
        for root in range(self.interior_count):
            if state[root]:
                continue
            stack = [(root, False)]
            while stack:
                node, leaving = stack.pop()
                if leaving:
                    state[node] = 2
                    continue
                if state[node] == 1:
                    raise ValueError(f"cycle through interior node {node}")
                if state[node] == 2:
                    continue
                state[node] = 1
                stack.append((node, True))
                for ref in (self.left[node], self.right[node]):
                    if not (ref & 1):
                        child = ref >> 1
                        if state[child] == 1:
                            raise ValueError(f"cycle through interior node {child}")
                        if state[child] == 0:
                            stack.append((child, False))

    # ------------------------------------------------------------------ size

    @property
    def barrier(self) -> int:
        return self._barrier

    @property
    def width(self) -> int:
        return self._width

    @property
    def interior_count(self) -> int:
        return len(self.left)

    @property
    def leaf_count(self) -> int:
        return len(self.leaf_label)

    @property
    def ref_bits(self) -> int:
        """Width of one tagged child reference."""
        return 1 + bits_for(max(self.interior_count, self.leaf_count, 1))

    @property
    def label_bits(self) -> int:
        distinct = max(self.leaf_label, default=0)
        return max(1, bits_for(distinct + 1))

    @property
    def table_entry_bytes(self) -> int:
        return max(1, (self.ref_bits + self.label_bits + 7) // 8)

    @property
    def node_entry_bytes(self) -> int:
        return max(1, (2 * self.ref_bits + 7) // 8)

    @property
    def leaf_entry_bytes(self) -> int:
        return max(1, (self.label_bits + 7) // 8)

    @property
    def table_base(self) -> int:
        return 0

    @property
    def node_base(self) -> int:
        return len(self.table_ref) * self.table_entry_bytes

    @property
    def leaf_base(self) -> int:
        return self.node_base + self.interior_count * self.node_entry_bytes

    def size_in_bytes(self) -> int:
        """Total image size: stride table + interior nodes + leaf labels."""
        return self.leaf_base + self.leaf_count * self.leaf_entry_bytes

    def size_in_bits(self) -> int:
        return self.size_in_bytes() * 8

    def size_in_kbytes(self) -> float:
        return self.size_in_bytes() / 1024.0

    def __repr__(self) -> str:
        return (
            f"SerializedDag(barrier={self._barrier}, interiors={self.interior_count}, "
            f"leaves={self.leaf_count}, size={self.size_in_kbytes():.1f} KB)"
        )
