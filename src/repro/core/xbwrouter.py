"""Update management for XBW-b: batched rebuild and staged download.

§3.2: "Updates, however, may be expensive. Even the underlying
leaf-pushed trie takes O(n) steps in the worst-case to update, after
which we could either rebuild the string indexes from scratch (again in
O(n)) or use a dynamic compressed index". The paper's prototype takes
the rebuild route — compression runs in user space and the kernel
receives a fresh serialized blob.

:class:`XBWbRouter` packages that operational pattern: updates edit the
control FIB and mark the compressed image dirty; lookups are answered
from the image while it is fresh and fall back to the (slower, always
correct) control trie while updates are pending; a rebuild is triggered
explicitly via :meth:`flush` or automatically after
``rebuild_threshold`` pending updates — the batching every production
control plane applies to amortize the O(n) rebuild over BGP bursts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.core.fib import Fib
from repro.core.trie import BinaryTrie
from repro.core.xbw import XBWb


@dataclass
class RouterCounters:
    """Operational statistics of one router instance."""

    updates: int = 0
    rebuilds: int = 0
    fast_lookups: int = 0     # served by the compressed image
    slow_lookups: int = 0     # served by the control trie while dirty


class XBWbRouter:
    """An XBW-b FIB with control-plane update batching.

    Parameters
    ----------
    source:
        Initial table (:class:`Fib` or :class:`BinaryTrie`).
    rebuild_threshold:
        Pending updates that trigger an automatic recompression; 0 means
        rebuild on every update (always-fast lookups, maximum update
        cost), large values favor update bursts.
    """

    def __init__(self, source: Union[Fib, BinaryTrie], rebuild_threshold: int = 1024):
        if rebuild_threshold < 0:
            raise ValueError(f"negative rebuild threshold {rebuild_threshold}")
        if isinstance(source, Fib):
            self._control = BinaryTrie.from_fib(source)
        elif isinstance(source, BinaryTrie):
            self._control = source.copy()
        else:
            raise TypeError(f"cannot build an XBWbRouter from {type(source).__name__}")
        self._threshold = rebuild_threshold
        self._image = XBWb.from_trie(self._control)
        self._pending = 0
        self.counters = RouterCounters()

    # ----------------------------------------------------------------- update

    def update(self, prefix: int, length: int, label: Optional[int]) -> None:
        """Announce (``label`` int) or withdraw (``label`` None) a route."""
        if label is not None and label < 1:
            raise ValueError(f"label must be >= 1 (got {label}); use None to withdraw")
        if label is None:
            self._control.delete(prefix, length)  # KeyError propagates
        else:
            self._control.insert(prefix, length, label)
        self._pending += 1
        self.counters.updates += 1
        if self._threshold == 0 or self._pending >= max(1, self._threshold):
            self.flush()

    def flush(self) -> None:
        """Recompress the control FIB into a fresh image (the 'download')."""
        if self._pending == 0:
            return
        self._image = XBWb.from_trie(self._control)
        self._pending = 0
        self.counters.rebuilds += 1

    @property
    def pending_updates(self) -> int:
        return self._pending

    @property
    def is_dirty(self) -> bool:
        return self._pending > 0

    # ----------------------------------------------------------------- lookup

    def lookup(self, address: int) -> Optional[int]:
        """LPM — compressed fast path when fresh, control trie when dirty."""
        if self._pending:
            self.counters.slow_lookups += 1
            return self._control.lookup(address)
        self.counters.fast_lookups += 1
        return self._image.lookup(address)

    # ------------------------------------------------------------------- size

    def image(self) -> XBWb:
        """The current compressed image (for size reports / the simulator)."""
        return self._image

    def size_in_bits(self) -> int:
        """Fast-memory footprint: the compressed image only (the control
        trie lives in control-plane DRAM, as in §4.1)."""
        return self._image.size_in_bits()

    def __repr__(self) -> str:
        return (
            f"XBWbRouter(pending={self._pending}, rebuilds={self.counters.rebuilds}, "
            f"image={self._image.size_in_kbytes():.1f} KB)"
        )
