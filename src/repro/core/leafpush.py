"""Leaf-pushing: the unique normal form of a prefix tree (Fig. 1(e)).

Leaf-pushing turns an arbitrary labeled binary trie into a **proper,
binary, leaf-labeled** trie: labels are pushed from parents to children
(first traversal), missing children are materialized so every interior
node has exactly two, and any parent whose two children are identically
labeled leaves collapses into a single leaf (second traversal).

The result satisfies the paper's invariants

* P1: every node is a leaf or has exactly 2 children,
* P2: a node carries a label iff it is a leaf,
* P3: ``t < 2n`` nodes for ``n`` leaves,

and it is *unique* for a given forwarding function, which is what makes
FIB entropy (§2.2) well defined. Routes without a covering default
inherit the invalid label ⊥ (:data:`~repro.core.fib.INVALID_LABEL`).
"""

from __future__ import annotations

from typing import Optional

from repro.core.fib import INVALID_LABEL, Fib
from repro.core.trie import BinaryTrie, TrieNode


def leaf_push_node(node: Optional[TrieNode], inherited: int) -> TrieNode:
    """Return the leaf-pushed proper copy of the subtrie rooted at ``node``.

    ``inherited`` is the label in force from above (⊥ at the top when the
    FIB has no default route). The returned trie is freshly allocated and
    never aliases ``node``.
    """
    effective = node.label if (node is not None and node.label is not None) else inherited
    if node is None or node.is_leaf:
        return TrieNode(effective)
    left = leaf_push_node(node.left, effective)
    right = leaf_push_node(node.right, effective)
    if left.is_leaf and right.is_leaf and left.label == right.label:
        # Postorder collapse: both halves forward identically.
        return TrieNode(left.label)
    parent = TrieNode()
    parent.left = left
    parent.right = right
    return parent


def leaf_pushed_trie(trie: BinaryTrie, default: int = INVALID_LABEL) -> BinaryTrie:
    """Leaf-pushed normal form of ``trie`` (a brand-new trie).

    ``default`` is the label assumed above the root; the paper uses ⊥,
    meaning "no route".
    """
    normalized = BinaryTrie(trie.width)
    normalized.root = leaf_push_node(trie.root, default)
    return normalized


def leaf_pushed_fib_trie(fib: Fib) -> BinaryTrie:
    """Leaf-pushed normal form straight from a tabular FIB."""
    return leaf_pushed_trie(BinaryTrie.from_fib(fib))


def is_proper_leaf_labeled(trie: BinaryTrie) -> bool:
    """Check invariants P1 and P2 of §3 on ``trie``."""
    for node, _ in trie.nodes():
        two_children = node.left is not None and node.right is not None
        if not node.is_leaf and not two_children:
            return False  # P1 violated: exactly one child
        if node.is_leaf and node.label is None:
            return False  # P2 violated: unlabeled leaf
        if not node.is_leaf and node.label is not None:
            return False  # P2 violated: labeled interior node
    return True


def is_normalized(trie: BinaryTrie) -> bool:
    """True when ``trie`` is proper, leaf-labeled *and* fully collapsed
    (no interior node has two identically-labeled leaf children)."""
    if not is_proper_leaf_labeled(trie):
        return False
    for node, _ in trie.nodes():
        if node.is_leaf:
            continue
        if (
            node.left.is_leaf
            and node.right.is_leaf
            and node.left.label == node.right.label
        ):
            return False
    return True


def leaf_labels(trie: BinaryTrie) -> list[int]:
    """Labels of all leaves in preorder (the string ``S_α`` is the BFS
    ordering of the same multiset)."""
    return [node.label for node, _ in trie.nodes() if node.is_leaf]


def count_leaves(trie: BinaryTrie) -> int:
    """Number of leaves ``n`` of a (normalized) trie."""
    return sum(1 for node, _ in trie.nodes() if node.is_leaf)
