"""The paper's memory model (§4.2) — analytic sizes in bits.

Every KByte figure this library reports comes from these functions (or
from the actual encoded bit streams of the succinct structures), never
from Python object sizes. The model follows §4.2 verbatim:

* **above** the leaf-push barrier, children are laid out consecutively
  [41], so a node stores one child pointer plus a ``lg δ``-bit label
  index;
* **at and below** the barrier, a folded interior node stores two child
  pointers and no label, and the coalesced leaves cost ``δ·lg δ`` bits
  in total (one label each, no pointers);
* pointers are ``lg(t)`` bits for a structure of ``t`` nodes.
"""

from __future__ import annotations

from repro.utils.bits import bits_for, lg


def pointer_width(node_count: int) -> int:
    """Bits per child pointer for a structure of ``node_count`` nodes.

    One extra code point is reserved for the null pointer, and the width
    is floored at 1 bit so degenerate structures still have a size.
    """
    return max(1, bits_for(node_count + 1))


def label_width(delta: int) -> int:
    """Bits per label field: δ labels plus the 'no label' code point."""
    return max(1, lg(max(2, delta + 1)))


def prefix_dag_size_bits(dag) -> int:
    """Size of a :class:`~repro.core.prefixdag.PrefixDag` under the model.

    ``above·(ptr + lg δ) + interior·2·ptr + δ·lg δ`` bits.
    """
    above = dag.above_node_count()
    interior = dag.folded_interior_count()
    leaves = dag.folded_leaf_count()
    total = above + interior + leaves
    ptr = pointer_width(total)
    labels = label_width(max(leaves, dag.entropy_report().delta))
    return above * (ptr + labels) + interior * 2 * ptr + leaves * labels


def binary_trie_size_bits(node_count: int, delta: int) -> int:
    """A pointer-pair binary trie: ``t·(2·ptr + lg δ)`` bits.

    This is the λ = W end of the trie-folding spectrum (ordinary prefix
    tree), with the same compact field widths as the DAG model so that
    the Fig 5 memory axis is apples-to-apples across λ.
    """
    ptr = pointer_width(node_count)
    return node_count * (2 * ptr + label_width(delta))


def patricia_size_bits(node_count: int) -> int:
    """BSD Patricia tree [46]: the paper's quoted 24 bytes per node."""
    return node_count * 24 * 8


def tabular_size_bits(entries: int, delta: int, width: int) -> int:
    """Fig 1(a) linear table: ``(W + lg δ)·N`` bits."""
    if entries == 0:
        return 0
    return entries * (width + lg(max(2, delta)))


def kbytes(bits: float) -> float:
    """Bits → KBytes (the unit of Tables 1–2)."""
    return bits / 8192.0
