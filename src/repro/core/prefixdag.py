"""Trie-folding and prefix DAGs (§4): practical FIB compression.

Trie-folding re-invents the prefix tree in the spirit of LZ78: the trie
is parsed into unique sub-tries, and repeated sub-tries are *merged*
(interned) so that the result — a **prefix DAG** — contains no repeated
substructure. Merging respects both shape and labels (Definition 1), so
plain trie lookup stays correct, bit for bit, on the folded form: there
is no space/time trade-off on the lookup path (Lemma 5).

Because merging requires the normalized (leaf-pushed) form, which is
expensive to update, the structure is split at the **leaf-push barrier**
λ (§4, Fig 3):

* *above* λ (depths 0..λ−1) the FIB is an ordinary binary prefix tree —
  unshared, cheap to update;
* *at and below* λ sub-tries are leaf-pushed and folded through a
  reference-counted sub-trie index, and identically-labeled leaves
  coalesce in the leaf table ``lp`` (with ``lp(⊥)``'s label erased so
  blackhole leaves defer to labels found above the barrier).

Updates follow §4.3: entries shorter than λ are plain trie edits;
entries at or below λ re-fold the affected λ-level sub-trie from the
*control FIB* (the intact trie kept in slow memory), touching at most
``W + 2^(W−λ)`` nodes (Theorem 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple, Union

from repro.core.barrier import entropy_barrier
from repro.core.entropy import EntropyReport, trie_entropy
from repro.core.fib import INVALID_LABEL, Fib
from repro.core.trie import BinaryTrie, TrieNode
from repro.utils.bits import address_bits, prefix_bit


class DagNode:
    """A prefix-DAG node.

    Three flavors share this class:

    * **above-barrier** nodes — ordinary trie nodes (refcount fixed at 1,
      may carry a label, never interned);
    * **folded interior** nodes — interned by ``(left.id, right.id)``,
      label always None;
    * **coalesced leaves** — one per label, held in the leaf table;
      ``lp(⊥)`` stores label None.
    """

    __slots__ = ("left", "right", "label", "node_id", "refcount")

    def __init__(
        self,
        label: Optional[int] = None,
        left: Optional["DagNode"] = None,
        right: Optional["DagNode"] = None,
        node_id: Optional[tuple] = None,
    ):
        self.left = left
        self.right = right
        self.label = label
        self.node_id = node_id
        self.refcount = 1

    @property
    def is_leaf(self) -> bool:
        return self.left is None and self.right is None

    def child(self, bit: int) -> Optional["DagNode"]:
        return self.right if bit else self.left

    def set_child(self, bit: int, node: Optional["DagNode"]) -> None:
        if bit:
            self.right = node
        else:
            self.left = node


@dataclass
class DagStats:
    """Structural accounting of a prefix DAG."""

    barrier: int
    above_nodes: int
    folded_interior: int
    folded_leaves: int
    control_nodes: int
    expected_lookup_depth: float
    max_lookup_depth: int

    @property
    def total_nodes(self) -> int:
        return self.above_nodes + self.folded_interior + self.folded_leaves


@dataclass
class UpdateCost:
    """Work counters for one update (proxy for the paper's μsec axis)."""

    nodes_visited: int = 0
    nodes_folded: int = 0
    nodes_released: int = 0
    refolded_subtrie: bool = False

    @property
    def total_work(self) -> int:
        return self.nodes_visited + self.nodes_folded + self.nodes_released


@dataclass
class _FoldCounters:
    put_calls: int = 0
    put_hits: int = 0
    release_calls: int = 0


class PrefixDag:
    """A compressed FIB produced by the trie-folding algorithm.

    Parameters
    ----------
    source:
        The FIB to compress — a :class:`Fib` or a :class:`BinaryTrie`
        (the trie is copied; it becomes the *control FIB*).
    barrier:
        The leaf-push barrier λ ∈ [0, W]. ``None`` selects it by the
        paper's equation (3) from the FIB's measured entropy.

    Notes
    -----
    Lookup semantics are identical to an ordinary prefix tree: follow the
    address bits, remember the last label seen (Lemma 5 — O(W) lookup,
    zero cost for the compression).
    """

    def __init__(
        self,
        source: Union[Fib, BinaryTrie],
        barrier: Optional[int] = None,
    ):
        if isinstance(source, Fib):
            control = BinaryTrie.from_fib(source)
        elif isinstance(source, BinaryTrie):
            control = source.copy()
            for node, _ in control.nodes():
                if node.label == INVALID_LABEL:
                    # The paper's standing assumption (§4.1): explicit
                    # blackhole routes would be indistinguishable from
                    # the erased lp(bottom) leaves after folding. Model
                    # them as a real "drop" next-hop instead (see
                    # OrtcResult.to_trie(null_label=...)).
                    raise ValueError(
                        "trie contains an explicit blackhole route (label 0); "
                        "relabel null routes to a drop next-hop first"
                    )
        else:
            raise TypeError(f"cannot build a PrefixDag from {type(source).__name__}")
        self._control = control
        self._width = control.width
        self._entropy_report: Optional[EntropyReport] = None
        if barrier is None:
            report = self.entropy_report()
            barrier = entropy_barrier(report.leaves, report.h0, self._width)
        if barrier < 0 or barrier > self._width:
            raise ValueError(f"barrier {barrier} outside [0, {self._width}]")
        self._barrier = barrier
        self._intern: Dict[tuple, DagNode] = {}
        self._leaf_table: Dict[int, DagNode] = {}
        self._next_serial = 0
        self._counters = _FoldCounters()
        self._root = self._build_above(control.root, 0)

    # --------------------------------------------------------------- building

    def _build_above(self, control_node: TrieNode, depth: int) -> DagNode:
        if depth == self._barrier:
            return self._fold(control_node, INVALID_LABEL)
        node = DagNode(label=control_node.label)
        if control_node.left is not None:
            node.left = self._build_above(control_node.left, depth + 1)
        if control_node.right is not None:
            node.right = self._build_above(control_node.right, depth + 1)
        return node

    def _fold(self, control_node: Optional[TrieNode], inherited: int) -> DagNode:
        """Fold the control sub-trie into the DAG; returns a node carrying
        one new reference for the caller.

        This fuses leaf-pushing with the postorder ``compress`` pass of
        §4.1: a missing child materializes as the inherited label's leaf,
        and identically-labeled sibling leaves collapse — without ever
        materializing the pushed copy.
        """
        if control_node is not None and control_node.label is not None:
            inherited = control_node.label
        if control_node is None or control_node.is_leaf:
            return self._acquire_leaf(inherited)
        left = self._fold(control_node.left, inherited)
        right = self._fold(control_node.right, inherited)
        return self._intern_pair(left, right)

    def _acquire_leaf(self, label: int) -> DagNode:
        node = self._leaf_table.get(label)
        if node is None:
            stored = None if label == INVALID_LABEL else label
            node = DagNode(label=stored, node_id=(0, label))
            node.refcount = 0
            self._leaf_table[label] = node
        node.refcount += 1
        return node

    def _intern_pair(self, left: DagNode, right: DagNode) -> DagNode:
        if left is right and left.is_leaf:
            # Leaf-push collapse: both halves forward identically.
            self._release(left)
            return left
        key = (left.node_id, right.node_id)
        self._counters.put_calls += 1
        existing = self._intern.get(key)
        if existing is not None:
            self._counters.put_hits += 1
            existing.refcount += 1
            self._release(left)
            self._release(right)
            return existing
        self._next_serial += 1
        node = DagNode(left=left, right=right, node_id=(1, self._next_serial))
        self._intern[key] = node
        return node

    def _release(self, node: DagNode) -> None:
        self._counters.release_calls += 1
        node.refcount -= 1
        if node.refcount == 0 and not node.is_leaf:
            del self._intern[(node.left.node_id, node.right.node_id)]
            self._release(node.left)
            self._release(node.right)

    # ------------------------------------------------------------------ query

    def lookup(self, address: int) -> Optional[int]:
        """Longest-prefix match — ordinary trie walk on the folded form."""
        node = self._root
        best = node.label
        for position in range(self._width):
            node = node.child(address_bits(address, position, 1, self._width))
            if node is None:
                break
            if node.label is not None:
                best = node.label
        return best

    def lookup_with_depth(self, address: int) -> Tuple[Optional[int], int]:
        """LPM plus the number of child steps taken."""
        node = self._root
        best = node.label
        depth = 0
        for position in range(self._width):
            node = node.child(address_bits(address, position, 1, self._width))
            if node is None:
                break
            depth += 1
            if node.label is not None:
                best = node.label
        return best, depth

    # ----------------------------------------------------------------- update

    def update(self, prefix: int, length: int, label: Optional[int]) -> UpdateCost:
        """Insert/change (``label`` int) or withdraw (``label`` None) a route.

        Applies the edit to the control FIB first, then patches the DAG:
        a plain trie edit above the barrier, or a release-and-refold of
        the affected λ-level sub-trie at or below it (§4.3, Theorem 3).
        """
        cost = UpdateCost()
        if label is not None and label < 1:
            raise ValueError(f"label must be >= 1 (got {label}); use None to withdraw")
        if label is None:
            self._control.delete(prefix, length)  # KeyError propagates
        else:
            self._control.insert(prefix, length, label)

        if length < self._barrier:
            self._update_above(prefix, length, label, cost)
        else:
            self._update_below(prefix, length, cost)
        return cost

    def _update_above(
        self, prefix: int, length: int, label: Optional[int], cost: UpdateCost
    ) -> None:
        path: list[Tuple[DagNode, int]] = []
        node = self._root
        cost.nodes_visited += 1
        for position in range(length):
            bit = prefix_bit(prefix, length, position)
            nxt = node.child(bit)
            if nxt is None:
                nxt = DagNode()
                node.set_child(bit, nxt)
            path.append((node, bit))
            node = nxt
            cost.nodes_visited += 1
        node.label = label
        if label is None:
            for parent, bit in reversed(path):
                child = parent.child(bit)
                if child.is_leaf and child.label is None:
                    parent.set_child(bit, None)
                else:
                    break

    def _update_below(self, prefix: int, length: int, cost: UpdateCost) -> None:
        """The §4.3 update for entries at or below the barrier.

        Mirrors the paper's pseudo-code: *decompress* (privatize) the
        folded nodes along the prefix path, replace the sub-DAG below
        the updated prefix with a fresh fold of the control sub-trie,
        then *re-compress* (re-intern) the privatized path bottom-up.
        Work is O(W + |sub-trie below the prefix|): long-prefix (BGP)
        updates stay cheap at any barrier — the Fig 5 insensitivity.
        """
        cost.refolded_subtrie = True
        barrier = self._barrier
        folded_before = self._counters.put_calls - self._counters.put_hits
        released_before = self._counters.release_calls

        lambda_prefix = prefix >> (length - barrier) if length > barrier else prefix
        control_lambda = self._control.node_at(lambda_prefix, barrier)

        # --- (a) above-barrier walk to the λ slot ------------------------
        above_path: list[Tuple[DagNode, int]] = []
        if barrier > 0:
            node = self._root
            cost.nodes_visited += 1
            for position in range(barrier):
                bit = prefix_bit(lambda_prefix, barrier, position)
                nxt = node.child(bit) if position < barrier - 1 else None
                above_path.append((node, bit))
                if position == barrier - 1:
                    break
                if nxt is None:
                    if control_lambda is None:
                        return  # withdrawing below a path that never existed
                    nxt = DagNode()
                    node.set_child(bit, nxt)
                node = nxt
                cost.nodes_visited += 1
            attach_parent, attach_bit = above_path[-1]
            old_top = attach_parent.child(attach_bit)
        else:
            attach_parent, attach_bit = None, 0
            old_top = self._root

        def attach(new_top: Optional[DagNode]) -> None:
            if attach_parent is None:
                assert new_top is not None, "the λ=0 root cannot be detached"
                self._root = new_top
            else:
                attach_parent.set_child(attach_bit, new_top)

        if control_lambda is None:
            # The withdrawal emptied the whole λ-level sub-trie.
            if old_top is not None:
                attach(None)
                self._release(old_top)
            for parent, bit in reversed(above_path):
                child = parent.child(bit)
                if child is not None and child.is_leaf and child.label is None:
                    parent.set_child(bit, None)
                elif child is not None:
                    break
            self._account_below(cost, folded_before, released_before)
            return

        if old_top is None:
            # Fresh attach point: nothing to decompress, fold outright.
            attach(self._fold(control_lambda, INVALID_LABEL))
            self._account_below(cost, folded_before, released_before)
            return

        # --- (b) decompress the folded path λ .. p-1 ----------------------
        # Private copies replace the shared nodes along the prefix path;
        # the walk stops early at a coalesced leaf (the region below it
        # was uniform) and the control-side walk tracks the label pushed
        # across the barrier (the leaf-push default of trie_fold).
        private_path: list[Tuple[DagNode, int]] = []
        node = old_top
        ctrl: Optional[TrieNode] = control_lambda
        inherited = INVALID_LABEL
        depth = barrier
        parent_slot = attach
        while depth < length and not node.is_leaf:
            bit = prefix_bit(prefix, length, depth)
            private = DagNode(label=node.label, left=node.left, right=node.right)
            private.left.refcount += 1
            private.right.refcount += 1
            parent_slot(private)
            self._release(node)
            private_path.append((private, bit))
            cost.nodes_visited += 1
            if ctrl is not None:
                if ctrl.label is not None:
                    inherited = ctrl.label
                ctrl = ctrl.child(bit)
            node = private.child(bit)
            parent_slot = lambda child, p=private, b=bit: p.set_child(b, child)
            depth += 1

        # --- (c) repack the sub-trie below the stop point -----------------
        replacement = self._fold(ctrl, inherited)
        parent_slot(replacement)
        self._release(node)

        # --- (d) re-compress the privatized path bottom-up ----------------
        canonical = replacement
        for private, bit in reversed(private_path):
            private.set_child(bit, canonical)
            canonical = self._intern_pair(private.left, private.right)
        attach(canonical)
        self._account_below(cost, folded_before, released_before)

    def _account_below(
        self, cost: UpdateCost, folded_before: int, released_before: int
    ) -> None:
        cost.nodes_folded += (
            self._counters.put_calls - self._counters.put_hits - folded_before
        )
        cost.nodes_released += self._counters.release_calls - released_before

    # ------------------------------------------------------------- properties

    @property
    def width(self) -> int:
        return self._width

    @property
    def barrier(self) -> int:
        """The leaf-push barrier λ."""
        return self._barrier

    @property
    def root(self) -> DagNode:
        return self._root

    @property
    def control_trie(self) -> BinaryTrie:
        """The intact control FIB (lives in slow memory on a real router)."""
        return self._control

    def entropy_report(self) -> EntropyReport:
        """Entropy profile of the control FIB (cached)."""
        if self._entropy_report is None:
            self._entropy_report = trie_entropy(self._control)
        return self._entropy_report

    def __repr__(self) -> str:
        return (
            f"PrefixDag(width={self._width}, barrier={self._barrier}, "
            f"interned={len(self._intern)}, leaves={len(self._leaf_table)})"
        )

    # ------------------------------------------------------------- statistics

    def iter_unique_nodes(self) -> Iterator[DagNode]:
        """Every distinct node: above-barrier region, interned interiors,
        live coalesced leaves."""
        seen_above: list[DagNode] = []
        stack = [(self._root, 0)]
        while stack:
            node, depth = stack.pop()
            if depth >= self._barrier:
                continue  # folded region enumerated via the intern table
            seen_above.append(node)
            for bit in (0, 1):
                child = node.child(bit)
                if child is not None and depth + 1 < self._barrier:
                    stack.append((child, depth + 1))
        yield from seen_above
        yield from self._intern.values()
        for leaf in self._leaf_table.values():
            if leaf.refcount > 0:
                yield leaf

    def above_node_count(self) -> int:
        """Nodes in the unshared region (depths 0..λ−1)."""
        if self._barrier == 0:
            return 0
        count = 0
        stack = [(self._root, 0)]
        while stack:
            node, depth = stack.pop()
            count += 1
            for bit in (0, 1):
                child = node.child(bit)
                if child is not None and depth + 1 < self._barrier:
                    stack.append((child, depth + 1))
        return count

    def folded_interior_count(self) -> int:
        """Distinct interned interior nodes below the barrier."""
        return len(self._intern)

    def folded_leaf_count(self) -> int:
        """Live coalesced leaves (labels with at least one reference)."""
        return sum(1 for leaf in self._leaf_table.values() if leaf.refcount > 0)

    def node_count(self) -> int:
        """Total distinct nodes in the DAG."""
        return (
            self.above_node_count()
            + self.folded_interior_count()
            + self.folded_leaf_count()
        )

    def unfolded_node_count(self) -> int:
        """Nodes the equivalent *tree* (no sharing) would need — the
        denominator of the folding gain."""
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            total += 1
            if node.left is not None:
                stack.append(node.left)
            if node.right is not None:
                stack.append(node.right)
        return total

    def depth_profile(self) -> Tuple[float, int]:
        """(expected, maximum) lookup depth over uniform random addresses.

        The expectation weights every root-to-node path by the fraction
        of the address space that traverses it, i.e. it is the exact
        average number of child steps of :meth:`lookup`.
        """
        expected = 0.0
        maximum = 0
        stack: list[Tuple[DagNode, int, float]] = [(self._root, 0, 1.0)]
        while stack:
            node, depth, weight = stack.pop()
            maximum = max(maximum, depth)
            for bit in (0, 1):
                child = node.child(bit)
                if child is not None:
                    expected += weight / 2.0
                    stack.append((child, depth + 1, weight / 2.0))
        return expected, maximum

    def stats(self) -> DagStats:
        expected, maximum = self.depth_profile()
        return DagStats(
            barrier=self._barrier,
            above_nodes=self.above_node_count(),
            folded_interior=self.folded_interior_count(),
            folded_leaves=self.folded_leaf_count(),
            control_nodes=self._control.node_count(),
            expected_lookup_depth=expected,
            max_lookup_depth=maximum,
        )

    # ------------------------------------------------------------- integrity

    def check_integrity(self) -> None:
        """Verify refcounts equal in-degrees and intern keys match children.

        Raises AssertionError on any inconsistency; used by the test
        suite after every update sequence.
        """
        # The root slot of the DAG itself holds one reference (it is the
        # re-pointered parent when the barrier is 0).
        indegree: Dict[int, int] = {id(self._root): 1}
        visited: set[int] = set()
        stack = [self._root]
        while stack:
            node = stack.pop()
            if id(node) in visited:
                continue
            visited.add(id(node))
            for child in (node.left, node.right):
                if child is not None:
                    indegree[id(child)] = indegree.get(id(child), 0) + 1
                    stack.append(child)
        for key, node in self._intern.items():
            assert key == (node.left.node_id, node.right.node_id), (
                f"intern key {key} does not match children of {node.node_id}"
            )
            assert node.refcount == indegree.get(id(node), 0), (
                f"interned node {node.node_id}: refcount {node.refcount} != "
                f"in-degree {indegree.get(id(node), 0)}"
            )
        for label, leaf in self._leaf_table.items():
            assert leaf.refcount == indegree.get(id(leaf), 0), (
                f"leaf {label}: refcount {leaf.refcount} != "
                f"in-degree {indegree.get(id(leaf), 0)}"
            )

    # ------------------------------------------------------------------- size

    def size_in_bits(self) -> int:
        """Paper memory model size (delegates to :mod:`repro.core.sizemodel`)."""
        from repro.core.sizemodel import prefix_dag_size_bits

        return prefix_dag_size_bits(self)

    def size_in_kbytes(self) -> float:
        return self.size_in_bits() / 8192.0
