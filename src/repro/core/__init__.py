"""The paper's primary contribution: entropy-bounded FIB compression.

* :class:`Fib` / :class:`BinaryTrie` — the forwarding table and its
  classic prefix-tree form;
* :func:`leaf_pushed_trie` — the unique normal form FIB entropy is
  defined on;
* :func:`trie_entropy` / :func:`fib_entropy` — the I and E bounds;
* :class:`XBWb` — succinct, entropy-compressed FIB (§3);
* :class:`PrefixDag` — trie-folding with a leaf-push barrier (§4);
* :class:`SerializedDag` — the flat forwarding-plane image (§5.3);
* :class:`FoldedString` — trie-folding as a string self-index (§4.2).
"""

from repro.core.barrier import (
    barrier_sweep,
    entropy_barrier,
    info_theoretic_barrier,
    update_bound_nodes,
)
from repro.core.entropy import (
    EntropyReport,
    bits_per_prefix,
    compression_efficiency,
    distribution_with_entropy,
    entropy_of_probabilities,
    fib_entropy,
    order_k_entropy,
    shannon_entropy,
    trie_entropy,
)
from repro.core.fib import INVALID_LABEL, Fib, FibStats, Neighbor, Route
from repro.core.multibit import MultibitDag, MultibitNode
from repro.core.leafpush import (
    count_leaves,
    is_normalized,
    is_proper_leaf_labeled,
    leaf_labels,
    leaf_pushed_fib_trie,
    leaf_pushed_trie,
)
from repro.core.prefixdag import DagNode, DagStats, PrefixDag, UpdateCost
from repro.core.serialize import SerializedDag
from repro.core.sizemodel import (
    binary_trie_size_bits,
    kbytes,
    patricia_size_bits,
    prefix_dag_size_bits,
    tabular_size_bits,
)
from repro.core.stringmodel import FoldedString, StringModelReport, pad_to_power_of_two
from repro.core.trie import BinaryTrie, TrieNode, TrieStats
from repro.core.xbw import XBWb, XBWLookupStats
from repro.core.xbwrouter import RouterCounters, XBWbRouter

__all__ = [
    "INVALID_LABEL",
    "Fib",
    "FibStats",
    "Neighbor",
    "Route",
    "BinaryTrie",
    "TrieNode",
    "TrieStats",
    "leaf_pushed_trie",
    "leaf_pushed_fib_trie",
    "is_proper_leaf_labeled",
    "is_normalized",
    "leaf_labels",
    "count_leaves",
    "EntropyReport",
    "shannon_entropy",
    "entropy_of_probabilities",
    "trie_entropy",
    "fib_entropy",
    "compression_efficiency",
    "bits_per_prefix",
    "distribution_with_entropy",
    "XBWb",
    "XBWLookupStats",
    "MultibitDag",
    "MultibitNode",
    "XBWbRouter",
    "RouterCounters",
    "order_k_entropy",
    "DagNode",
    "DagStats",
    "PrefixDag",
    "UpdateCost",
    "SerializedDag",
    "FoldedString",
    "StringModelReport",
    "pad_to_power_of_two",
    "entropy_barrier",
    "info_theoretic_barrier",
    "barrier_sweep",
    "update_bound_nodes",
    "prefix_dag_size_bits",
    "binary_trie_size_bits",
    "patricia_size_bits",
    "tabular_size_bits",
    "kbytes",
]
