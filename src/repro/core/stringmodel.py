"""Trie-folding as a string compressor (§4.2, Fig 4).

The storage theorems of the paper are stated in a *string model*: a
string ``S`` of ``n = 2^W`` symbols is written on the leaves of a
complete binary trie of depth W, which trie-folding then converts into a
DAG ``D(S)``. The resulting structure is a (static) entropy-compressed
string self-index built from pointers — "the first pointer machine of
this kind" — supporting random access to any symbol by looking up its
index as a W-bit key.

:class:`FoldedString` implements exactly this: above the barrier λ the
complete trie is kept implicit (an array of 2^λ block roots), below it
blocks are folded through the usual interning. Fig 7 and the Theorem 1/2
bound checks run on this class.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.core.barrier import entropy_barrier, info_theoretic_barrier
from repro.core.entropy import shannon_entropy
from repro.core.sizemodel import label_width, pointer_width
from repro.utils.bits import bits_for, lg


class _StringNode:
    __slots__ = ("left", "right", "symbol", "node_id", "refcount")

    def __init__(self, symbol=None, left=None, right=None, node_id=None):
        self.left = left
        self.right = right
        self.symbol = symbol
        self.node_id = node_id
        self.refcount = 1

    @property
    def is_leaf(self) -> bool:
        return self.left is None and self.right is None


@dataclass(frozen=True)
class StringModelReport:
    """Measured size of ``D(S)`` against the theorems' yardsticks."""

    length: int
    delta: int
    h0: float
    barrier: int
    above_nodes: int
    folded_interior: int
    folded_leaves: int
    size_bits: int
    info_limit_bits: int      # n·lg δ — plain string storage
    entropy_bits: float       # n·H0 — zero-order entropy of S
    theorem1_bound_bits: int  # 4·lg(δ)·n (Theorem 1)
    theorem2_bound_bits: float  # (6 + 2 lg 1/H0 + 2 lg lg δ)·H0·n (Theorem 2)

    @property
    def efficiency(self) -> float:
        """ν — measured bits over the string's zero-order entropy."""
        return self.size_bits / self.entropy_bits if self.entropy_bits > 0 else math.inf


class FoldedString:
    """A string stored as a folded complete binary trie.

    Parameters
    ----------
    symbols:
        The string; its length must be a power of two (use
        :func:`pad_to_power_of_two` first if needed). Symbols are small
        non-negative ints.
    barrier:
        λ ∈ [0, W]; ``None`` applies equation (3) to the string's own
        zero-order entropy.
    """

    def __init__(self, symbols: Sequence[int], barrier: Optional[int] = None):
        n = len(symbols)
        if n == 0:
            raise ValueError("cannot fold an empty string")
        if n & (n - 1):
            raise ValueError(f"length {n} is not a power of two")
        self._length = n
        self._depth = n.bit_length() - 1  # W — complete trie depth
        histogram: Dict[int, int] = {}
        for symbol in symbols:
            histogram[symbol] = histogram.get(symbol, 0) + 1
        self._h0 = shannon_entropy(histogram)
        self._delta = len(histogram)
        if barrier is None:
            barrier = entropy_barrier(n, self._h0, self._depth)
        if barrier < 0 or barrier > self._depth:
            raise ValueError(f"barrier {barrier} outside [0, {self._depth}]")
        self._barrier = barrier
        self._intern: Dict[tuple, _StringNode] = {}
        self._leaves: Dict[int, _StringNode] = {}
        self._serial = 0
        block_length = 1 << (self._depth - barrier)
        self._roots = [
            self._fold(symbols, block * block_length, block_length)
            for block in range(1 << barrier)
        ]

    # ---------------------------------------------------------------- folding

    def _leaf(self, symbol: int) -> _StringNode:
        node = self._leaves.get(symbol)
        if node is None:
            node = _StringNode(symbol=symbol, node_id=(0, symbol))
            node.refcount = 0
            self._leaves[symbol] = node
        node.refcount += 1
        return node

    def _fold(self, symbols: Sequence[int], start: int, length: int) -> _StringNode:
        if length == 1:
            return self._leaf(symbols[start])
        half = length >> 1
        left = self._fold(symbols, start, half)
        right = self._fold(symbols, start + half, half)
        if left is right and left.is_leaf:
            left.refcount -= 1
            return left
        key = (left.node_id, right.node_id)
        existing = self._intern.get(key)
        if existing is not None:
            existing.refcount += 1
            left.refcount -= 1
            right.refcount -= 1
            return existing
        self._serial += 1
        node = _StringNode(left=left, right=right, node_id=(1, self._serial))
        self._intern[key] = node
        return node

    # ----------------------------------------------------------------- access

    def __len__(self) -> int:
        return self._length

    def access(self, index: int) -> int:
        """Symbol at ``index`` — lookup of the W-bit key (Fig 4)."""
        if index < 0 or index >= self._length:
            raise IndexError(f"index {index} outside string of {self._length}")
        if self._barrier == self._depth:
            node = self._roots[index]
        else:
            block = index >> (self._depth - self._barrier)
            node = self._roots[block]
            position = self._depth - self._barrier - 1
            while not node.is_leaf:
                node = node.right if (index >> position) & 1 else node.left
                position -= 1
        return node.symbol

    def to_list(self) -> list[int]:
        """Decompress the whole string (testing helper)."""
        return [self.access(i) for i in range(self._length)]

    # ------------------------------------------------------------------- size

    @property
    def barrier(self) -> int:
        return self._barrier

    @property
    def h0(self) -> float:
        return self._h0

    @property
    def delta(self) -> int:
        return self._delta

    def above_node_count(self) -> int:
        """Implicit complete-trie nodes above the barrier: 2^λ − 1."""
        return (1 << self._barrier) - 1

    def folded_interior_count(self) -> int:
        return len(self._intern)

    def folded_leaf_count(self) -> int:
        return sum(1 for leaf in self._leaves.values() if leaf.refcount > 0)

    def size_in_bits(self) -> int:
        """Same memory model as the prefix DAG (§4.2): above-barrier nodes
        carry one pointer each, folded interiors two, leaves one label."""
        above = self.above_node_count()
        interior = self.folded_interior_count()
        leaves = self.folded_leaf_count()
        ptr = pointer_width(above + interior + leaves)
        labels = label_width(max(leaves, 1))
        # Block roots are referenced from the implicit tree: 2^λ pointers.
        return (above + (1 << self._barrier)) * ptr + interior * 2 * ptr + leaves * labels

    def report(self) -> StringModelReport:
        """Measured size vs. the information/entropy limits and theorem bounds."""
        n = self._length
        delta = max(2, self._delta)
        h0 = self._h0
        theorem2 = math.inf
        if h0 > 0:
            theorem2 = (6 + 2 * math.log2(1 / h0) + 2 * math.log2(math.log2(delta))) * h0 * n \
                if math.log2(delta) > 0 else math.inf
        return StringModelReport(
            length=n,
            delta=self._delta,
            h0=h0,
            barrier=self._barrier,
            above_nodes=self.above_node_count(),
            folded_interior=self.folded_interior_count(),
            folded_leaves=self.folded_leaf_count(),
            size_bits=self.size_in_bits(),
            info_limit_bits=n * lg(delta),
            entropy_bits=h0 * n,
            theorem1_bound_bits=4 * lg(delta) * n,
            theorem2_bound_bits=theorem2,
        )


def pad_to_power_of_two(symbols: Sequence[int], fill: Optional[int] = None) -> list[int]:
    """Pad a string to the next power-of-two length.

    ``fill`` defaults to the final symbol, which adds no new alphabet
    entries and at most one bit of entropy noise.
    """
    out = list(symbols)
    if not out:
        raise ValueError("cannot pad an empty string")
    n = len(out)
    target = 1 << bits_for(n)
    if target < n:
        target = 1 << (n.bit_length())
    pad_symbol = out[-1] if fill is None else fill
    out.extend([pad_symbol] * (target - n))
    return out


def theorem1_barrier(n: int, delta: int, depth: int) -> int:
    """Equation (2) in the string model (clamped to the trie depth)."""
    return info_theoretic_barrier(n, delta, depth)
