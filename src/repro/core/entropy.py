"""FIB compressibility metrics (§2.1–§2.2, revised constants).

Given the unique leaf-pushed normal form of a FIB with ``n`` leaves over
an alphabet of ``δ`` distinct leaf labels whose empirical distribution
has Shannon entropy ``H0``:

* the **FIB information-theoretic lower bound** is
  ``I = 2n + n·lg δ`` bits (Proposition 1, revised), and
* the **FIB entropy** is ``E = 2n + n·H0`` bits (Proposition 2, revised).

These are the ``I`` and ``E`` columns of Table 1, the yardsticks every
compressor in this library is measured against (compression efficiency
``ν = size / E``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Union

from repro.core.fib import Fib
from repro.core.leafpush import leaf_pushed_trie
from repro.core.trie import BinaryTrie
from repro.utils.bits import lg


def shannon_entropy(histogram: Mapping[object, int]) -> float:
    """Zero-order Shannon entropy (bits/symbol) of a count histogram.

    >>> shannon_entropy({1: 1, 2: 1})
    1.0
    """
    total = sum(histogram.values())
    if total <= 0:
        return 0.0
    entropy = 0.0
    for count in histogram.values():
        if count <= 0:
            continue
        p = count / total
        entropy -= p * math.log2(p)
    return entropy


def entropy_of_probabilities(probabilities: Iterable[float]) -> float:
    """Shannon entropy of an explicit probability vector."""
    entropy = 0.0
    for p in probabilities:
        if p < 0:
            raise ValueError(f"negative probability {p}")
        if p > 0:
            entropy -= p * math.log2(p)
    return entropy


@dataclass(frozen=True)
class EntropyReport:
    """The compressibility profile of one FIB.

    Attributes
    ----------
    leaves:
        ``n`` — leaves of the leaf-pushed normal form.
    delta:
        ``δ`` — distinct leaf labels (including ⊥ when reachable).
    h0:
        Shannon entropy of the leaf-label distribution, bits/label.
    info_bound_bits:
        ``I = 2n + n·lg δ`` (Proposition 1).
    entropy_bits:
        ``E = 2n + n·H0`` (Proposition 2).
    label_histogram:
        Leaf-label counts underlying ``h0``.
    """

    leaves: int
    delta: int
    h0: float
    info_bound_bits: int
    entropy_bits: float
    label_histogram: Dict[int, int]

    @property
    def info_bound_kbytes(self) -> float:
        return self.info_bound_bits / 8192.0

    @property
    def entropy_kbytes(self) -> float:
        return self.entropy_bits / 8192.0

    def bits_per_prefix(self, prefixes: int) -> float:
        """Entropy bits per original FIB entry (the η denominators)."""
        if prefixes <= 0:
            raise ValueError("prefix count must be positive")
        return self.entropy_bits / prefixes


def trie_entropy(trie: BinaryTrie, assume_normalized: bool = False) -> EntropyReport:
    """Entropy report of a trie (leaf-pushing it first unless told not to).

    Parameters
    ----------
    trie:
        Any labeled binary trie.
    assume_normalized:
        Set when ``trie`` is already the proper leaf-labeled normal form;
        skips the normalization copy.
    """
    normalized = trie if assume_normalized else leaf_pushed_trie(trie)
    histogram: Dict[int, int] = {}
    leaves = 0
    for node, _ in normalized.nodes():
        if node.is_leaf:
            leaves += 1
            histogram[node.label] = histogram.get(node.label, 0) + 1
    delta = len(histogram)
    h0 = shannon_entropy(histogram)
    info_bound = 2 * leaves + leaves * lg(max(2, delta))
    entropy_bits = 2 * leaves + leaves * h0
    return EntropyReport(
        leaves=leaves,
        delta=delta,
        h0=h0,
        info_bound_bits=info_bound,
        entropy_bits=entropy_bits,
        label_histogram=histogram,
    )


def fib_entropy(source: Union[Fib, BinaryTrie]) -> EntropyReport:
    """Entropy report of a FIB (or of a trie holding one)."""
    if isinstance(source, Fib):
        return trie_entropy(BinaryTrie.from_fib(source))
    return trie_entropy(source)


def compression_efficiency(size_bits: float, report: EntropyReport) -> float:
    """``ν`` — measured size over FIB entropy (Table 1's efficiency column)."""
    if report.entropy_bits <= 0:
        return math.inf
    return size_bits / report.entropy_bits


def bits_per_prefix(size_bits: float, prefixes: int) -> float:
    """``η`` — measured size per original FIB entry (Table 1)."""
    if prefixes <= 0:
        raise ValueError("prefix count must be positive")
    return size_bits / prefixes


def order_k_entropy(sequence, k: int) -> float:
    """k-th order empirical entropy H_k of a symbol sequence, bits/symbol.

    ``H_k`` conditions each symbol on its k predecessors:
    ``H_k = Σ_ctx p(ctx) · H(symbol | ctx)``. The paper notes (§3.2) that
    XBW-b's level ordering would let a context-aware coder reach
    higher-order entropy "if contextual dependency is present in real IP
    FIBs"; this estimator is the tool for checking that, applied to the
    leaf-label string ``S_α``. ``H_0`` equals :func:`shannon_entropy` of
    the histogram, and ``H_k`` is non-increasing in k.
    """
    if k < 0:
        raise ValueError(f"negative context order {k}")
    symbols = list(sequence)
    if len(symbols) <= k:
        return 0.0
    contexts: Dict[tuple, Dict[object, int]] = {}
    for index in range(k, len(symbols)):
        context = tuple(symbols[index - k : index])
        bucket = contexts.setdefault(context, {})
        symbol = symbols[index]
        bucket[symbol] = bucket.get(symbol, 0) + 1
    total = len(symbols) - k
    entropy = 0.0
    for bucket in contexts.values():
        weight = sum(bucket.values()) / total
        entropy += weight * shannon_entropy(bucket)
    return entropy


def distribution_with_entropy(delta: int, target_h0: float, tolerance: float = 1e-9) -> list[float]:
    """A ``delta``-symbol probability vector whose entropy is ``target_h0``.

    Used by the dataset generators to hit the H0 column of Table 1: one
    dominant symbol with probability ``p`` and the remaining mass spread
    uniformly, with ``p`` found by bisection. ``target_h0`` must lie in
    ``[0, log2(delta)]``.
    """
    if delta < 1:
        raise ValueError("alphabet must contain at least one symbol")
    if delta == 1:
        if target_h0 > tolerance:
            raise ValueError("a one-symbol alphabet has zero entropy")
        return [1.0]
    maximum = math.log2(delta)
    if target_h0 < -tolerance or target_h0 > maximum + tolerance:
        raise ValueError(f"target H0={target_h0} outside [0, {maximum:.4f}]")
    target = min(max(target_h0, 0.0), maximum)

    def entropy_with_dominant(p: float) -> float:
        rest = (1.0 - p) / (delta - 1)
        probs = [p] + [rest] * (delta - 1)
        return entropy_of_probabilities(probs)

    # Entropy rises monotonically as the dominant mass p drops from 1 to 1/δ.
    low, high = 1.0 / delta, 1.0
    for _ in range(200):
        mid = (low + high) / 2
        if entropy_with_dominant(mid) > target:
            low = mid
        else:
            high = mid
        if high - low < tolerance:
            break
    p = (low + high) / 2
    rest = (1.0 - p) / (delta - 1)
    return [p] + [rest] * (delta - 1)
