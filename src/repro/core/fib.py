"""The IP Forwarding Information Base abstraction.

A :class:`Fib` is the tabular form of Fig. 1(a) of the paper: a set of
``prefix → next-hop label`` associations plus a *neighbor table* mapping
each label to next-hop specific data. Labels are small positive integers
``1..δ``; the reserved label ``0`` is the invalid label ⊥ (blackhole) and
is not allowed on table entries (the paper's standing assumption in §4.1:
"we assume that T does not contain explicit blackhole routes").

The tabular representation models the O(N)-entry table the paper starts
from — Fig. 1(a) — and is the interchange format every other
representation in this library is built from. Because :meth:`Fib.lookup`
is the *reference oracle* every compressed representation is verified
against, it is served by a length-bucketed exact-match index (one dict
per prefix length, probed longest first): semantically identical to the
linear scan, but O(W) dictionary probes instead of O(N) comparisons.
The paper's tabular *size model* ``(W + lg δ)·N`` is unaffected — it
prices the table, not this host-side index.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Optional, Tuple

from repro.utils.bits import IPV4_WIDTH, format_prefix, lg

INVALID_LABEL = 0
"""The invalid next-hop label ⊥ (blackhole)."""


@dataclass(frozen=True)
class Neighbor:
    """One row of the neighbor table: next-hop specific information."""

    label: int
    name: str = ""
    address: int = 0

    def __post_init__(self):
        if self.label < 1:
            raise ValueError(f"neighbor label must be >= 1, got {self.label}")


@dataclass(frozen=True)
class Route:
    """One FIB entry: ``prefix/length → label``."""

    prefix: int
    length: int
    label: int

    def __str__(self) -> str:
        return f"{format_prefix(self.prefix, self.length)} -> {self.label}"


@dataclass
class FibStats:
    """Aggregate statistics of a FIB (the N, δ columns of Table 1)."""

    entries: int
    next_hops: int
    width: int
    mean_prefix_length: float
    default_route: bool
    label_histogram: Dict[int, int] = field(default_factory=dict)


class Fib:
    """A forwarding table: prefix → next-hop-label plus a neighbor table.

    Parameters
    ----------
    width:
        Address width W in bits (32 for IPv4, the paper's setting).
    """

    def __init__(self, width: int = IPV4_WIDTH):
        if width < 1:
            raise ValueError(f"address width must be positive, got {width}")
        self._width = width
        self._entries: Dict[Tuple[int, int], int] = {}
        self._neighbors: Dict[int, Neighbor] = {}
        # Length-bucketed exact-match index: length -> {prefix: label},
        # plus the lengths in use sorted longest-first (rebuilt lazily).
        self._by_length: Dict[int, Dict[int, int]] = {}
        self._lengths_desc: Optional[Tuple[int, ...]] = None

    # ------------------------------------------------------------- properties

    @property
    def width(self) -> int:
        """Address width W in bits."""
        return self._width

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Route]:
        for (prefix, length), label in sorted(self._entries.items(), key=lambda kv: (kv[0][1], kv[0][0])):
            yield Route(prefix, length, label)

    def __contains__(self, key: Tuple[int, int]) -> bool:
        return tuple(key) in self._entries

    def __eq__(self, other) -> bool:
        if not isinstance(other, Fib):
            return NotImplemented
        return self._width == other._width and self._entries == other._entries

    def __repr__(self) -> str:
        return f"Fib(width={self._width}, entries={len(self._entries)}, next_hops={self.delta})"

    @property
    def delta(self) -> int:
        """δ — the number of distinct next-hop labels in use."""
        return len(set(self._entries.values()))

    @property
    def labels(self) -> list[int]:
        """Sorted distinct labels in use."""
        return sorted(set(self._entries.values()))

    # ----------------------------------------------------------------- editing

    def add(self, prefix: int, length: int, label: int) -> None:
        """Insert or overwrite the entry ``prefix/length → label``."""
        self._validate_prefix(prefix, length)
        if label < 1:
            raise ValueError(
                f"label must be a positive integer (got {label}); "
                f"the invalid label 0 cannot appear on FIB entries"
            )
        self._entries[(prefix, length)] = label
        bucket = self._by_length.get(length)
        if bucket is None:
            bucket = self._by_length[length] = {}
            self._lengths_desc = None
        bucket[prefix] = label
        if label not in self._neighbors:
            self._neighbors[label] = Neighbor(label, name=f"nh{label}")

    def remove(self, prefix: int, length: int) -> int:
        """Delete the entry for ``prefix/length`` and return its label."""
        self._validate_prefix(prefix, length)
        try:
            label = self._entries.pop((prefix, length))
        except KeyError:
            raise KeyError(
                f"no entry for {format_prefix(prefix, length, self._width)}"
            ) from None
        bucket = self._by_length[length]
        del bucket[prefix]
        if not bucket:
            del self._by_length[length]
            self._lengths_desc = None
        return label

    def get(self, prefix: int, length: int) -> Optional[int]:
        """Label of the exact entry ``prefix/length``, or None."""
        return self._entries.get((prefix, length))

    def update(self, prefix: int, length: int, label: Optional[int]) -> None:
        """Announce (``label`` int) or withdraw (``label`` None) a route.

        The Fib-side mirror of :meth:`PrefixDag.update`, so update feeds
        replay directly onto the tabular oracle through
        :func:`~repro.datasets.updates.apply_updates`. Withdrawing an
        absent route raises KeyError, exactly like :meth:`remove`.
        """
        if label is None:
            self.remove(prefix, length)
        else:
            self.add(prefix, length, label)

    def set_neighbor(self, neighbor: Neighbor) -> None:
        """Attach neighbor-table data for a label."""
        self._neighbors[neighbor.label] = neighbor

    def neighbor(self, label: int) -> Optional[Neighbor]:
        """Neighbor-table row for ``label``."""
        return self._neighbors.get(label)

    # ------------------------------------------------------------------ query

    def _lengths(self) -> Tuple[int, ...]:
        """Prefix lengths in use, longest first (cached)."""
        if self._lengths_desc is None:
            self._lengths_desc = tuple(sorted(self._by_length, reverse=True))
        return self._lengths_desc

    def lookup(self, address: int) -> Optional[int]:
        """Longest-prefix-match via the length-bucketed index — O(W) probes.

        Returns the label of the most specific matching entry, or None if
        no entry matches (no default route).
        """
        if address < 0 or address >> self._width:
            raise ValueError(f"address {address:#x} outside {self._width}-bit space")
        width = self._width
        by_length = self._by_length
        for length in self._lengths():
            label = by_length[length].get(address >> (width - length) if length else 0)
            if label is not None:
                return label
        return None

    def covering_label(self, prefix: int, length: int) -> Optional[int]:
        """Label of the longest entry strictly covering ``prefix/length``."""
        by_length = self._by_length
        for other_length in self._lengths():
            if other_length >= length:
                continue
            label = by_length[other_length].get(
                prefix >> (length - other_length) if other_length else 0
            )
            if label is not None:
                return label
        return None

    # ------------------------------------------------------------- statistics

    def label_histogram(self) -> Dict[int, int]:
        """Entry count per label (the raw next-hop distribution)."""
        histogram: Dict[int, int] = {}
        for label in self._entries.values():
            histogram[label] = histogram.get(label, 0) + 1
        return histogram

    def stats(self) -> FibStats:
        """N, δ, width, mean prefix length, default-route flag, histogram."""
        lengths = [length for (_, length) in self._entries]
        return FibStats(
            entries=len(self._entries),
            next_hops=self.delta,
            width=self._width,
            mean_prefix_length=(sum(lengths) / len(lengths)) if lengths else 0.0,
            default_route=(0, 0) in self._entries,
            label_histogram=self.label_histogram(),
        )

    def tabular_size_in_bits(self) -> int:
        """The paper's tabular-form size model: ``(W + lg δ) * N`` bits."""
        if not self._entries:
            return 0
        return (self._width + lg(max(2, self.delta))) * len(self._entries)

    # ------------------------------------------------------------ construction

    @classmethod
    def from_entries(
        cls, entries: Iterable[Tuple[int, int, int]], width: int = IPV4_WIDTH
    ) -> "Fib":
        """Build from ``(prefix, length, label)`` triples."""
        fib = cls(width)
        for prefix, length, label in entries:
            fib.add(prefix, length, label)
        return fib

    def copy(self) -> "Fib":
        """Deep copy."""
        duplicate = Fib(self._width)
        duplicate._entries = dict(self._entries)
        duplicate._neighbors = dict(self._neighbors)
        duplicate._by_length = {
            length: dict(bucket) for length, bucket in self._by_length.items()
        }
        duplicate._lengths_desc = self._lengths_desc
        return duplicate

    def _validate_prefix(self, prefix: int, length: int) -> None:
        if length < 0 or length > self._width:
            raise ValueError(f"prefix length {length} outside [0, {self._width}]")
        if prefix < 0 or prefix >> length:
            raise ValueError(
                f"prefix value {prefix:#x} wider than its length {length}"
            )
