"""XBW-b: the Burrows-Wheeler transform for binary leaf-labeled tries (§3).

The transform serializes the leaf-pushed normal form of a FIB in BFS
(level) order into

* ``S_I`` — one bit per node: 0 = interior, 1 = leaf, and
* ``S_α`` — the leaf labels, in the same BFS order,

then stores ``S_I`` in an RRR compressed bitstring index and ``S_α`` in a
Huffman-shaped wavelet tree. Because a level-ordered proper binary tree
places the children of the r-th interior node at positions 2r and 2r+1
(1-based — Jacobson [28]), longest-prefix match needs only O(1) rank and
access calls per address bit, giving O(W) lookup on the compressed form
(Lemmas 2 and 3: ``2n + n·H0 + o(n)`` bits total).

BFS order is also what earns the structure its name: nodes of equal
depth — i.e. of similar *context* — land next to each other, exactly as
the Burrows-Wheeler transform clusters characters of similar context in
a string.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.fib import INVALID_LABEL, Fib
from repro.core.leafpush import is_proper_leaf_labeled, leaf_pushed_trie
from repro.core.trie import BinaryTrie, TrieNode
from repro.succinct.rrr import RRRBitVector
from repro.succinct.wavelet import WaveletTree
from repro.utils.bits import address_bits


@dataclass
class XBWLookupStats:
    """Primitive-operation counts of one lookup (the paper's point that
    'the constants still add up' for pointerless structures)."""

    steps: int = 0
    rank_calls: int = 0
    access_calls: int = 0


class XBWb:
    """The XBW-b compressed FIB.

    Construct via :meth:`from_fib` or :meth:`from_trie`; the raw
    constructor takes an already-normalized proper leaf-labeled trie.

    Parameters
    ----------
    normalized:
        A proper, binary, leaf-labeled trie (leaf-pushed normal form).
    bitvector_factory:
        Storage for ``S_I``; default RRR (Lemma 2). Pass
        :class:`BitVector` for the uncompressed variant.
    wavelet_shape:
        ``"huffman"`` (Lemma 3 zero-order entropy bound) or ``"balanced"``.
    width:
        Address width W.
    """

    def __init__(
        self,
        normalized: BinaryTrie,
        bitvector_factory: Callable = RRRBitVector,
        wavelet_shape: str = "huffman",
    ):
        if not is_proper_leaf_labeled(normalized):
            raise ValueError(
                "XBW-b requires a proper leaf-labeled trie; "
                "use XBWb.from_trie / XBWb.from_fib to normalize first"
            )
        self._width = normalized.width
        si_bits, labels = self._serialize(normalized)
        self._node_count = len(si_bits)
        self._leaf_count = len(labels)
        self._si = bitvector_factory(si_bits)
        self._labels = WaveletTree(labels, shape=wavelet_shape)

    # ------------------------------------------------------------- transform

    @staticmethod
    def _serialize(trie: BinaryTrie) -> tuple[list[int], list[int]]:
        """BFS-serialize into (S_I bits, S_α labels) — §3.1's bfs-traverse."""
        si: list[int] = []
        labels: list[int] = []
        queue: deque[TrieNode] = deque([trie.root])
        while queue:
            node = queue.popleft()
            if node.is_leaf:
                si.append(1)
                labels.append(node.label)
            else:
                si.append(0)
                queue.append(node.left)
                queue.append(node.right)
        return si, labels

    @classmethod
    def from_trie(cls, trie: BinaryTrie, **kwargs) -> "XBWb":
        """Normalize an arbitrary labeled trie, then transform it."""
        return cls(leaf_pushed_trie(trie), **kwargs)

    @classmethod
    def from_fib(cls, fib: Fib, **kwargs) -> "XBWb":
        """Build straight from a tabular FIB."""
        return cls.from_trie(BinaryTrie.from_fib(fib), **kwargs)

    # ------------------------------------------------------------------ query

    def lookup(self, address: int) -> Optional[int]:
        """Longest-prefix match on the compressed form (§3.1 pseudo-code).

        Returns the next-hop label, or None when the address falls under
        a ⊥ leaf (no route). 0-based translation of the paper's routine:
        the children of the r-th interior node (counting from 1) sit at
        BFS positions ``2r - 1`` and ``2r``.
        """
        index = 0  # 0-based node position in BFS order (paper's i - 1)
        for depth in range(self._width + 1):
            if self._si.access(index):
                label = self._labels.access(self._si.rank1(index))
                return None if label == INVALID_LABEL else label
            interior_rank = self._si.rank0(index + 1)  # interiors in [0, index]
            bit = address_bits(address, depth, 1, self._width)
            index = 2 * interior_rank - 1 + bit
        raise AssertionError(
            "leaf-pushed trie deeper than the address width; corrupt transform"
        )

    def lookup_with_stats(self, address: int) -> tuple[Optional[int], XBWLookupStats]:
        """Like :meth:`lookup`, also counting the primitive operations."""
        stats = XBWLookupStats()
        index = 0
        for depth in range(self._width + 1):
            stats.steps += 1
            stats.access_calls += 1
            if self._si.access(index):
                stats.rank_calls += 1
                stats.access_calls += 1
                label = self._labels.access(self._si.rank1(index))
                return (None if label == INVALID_LABEL else label), stats
            stats.rank_calls += 1
            interior_rank = self._si.rank0(index + 1)
            bit = address_bits(address, depth, 1, self._width)
            index = 2 * interior_rank - 1 + bit
        raise AssertionError(
            "leaf-pushed trie deeper than the address width; corrupt transform"
        )

    def lookup_trace(self, address: int) -> tuple[Optional[int], list[int]]:
        """LPM plus the byte addresses the primitives touch.

        Layout: the ``S_I`` index first, the wavelet tree of ``S_α``
        after it. Feeds the cache simulator (Table 2's XBW-b row).
        """
        addresses: list[int] = []
        si = self._si
        wavelet_base = (si.size_in_bits() + 7) // 8
        can_trace = hasattr(si, "trace_access")
        index = 0
        for depth in range(self._width + 1):
            if can_trace:
                addresses.extend(si.trace_access(index))
            if si.access(index):
                if can_trace:
                    addresses.extend(si.trace_rank(index))
                position = si.rank1(index)
                if hasattr(self._labels, "trace_access"):
                    label, wavelet_addrs = self._labels.trace_access(position)
                    addresses.extend(wavelet_base + a for a in wavelet_addrs)
                else:  # pragma: no cover - all wavelet trees trace
                    label = self._labels.access(position)
                return (None if label == INVALID_LABEL else label), addresses
            if can_trace:
                addresses.extend(si.trace_rank(index + 1))
            interior_rank = si.rank0(index + 1)
            bit = address_bits(address, depth, 1, self._width)
            index = 2 * interior_rank - 1 + bit
        raise AssertionError(
            "leaf-pushed trie deeper than the address width; corrupt transform"
        )

    # ------------------------------------------------------------------- size

    def size_in_bits(self) -> int:
        """Encoded size: RRR(S_I) + wavelet(S_α)."""
        return self._si.size_in_bits() + self._labels.size_in_bits()

    def size_in_kbytes(self) -> float:
        return self.size_in_bits() / 8192.0

    @property
    def node_count(self) -> int:
        """t — nodes of the underlying normalized trie (|S_I|)."""
        return self._node_count

    @property
    def leaf_count(self) -> int:
        """n — leaves (|S_α|)."""
        return self._leaf_count

    @property
    def width(self) -> int:
        return self._width

    def __repr__(self) -> str:
        return (
            f"XBWb(nodes={self._node_count}, leaves={self._leaf_count}, "
            f"size={self.size_in_kbytes():.1f} KB)"
        )

    # -------------------------------------------------------------- recovery

    def to_trie(self) -> BinaryTrie:
        """Reconstruct the normalized trie (XBW-b is lossless)."""
        nodes = [TrieNode() for _ in range(self._node_count)]
        leaf_seen = 0
        interior_seen = 0
        for position in range(self._node_count):
            if self._si.access(position):
                nodes[position].label = self._labels.access(leaf_seen)
                leaf_seen += 1
            else:
                interior_seen += 1
                first_child = 2 * interior_seen - 1  # 0-based position
                nodes[position].left = nodes[first_child]
                nodes[position].right = nodes[first_child + 1]
        trie = BinaryTrie(self._width)
        trie.root = nodes[0]
        return trie
