"""Binary prefix trees (tries) — Fig. 1(b) of the paper.

The binary trie is the reference FIB representation: every path from the
root corresponds to an IP prefix, interior nodes may carry labels
(route entries at that prefix), and longest-prefix match walks the
address bits remembering the last label seen. Both of the paper's
compressors are defined relative to this structure: XBW-b consumes its
leaf-pushed normal form, and trie-folding *is* a re-engineered trie.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Tuple

from repro.core.fib import Fib
from repro.utils.bits import IPV4_WIDTH, address_bits, prefix_bit


class TrieNode:
    """One trie node: optional label plus left ('0') and right ('1') children."""

    __slots__ = ("left", "right", "label")

    def __init__(self, label: Optional[int] = None):
        self.left: Optional[TrieNode] = None
        self.right: Optional[TrieNode] = None
        self.label = label

    @property
    def is_leaf(self) -> bool:
        return self.left is None and self.right is None

    def child(self, bit: int) -> Optional["TrieNode"]:
        return self.right if bit else self.left

    def set_child(self, bit: int, node: Optional["TrieNode"]) -> None:
        if bit:
            self.right = node
        else:
            self.left = node


@dataclass
class TrieStats:
    """Structural statistics of a trie."""

    nodes: int
    leaves: int
    labeled_nodes: int
    max_depth: int
    average_leaf_depth: float


class BinaryTrie:
    """A binary prefix tree over a ``width``-bit address space.

    Supports route insertion/deletion, exact-match queries, and O(W)
    longest-prefix-match, in the classic unibit-trie fashion [46].
    """

    def __init__(self, width: int = IPV4_WIDTH):
        if width < 1:
            raise ValueError(f"address width must be positive, got {width}")
        self._width = width
        self.root = TrieNode()

    # ------------------------------------------------------------- properties

    @property
    def width(self) -> int:
        return self._width

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"BinaryTrie(width={self._width}, nodes={stats.nodes}, "
            f"labeled={stats.labeled_nodes})"
        )

    # ----------------------------------------------------------------- editing

    def insert(self, prefix: int, length: int, label: int) -> None:
        """Insert (or overwrite) the route ``prefix/length → label``."""
        self._check_prefix(prefix, length)
        node = self.root
        for position in range(length):
            bit = prefix_bit(prefix, length, position)
            nxt = node.child(bit)
            if nxt is None:
                nxt = TrieNode()
                node.set_child(bit, nxt)
            node = nxt
        node.label = label

    def delete(self, prefix: int, length: int) -> int:
        """Remove the route at ``prefix/length``; prune empty branches.

        Returns the removed label. Raises KeyError when absent.
        """
        self._check_prefix(prefix, length)
        path: list[Tuple[TrieNode, int]] = []
        node = self.root
        for position in range(length):
            bit = prefix_bit(prefix, length, position)
            nxt = node.child(bit)
            if nxt is None:
                raise KeyError(f"no route at {prefix:#x}/{length}")
            path.append((node, bit))
            node = nxt
        if node.label is None:
            raise KeyError(f"no route at {prefix:#x}/{length}")
        removed = node.label
        node.label = None
        # Prune the now-useless chain of unlabeled leaves bottom-up.
        for parent, bit in reversed(path):
            child = parent.child(bit)
            if child.is_leaf and child.label is None:
                parent.set_child(bit, None)
            else:
                break
        return removed

    def get(self, prefix: int, length: int) -> Optional[int]:
        """Label at exactly ``prefix/length``, or None."""
        node = self.node_at(prefix, length)
        return node.label if node is not None else None

    def node_at(self, prefix: int, length: int) -> Optional[TrieNode]:
        """The node at ``prefix/length``, or None if the path is absent."""
        self._check_prefix(prefix, length)
        node = self.root
        for position in range(length):
            bit = prefix_bit(prefix, length, position)
            node = node.child(bit)
            if node is None:
                return None
        return node

    # ------------------------------------------------------------------ query

    def lookup(self, address: int) -> Optional[int]:
        """Longest-prefix match: walk address bits, return last label seen."""
        node = self.root
        best = node.label
        for position in range(self._width):
            node = node.child(address_bits(address, position, 1, self._width))
            if node is None:
                break
            if node.label is not None:
                best = node.label
        return best

    def lookup_with_depth(self, address: int) -> Tuple[Optional[int], int]:
        """LPM plus the number of nodes visited below the root."""
        node = self.root
        best = node.label
        depth = 0
        for position in range(self._width):
            node = node.child(address_bits(address, position, 1, self._width))
            if node is None:
                break
            depth += 1
            if node.label is not None:
                best = node.label
        return best, depth

    # ------------------------------------------------------------- traversals

    def entries(self) -> Iterator[Tuple[int, int, int]]:
        """Yield all ``(prefix, length, label)`` routes in preorder."""

        def walk(node: TrieNode, prefix: int, length: int):
            if node.label is not None:
                yield prefix, length, node.label
            if node.left is not None:
                yield from walk(node.left, prefix << 1, length + 1)
            if node.right is not None:
                yield from walk(node.right, (prefix << 1) | 1, length + 1)

        yield from walk(self.root, 0, 0)

    def nodes(self) -> Iterator[Tuple[TrieNode, int]]:
        """Yield ``(node, depth)`` pairs in preorder."""
        stack: list[Tuple[TrieNode, int]] = [(self.root, 0)]
        while stack:
            node, depth = stack.pop()
            yield node, depth
            if node.right is not None:
                stack.append((node.right, depth + 1))
            if node.left is not None:
                stack.append((node.left, depth + 1))

    def nodes_at_depth(self, target: int) -> Iterator[Tuple[TrieNode, int, int]]:
        """Yield ``(node, prefix, depth)`` for all nodes at exactly ``target``."""

        def walk(node: TrieNode, prefix: int, depth: int):
            if depth == target:
                yield node, prefix, depth
                return
            if node.left is not None:
                yield from walk(node.left, prefix << 1, depth + 1)
            if node.right is not None:
                yield from walk(node.right, (prefix << 1) | 1, depth + 1)

        yield from walk(self.root, 0, 0)

    # ------------------------------------------------------------- statistics

    def stats(self) -> TrieStats:
        """Node/leaf/label counts and depth profile."""
        nodes = 0
        leaves = 0
        labeled = 0
        max_depth = 0
        leaf_depth_sum = 0
        for node, depth in self.nodes():
            nodes += 1
            if node.label is not None:
                labeled += 1
            if node.is_leaf:
                leaves += 1
                leaf_depth_sum += depth
            max_depth = max(max_depth, depth)
        return TrieStats(
            nodes=nodes,
            leaves=leaves,
            labeled_nodes=labeled,
            max_depth=max_depth,
            average_leaf_depth=(leaf_depth_sum / leaves) if leaves else 0.0,
        )

    def node_count(self) -> int:
        return sum(1 for _ in self.nodes())

    # ----------------------------------------------------------- conversions

    @classmethod
    def from_fib(cls, fib: Fib) -> "BinaryTrie":
        """Build a trie holding every route of ``fib``."""
        trie = cls(fib.width)
        for route in fib:
            trie.insert(route.prefix, route.length, route.label)
        return trie

    def to_fib(self) -> Fib:
        """Flatten back to tabular form."""
        fib = Fib(self._width)
        for prefix, length, label in self.entries():
            fib.add(prefix, length, label)
        return fib

    def copy(self) -> "BinaryTrie":
        """Structural deep copy."""

        def clone(node: TrieNode) -> TrieNode:
            duplicate = TrieNode(node.label)
            if node.left is not None:
                duplicate.left = clone(node.left)
            if node.right is not None:
                duplicate.right = clone(node.right)
            return duplicate

        duplicate = BinaryTrie(self._width)
        duplicate.root = clone(self.root)
        return duplicate

    def map_labels(self, transform: Callable[[int], int]) -> None:
        """Rewrite every label in place through ``transform``."""
        for node, _ in self.nodes():
            if node.label is not None:
                node.label = transform(node.label)

    def _check_prefix(self, prefix: int, length: int) -> None:
        if length < 0 or length > self._width:
            raise ValueError(f"prefix length {length} outside [0, {self._width}]")
        if prefix < 0 or prefix >> length:
            raise ValueError(f"prefix value {prefix:#x} wider than length {length}")
