"""Multibit prefix DAGs — the paper's §7 future-work extension.

"Multibit prefix DAGs also offer an intriguing future research
direction, for their potential to reduce storage space as well as
improving lookup time from O(W) to O(log W)."

A :class:`MultibitDag` folds a FIB over a trie of stride ``s``: every
node consumes ``s`` address bits and has ``2^s`` children. Labels are
expanded to stride boundaries (controlled prefix expansion [49]) and
sub-tries are interned exactly like the binary prefix DAG, so lookup
costs ``W / s`` node visits instead of up to ``W``.

The structure is static (rebuilt on update); incremental updates of the
binary DAG carry over in principle but are outside the paper's scope.
Stride 1 reproduces the fully-folded binary prefix DAG node for node,
which the test suite checks.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

from repro.core.fib import INVALID_LABEL, Fib
from repro.core.sizemodel import label_width, pointer_width
from repro.core.trie import BinaryTrie, TrieNode
from repro.utils.bits import address_bits


class MultibitNode:
    """A folded multibit node: ``2^s`` children, or a coalesced leaf."""

    __slots__ = ("children", "label", "node_id", "refcount")

    def __init__(self, children=None, label: Optional[int] = None, node_id=None):
        self.children = children
        self.label = label
        self.node_id = node_id
        self.refcount = 1

    @property
    def is_leaf(self) -> bool:
        return self.children is None


class MultibitDag:
    """A stride-``s`` folded FIB.

    Parameters
    ----------
    source:
        A :class:`Fib` or :class:`BinaryTrie`.
    stride:
        Bits consumed per node; must divide the address width.
    """

    def __init__(self, source: Union[Fib, BinaryTrie], stride: int = 4):
        if isinstance(source, Fib):
            trie = BinaryTrie.from_fib(source)
        else:
            trie = source
            for node, _ in trie.nodes():
                if node.label == INVALID_LABEL:
                    raise ValueError(
                        "trie contains an explicit blackhole route (label 0); "
                        "relabel null routes to a drop next-hop first"
                    )
        if stride < 1:
            raise ValueError(f"stride must be positive, got {stride}")
        if trie.width % stride:
            raise ValueError(
                f"stride {stride} does not divide the address width {trie.width}"
            )
        self._width = trie.width
        self._stride = stride
        self._fanout = 1 << stride
        self._intern: Dict[tuple, MultibitNode] = {}
        self._leaves: Dict[int, MultibitNode] = {}
        self._serial = 0
        self._root = self._fold(trie.root, INVALID_LABEL)

    # ---------------------------------------------------------------- folding

    def _leaf(self, label: int) -> MultibitNode:
        node = self._leaves.get(label)
        if node is None:
            stored = None if label == INVALID_LABEL else label
            node = MultibitNode(label=stored, node_id=(0, label))
            node.refcount = 0
            self._leaves[label] = node
        node.refcount += 1
        return node

    def _descend(
        self, node: Optional[TrieNode], combo: int, inherited: int
    ) -> Tuple[Optional[TrieNode], int]:
        """Walk ``stride`` bits of ``combo`` below ``node``, tracking the
        last label seen (controlled prefix expansion)."""
        label = inherited
        current = node
        for position in range(self._stride - 1, -1, -1):
            if current is None:
                break
            current = current.child((combo >> position) & 1)
            if current is not None and current.label is not None:
                label = current.label
        return current, label

    def _fold(self, control_node: Optional[TrieNode], inherited: int) -> MultibitNode:
        if control_node is not None and control_node.label is not None:
            inherited = control_node.label
        if control_node is None or control_node.is_leaf:
            return self._leaf(inherited)
        children = []
        for combo in range(self._fanout):
            descendant, label = self._descend(control_node, combo, inherited)
            children.append(self._fold(descendant, label))
        first = children[0]
        if first.is_leaf and all(child is first for child in children):
            # All expansion slots agree: collapse to the leaf itself.
            for child in children[1:]:
                child.refcount -= 1
            return first
        key = tuple(child.node_id for child in children)
        existing = self._intern.get(key)
        if existing is not None:
            existing.refcount += 1
            for child in children:
                self._release(child)
            return existing
        self._serial += 1
        node = MultibitNode(children=children, node_id=(1, self._serial))
        self._intern[key] = node
        return node

    def _release(self, node: MultibitNode) -> None:
        node.refcount -= 1
        if node.refcount == 0 and not node.is_leaf:
            del self._intern[tuple(child.node_id for child in node.children)]
            for child in node.children:
                self._release(child)

    # ----------------------------------------------------------------- lookup

    def lookup(self, address: int) -> Optional[int]:
        """Longest-prefix match in ``W / s`` node visits (Lemma 5 economy)."""
        node = self._root
        position = 0
        while not node.is_leaf:
            index = address_bits(address, position, self._stride, self._width)
            node = node.children[index]
            position += self._stride
        return node.label

    def lookup_with_depth(self, address: int) -> Tuple[Optional[int], int]:
        node = self._root
        position = 0
        depth = 0
        while not node.is_leaf:
            index = address_bits(address, position, self._stride, self._width)
            node = node.children[index]
            position += self._stride
            depth += 1
        return node.label, depth

    # ------------------------------------------------------------- statistics

    @property
    def stride(self) -> int:
        return self._stride

    @property
    def root(self) -> MultibitNode:
        return self._root

    @property
    def width(self) -> int:
        return self._width

    def interior_count(self) -> int:
        return len(self._intern)

    def leaf_count(self) -> int:
        return sum(1 for leaf in self._leaves.values() if leaf.refcount > 0)

    def max_depth(self) -> int:
        """Worst-case node visits: the folded trie's height in strides."""
        depths: Dict[int, int] = {}

        def depth_of(node: MultibitNode) -> int:
            if node.is_leaf:
                return 0
            cached = depths.get(id(node))
            if cached is None:
                cached = 1 + max(depth_of(child) for child in node.children)
                depths[id(node)] = cached
            return cached

        return depth_of(self._root)

    def size_in_bits(self) -> int:
        """§4.2 memory model generalized to fanout 2^s: each interior
        stores 2^s pointers; coalesced leaves store one label each."""
        interior = self.interior_count()
        leaves = self.leaf_count()
        ptr = pointer_width(interior + leaves)
        return interior * self._fanout * ptr + leaves * label_width(max(leaves, 1))

    def size_in_kbytes(self) -> float:
        return self.size_in_bits() / 8192.0

    def __repr__(self) -> str:
        return (
            f"MultibitDag(stride={self._stride}, interiors={self.interior_count()}, "
            f"leaves={self.leaf_count()}, size={self.size_in_kbytes():.1f} KB)"
        )
