"""repro.serve.shm — the zero-copy shared-memory data plane.

The PR 5 worker pool ships every lookup batch as a pickled tuple over a
``multiprocessing`` pipe. That transport costs one pickle + one kernel
round-trip per message per worker — cheap next to a Python trie walk,
ruinous next to the compiled flat plane, whose vectorized resolve is
faster than the pipe itself (``BENCH_workers.json`` recorded the 4-worker
compiled point at 0.39x a *single* process). This module replaces the
data path with ``multiprocessing.shared_memory``:

* :class:`ShmRing` — a single-producer/single-consumer ring buffer of
  fixed 64-byte slots inside one shared-memory segment. Each record is
  one struct-packed header slot (``seq, opcode, nbytes, generation,
  aux1, aux2``) followed by its payload in contiguous slots; a record
  that would straddle the end of the ring is preceded by a ``PAD``
  record so payloads always stay contiguous (and therefore viewable
  zero-copy). Progress is a pair of monotonic int64 counters in the
  control area — ``produced`` written only by the producer, ``consumed``
  only by the consumer — so neither side ever takes a lock. Polling
  spins briefly and then backs off to micro-sleeps; every blocking wait
  takes a liveness callback so a dead peer surfaces as
  :class:`RingPeerDied`, never a hang.

* :func:`publish_program` / :func:`attach_program` — the compiled
  :class:`~repro.pipeline.flat.FlatProgram` image (four parallel int64
  rows behind a fixed header) copied once into a segment, from which any
  number of workers *attach* a frozen program in O(1): the rows are
  ``memoryview.cast('q')`` slices of the mapped segment, so spawning a
  worker costs process boot plus one ``mmap`` instead of a pickled FIB
  and a full rebuild+recompile. Epoch swaps publish a fresh segment
  generation; nobody ever mutates a mapped image in place, so readers
  can never observe a torn program.

**Lifecycle discipline.** The frontend creates every segment and is the
only party that ever unlinks one. Workers are always children of the
frontend, so they share its ``resource_tracker`` (the fd rides along in
``spawn``/``fork`` preparation data): their attach-side registrations
dedup harmlessly into the same tracker set, the frontend's single
``unlink`` per segment clears it, and the tracker stays armed as the
crash-safety net should the frontend itself die without cleaning up. A
worker death therefore leaks nothing: its mappings die with the
process, and the frontend's ``close()`` unlinks each segment exactly
once, crash or no crash.
"""

from __future__ import annotations

import os
import secrets
import struct
import time
from array import array
from typing import Callable, NamedTuple, Optional, Tuple

try:
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover - platforms without shm support
    shared_memory = None

from repro.pipeline.flat import FlatProgram

#: Ring slot size. One slot carries one record header; payloads occupy
#: the following ``ceil(nbytes / 64)`` slots.
SLOT_BYTES = 64

#: Record header: seq, opcode, nbytes, generation, aux1, aux2, 2 spare.
HEADER = struct.Struct("<qqqqqqqq")

#: Default ring data capacity (per direction, per worker): 4 MiB holds
#: a full pipeline window of 2^14-address batches with room to spare.
DEFAULT_RING_BYTES = 1 << 22

#: Spins against the counter before the poll loop starts sleeping.
_SPIN_ROUNDS = 2000

#: Backoff sleep bounds for the poll loops (seconds).
_SLEEP_MIN = 0.00005
_SLEEP_MAX = 0.002

# ------------------------------------------------------------------- opcodes

OP_PAD = 0           #: filler to the end of the ring; skip, never deliver
OP_LOOKUP = 1        #: request: packed int64 addresses (owner-split slice)
OP_BCAST = 2         #: request: packed whole batch; worker filters its slice
OP_PROBE = 3         #: request: packed addresses on the uncounted channel
OP_ATTACH = 4        #: request: utf-8 segment name of a fresh generation
OP_LABELS = 5        #: reply: packed int64 labels (aux1 = resolve ns)
OP_POSITIONS = 6     #: reply: positions + labels (aux2 = owned count)
OP_PROBED = 7        #: reply: packed labels for a probe
OP_ATTACHED = 8      #: reply: generation adopted (aux1 = attach ns)
OP_ERROR = 9         #: reply: utf-8 traceback for the request's seq
OP_DELTA = 10        #: request: packed (start, end, val) int64 patch runs
OP_DELTAED = 11      #: reply: delta adopted (aux1 = ingest ns)


class RingClosed(RuntimeError):
    """The ring's segment is gone (torn down under a poll)."""


class RingPeerDied(RuntimeError):
    """The other end of the ring died while we waited on it."""


class RingOverflow(ValueError):
    """A single record is larger than the ring can ever hold."""


def shm_available() -> bool:
    """True when shared-memory segments can actually be created here."""
    if shared_memory is None:
        return False
    try:
        probe = shared_memory.SharedMemory(create=True, size=SLOT_BYTES)
    except (OSError, FileNotFoundError):  # pragma: no cover - no /dev/shm
        return False
    probe.close()
    probe.unlink()
    return True


def create_segment(size: int, prefix: str = "repro"):
    """Create a frontend-owned segment with a recognizable name."""
    name = f"{prefix}_{os.getpid():x}_{secrets.token_hex(4)}"
    return shared_memory.SharedMemory(name=name, create=True, size=size)


def attach_segment(name: str):
    """Attach to an existing segment without adopting its lifetime.

    ``SharedMemory`` registers every mapping — created *or* attached —
    with the resource tracker. That is safe here precisely because the
    workers are always *children* of the frontend: ``spawn``/``fork``
    preparation hands them the frontend's tracker fd, so the attach
    registration lands in the same tracker's name set (a no-op dedup)
    and is cleared by the frontend's single ``unlink``. Nobody on the
    attach side may ever unlink — or unregister, which would strip the
    frontend's own crash-safety net out of the shared tracker.
    """
    return shared_memory.SharedMemory(name=name)


class Record(NamedTuple):
    """One delivered ring record; ``payload`` views the ring in place
    and is valid only until the matching :meth:`ShmRing.advance`."""

    seq: int
    op: int
    generation: int
    aux1: int
    aux2: int
    payload: memoryview


class ShmRing:
    """SPSC ring buffer over one shared-memory segment.

    Layout: one 64-byte control area (``[0]`` = produced, ``[1]`` =
    consumed; both monotonic slot counters) followed by ``nslots``
    64-byte slots. The producer is the only writer of ``produced`` and
    the slots it publishes; the consumer is the only writer of
    ``consumed`` — single-producer/single-consumer is a hard contract,
    not a convention, which is what makes the lock-free counters sound.
    """

    def __init__(self, segment, *, owner: bool):
        self._segment = segment
        self._owner = owner
        self._buf = segment.buf
        self._ctrl = segment.buf[:SLOT_BYTES].cast("q")
        self._data = segment.buf[SLOT_BYTES:]
        self._nslots = len(self._data) // SLOT_BYTES
        # Each side's own counter, cached locally: the shared copy is
        # read only for the *other* side's progress.
        self._produced = self._ctrl[0]
        self._consumed = self._ctrl[1]
        self._pending_slots = 0
        self._reserved = (0, 0)
        self._closed = False
        # Plain-int telemetry counters (repro.obs samples them into a
        # registry at report time; the data path never touches an
        # instrument object). Producer-side only: a full ring stalling
        # `send` is backpressure worth counting, an idle consumer is not.
        self.stat_pads = 0            # PAD records written at wraparound
        self.stat_spin_stalls = 0     # sends that found the ring full
        self.stat_sleep_stalls = 0    # ... and spun long enough to sleep
        self.stat_overflows = 0       # records larger than the ring
        self.stat_bytes = 0           # payload bytes sent
        # Fault-injection hook (repro.serve.faults): when set, called
        # with the opcode before every producer send. None — always,
        # outside a chaos run — costs one attribute load per send.
        self.chaos: Optional[Callable[[int], None]] = None

    # ---------------------------------------------------------- construction

    @classmethod
    def create(cls, data_bytes: int = DEFAULT_RING_BYTES, prefix: str = "repro"):
        slots = max(8, (data_bytes + SLOT_BYTES - 1) // SLOT_BYTES)
        segment = create_segment(SLOT_BYTES * (1 + slots), prefix=prefix)
        segment.buf[:SLOT_BYTES] = bytes(SLOT_BYTES)
        return cls(segment, owner=True)

    @classmethod
    def attach(cls, name: str):
        return cls(attach_segment(name), owner=False)

    @property
    def name(self) -> str:
        return self._segment.name

    @property
    def capacity_slots(self) -> int:
        return self._nslots

    def used_slots(self) -> int:
        """Slots currently occupied (produced minus consumed) — the
        ring-occupancy gauge's sample."""
        if self._closed:
            return 0
        return self._ctrl[0] - self._ctrl[1]

    def __repr__(self) -> str:
        return (
            f"ShmRing({self._segment.name}, slots={self._nslots}, "
            f"used={self._ctrl[0] - self._ctrl[1]})"
        )

    # --------------------------------------------------------------- producer

    def send(
        self,
        op: int,
        payload=b"",
        *,
        seq: int = 0,
        generation: int = 0,
        aux1: int = 0,
        aux2: int = 0,
        alive: Optional[Callable[[], bool]] = None,
        timeout: Optional[float] = None,
    ) -> int:
        """Append one record, blocking (with backpressure) until it fits.

        Returns the payload bytes moved. ``alive`` is polled while the
        ring is full; when it goes false the wait raises
        :class:`RingPeerDied` instead of spinning forever on a consumer
        that will never drain.
        """
        if self.chaos is not None:
            self.chaos(op)
        nbytes = len(payload)
        view = self._reserve(nbytes, alive, timeout)
        if nbytes:
            view[:nbytes] = payload
        self._commit(op, nbytes, seq, generation, aux1, aux2)
        self.stat_bytes += nbytes
        return nbytes

    def send_into(
        self,
        op: int,
        nbytes: int,
        fill: Callable[[memoryview], Tuple[int, int]],
        *,
        seq: int = 0,
        generation: int = 0,
        alive: Optional[Callable[[], bool]] = None,
        timeout: Optional[float] = None,
    ) -> int:
        """Append one record whose payload is written *in place*.

        ``fill`` receives the reserved payload slice and returns the
        record's ``(aux1, aux2)`` — measured after the payload exists,
        which is how a worker stamps its resolve time into the header it
        publishes. This is the zero-copy reply path: labels go from the
        resolver straight into the mapped ring.
        """
        if self.chaos is not None:
            self.chaos(op)
        view = self._reserve(nbytes, alive, timeout)
        aux1, aux2 = fill(view[:nbytes] if nbytes else view[:0])
        self._commit(op, nbytes, seq, generation, aux1, aux2)
        self.stat_bytes += nbytes
        return nbytes

    def _reserve(self, nbytes: int, alive, timeout) -> memoryview:
        needed = 1 + ((nbytes + SLOT_BYTES - 1) // SLOT_BYTES)
        if needed > self._nslots:
            self.stat_overflows += 1
            raise RingOverflow(
                f"record of {nbytes} payload bytes needs {needed} slots; "
                f"ring holds {self._nslots} (raise ring_bytes)"
            )
        pos = self._produced % self._nslots
        contig = self._nslots - pos
        pad = 0 if contig >= needed else contig
        self._wait_free(pad + needed, alive, timeout)
        if pad:
            self.stat_pads += 1
            HEADER.pack_into(
                self._data, pos * SLOT_BYTES,
                0, OP_PAD, (pad - 1) * SLOT_BYTES, 0, 0, 0, 0, 0,
            )
            self._produced += pad
            self._ctrl[0] = self._produced
            pos = 0
        start = (pos + 1) * SLOT_BYTES
        self._reserved = (pos, nbytes)
        return self._data[start:start + ((nbytes + SLOT_BYTES - 1) // SLOT_BYTES) * SLOT_BYTES]

    def _commit(self, op, nbytes, seq, generation, aux1, aux2) -> None:
        pos, _ = self._reserved
        HEADER.pack_into(
            self._data, pos * SLOT_BYTES,
            seq, op, nbytes, generation, aux1, aux2, 0, 0,
        )
        # Publishing the counter is the release: header and payload are
        # fully written before the consumer can observe the record.
        self._produced += 1 + ((nbytes + SLOT_BYTES - 1) // SLOT_BYTES)
        self._ctrl[0] = self._produced

    def _wait_free(self, slots: int, alive, timeout) -> None:
        deadline = None if timeout is None else time.perf_counter() + timeout
        spins = 0
        sleep = _SLEEP_MIN
        while self._nslots - (self._produced - self._ctrl[1]) < slots:
            spins += 1
            if spins == 1:  # one stall event per wait, however long
                self.stat_spin_stalls += 1
            if spins < _SPIN_ROUNDS:
                continue
            if alive is not None and not alive():
                raise RingPeerDied("ring consumer died with the ring full")
            if deadline is not None and time.perf_counter() > deadline:
                raise RingPeerDied(
                    f"ring full for {timeout:.0f}s (consumer stalled)"
                )
            if spins == _SPIN_ROUNDS:  # ditto for the backoff escalation
                self.stat_sleep_stalls += 1
            time.sleep(sleep)
            sleep = min(sleep * 2, _SLEEP_MAX)

    # --------------------------------------------------------------- consumer

    def try_recv(self) -> Optional[Record]:
        """Deliver the next record without blocking, or None.

        The returned payload is a zero-copy view of the ring; the caller
        must call :meth:`advance` (after fully consuming or copying it)
        before the next ``try_recv``.
        """
        if self._pending_slots:
            raise RuntimeError("advance() the previous record first")
        while True:
            if self._ctrl[0] == self._consumed:
                return None
            pos = self._consumed % self._nslots
            seq, op, nbytes, generation, aux1, aux2, _, _ = HEADER.unpack_from(
                self._data, pos * SLOT_BYTES
            )
            slots = 1 + ((nbytes + SLOT_BYTES - 1) // SLOT_BYTES)
            if op == OP_PAD:
                self._consumed += slots
                self._ctrl[1] = self._consumed
                continue
            start = (pos + 1) * SLOT_BYTES
            self._pending_slots = slots
            return Record(
                seq, op, generation, aux1, aux2,
                self._data[start:start + nbytes],
            )

    def recv(
        self,
        *,
        alive: Optional[Callable[[], bool]] = None,
        timeout: Optional[float] = None,
    ) -> Optional[Record]:
        """Blocking :meth:`try_recv`: spin, then back off to sleeps.

        Returns None on timeout; raises :class:`RingPeerDied` when
        ``alive`` reports the producer gone *and* the ring is drained
        (records published before the death are still delivered).
        """
        deadline = None if timeout is None else time.perf_counter() + timeout
        spins = 0
        sleep = _SLEEP_MIN
        while True:
            record = self.try_recv()
            if record is not None:
                return record
            spins += 1
            if spins < _SPIN_ROUNDS:
                continue
            if alive is not None and not alive():
                raise RingPeerDied("ring producer died")
            if deadline is not None and time.perf_counter() > deadline:
                return None
            time.sleep(sleep)
            sleep = min(sleep * 2, _SLEEP_MAX)

    def advance(self) -> None:
        """Release the record last delivered (its payload view dies).
        A no-op after :meth:`close` — the pool's reply pump may lose the
        race against a supervisor reaping the ring mid-sweep."""
        if self._closed or not self._pending_slots:
            return
        self._consumed += self._pending_slots
        self._pending_slots = 0
        self._ctrl[1] = self._consumed

    # ---------------------------------------------------------------- closing

    def close(self) -> None:
        """Drop this side's mapping; the owner also unlinks the segment."""
        if self._closed:
            return
        self._closed = True
        # Memoryviews exported from the mapped buffer must be released
        # before SharedMemory.close() can unmap it.
        try:
            self._ctrl.release()
            self._data.release()
        except BufferError:  # pragma: no cover - a payload view escaped
            pass
        self._buf = None
        try:
            self._segment.close()
        except BufferError:  # pragma: no cover - a payload view escaped
            pass  # the mapping stays until process exit; unlink still works
        if self._owner:
            try:
                self._segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


# ----------------------------------------------------------- program images

#: Program-image header: magic, generation, width, root_stride,
#: sub_stride, max_label, root_len, cell_len + 2 spare — 128 bytes.
_IMAGE_HEADER = struct.Struct("<qqqqqqqqqq")
_IMAGE_HEADER_BYTES = 128
_IMAGE_MAGIC = 0x52455052_464C4154  # "REPRFLAT"


def _row_bytes(row) -> memoryview:
    """A row (``array('q')`` or an attached memoryview) as raw bytes."""
    return memoryview(row).cast("B")


def publish_program(program: FlatProgram, generation: int, prefix: str = "repro"):
    """Copy a compiled program's image into a fresh shared segment.

    Four straight buffer copies (``array('q')`` rows are already the
    wire format — this is the ``tobytes()`` observation from the issue,
    minus the intermediate bytes object) behind a fixed header. Returns
    the owning ``SharedMemory``; the caller publishes its *name* and
    eventually unlinks it. The segment is immutable once this returns:
    epoch swaps publish a new segment instead of editing a mapped one.
    """
    if not program.frozen and program.overlay_len:
        # A pending delta overlay is part of the answer function but
        # not of the four rows; fold it in so the image is complete.
        program.merge_overlay()
    root_len = len(program.root_ptr)
    cell_len = len(program.cell_ptr)
    size = _IMAGE_HEADER_BYTES + 8 * (2 * root_len + 2 * cell_len)
    segment = create_segment(size, prefix=prefix)
    buf = segment.buf
    _IMAGE_HEADER.pack_into(
        buf, 0,
        _IMAGE_MAGIC, generation, program.width, program.root_stride,
        program.sub_stride, program.max_label, root_len, cell_len, 0, 0,
    )
    offset = _IMAGE_HEADER_BYTES
    for row, length in (
        (program.root_ptr, root_len),
        (program.root_val, root_len),
        (program.cell_ptr, cell_len),
        (program.cell_val, cell_len),
    ):
        nbytes = 8 * length
        buf[offset:offset + nbytes] = _row_bytes(row)
        offset += nbytes
    return segment


def attach_program(name: str):
    """Attach a published image: O(1), zero-copy, read-only by contract.

    Returns ``(program, generation, segment)``. The program's rows view
    the mapped segment directly (:meth:`FlatProgram.from_image`), so the
    caller must keep ``segment`` open as long as the program serves, and
    close it — never unlink — when a newer generation replaces it.
    """
    segment = attach_segment(name)
    buf = segment.buf
    (magic, generation, width, root_stride, sub_stride,
     max_label, root_len, cell_len, _, _) = _IMAGE_HEADER.unpack_from(buf, 0)
    if magic != _IMAGE_MAGIC:
        segment.close()
        raise ValueError(f"segment {name!r} is not a flat-program image")
    rows = []
    offset = _IMAGE_HEADER_BYTES
    for length in (root_len, root_len, cell_len, cell_len):
        nbytes = 8 * length
        rows.append(buf[offset:offset + nbytes].cast("q"))
        offset += nbytes
    program = FlatProgram.from_image(
        width=width,
        root_stride=root_stride,
        sub_stride=sub_stride,
        max_label=max_label,
        root_ptr=rows[0],
        root_val=rows[1],
        cell_ptr=rows[2],
        cell_val=rows[3],
    )
    return program, generation, segment


def detach_program(program: FlatProgram, segment) -> None:
    """Release an attached program's views so the segment can unmap."""
    program._views = None  # numpy views export the rows; drop them first
    program._ov_views = None
    for row in (program.root_ptr, program.root_val,
                program.cell_ptr, program.cell_val):
        if isinstance(row, memoryview):
            try:
                row.release()
            except BufferError:  # pragma: no cover - an alias escaped
                pass
    program.root_ptr = program.root_val = array("q")
    program.cell_ptr = program.cell_val = array("q")
    try:
        segment.close()
    except BufferError:  # pragma: no cover - mapping stays to process exit
        pass


def leaked_segments(prefix: str = "repro") -> list:
    """Names of shared-memory segments with our prefix still linked in
    ``/dev/shm`` — the test- and CI-side leak check."""
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):  # pragma: no cover - non-Linux
        return []
    return sorted(
        entry for entry in os.listdir(shm_dir) if entry.startswith(prefix + "_")
    )
