"""repro.serve.workers — true multi-process serving workers.

:mod:`repro.serve.cluster` proves the sharding design on a simulated
clock: one process hosts every shard and *charges* each batch the
slowest shard's time. This module runs the deployment the simulation
models. Each shard of the same :class:`~repro.serve.cluster.ShardPlan`
becomes a real worker **process** (``spawn``-safe, shared-nothing): the
frontend pickles the shard's restricted :class:`~repro.core.fib.Fib`
across the pipe at start-up, and the worker builds its own
representation and compiles its own
:class:`~repro.pipeline.flat.FlatProgram` locally — no live structure
ever crosses a process boundary.

**Transports.** The pool serves over one of two data planes
(``transport=``). The default, ``"shm"``, is the zero-copy plane from
:mod:`repro.serve.shm`: per-worker request/response
:class:`~repro.serve.shm.ShmRing` pairs carry struct-packed records
whose payloads are raw int64 bytes viewed in place on both ends, and
the compiled :class:`~repro.pipeline.flat.FlatProgram` lives in a
frontend-published shared-memory segment that every worker *attaches*
(an ``mmap``) instead of rebuilding — so spawn cost is process boot,
near-constant in worker count, and no lookup or update payload is ever
pickled. Epoch swaps publish a fresh segment generation and walk the
workers onto it through their request rings (``OP_ATTACH``), FIFO with
the data they serve. The pipe remains connected but carries only the
low-rate control plane: readiness, ``report``, ``shutdown`` — and its
EOF is still how a worker death is detected. ``"pipe"`` is the PR 5
wire protocol below, kept for unbatched serving, representations with
no compiled plane, and hosts without POSIX shared memory; ``"shm"``
falls back to it cleanly in those cases.

**The pipe wire protocol.** One full-duplex ``multiprocessing`` pipe
per worker carries pickled tuples; bulk payloads travel as packed int64
bytes (``array('q')``), which pickle at memcpy speed and feed the flat
plane's buffer-view fast path on the far side, so neither end pays a
per-address Python conversion loop::

    frontend -> worker                      worker -> frontend
    ("lookup", seq, addr_bytes)             ("ok", seq, (label_bytes,
                                                         lookup_s, update_s))
    ("bcast",  seq, addr_bytes)             ("ok", seq, (position_bytes,
      (whole batch; the worker filters                   label_bytes,
       its owned slice in C)                             lookup_s, update_s))
    ("probe",  seq, addr_bytes)             ("ok", seq, label_bytes)
    ("update", prefix, length, label)       (no reply — pipe FIFO orders it)
    ("swap",   seq)                         ("ok", seq, (generation,
                                                         rebuild_s, size_bits))
    ("reshard", seq, fib, filter)           ("ok", seq, (build_s, size_bits))
    ("report", seq, scenario)               ("ok", seq, ServeReport)
    ("shutdown",)                           (worker exits)

Lookups fan out in one of two modes (``fanout=``): **broadcast** (the
default wherever the plan vectorizes) ships the packed batch whole to
every worker, which filters the addresses its partition owns with two
C compares and answers with their input positions — the owner split
runs in parallel on the workers; **split** owner-groups at the
frontend (``ShardPlan.group`` / ``split_vector``) and ships each
worker only its slice.

A failing handler answers ``("err", seq, message)``; a worker that dies
closes the pipe, which the frontend's reader thread turns into a
:class:`WorkerError` on every in-flight future — a crash is a clean
exception, never a hang.

**Update feed and epochs.** Updates are serialized down each owning
worker's pipe (fire-and-forget; per-worker FIFO ordering is the pipe's).
The frontend keeps the cluster-wide control oracle, so bogus
withdrawals are filtered before they fan out — exactly the
:class:`~repro.serve.cluster.FibCluster` discipline. Epoch swaps reuse
the :class:`~repro.serve.cluster.EpochCoordinator` *unchanged* across
the process boundary: each worker is wrapped in a proxy that quacks
like a ``FibServer`` (a ``pending`` backlog the frontend tracks, and a
``rebuild()`` that sends ``("swap")`` and blocks on the ack), so the
coordinator still rolls at most one fresh generation through the pool
per tick — and because the swap ack necessarily follows every update
already in that worker's pipe, the acked generation is never stale.

**The async front-end.** :class:`AsyncFibFrontend` pipelines the
fan-out: scripted lookup batches are submitted in event order but up to
``window`` batches stay in flight, so the frontend's serial work (owner
split, packing, merge) overlaps the workers' parallel lookups instead
of alternating with them. :class:`WorkerPool` is the synchronous core —
usable directly when pipelining is not wanted — and
:func:`serve_worker_scenario` is the CLI/benchmark entry point that
replays a scenario through the async front-end and reports a
:class:`~repro.serve.metrics.WorkerReport` with measured wall-clock
throughput next to the critical-path model's prediction.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import threading
import time
import traceback
from array import array
from concurrent.futures import Future
from concurrent.futures import TimeoutError as _FutureTimeout
from typing import Any, Dict, List, Optional, Sequence

from repro.core.fib import Fib
from repro.datasets.updates import UpdateOp
from repro.obs import NULL_REGISTRY, Registry, VisibilityTracker, now_ns
from repro.pipeline import registry
from repro.pipeline.shard import ShardSpec, restrict_fib
from repro.serve.autoscale import AutoscalePolicy, TrafficStats
from repro.serve.cluster import (
    ClusterShard,
    EpochCoordinator,
    _mix64,
    _mix64_vector,
    plan_cluster,
)
from repro.serve.faults import (
    FaultPlan,
    WorkerFaultState,
    corrupt_segment_header,
)
from repro.serve.metrics import WorkerReport
from repro.serve.supervisor import (
    DEFAULT_RESTART_WINDOW,
    RestartBudget,
    Supervisor,
)
from repro.serve.scenarios import ServeEvent
from repro.serve.server import DEFAULT_REBUILD_EVERY, FibServer
from repro.serve.shm import (
    DEFAULT_RING_BYTES,
    OP_ATTACH,
    OP_ATTACHED,
    OP_BCAST,
    OP_DELTA,
    OP_DELTAED,
    OP_ERROR,
    OP_LABELS,
    OP_LOOKUP,
    OP_POSITIONS,
    OP_PROBE,
    OP_PROBED,
    RingClosed,
    RingOverflow,
    RingPeerDied,
    ShmRing,
    attach_program,
    detach_program,
    publish_program,
    shm_available,
)

try:  # the frontend's owner split and merge vectorize when available
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on the no-numpy CI leg
    _np = None

#: Default in-flight lookup-batch window of the async front-end.
DEFAULT_WINDOW = 8

#: Default seconds the frontend waits on any single worker reply.
DEFAULT_TIMEOUT = 120.0

#: Default seconds the frontend waits on a *control* reply (report,
#: swap/attach acks, readiness of a respawned worker). A hard deadline,
#: deliberately tighter than the data-plane timeout: a hung-but-alive
#: worker must never block shutdown or supervision.
DEFAULT_CONTROL_TIMEOUT = 60.0

#: Default process start method ("spawn" imports cleanly everywhere;
#: pass "fork" where the platform offers it and boot cost matters).
DEFAULT_START_METHOD = "spawn"

#: Default data-plane transport; falls back to "pipe" when shared
#: memory, batching or a compiled program is unavailable.
DEFAULT_TRANSPORT = "shm"

#: The transports a pool can be asked for.
TRANSPORTS = ("shm", "pipe")

#: Data-plane request opcodes by the pipe protocol's message kind.
_RING_OPS = {"lookup": OP_LOOKUP, "bcast": OP_BCAST, "probe": OP_PROBE}

#: Ring opcode -> the ``op`` name a structured :class:`WorkerError` carries.
_OP_NAMES = {
    OP_LOOKUP: "lookup",
    OP_BCAST: "bcast",
    OP_PROBE: "probe",
    OP_ATTACH: "attach",
    OP_DELTA: "delta",
}

#: Seconds the frontend's ring pump sleeps between idle sweeps.
_READER_SLEEP = 0.0002


class WorkerError(RuntimeError):
    """A worker process failed, died, or timed out.

    Carries the failure as structured fields — ``worker_index`` (which
    shard), ``op`` (the operation in flight: ``"lookup"``, ``"bcast"``,
    ``"attach"``, ``"swap"``, ``"report"``, ...) and ``generation``
    (the program generation involved, shm transport) — so the
    supervisor and tests never parse the message text. Any field is
    None where the failure has no such context.
    """

    def __init__(
        self,
        message: str,
        *,
        worker_index: Optional[int] = None,
        op: Optional[str] = None,
        generation: Optional[int] = None,
    ):
        super().__init__(message)
        self.worker_index = worker_index
        self.op = op
        self.generation = generation


def _pack_addresses(addresses: Sequence[int]) -> bytes:
    """Batch -> packed int64 bytes (the pipe wire format)."""
    if _np is not None and isinstance(addresses, _np.ndarray):
        return addresses.tobytes()
    if isinstance(addresses, array) and addresses.typecode == "q":
        return addresses.tobytes()
    return array("q", addresses).tobytes()


def _pack_labels(labels: Sequence[Optional[int]]) -> bytes:
    """Labels -> packed int64 bytes (None encodes as 0 = no route)."""
    return array("q", [label or 0 for label in labels]).tobytes()


def _unpack(payload: bytes) -> array:
    values = array("q")
    values.frombytes(payload)
    return values


def pack_events(events: Sequence[ServeEvent]) -> List[ServeEvent]:
    """Re-script lookup events with wire-ready packed address batches.

    The scenario builder scripts addresses as Python int tuples — the
    interchange form every representation accepts. A packed script
    carries each batch as an ``array('q')`` instead, which the flat
    plane converts by buffer view and the pool ships as raw bytes, so
    neither the frontend nor a benchmark baseline pays the per-element
    conversion loop inside the timed region. Replays identically
    through a :class:`~repro.serve.server.FibServer`, a
    :class:`~repro.serve.cluster.FibCluster` or a :class:`WorkerPool`.
    """
    return [
        ServeEvent(event.time, event.kind, array("q", event.addresses), event.op)
        if event.is_lookup
        else event
        for event in events
    ]


# --------------------------------------------------------------------- worker


def _owned_slice(payload: bytes, filter_spec):
    """Filter a broadcast batch down to the addresses this worker owns.

    ``filter_spec`` is ``("prefix", lo, hi)`` or ``("hash", shards,
    index)``. Returns ``(positions_bytes, owned_addresses)`` — the
    input positions of the owned addresses (for the frontend's merge)
    and the owned slice itself. Vectorized when NumPy is importable in
    the worker; the portable loop is the fallback.
    """
    if _np is not None:
        batch = _np.frombuffer(payload, dtype=_np.int64)
        if filter_spec[0] == "prefix":
            mask = (batch >= filter_spec[1]) & (batch < filter_spec[2])
        else:
            shards, index = filter_spec[1], filter_spec[2]
            mask = (
                _mix64_vector(_np, batch.astype(_np.uint64))
                % _np.uint64(shards)
            ).astype(_np.int64) == index
        positions = _np.nonzero(mask)[0]
        owned = array("q")
        owned.frombytes(batch[positions].tobytes())
        return positions.tobytes(), owned
    values = _unpack(payload)
    positions = array("q")
    owned = array("q")
    if filter_spec[0] == "prefix":
        lo, hi = filter_spec[1], filter_spec[2]
        for position, address in enumerate(values):
            if lo <= address < hi:
                positions.append(position)
                owned.append(address)
    else:
        shards, index = filter_spec[1], filter_spec[2]
        for position, address in enumerate(values):
            if _mix64(address) % shards == index:
                positions.append(position)
                owned.append(address)
    return positions.tobytes(), owned


def worker_main(
    conn,
    name: str,
    fib: Fib,
    options: Optional[Dict[str, Any]],
    rebuild_every: int,
    batched: bool,
    filter_spec=None,
    obs_enabled: bool = False,
    fault_payload: Sequence[dict] = (),
) -> None:
    """The worker-process entry point: one FibServer behind a pipe.

    Module-level (and fed only picklable arguments) so the ``spawn``
    start method can import and run it on any platform. The worker
    builds its representation and compiled program *here*, from the
    pickled shard FIB — the shared-nothing guarantee — then acks
    readiness (seq 0) and serves the message loop until shutdown or a
    closed pipe. With ``obs_enabled`` the server records into a local
    registry whose snapshot rides home inside the ``report`` reply's
    :class:`~repro.serve.metrics.ServeReport` (the frontend merges it).
    """
    try:
        server = FibServer(
            name,
            fib,
            options=options,
            rebuild_every=rebuild_every,
            batched=batched,
            measure_staleness=False,
            auto_rebuild=False,  # the frontend's coordinator owns swaps
            obs=Registry() if obs_enabled else NULL_REGISTRY,
        )
    except Exception:  # noqa: BLE001 - report the build failure, then exit
        try:
            conn.send(("err", 0, traceback.format_exc()))
        except OSError:
            pass
        return
    conn.send(("ok", 0, ("ready", server.incremental, server.representation.size_bits())))
    faults = WorkerFaultState(fault_payload)
    try:
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "lookup":
                seq, payload = message[1], message[2]
                try:
                    faults.on_batch()
                    addresses = _unpack(payload)
                    lookup_before = server.lookup_seconds
                    update_before = server.update_seconds
                    labels = server.lookup_batch_packed(addresses)
                    conn.send(
                        (
                            "ok",
                            seq,
                            (
                                labels,
                                server.lookup_seconds - lookup_before,
                                server.update_seconds - update_before,
                            ),
                        )
                    )
                except Exception:  # noqa: BLE001
                    conn.send(("err", seq, traceback.format_exc()))
            elif kind == "bcast":
                # Broadcast fan-out: the whole batch arrives, the worker
                # keeps only the addresses its filter owns and answers
                # with their input positions alongside the labels.
                seq, payload = message[1], message[2]
                try:
                    faults.on_batch()
                    positions, owned = _owned_slice(payload, filter_spec)
                    lookup_before = server.lookup_seconds
                    update_before = server.update_seconds
                    labels = server.lookup_batch_packed(owned)
                    conn.send(
                        (
                            "ok",
                            seq,
                            (
                                positions,
                                labels,
                                server.lookup_seconds - lookup_before,
                                server.update_seconds - update_before,
                            ),
                        )
                    )
                except Exception:  # noqa: BLE001
                    conn.send(("err", seq, traceback.format_exc()))
            elif kind == "update":
                # Fire-and-forget: the frontend's oracle already
                # filtered bogus withdrawals, so failure here means the
                # shard diverged — fatal, surfaced via the pipe closing.
                server.apply_update(UpdateOp(message[1], message[2], message[3]))
            elif kind == "probe":
                seq, payload = message[1], message[2]
                try:
                    labels = server.representation.lookup_batch(_unpack(payload))
                    conn.send(("ok", seq, _pack_labels(labels)))
                except Exception:  # noqa: BLE001
                    conn.send(("err", seq, traceback.format_exc()))
            elif kind == "swap":
                seq = message[1]
                try:
                    rebuild_before = server.rebuild_seconds
                    server.rebuild()
                    conn.send(
                        (
                            "ok",
                            seq,
                            (
                                server.generation,
                                server.rebuild_seconds - rebuild_before,
                                server.representation.size_bits(),
                            ),
                        )
                    )
                except Exception:  # noqa: BLE001
                    conn.send(("err", seq, traceback.format_exc()))
            elif kind == "reshard":
                # Re-plan adoption: rebuild this worker's server from a
                # freshly restricted FIB (the union of its old and new
                # ranges, so lookups routed by either plan keep
                # answering until the frontend flips). Pipe FIFO makes
                # the cutover exact: updates sent before the snapshot
                # are inside the shipped FIB, later ones arrive after
                # this message and apply to the fresh server. On a
                # build failure the old server keeps serving and the
                # error reply lets the frontend abandon the transition.
                seq, shard_fib, new_filter = message[1], message[2], message[3]
                try:
                    build_started = time.perf_counter()
                    server = FibServer(
                        name,
                        shard_fib,
                        options=options,
                        rebuild_every=rebuild_every,
                        batched=batched,
                        measure_staleness=False,
                        auto_rebuild=False,
                        obs=server.obs,  # counters survive the re-plan
                    )
                    filter_spec = new_filter
                    conn.send(
                        (
                            "ok",
                            seq,
                            (
                                time.perf_counter() - build_started,
                                server.representation.size_bits(),
                            ),
                        )
                    )
                except Exception:  # noqa: BLE001
                    conn.send(("err", seq, traceback.format_exc()))
            elif kind == "report":
                seq, scenario = message[1], message[2]
                conn.send(("ok", seq, server.report(scenario=scenario)))
            elif kind == "shutdown":
                break
            else:
                conn.send(("err", message[1] if len(message) > 1 else None,
                           f"unknown message kind {kind!r}"))
    except (EOFError, OSError, KeyboardInterrupt):
        pass  # frontend went away; nothing to answer to
    finally:
        conn.close()


def shm_worker_main(conn, spec) -> None:
    """The shm-transport worker entry point: attach, then serve rings.

    The worker builds *nothing*: it attaches the frontend-published
    program segment and its two rings (three ``mmap`` calls), acks
    readiness over the pipe with its attach wall time, and serves
    lookups straight out of the mapped image, resolving each batch in
    place into its response ring (:meth:`ShmRing.send_into` +
    :meth:`~repro.pipeline.flat.FlatProgram.lookup_batch_packed_into`).
    ``OP_ATTACH`` records arrive FIFO with the lookups, so a fresh
    generation is adopted exactly between batches, never under one.
    The pipe carries only the low-rate control plane (``report``,
    ``shutdown``), checked while the ring is idle; a frontend death
    surfaces through the ring's liveness callback.
    """
    started = time.perf_counter()
    program = segment = None
    req = res = None
    try:
        req = ShmRing.attach(spec["request"])
        res = ShmRing.attach(spec["response"])
        program, generation, segment = attach_program(spec["program"])
        attach_seconds = time.perf_counter() - started
    except Exception:  # noqa: BLE001 - report the attach failure, then exit
        try:
            conn.send(("err", 0, traceback.format_exc()))
        except OSError:
            pass
        return
    conn.send(("ok", 0, ("ready", attach_seconds, program.size_in_bits())))
    filter_spec = spec["filter"]
    parent = multiprocessing.parent_process()
    alive = parent.is_alive if parent is not None else (lambda: True)
    lookups = batches = lookup_ns = 0
    spent = [0]  # written by the fill closures below
    # Worker-side telemetry: a local registry whose snapshot rides home
    # in the report reply; the frontend merges every worker's into its
    # own (associative, so arrival order does not matter).
    obs = Registry() if spec.get("obs") else NULL_REGISTRY
    faults = WorkerFaultState(spec.get("faults") or ())
    obs_latency = obs.histogram(
        "serve_lookup_latency_seconds",
        "batched lookup latency (in-place ring resolve only)",
    )
    obs_batch_size = obs.histogram(
        "serve_batch_size", "addresses per served batch"
    )
    obs_lookups = obs.counter("serve_lookups_total", "addresses served")
    # OP_ATTACH carries the frontend's update-ingress stamp (monotonic
    # ns — the one clock every local process shares) in aux1; the
    # window closes at the first batch served off the adopted image.
    visibility = VisibilityTracker(
        obs.histogram(
            "update_visibility_seconds",
            "update ingress to first batch served with it visible",
        )
    )
    try:
        while True:
            try:
                record = req.recv(alive=alive, timeout=0.05)
            except RingPeerDied:
                return
            if record is None:
                # Idle: service the control pipe, then poll again.
                if conn.poll(0):
                    message = conn.recv()
                    if message[0] == "report":
                        conn.send(("ok", message[1], {
                            "lookups": lookups,
                            "batches": batches,
                            "lookup_seconds": lookup_ns / 1e9,
                            "size_bits": program.size_in_bits(),
                            "generation": generation,
                            "attach_seconds": attach_seconds,
                            "obs": obs.snapshot() if obs.enabled else None,
                            # The worker is the response ring's producer,
                            # so its backpressure counters live here.
                            "ring": {
                                "pads": res.stat_pads,
                                "spin_stalls": res.stat_spin_stalls,
                                "sleep_stalls": res.stat_sleep_stalls,
                                "overflows": res.stat_overflows,
                                "bytes": res.stat_bytes,
                                "occupancy": res.used_slots(),
                            },
                        }))
                    elif message[0] == "shutdown":
                        return
                continue
            op = record.op
            try:
                if op == OP_LOOKUP or op == OP_PROBE:
                    if op == OP_LOOKUP:
                        faults.on_batch(res)
                    addresses = record.payload.cast("q")

                    def fill(view, addresses=addresses):
                        t0 = time.perf_counter_ns()
                        program.lookup_batch_packed_into(addresses, view)
                        spent[0] = time.perf_counter_ns() - t0
                        return spent[0], 0

                    res.send_into(
                        OP_LABELS if op == OP_LOOKUP else OP_PROBED,
                        len(addresses) * 8, fill, seq=record.seq, alive=alive,
                    )
                    if op == OP_LOOKUP:
                        lookups += len(addresses)
                        batches += 1
                        lookup_ns += spent[0]
                        obs_latency.observe(spent[0] / 1e9)
                        obs_batch_size.observe(len(addresses))
                        obs_lookups.inc(len(addresses))
                        if visibility.pending:
                            visibility.observe()
                elif op == OP_BCAST:
                    faults.on_batch(res)
                    positions, owned = _owned_slice(record.payload, filter_spec)

                    def fill(view, positions=positions, owned=owned):
                        view[:len(positions)] = positions
                        t0 = time.perf_counter_ns()
                        program.lookup_batch_packed_into(
                            owned, view[len(positions):]
                        )
                        spent[0] = time.perf_counter_ns() - t0
                        return spent[0], len(positions) // 8

                    res.send_into(
                        OP_POSITIONS, len(positions) + 8 * len(owned), fill,
                        seq=record.seq, alive=alive,
                    )
                    lookups += len(owned)
                    batches += 1
                    lookup_ns += spent[0]
                    obs_latency.observe(spent[0] / 1e9)
                    obs_batch_size.observe(len(owned))
                    obs_lookups.inc(len(owned))
                    if visibility.pending:
                        visibility.observe()
                elif op == OP_ATTACH:
                    faults.on_attach()
                    name = bytes(record.payload).decode()
                    t0 = time.perf_counter()
                    fresh, generation, fresh_segment = attach_program(name)
                    stale, stale_segment = program, segment
                    program, segment = fresh, fresh_segment
                    detach_program(stale, stale_segment)
                    adopted = time.perf_counter() - t0
                    attach_seconds = max(attach_seconds, adopted)
                    if record.aux1:  # frontend ingress stamp (monotonic ns)
                        visibility.stamp(record.aux1)
                    res.send(
                        OP_ATTACHED, seq=record.seq, generation=generation,
                        aux1=int(adopted * 1e9), alive=alive,
                    )
                elif op == OP_DELTA:
                    # Terminal patch runs riding an update instead of a
                    # full re-image: land them in the attached program's
                    # process-local overlay (the mapped rows stay
                    # untouched). FIFO with lookups, so adoption falls
                    # exactly between batches, like an attach.
                    t0 = time.perf_counter()
                    triples = record.payload.cast("q")
                    program.overlay_ingest(
                        [
                            (triples[i], triples[i + 1], triples[i + 2])
                            for i in range(0, len(triples), 3)
                        ]
                    )
                    adopted = time.perf_counter() - t0
                    if record.aux1:  # frontend ingress stamp (monotonic ns)
                        visibility.stamp(record.aux1)
                    res.send(
                        OP_DELTAED, seq=record.seq,
                        generation=record.generation,
                        aux1=int(adopted * 1e9), alive=alive,
                    )
                else:
                    raise ValueError(f"unknown request opcode {op}")
            except RingPeerDied:
                return
            except Exception:  # noqa: BLE001 - per-record error reply
                try:
                    res.send(
                        OP_ERROR, traceback.format_exc().encode(),
                        seq=record.seq, alive=alive, timeout=5.0,
                    )
                except (RingPeerDied, RingOverflow):
                    return
            finally:
                req.advance()
    except (EOFError, OSError, KeyboardInterrupt):
        pass  # frontend went away; nothing to answer to
    finally:
        # Drop every lingering view of the ring buffers (the last
        # record's payload, its cast, the fill closure holding it) so
        # the mappings release cleanly instead of at interpreter exit.
        record = addresses = fill = None  # noqa: F841
        try:
            conn.close()
        except OSError:
            pass
        req.close()
        res.close()
        if program is not None:
            detach_program(program, segment)


# ------------------------------------------------------------------ frontend


class _WorkerHandle:
    """Frontend-side state of one worker: process, pipe, in-flight map."""

    __slots__ = (
        "index",
        "lo",
        "hi",
        "routes",
        "process",
        "conn",
        "pending",
        "lock",
        "send_lock",
        "seq",
        "dead",
        "reason",
        "fail_op",
        "reader",
        "req_ring",
        "res_ring",
        "attach_seconds",
        "incarnation",
        "reaped",
        "on_fail",
    )

    def __init__(self, index: int, lo: int, hi: int, routes: int, process, conn):
        self.index = index
        self.lo = lo
        self.hi = hi
        self.routes = routes
        self.process = process
        self.conn = conn
        self.pending: Dict[int, Future] = {}
        self.lock = threading.Lock()
        # Serializes producers onto the worker's pipe/request ring: the
        # replay thread, the supervisor's publish walk and the merge
        # path's transparent retry may all submit — the ring's SPSC
        # contract needs exactly one producer at a time.
        self.send_lock = threading.Lock()
        self.seq = 0
        self.dead = False
        self.reason = ""
        self.fail_op: Optional[str] = None
        self.req_ring: Optional[ShmRing] = None  # shm transport only
        self.res_ring: Optional[ShmRing] = None
        self.attach_seconds = 0.0
        self.incarnation = 0   # bumped per supervisor respawn
        self.reaped = False    # OS resources retired exactly once
        self.on_fail = None    # supervisor notification hook

    def error(self, op: Optional[str] = None) -> WorkerError:
        """A structured error for using this handle while it is dead."""
        return WorkerError(
            self.reason or f"worker {self.index} is gone",
            worker_index=self.index,
            op=op or self.fail_op,
        )

    def fail(self, reason: str, *, op: Optional[str] = None) -> None:
        """Mark dead, fail every in-flight future, wake the supervisor.

        Called from reader threads (EOF), ring stalls, reply deadlines
        and teardown; only the first call records the reason and fires
        the ``on_fail`` hook.
        """
        with self.lock:
            already = self.dead
            self.dead = True
            if not already:
                self.reason = reason
                self.fail_op = op
            drained = list(self.pending.values())
            self.pending.clear()
        for future in drained:
            if not future.done():
                future.set_exception(
                    WorkerError(reason, worker_index=self.index, op=op)
                )
        if not already and self.on_fail is not None:
            self.on_fail(self.index, reason, op or "died")


def _reader_loop(handle: _WorkerHandle) -> None:
    """Per-worker reply pump: resolve futures, turn EOF into failures."""
    try:
        while True:
            status, seq, payload = handle.conn.recv()
            if seq is None:
                handle.fail(f"worker {handle.index} failed: {payload}")
                return
            with handle.lock:
                future = handle.pending.pop(seq, None)
            if future is None:
                continue  # reply for a caller that already timed out
            if status == "ok":
                future.set_result(payload)
            else:
                future.set_exception(
                    WorkerError(f"worker {handle.index} failed: {payload}")
                )
    except (EOFError, OSError):
        handle.fail(f"worker {handle.index} (pid {handle.process.pid}) died")


class _ProxyServer:
    """Duck-typed FibServer facade over a remote worker, so the
    cluster's :class:`~repro.serve.cluster.EpochCoordinator` staggers
    swaps across process boundaries without modification: ``pending``
    is the frontend-tracked backlog of updates routed to the worker
    since its last swap, and ``rebuild()`` is a synchronous
    swap-and-ack over the control channel."""

    __slots__ = ("_pool", "_handle", "pending")

    def __init__(self, pool: "WorkerPool", handle: _WorkerHandle):
        self._pool = pool
        self._handle = handle
        self.pending: List[UpdateOp] = []

    @property
    def is_stale(self) -> bool:
        return bool(self.pending)

    def rebuild(self) -> None:
        self._pool._swap(self._handle, self)


class _PublishProxy:
    """Duck-typed FibServer facade over the shm transport's *publisher*.

    On the shm plane there is one logical update shard — the
    frontend-hosted publisher server — and "rebuild" means publish a
    fresh program segment and walk every worker onto it
    (:meth:`WorkerPool._publish`). ``pending`` tracks every update
    applied since the last published generation, incremental planes
    included: patches mutate the publisher's live program immediately,
    but the workers' mapped images only change when a generation
    ships. Wrapping the publisher this way lets the unmodified
    :class:`~repro.serve.cluster.EpochCoordinator` pace publishes
    exactly as it paces per-worker swaps on the pipe transport.
    """

    __slots__ = ("_pool", "pending")

    def __init__(self, pool: "WorkerPool"):
        self._pool = pool
        self.pending: List[UpdateOp] = []

    @property
    def is_stale(self) -> bool:
        return bool(self.pending)

    def rebuild(self) -> None:
        self._pool._publish()


class WorkerPool:
    """N shard-restricted FibServers, each a real OS process.

    Parameters mirror :class:`~repro.serve.cluster.FibCluster`, plus:

    start_method:
        ``"spawn"`` (default, portable) or ``"fork"`` where available.
    fanout:
        ``"broadcast"`` ships every batch whole to every worker, which
        filters its owned slice in C and answers with positions — the
        owner split runs *in parallel on the workers* instead of on the
        frontend's serial path. ``"split"`` groups by owner at the
        frontend and ships each worker only its slice (less pipe
        bandwidth, more frontend CPU). ``"auto"`` (default) broadcasts
        when the plan can vectorize, splits otherwise.
    timeout:
        Seconds to wait on any single worker reply before declaring the
        worker lost (belt under the reader thread's EOF detection).
    control_timeout:
        Hard deadline (seconds) on control-plane replies — report,
        swap/attach acks, respawn readiness — so a hung-but-alive
        worker can never block shutdown or supervision.
    max_restarts:
        Restart budget per shard inside ``restart_window`` seconds.
        0 (the default) disables supervision entirely: a worker death
        is terminal, exactly the pre-supervision behavior. Positive
        values start a :class:`~repro.serve.supervisor.Supervisor`
        that respawns failed shards with bounded exponential backoff,
        re-attaches the current published generation, replays the
        post-crash update delta, transparently retries in-flight
        batches, and serves a down shard's range *degraded* from the
        frontend (publisher on shm, control oracle on pipe) so
        availability never drops to zero.
    restart_window:
        Sliding window (seconds) the restart budget counts within.
    faults:
        A :class:`~repro.serve.faults.FaultPlan` scripting
        deterministic failures into this run (chaos testing). None —
        the default — injects nothing and costs nothing.
    transport:
        ``"shm"`` (default) serves over shared-memory rings with the
        compiled program in a published segment the workers attach;
        falls back to ``"pipe"`` — recorded in the report — when shared
        memory is unavailable, serving is unbatched, or the
        representation compiles no flat program. ``"pipe"`` forces the
        pickled-tuple wire protocol.
    ring_bytes:
        Per-direction, per-worker ring data capacity (shm transport).
    obs:
        Telemetry registry (:mod:`repro.obs`). When enabled, every
        worker records into a process-local registry that ships home
        over the control channel and merges into this one at
        :meth:`report`; ring backpressure counters and occupancy are
        sampled there too. Disabled (the default) costs nothing.
    autoscale:
        An :class:`~repro.serve.autoscale.AutoscalePolicy` turning on
        the traffic-adaptive control loop: the frontend folds every
        batch into per-slot counters and, when the observed
        ``lookup_imbalance`` drifts past the threshold, re-plans the
        partition live. On the shm transport workers map the *full*
        published program, so adopting a new plan is a frontend-only
        owner-split flip; on the pipe transport the pool walks one
        worker at a time onto a union-restricted snapshot (old range ∪
        new range ∪ hot ranges) while the old plan keeps serving — no
        global pause, and parity holds throughout because every worker
        can answer both plans until the flip. Forces split fan-out.
        The frontend flow-cache tier (``policy.flow_cache``) is the
        in-process :class:`~repro.serve.cluster.FibCluster`'s; the
        pool ignores it.
    """

    def __init__(
        self,
        name: str,
        fib: Fib,
        *,
        workers: int = 2,
        partition: str = "prefix",
        options: Optional[Dict[str, Any]] = None,
        rebuild_every: int = DEFAULT_REBUILD_EVERY,
        batched: bool = True,
        granularity: Optional[int] = None,
        start_method: str = DEFAULT_START_METHOD,
        fanout: str = "auto",
        timeout: float = DEFAULT_TIMEOUT,
        control_timeout: float = DEFAULT_CONTROL_TIMEOUT,
        transport: str = DEFAULT_TRANSPORT,
        ring_bytes: int = DEFAULT_RING_BYTES,
        obs: Registry = NULL_REGISTRY,
        max_restarts: int = 0,
        restart_window: float = DEFAULT_RESTART_WINDOW,
        faults: Optional[FaultPlan] = None,
        autoscale: Optional[AutoscalePolicy] = None,
    ):
        if fib.width > 63:
            # The pipe wire format packs addresses and labels as signed
            # int64 (array('q')); wider tables serve through the
            # in-process FibCluster instead.
            raise ValueError(
                f"worker pool wire format carries at most 63-bit addresses, "
                f"got a {fib.width}-bit FIB (use FibCluster for wider tables)"
            )
        if transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {transport!r}; "
                f"choose one of {', '.join(TRANSPORTS)}"
            )
        self._plan = plan_cluster(fib, workers, mode=partition, granularity=granularity)
        self._spec = registry.get(name)
        self._rep_name = name
        self._options = dict(options or {})
        self._control = fib.copy()
        self._timeout = timeout
        if control_timeout <= 0:
            raise ValueError(
                f"control_timeout must be positive, got {control_timeout}"
            )
        self._control_timeout = control_timeout
        self._start_method = start_method
        self._rebuild_every = rebuild_every
        self._batched = batched
        self._ring_bytes = ring_bytes
        self._faults = (
            faults.resolve(self._plan.shards) if faults is not None and faults
            else None
        )
        self._max_restarts = max_restarts
        self._restart_window = restart_window
        self._supervisor: Optional[Supervisor] = None
        # Serializes topology changes — publishes, respawns, updates,
        # degraded serving and close — against each other. Re-entrant:
        # a respawn replays the update delta by publishing.
        self._pool_lock = threading.RLock()
        if fanout not in ("auto", "split", "broadcast"):
            raise ValueError(
                f"unknown fanout {fanout!r}; choose auto, split or broadcast"
            )
        self._broadcast = self._plan.shards > 1 and (
            fanout == "broadcast"
            or (fanout == "auto" and _np is not None and self._plan.vectorized)
        )
        self._autoscale = autoscale
        if autoscale is not None:
            # Re-planning moves shard boundaries out from under the
            # fixed per-worker broadcast filters, so the autoscaled
            # pool always owner-splits at the frontend.
            self._broadcast = False
        self._traffic = (
            TrafficStats(fib.width, autoscale.granularity, obs=obs)
            if autoscale is not None
            else None
        )
        # -------------------------------------------------- re-plan state
        self._replans = 0
        self._lookups_during_replan = 0
        self._last_replan_lookups = 0
        self._replan_seconds = 0.0
        self._pending_plan = None
        self._reshard_specs: List[ShardSpec] = []
        self._reshard_next = 0
        self._reshard_inflight: Optional[tuple] = None
        self._obs_replans = obs.counter(
            "autoscale_replans_total", "live traffic-driven re-plans"
        )
        self._obs_imbalance = obs.gauge(
            "autoscale_lookup_imbalance",
            "observed lookup imbalance at the last drift check",
        )
        self._closed = False
        self._obs = obs
        self._vis_ingress_ns: Optional[int] = None  # oldest unpublished update
        # shm-plane state exists in every mode so close() is always safe.
        self._publisher: Optional[FibServer] = None
        self._publish_proxy: Optional[_PublishProxy] = None
        self._program_segment = None
        self._segments: List[Any] = []   # frontend-owned program segments
        self._rings: List[ShmRing] = []  # frontend-owned rings (both ends')
        self._ring_reader: Optional[threading.Thread] = None
        self._generation = 0
        self._publishes = 0
        self._delta_publishes = 0
        #: The program object behind the live segment, plus how many
        #: delta publishes have ridden since it was last re-imaged —
        #: a light publish is only sound while the publisher still
        #: serves the *same* program the workers attached.
        self._published_program = None
        self._deltas_since_image = 0
        self._attach_seconds = 0.0
        self._stale_lookups = 0
        self._bytes_tx = 0
        self._bytes_rx = 0
        started = time.perf_counter()
        self._transport = "pipe"
        if transport == "shm" and batched and shm_available():
            try:
                publisher = FibServer(
                    name,
                    fib,
                    options=self._options,
                    rebuild_every=rebuild_every,
                    batched=True,
                    measure_staleness=False,
                    auto_rebuild=False,  # the pool's coordinator paces publishes
                    obs=obs,  # frontend-side: shares the pool registry
                )
            except Exception:  # noqa: BLE001 - same surface as a worker build
                raise WorkerError(
                    f"publisher build failed:\n{traceback.format_exc()}"
                ) from None
            if publisher.serving_program() is not None:
                self._publisher = publisher
                self._transport = "shm"
            # else: no compiled plane to publish (e.g. compiled=False);
            # the pickled-pipe transport serves instead.
        context = multiprocessing.get_context(start_method)
        self._handles: List[_WorkerHandle] = []
        ready: List[Future] = []
        try:
            if self._transport == "shm":
                self._generation = 1
                program = self._publisher.serving_program()
                self._program_segment = publish_program(
                    program, self._generation
                )
                self._published_program = program
                program.take_patch_delta()  # image is current: drop journal
                self._segments.append(self._program_segment)
                for index in range(self._plan.shards):
                    handle = self._spawn_shm_worker(
                        context, index, len(fib), incarnation=0
                    )
                    ready.append(handle.pending[0])
                    self._handles.append(handle)
            else:
                for spec in self._plan.materialize(fib):
                    handle = self._spawn_pipe_worker(
                        context, spec, incarnation=0
                    )
                    ready.append(handle.pending[0])
                    self._handles.append(handle)
            if self._transport == "shm":
                self._proxies = []
            else:
                self._proxies = [_ProxyServer(self, h) for h in self._handles]
            acks = [
                self._await(future, handle=handle, op="ready")
                for handle, future in zip(self._handles, ready)
            ]
        except Exception:
            self.close()
            raise
        if self._transport == "shm":
            self._incremental = self._publisher.incremental
            for handle, ack in zip(self._handles, acks):
                handle.attach_seconds = ack[1]
            self._attach_seconds = max(h.attach_seconds for h in self._handles)
            self._publish_proxy = _PublishProxy(self)
            self._coordinator = EpochCoordinator(
                [
                    ClusterShard(
                        0, 0, 1 << self._plan.width, len(fib), self._publish_proxy
                    )
                ],
                rebuild_every,
            )
            self._ring_reader = threading.Thread(
                target=self._shm_reader_loop, daemon=True
            )
            self._ring_reader.start()
        else:
            self._incremental = bool(acks[0][1])
            self._coordinator = EpochCoordinator(
                [
                    ClusterShard(h.index, h.lo, h.hi, h.routes, proxy)
                    for h, proxy in zip(self._handles, self._proxies)
                ],
                rebuild_every,
            )
        self._spawn_seconds = time.perf_counter() - started
        # ------------------------------------------------- serving counters
        self._lookups = 0
        self._batches = 0
        self._updates_applied = 0
        self._updates_skipped = 0
        self._fanout_total = 0
        self._lookup_seconds = 0.0       # critical-path model clock
        self._busy_lookup_seconds = 0.0  # summed worker-reported time
        self._update_seconds = 0.0       # oracle edits + worker patch drains
        self._rebuild_seconds = 0.0      # acked swap costs
        self._swaps = 0
        self._inflight = 0               # lookup batches currently in flight
        self._inflight_lock = threading.Lock()
        self._inflight_started = 0.0
        self._wall_lookup_seconds = 0.0
        # Merges may run on executor threads concurrently (the async
        # front-end's window), so clock folding takes this lock.
        self._account_lock = threading.Lock()
        # --------------------------------------------------- supervision
        self._restarts = 0
        self._degraded_lookups = 0
        self._failed_lookups = 0
        self._retried_batches = 0
        self._recovery_seconds = 0.0
        self._obs_restarts = obs.counter(
            "worker_restarts_total", "supervisor respawns by failure kind",
            ("reason",),
        )
        self._obs_degraded = obs.counter(
            "degraded_lookups_total",
            "lookups the frontend answered itself while a shard was down",
        )
        self._obs_recovery = obs.histogram(
            "recovery_seconds", "shard failure detection to re-admission"
        )
        if max_restarts > 0:
            self._supervisor = Supervisor(
                self._respawn,
                RestartBudget(max_restarts, restart_window),
                heal=self._heal_publish if self._transport == "shm" else None,
                on_restart=self._note_restart,
            )
            self._supervisor.start()
            for handle in self._handles:
                handle.on_fail = self._supervisor.notify

    # ------------------------------------------------------------- properties

    @property
    def name(self) -> str:
        return self._spec.name

    @property
    def plan(self):
        return self._plan

    @property
    def workers(self) -> int:
        return self._plan.shards

    @property
    def control(self) -> Fib:
        """The pool-wide continuously-updated tabular oracle."""
        return self._control

    @property
    def incremental(self) -> bool:
        return self._incremental

    @property
    def coordinator(self) -> EpochCoordinator:
        return self._coordinator

    @property
    def start_method(self) -> str:
        return self._start_method

    @property
    def transport(self) -> str:
        """The data plane actually serving: ``shm`` or ``pipe`` (what
        was requested may have fallen back; this is what runs)."""
        return self._transport

    @property
    def spawn_seconds(self) -> float:
        """Wall seconds from first process start to the last ready ack
        (on the shm transport this includes the one-time publisher
        build and segment publish, so it is near-constant in worker
        count instead of linear)."""
        return self._spawn_seconds

    def __repr__(self) -> str:
        return (
            f"WorkerPool(name={self.name!r}, workers={self.workers}, "
            f"partition={self._plan.mode!r}, start={self._start_method!r}, "
            f"transport={self._transport!r})"
        )

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # --------------------------------------------------------------- spawning

    def _filter_spec(self, index: int):
        """The broadcast ownership filter of one shard."""
        if self._plan.mode == "hash":
            return ("hash", self._plan.shards, index)
        lo, hi = self._plan.shard_range(index)
        return ("prefix", lo, hi)

    def _fault_payload(self, index: int, incarnation: int):
        if self._faults is None:
            return ()
        return self._faults.worker_payload(index, incarnation)

    def _spawn_shm_worker(
        self, context, index: int, routes: int, incarnation: int
    ) -> _WorkerHandle:
        """Start one shm-transport worker process against the currently
        published program segment; its readiness ack is pending[0]."""
        lo, hi = self._plan.shard_range(index)
        req_ring = ShmRing.create(self._ring_bytes)
        self._rings.append(req_ring)
        res_ring = ShmRing.create(self._ring_bytes)
        self._rings.append(res_ring)
        parent_conn, child_conn = context.Pipe(duplex=True)
        process = context.Process(
            target=shm_worker_main,
            args=(
                child_conn,
                {
                    "request": req_ring.name,
                    "response": res_ring.name,
                    "program": self._program_segment.name,
                    "filter": self._filter_spec(index),
                    "index": index,
                    "obs": self._obs.enabled,
                    "faults": self._fault_payload(index, incarnation),
                },
            ),
            daemon=True,
            name=f"repro-fib-worker-{index}",
        )
        process.start()
        child_conn.close()  # the child owns its end now
        handle = _WorkerHandle(index, lo, hi, routes, process, parent_conn)
        handle.incarnation = incarnation
        handle.req_ring = req_ring
        handle.res_ring = res_ring
        handle.pending[0] = Future()  # the readiness ack (seq 0)
        handle.reader = threading.Thread(
            target=_reader_loop, args=(handle,), daemon=True
        )
        handle.reader.start()
        return handle

    def _spawn_pipe_worker(self, context, spec, incarnation: int) -> _WorkerHandle:
        """Start one pipe-transport worker process from a shard spec
        (the pickled restricted FIB); its readiness ack is pending[0]."""
        parent_conn, child_conn = context.Pipe(duplex=True)
        process = context.Process(
            target=worker_main,
            args=(
                child_conn,
                self._rep_name,
                spec.fib,
                self._options,
                self._rebuild_every,
                self._batched,
                self._filter_spec(spec.index),
                self._obs.enabled,
                self._fault_payload(spec.index, incarnation),
            ),
            daemon=True,
            name=f"repro-fib-worker-{spec.index}",
        )
        process.start()
        child_conn.close()  # the child owns its end now
        handle = _WorkerHandle(
            spec.index, spec.lo, spec.hi, spec.routes, process, parent_conn
        )
        handle.incarnation = incarnation
        handle.pending[0] = Future()  # the readiness ack (seq 0)
        handle.reader = threading.Thread(
            target=_reader_loop, args=(handle,), daemon=True
        )
        handle.reader.start()
        return handle

    # ------------------------------------------------------------ supervision

    def _recoverable(self, index: int) -> bool:
        """True while the pool should degrade (not error) for shard
        ``index``: supervision is on and its restart budget remains."""
        supervisor = self._supervisor
        return (
            supervisor is not None
            and not self._closed
            and supervisor.recoverable(index)
        )

    def settle(self, timeout: Optional[float] = None) -> bool:
        """Block until no shard is down-but-recoverable: every pending
        respawn has landed (or its budget is spent and the shard is
        abandoned). Returns ``True`` when fully settled within the
        deadline (default: the control timeout). A no-op pool — no
        supervisor, nothing dead — settles immediately."""
        deadline = time.monotonic() + (
            self._control_timeout if timeout is None else timeout
        )
        while True:
            pending = any(
                handle.dead and self._recoverable(handle.index)
                for handle in self._handles
            )
            if not pending:
                return True
            if time.monotonic() >= deadline:
                return False
            time.sleep(0.005)

    def _note_restart(self, index: int, kind: str, recovery: float) -> None:
        with self._account_lock:
            self._restarts += 1
            self._recovery_seconds += recovery
        self._obs_restarts.labels(kind).inc()
        self._obs_recovery.observe(recovery)

    def _heal_publish(self) -> None:
        """Republish a clean current generation (supervisor hook, after
        a failed respawn attempt): when the published segment itself is
        the failure — a corrupted header — the retry must have a fresh
        image to attach."""
        if self._transport != "shm" or self._closed:
            return
        with self._pool_lock:
            self._publish(force_full=True)

    def _reap(self, handle: _WorkerHandle, join_timeout: float = 5.0) -> None:
        """Retire one handle's OS resources exactly once (idempotent):
        mark it dead, terminate-and-join the process, close its pipe,
        close+unlink its rings. Both the respawn path (the old
        incarnation) and :meth:`close` (whatever is current) funnel
        through here, so a respawned-then-crashed child can never be
        reaped twice — or leak."""
        if handle.reaped:
            return
        handle.reaped = True
        if not handle.dead:
            handle.fail(f"worker {handle.index} shut down")
        process = handle.process
        if process.is_alive():
            process.terminate()
        process.join(join_timeout)
        try:
            handle.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        for ring in (handle.req_ring, handle.res_ring):
            if ring is None:
                continue
            if ring in self._rings:
                self._rings.remove(ring)
            ring.close()  # owner side: unlinks the segment
        handle.req_ring = handle.res_ring = None

    def _respawn(self, index: int, reason: str) -> None:
        """Replace one dead/hung shard with a fresh incarnation
        (supervisor thread). Reaps the old process and rings exactly
        once, spawns against the current state — the published program
        segment on shm, the control oracle on pipe — awaits readiness
        on the control deadline, replays the post-crash update delta,
        and installs the new handle. Runs under the pool lock, so it
        is serialized against publishes, updates and close."""
        with self._pool_lock:
            if self._closed:
                raise WorkerError("pool is closed", worker_index=index)
            if self._pending_plan is not None:
                # A re-plan caught mid-flight by a crash: walk it back
                # so the old plan (which the respawn spec below is cut
                # from) is the single authority again.
                self._abort_replan()
            old = self._handles[index]
            self._reap(old)
            incarnation = old.incarnation + 1
            context = multiprocessing.get_context(self._start_method)
            if self._transport == "shm":
                handle = self._spawn_shm_worker(
                    context, index, old.routes, incarnation
                )
            else:
                spec = self._plan.materialize(self._control)[index]
                handle = self._spawn_pipe_worker(context, spec, incarnation)
            try:
                ack = self._await(
                    handle.pending[0], handle=handle, op="ready",
                    timeout=self._control_timeout,
                )
            except WorkerError:
                self._reap(handle)
                raise
            if self._transport == "shm":
                handle.attach_seconds = ack[1]
            if self._supervisor is not None:
                handle.on_fail = self._supervisor.notify
            self._handles[index] = handle
            if self._transport == "shm":
                if self._publish_proxy.pending or self._deltas_since_image:
                    # Replay the delta: the fresh worker attached the
                    # last *imaged* generation; everything newer lives
                    # in the publisher (pending updates) or rode past
                    # as delta publishes the dead incarnation consumed
                    # — either way, only a full publish catches it up.
                    self._publish(force_full=True)
            else:
                # The worker was rebuilt from the control oracle, which
                # already carries every accepted update — its backlog
                # is empty by construction.
                proxy = _ProxyServer(self, handle)
                self._proxies[index] = proxy
                self._coordinator.replace_server(index, proxy)

    # -------------------------------------------------------------- messaging

    def _submit(self, handle: _WorkerHandle, kind: str, *payload) -> Future:
        """Send one request, registering its reply future (race-free
        against the reader thread declaring the worker dead)."""
        with handle.lock:
            if handle.dead:
                raise handle.error(op=kind)
            handle.seq += 1
            seq = handle.seq
            future: Future = Future()
            handle.pending[seq] = future
        try:
            with handle.send_lock:
                handle.conn.send((kind,) + (seq,) + payload)
        except (OSError, ValueError) as error:
            reason = f"worker {handle.index} pipe broke: {error}"
            handle.fail(reason, op=kind)
            raise WorkerError(
                reason, worker_index=handle.index, op=kind
            ) from None
        return future

    def _submit_ring(
        self, handle: _WorkerHandle, op: int, payload, generation: int = 0,
        aux1: int = 0,
    ) -> Future:
        """Ring twin of :meth:`_submit`: register the reply future, then
        write the record into the worker's request ring — blocking under
        backpressure with the worker's liveness as the escape hatch, so
        a dead consumer is a :class:`WorkerError`, never a hang."""
        op_name = _OP_NAMES.get(op, str(op))
        with handle.lock:
            if handle.dead:
                raise handle.error(op=op_name)
            handle.seq += 1
            seq = handle.seq
            future: Future = Future()
            handle.pending[seq] = future
        try:
            with handle.send_lock:
                handle.req_ring.send(
                    op,
                    payload,
                    seq=seq,
                    generation=generation,
                    aux1=aux1,
                    alive=lambda: not handle.dead and handle.process.is_alive(),
                    timeout=self._timeout,
                )
        except RingOverflow as error:
            # The batch can never fit; the worker is fine — fail only
            # this request.
            with handle.lock:
                handle.pending.pop(seq, None)
            raise WorkerError(
                str(error), worker_index=handle.index, op=op_name,
                generation=generation or None,
            ) from None
        except RingPeerDied as error:
            reason = f"worker {handle.index} ring stalled: {error}"
            handle.fail(reason, op=op_name)
            raise WorkerError(
                reason, worker_index=handle.index, op=op_name,
                generation=generation or None,
            ) from None
        except (RingClosed, ValueError, AttributeError):
            # The ring was reaped under us (handle declared dead by the
            # supervisor between our liveness check and the send).
            raise handle.error(op=op_name) from None
        return future

    def _request(self, handle: _WorkerHandle, kind: str, packed) -> Future:
        """Transport-dispatching data-plane submit (lookup/bcast/probe)."""
        if self._transport == "shm":
            return self._submit_ring(handle, _RING_OPS[kind], packed)
        return self._submit(handle, kind, packed)

    def _request_or_defer(self, handle: _WorkerHandle, kind: str, packed) -> Future:
        """Submit, or — when the worker is down but recoverable — defer
        the failure into the returned future so the merge path recovers
        it there (retry against the respawned worker, or serve the part
        degraded from the frontend)."""
        try:
            return self._request(handle, kind, packed)
        except WorkerError as error:
            if not self._recoverable(handle.index):
                raise
            future: Future = Future()
            future.set_exception(error)
            return future

    def _send_update(self, handle: _WorkerHandle, op: UpdateOp) -> None:
        if handle.dead:
            raise handle.error(op="update")
        try:
            with handle.send_lock:
                handle.conn.send(("update", op.prefix, op.length, op.label))
        except (OSError, ValueError) as error:
            reason = f"worker {handle.index} pipe broke: {error}"
            handle.fail(reason, op="update")
            raise WorkerError(
                reason, worker_index=handle.index, op="update"
            ) from None

    def _await(
        self,
        future: Future,
        *,
        handle: Optional[_WorkerHandle] = None,
        op: Optional[str] = None,
        timeout: Optional[float] = None,
    ):
        """Block on one reply with a deadline (never hangs: the reader
        thread fails the future the moment the pipe closes, and the
        deadline catches what EOF detection cannot — a hung-but-alive
        worker). A timed-out ``handle`` is *declared failed*, which is
        detection, not just an error: supervision sees hung workers
        through exactly the same path as dead ones."""
        deadline = self._timeout if timeout is None else timeout
        try:
            return future.result(deadline)
        except (TimeoutError, _FutureTimeout):
            if handle is not None and not handle.dead:
                handle.fail(
                    f"worker {handle.index} hung: no reply to "
                    f"{op or 'request'} within {deadline:.0f}s",
                    op=op,
                )
            raise WorkerError(
                f"no worker reply to {op or 'request'} within {deadline:.0f}s",
                worker_index=handle.index if handle is not None else None,
                op=op,
            ) from None

    def _shm_reader_loop(self) -> None:
        """The pool-wide reply pump of the shm transport: drain every
        worker's response ring, resolving futures in the pipe
        protocol's reply shapes so the merge path is transport-blind.
        Worker death stays the pipe reader's to detect (EOF ->
        :meth:`_WorkerHandle.fail`); this loop only ever sees records a
        live worker published, and it stops when the pool closes."""
        idle = 0
        while not self._closed:
            busy = False
            for handle in self._handles:
                ring = handle.res_ring
                if ring is None or handle.dead:
                    continue
                while True:
                    try:
                        record = ring.try_recv()
                    except (RingClosed, ValueError):  # pragma: no cover
                        record = None  # torn down under us mid-close
                    if record is None:
                        break
                    busy = True
                    try:
                        self._resolve_reply(handle, record)
                    finally:
                        ring.advance()
            if busy:
                idle = 0
                continue
            idle += 1
            if idle > 50:
                time.sleep(_READER_SLEEP)

    def _resolve_reply(self, handle: _WorkerHandle, record) -> None:
        """Complete one in-flight future from a ring record, copying the
        payload out of the ring before the slots are released."""
        with handle.lock:
            future = handle.pending.pop(record.seq, None)
        if future is None:
            return  # reply for a caller that already timed out
        op = record.op
        if op == OP_ERROR:
            future.set_exception(
                WorkerError(
                    f"worker {handle.index} failed: "
                    f"{bytes(record.payload).decode()}"
                )
            )
            return
        payload = bytes(record.payload)
        if op == OP_LABELS:
            with self._account_lock:
                self._bytes_rx += len(payload)
            future.set_result((payload, record.aux1 / 1e9, 0.0))
        elif op == OP_POSITIONS:
            split = record.aux2 * 8
            with self._account_lock:
                self._bytes_rx += len(payload)
            future.set_result(
                (payload[:split], payload[split:], record.aux1 / 1e9, 0.0)
            )
        elif op == OP_PROBED:
            future.set_result(payload)
        elif op == OP_ATTACHED:
            future.set_result(record.aux1 / 1e9)
        elif op == OP_DELTAED:
            future.set_result(record.aux1 / 1e9)
        else:  # pragma: no cover - protocol drift
            future.set_exception(
                WorkerError(f"unknown reply opcode {op} from worker {handle.index}")
            )

    # ---------------------------------------------------------------- lookups

    def _split(self, addresses: Sequence[int]):
        """Owner split -> [(handle, positions, packed_addresses)].

        Vectorized (``ShardPlan.split_vector``: searchsorted + per-shard
        masks over an int64 view) when NumPy is available; the portable
        path reuses ``ShardPlan.group``.
        """
        if self._plan.shards == 1:
            return [(self._handles[0], None, _pack_addresses(addresses))]
        if _np is not None and self._plan.vectorized:
            if isinstance(addresses, _np.ndarray):
                batch = addresses
            elif isinstance(addresses, array) and addresses.typecode == "q":
                batch = _np.frombuffer(addresses, dtype=_np.int64)
            else:
                batch = _np.fromiter(
                    addresses, dtype=_np.int64, count=len(addresses)
                )
            return [
                (self._handles[shard], positions, slice_.tobytes())
                for shard, (positions, slice_) in self._plan.split_vector(batch).items()
            ]
        return [
            (self._handles[shard], positions, _pack_addresses(slice_))
            for shard, (positions, slice_) in self._plan.group(addresses).items()
        ]

    def _enter_flight(self) -> None:
        with self._inflight_lock:
            if self._inflight == 0:
                self._inflight_started = time.perf_counter()
            self._inflight += 1

    def _leave_flight(self) -> None:
        with self._inflight_lock:
            self._inflight -= 1
            if self._inflight == 0:
                self._wall_lookup_seconds += (
                    time.perf_counter() - self._inflight_started
                )

    def submit_batch(self, addresses: Sequence[int]):
        """Fan one batch out to the workers, without waiting.

        Returns the in-flight token ``(parts, count)`` that
        :meth:`merge_batch` (or the async front-end) completes. The
        coordinator gets its per-event tick first, exactly like the
        simulated cluster. Broadcast mode sends the packed batch whole
        to every worker (one ``bytes`` pickled N times at memcpy
        speed); split mode owner-groups here and ships slices.
        """
        self._tick()
        self._batches += 1
        count = len(addresses)
        if not count:
            return [], 0
        if self._traffic is not None:
            self._traffic.observe(addresses)
            self._autoscale_step(count)
        self._enter_flight()
        try:
            if self._broadcast:
                packed = _pack_addresses(addresses)
                sent = len(packed) * len(self._handles)
                parts = [
                    (
                        handle, None,
                        self._request_or_defer(handle, "bcast", packed),
                        "bcast", packed,
                    )
                    for handle in self._handles
                ]
            else:
                split = self._split(addresses)
                sent = sum(len(packed) for _, _, packed in split)
                parts = [
                    (
                        handle, positions,
                        self._request_or_defer(handle, "lookup", packed),
                        "lookup", packed,
                    )
                    for handle, positions, packed in split
                ]
        except WorkerError:
            # Rejected up front (the shard is dead with no budget left):
            # the whole batch is offered-but-unanswered, which is what
            # ``availability`` measures.
            self._leave_flight()
            self._lookups += count
            with self._account_lock:
                self._failed_lookups += count
            raise
        except Exception:
            # Any failure here (dead worker, malformed batch) must not
            # leak the in-flight counter, or the wall clock never folds
            # again for the rest of the run.
            self._leave_flight()
            raise
        self._lookups += count
        with self._account_lock:
            self._bytes_tx += sent
        if self._publish_proxy is not None and self._publish_proxy.pending:
            # Served against a generation older than the accepted
            # updates — the shm plane's analogue of a stale rebuild.
            self._stale_lookups += count
        return parts, count

    def _account_batch(self, replies) -> float:
        """Fold one batch's worker-reported lookup clocks into the
        counters; returns the critical path (the slowest worker's
        serving time). The per-reply update delta (the patch-log drain
        at the top of the worker's batch) is deliberately *not* folded
        here: every drain second is already inside the worker's own
        update clock, which :meth:`report` aggregates — folding it
        again would double-count it."""
        critical = 0.0
        busy = 0.0
        for _, lookup_spent, _update_spent in replies:
            busy += lookup_spent
            if lookup_spent > critical:
                critical = lookup_spent
        with self._account_lock:
            self._busy_lookup_seconds += busy
            self._lookup_seconds += critical
        return critical

    def merge_batch(self, parts, count: int, decode: bool = True):
        """Await every worker's slice and merge in input order.

        ``decode=False`` keeps the merged labels packed (an int64 array
        with 0 = no route) — the replay loop uses it, since a serving
        frontend forwards labels rather than boxing them into Python
        objects; :meth:`lookup_batch` decodes for the public API.
        """
        if not count:
            return []
        try:
            return self._merge_replies(parts, count, decode)
        finally:
            # The in-flight span closes only after the merge: the
            # measured wall clock prices fan-out, waiting AND merge,
            # exactly as WorkerReport documents.
            self._leave_flight()

    def _merge_replies(self, parts, count: int, decode: bool):
        replies = []
        for handle, positions, future, kind, packed in parts:
            try:
                payload = self._await(future, handle=handle, op=kind)
            except WorkerError as error:
                payload = self._recover_part(handle, kind, packed, error)
            replies.append((payload, positions))
        if self._broadcast:
            # Reply shape (positions, labels, lookup_s, update_s): the
            # workers already did the owner split; adopt their positions.
            replies = [
                ((payload[1], payload[2], payload[3]), payload[0])
                for payload, _ in replies
            ]
        if self._transport == "pipe":
            # shm replies were already counted by the ring pump.
            received = 0
            for (labels, _, _), positions in replies:
                received += len(labels)
                if isinstance(positions, (bytes, bytearray)):
                    received += len(positions)
            with self._account_lock:
                self._bytes_rx += received
        self._account_batch([reply for reply, _ in replies])
        if len(replies) == 1 and replies[0][1] is None:  # single-shard plan
            merged = _unpack(replies[0][0][0])
            if _np is not None:
                merged = _np.frombuffer(merged, dtype=_np.int64)
        elif _np is not None:
            merged = _np.empty(count, dtype=_np.int64)
            for (payload, _, _), positions in replies:
                labels = _np.frombuffer(payload, dtype=_np.int64)
                if isinstance(positions, bytes):
                    positions = _np.frombuffer(positions, dtype=_np.int64)
                elif not isinstance(positions, _np.ndarray):
                    positions = _np.asarray(positions, dtype=_np.int64)
                merged[positions] = labels
        else:
            merged = array("q", bytes(8 * count))
            for (payload, _, _), positions in replies:
                labels = _unpack(payload)
                if isinstance(positions, bytes):
                    positions = _unpack(positions)
                for position, label in zip(positions, labels):
                    merged[position] = label
        if not decode:
            return merged
        return [label if label else None for label in merged.tolist()]

    def _recover_part(self, handle: _WorkerHandle, kind: str, packed, error):
        """One in-flight batch part died with its worker. Lookups are
        idempotent, so retry the part transparently against the already
        respawned shard when there is one; otherwise serve it degraded
        from the frontend while the shard is down. Without supervision
        — or past the restart budget — the original failure propagates,
        exactly the unsupervised contract."""
        index = handle.index
        if not self._recoverable(index):
            if kind in ("lookup", "bcast"):
                with self._account_lock:
                    self._failed_lookups += len(packed) // 8
            raise error
        current = self._handles[index]
        if current is not handle and not current.dead:
            try:
                payload = self._await(
                    self._request(current, kind, packed),
                    handle=current, op=kind,
                )
            except WorkerError:
                pass  # fell again; degrade below
            else:
                with self._account_lock:
                    self._retried_batches += 1
                return payload
        return self._serve_degraded(index, kind, packed)

    def _serve_degraded(self, index: int, kind: str, packed):
        """Answer one batch part from the frontend while shard ``index``
        is down: the publisher (shm) or the control oracle (pipe)
        already absorbed every accepted update, so degraded answers are
        never *staler* than the dead worker's would have been — the
        price is frontend CPU, and every address served this way is
        counted in ``degraded_lookups``."""
        with self._pool_lock:
            if kind == "bcast":
                positions, owned = _owned_slice(
                    packed, self._filter_spec(index)
                )
                payload = (positions, self._frontend_labels(owned), 0.0, 0.0)
                served = len(owned)
            elif kind == "lookup":
                owned = _unpack(packed)
                payload = (self._frontend_labels(owned), 0.0, 0.0)
                served = len(owned)
            else:
                raise WorkerError(
                    f"worker {index} is down; no degraded path for {kind!r}",
                    worker_index=index, op=kind,
                )
        with self._account_lock:
            self._degraded_lookups += served
        self._obs_degraded.inc(served)
        return payload

    def _frontend_labels(self, owned) -> bytes:
        """Resolve one owned slice on the frontend (degraded path)."""
        if self._transport == "shm":
            return self._publisher.lookup_batch_packed(owned)
        oracle = self._control.lookup
        return array(
            "q", [oracle(address) or 0 for address in owned]
        ).tobytes()

    def lookup_batch(self, addresses: Sequence[int]) -> List[Optional[int]]:
        """Serve one batch synchronously (fan out, wait, merge)."""
        parts, count = self.submit_batch(addresses)
        return self.merge_batch(parts, count)

    def lookup_batch_packed(self, addresses: Sequence[int]) -> bytes:
        """Serve one batch, returning packed native int64 labels
        (0 = no route) — the zero-boxing
        :class:`~repro.serve.plane.ServingPlane` surface."""
        parts, count = self.submit_batch(addresses)
        if not count:
            return b""
        return self.merge_batch(parts, count, decode=False).tobytes()

    def lookup(self, address: int) -> Optional[int]:
        return self.lookup_batch([address])[0]

    # ---------------------------------------------------------------- updates

    def apply_update(self, op: UpdateOp) -> bool:
        """Route one accepted operation down every owning worker's pipe.

        The oracle applies it first (bogus withdrawals are skipped
        pool-wide); per-worker FIFO ordering of the serialized feed is
        the pipe's. On the rebuild plane the routed backlog is tracked
        frontend-side so the coordinator knows which workers are due.
        """
        started = time.perf_counter()
        # Under the pool lock the feed cannot interleave with a respawn:
        # either the update lands before the snapshot/publish the fresh
        # worker boots from (so replay carries it) or after the new
        # handle is installed (so it is routed normally) — never both.
        with self._pool_lock:
            try:
                self._control.update(op.prefix, op.length, op.label)
            except KeyError:
                self._updates_skipped += 1
                with self._account_lock:
                    self._update_seconds += time.perf_counter() - started
                return False
            owners = self._plan.owners(op.prefix, op.length)
            if self._pending_plan is not None:
                # Mid-transition the op must reach the owners of *both*
                # plans: a worker already resharded onto its new range
                # snapshot would otherwise miss churn for a range it is
                # about to inherit. Extra deliveries are harmless — a
                # restricted server absorbs out-of-range announces and
                # skips withdrawals of routes it never held.
                owners = tuple(
                    sorted(
                        set(owners)
                        | set(self._pending_plan.owners(op.prefix, op.length))
                    )
                )
            if self._transport == "shm":
                # The update never crosses a process boundary per-op: the
                # frontend-hosted publisher absorbs it (a patch on the
                # incremental plane, a backlog entry on the rebuild plane)
                # and the workers adopt it wholesale at the next published
                # generation. A dead owner that will never be respawned
                # still surfaces here — accepting an update no live worker
                # can ever adopt would serve the stale generation silently.
                for index in owners:
                    handle = self._handles[index]
                    if handle.dead and not self._recoverable(index):
                        raise handle.error(op="update")
                self._publisher.apply_update(op)
                self._publish_proxy.pending.append(op)
                if self._vis_ingress_ns is None:
                    # The oldest unpublished update's ingress stamp; rides
                    # the next OP_ATTACH so the workers can close the
                    # cross-process visibility window.
                    self._vis_ingress_ns = now_ns()
            else:
                for index in owners:
                    handle = self._handles[index]
                    if handle.dead and self._recoverable(index):
                        # The respawn rebuilds this shard from the control
                        # oracle, which already carries this update.
                        continue
                    try:
                        self._send_update(handle, op)
                    except WorkerError:
                        if self._recoverable(index):
                            continue
                        raise
                    if not self._incremental:
                        self._proxies[index].pending.append(op)
        with self._account_lock:
            self._update_seconds += time.perf_counter() - started
        self._updates_applied += 1
        self._fanout_total += len(owners)
        self._tick()
        if self._pending_plan is not None:
            self._advance_replan()
        return True

    def apply_updates(self, ops: Sequence[UpdateOp]) -> int:
        """Apply a sequence of operations; returns how many were
        accepted (the :class:`~repro.serve.plane.ServingPlane` batch
        update surface)."""
        return sum(1 for op in ops if self.apply_update(op))

    # ------------------------------------------------------------ coordinator

    def _tick(self) -> None:
        """The coordinator's per-event chance to stagger one swap."""
        if self._coordinator.due():
            self._coordinator.tick()

    # -------------------------------------------------------------- autoscale

    def _autoscale_step(self, batch_size: int) -> None:
        """One drift-monitor step (rides every lookup batch).

        While a re-plan is in flight this only advances it (one
        non-blocking poll); otherwise the gates — check cadence,
        observation window, post-replan cooldown — keep the O(2^G)
        imbalance computation off the common path.
        """
        policy = self._autoscale
        if self._pending_plan is not None:
            self._lookups_during_replan += batch_size
            self._advance_replan()
            return
        if (
            self._plan.mode != "prefix"
            or self._plan.shards < 2
            or self._batches % policy.check_every
            or self._traffic.total < policy.min_window
            or self._lookups - self._last_replan_lookups < policy.cooldown
        ):
            return
        imbalance = self._traffic.imbalance(self._plan)
        self._obs_imbalance.set(imbalance)
        if imbalance <= policy.imbalance_threshold:
            return
        with self._pool_lock:
            if self._closed or self._pending_plan is not None:
                return
            plan = plan_cluster(
                self._control,
                self._plan.shards,
                mode="prefix",
                traffic=self._traffic.snapshot(),
                hot_share=policy.hot_share,
                max_hot=policy.max_hot,
                spray_seed=policy.spray_seed,
            )
            if plan.bounds == self._plan.bounds and plan.hot == self._plan.hot:
                # Already the best cut the grid offers: restart the
                # window so a stale skew cannot re-trigger forever.
                self._traffic.reset()
                self._last_replan_lookups = self._lookups
                return
            self._pending_plan = plan
            if self._transport == "shm":
                # Workers map the full published program — any worker
                # answers any address — so the new plan lands as a
                # frontend-only owner-split flip, no worker involved.
                self._finish_replan()
                return
            self._reshard_specs = []
            self._reshard_next = 0
            self._reshard_inflight = None
            self._advance_replan()

    def _advance_replan(self) -> None:
        """Drive one non-blocking step of a pending pipe re-plan.

        At most one worker rebuilds at a time: its ``reshard`` request
        carries the union-restricted FIB snapshot and queues FIFO with
        its data plane, so that worker's lookups stall only for its own
        build while every other worker keeps serving — the staggered,
        no-global-pause analogue of the coordinator's epoch walk. The
        frontend routes by the *old* plan until every worker has acked,
        then flips atomically.
        """
        with self._pool_lock:
            plan = self._pending_plan
            if plan is None or self._transport == "shm" or self._closed:
                return
            if self._reshard_inflight is not None:
                _index, future = self._reshard_inflight
                if not future.done():
                    return
                self._reshard_inflight = None
                try:
                    build_spent, _size_bits = future.result()
                except Exception:  # noqa: BLE001
                    # The worker died or refused the new shard; its
                    # respawn (if any) is the supervisor's. Abandon the
                    # transition — the drift monitor re-triggers once
                    # traffic re-accumulates.
                    self._abort_replan()
                    return
                self._replan_seconds += build_spent
            if self._reshard_next < plan.shards:
                index = self._reshard_next
                handle = self._handles[index]
                # The union snapshot is cut *at send time*, under the
                # pool lock: every update accepted so far is inside it,
                # and every later one queues behind the reshard message
                # in this worker's pipe — cutting all snapshots up
                # front instead would lose the updates that land while
                # earlier workers rebuild.
                started = time.perf_counter()
                old_lo, old_hi = self._plan.shard_range(index)
                new_lo, new_hi = plan.shard_range(index)
                union = restrict_fib(
                    self._control,
                    new_lo,
                    new_hi,
                    extra=((old_lo, old_hi), *plan.hot),
                )
                spec = ShardSpec(index, new_lo, new_hi, union, hot=plan.hot)
                self._replan_seconds += time.perf_counter() - started
                new_filter = (
                    ("hash", plan.shards, index)
                    if plan.mode == "hash"
                    else ("prefix", spec.lo, spec.hi)
                )
                try:
                    future = self._submit(
                        handle, "reshard", spec.fib, new_filter
                    )
                except WorkerError:
                    self._abort_replan()
                    return
                # The snapshot supersedes this worker's routed backlog:
                # everything sent before the reshard is inside the
                # shipped FIB; later ops queue behind it and re-accrue.
                self._proxies[index].pending.clear()
                self._reshard_specs.append(spec)
                self._reshard_inflight = (index, future)
                self._reshard_next += 1
                return
            self._finish_replan()

    def _abort_replan(self) -> None:
        """Walk back a transition that lost a worker mid-adoption.

        Safe without undo: resharded workers hold *union* FIBs, a
        strict superset of what the still-authoritative old plan routes
        to them, so their answers stay correct."""
        self._pending_plan = None
        self._reshard_specs = []
        self._reshard_next = 0
        self._reshard_inflight = None
        self._traffic.reset()
        self._last_replan_lookups = self._lookups

    def _finish_replan(self) -> None:
        """Atomically flip the pool onto the pending plan."""
        plan = self._pending_plan
        self._pending_plan = None
        if self._transport == "pipe" and self._reshard_specs:
            for handle, spec in zip(self._handles, self._reshard_specs):
                handle.lo = spec.lo
                handle.hi = spec.hi
                handle.routes = spec.routes
        else:
            for index, handle in enumerate(self._handles):
                handle.lo, handle.hi = plan.shard_range(index)
        self._plan = plan
        self._reshard_specs = []
        self._reshard_next = 0
        self._reshard_inflight = None
        self._replans += 1
        self._obs_replans.inc()
        self._traffic.reset()
        self._last_replan_lookups = self._lookups

    def _swap(self, handle: _WorkerHandle, proxy: _ProxyServer) -> None:
        """One synchronous epoch swap over the control channel: send,
        block on the ack (which the pipe orders after every update
        already fed to the worker), clear the tracked backlog."""
        _, rebuild_spent, _ = self._await(
            self._submit(handle, "swap"), handle=handle, op="swap",
            timeout=self._control_timeout,
        )
        self._rebuild_seconds += rebuild_spent
        self._swaps += 1
        proxy.pending.clear()

    def _publish(self, force_full: bool = False) -> None:
        """Roll one program generation through the pool (shm).

        Two cadences. When the drained program is still the very object
        the live segment was imaged from and its patch journal is
        *clean* (terminal root-runs only — see
        :meth:`FlatProgram.take_patch_delta`), the update **rides as a
        delta**: the runs go down each worker's request ring
        (``OP_DELTA``, FIFO with the data plane) and land in the
        workers' process-local overlays — no segment copy, no re-image.
        Otherwise — block structure changed, the adapter recompiled,
        ``force_full`` (respawn/heal), or the journal overflowed — the
        full path copies the compiled image into a new segment and
        walks every live worker onto it (``OP_ATTACH``). Either way a
        worker that fails to adopt is declared dead rather than
        silently left serving stale answers.
        """
        with self._pool_lock:
            started = time.perf_counter()
            publisher = self._publisher
            rebuilt = False
            if publisher.pending:
                publisher.rebuild()
                rebuilt = True
            program = publisher.serving_program()
            entries, clean = (
                program.take_patch_delta() if program is not None else ([], False)
            )
            if (
                not force_full
                and not rebuilt
                and clean
                and program is self._published_program
                and len(entries) * 24 < DEFAULT_RING_BYTES // 2
            ):
                self._publish_delta(entries, started)
                return
            generation = self._generation + 1
            segment = publish_program(program, generation)
            self._published_program = program
            self._deltas_since_image = 0
            if self._faults is not None and self._faults.corrupts_publish(
                self._publishes + 1
            ):
                corrupt_segment_header(segment)
            self._segments.append(segment)
            name = segment.name.encode()
            ingress_ns = self._vis_ingress_ns or 0
            self._vis_ingress_ns = None
            submitted = []
            for handle in self._handles:
                if handle.dead:
                    continue
                try:
                    submitted.append(
                        (handle, self._submit_ring(
                            handle, OP_ATTACH, name, generation=generation,
                            aux1=ingress_ns,
                        ))
                    )
                except WorkerError:
                    continue  # already failed; in-flight futures are drained
            for handle, future in submitted:
                try:
                    adopted = self._await(
                        future, handle=handle, op="attach",
                        timeout=self._control_timeout,
                    )
                except WorkerError as error:
                    if not handle.dead:
                        # Alive but refusing the fresh generation: serving
                        # stale data silently is worse than losing the worker.
                        handle.fail(
                            f"worker {handle.index} failed to adopt "
                            f"generation {generation}: {error}",
                            op="attach",
                        )
                    continue
                handle.attach_seconds = max(handle.attach_seconds, adopted)
                self._attach_seconds = max(self._attach_seconds, adopted)
            old = self._program_segment
            self._program_segment = segment
            self._generation = generation
            if old is not None:
                self._segments.remove(old)
                try:
                    old.close()
                except BufferError:  # pragma: no cover - a view escaped
                    pass
                try:
                    old.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass
            self._publishes += 1
            self._swaps += 1
            self._rebuild_seconds += time.perf_counter() - started
            self._publish_proxy.pending.clear()

    def _publish_delta(self, entries, started: float) -> None:
        """Ride a clean terminal patch delta to every live worker.

        Called from :meth:`_publish` under the pool lock once the
        journal is verified clean and the published program unchanged.
        An empty delta still rolls (it closes the visibility window of
        updates that did not move the compiled plane). Workers that
        fail to adopt are failed exactly like a refused attach.
        """
        if entries:
            flat = array("q")
            for start, end, val in entries:
                flat.extend((start, end, val))
            payload = flat.tobytes()
        else:
            payload = b""
        ingress_ns = self._vis_ingress_ns or 0
        self._vis_ingress_ns = None
        generation = self._generation
        submitted = []
        for handle in self._handles:
            if handle.dead:
                continue
            try:
                submitted.append(
                    (handle, self._submit_ring(
                        handle, OP_DELTA, payload, generation=generation,
                        aux1=ingress_ns,
                    ))
                )
            except WorkerError:
                continue  # already failed; in-flight futures are drained
        for handle, future in submitted:
            try:
                self._await(
                    future, handle=handle, op="delta",
                    timeout=self._control_timeout,
                )
            except WorkerError as error:
                if not handle.dead:
                    # Alive but refusing the delta: serving stale
                    # answers silently is worse than losing the worker.
                    handle.fail(
                        f"worker {handle.index} failed to adopt the "
                        f"generation {generation} delta: {error}",
                        op="delta",
                    )
                continue
        self._delta_publishes += 1
        self._deltas_since_image += 1
        self._swaps += 1
        self._rebuild_seconds += time.perf_counter() - started
        self._publish_proxy.pending.clear()

    def quiesce(self) -> None:
        """Drain the update plane: publish the backlog's generation on
        the shm transport, else swap each due worker (one at a time).
        A re-plan still in flight is driven to completion first, so a
        quiesced pool always serves exactly its reported plan."""
        self.settle()
        while self._pending_plan is not None and not self._closed:
            inflight = self._reshard_inflight
            if inflight is not None:
                index, future = inflight
                try:
                    self._await(
                        future,
                        handle=self._handles[index],
                        op="reshard",
                        timeout=self._control_timeout,
                    )
                except WorkerError:
                    pass  # declared failed; the advance below aborts
            self._advance_replan()
        if self._transport == "shm":
            if self._publish_proxy.pending:
                self._publish()
            return
        with self._pool_lock:
            for handle, proxy in zip(self._handles, self._proxies):
                if proxy.pending:
                    if handle.dead and self._recoverable(handle.index):
                        continue  # the respawn rebuilds it fresh
                    self._swap(handle, proxy)

    # ----------------------------------------------------------------- replay

    def replay(self, events: Sequence[ServeEvent]) -> None:
        """Synchronous scenario replay (the async front-end pipelines)."""
        for event in events:
            if event.is_lookup:
                parts, count = self.submit_batch(event.addresses)
                self.merge_batch(parts, count, decode=False)
            else:
                self.apply_update(event.op)

    def parity_fraction(self, addresses: Sequence[int]) -> float:
        """Fraction of probe addresses agreeing with the pool oracle
        (served over the uncounted probe channel)."""
        if not addresses:
            return 1.0
        self.settle()
        oracle = self._control.lookup
        agreed = 0
        for handle, _, packed in self._split(addresses):
            probe = _unpack(packed)
            served = _unpack(
                self._await(
                    self._request(handle, "probe", packed),
                    handle=handle, op="probe",
                )
            )
            agreed += sum(
                1
                for address, label in zip(probe, served)
                if label == (oracle(address) or 0)
            )
        return agreed / len(addresses)

    # ---------------------------------------------------------------- metrics

    def report(
        self, scenario: str = "", final_parity: Optional[float] = None,
        wall_seconds: float = 0.0,
    ) -> WorkerReport:
        """Gather every worker's state and aggregate, cluster-style.

        On the pipe transport each worker returns its full
        ``ServeReport``. On the shm transport the workers are thin
        resolvers — they return counter dicts — and the update-plane
        accounting (rebuilds, cycles, structure sizes) comes from the
        frontend-hosted publisher, plus the published image segment the
        workers share (counted once: it is physically one mapping).
        """
        futures: List[Optional[Future]] = []
        for handle in self._handles:
            if handle.dead:
                if self._supervisor is None:
                    raise handle.error(op="report")
                futures.append(None)  # down mid-recovery (or abandoned)
                continue
            try:
                futures.append(self._submit(handle, "report", scenario))
            except WorkerError:
                if self._supervisor is None:
                    raise
                futures.append(None)
        records: List[Any] = []
        for handle, future in zip(self._handles, futures):
            if future is None:
                records.append(None)
                continue
            try:
                records.append(
                    self._await(
                        future, handle=handle, op="report",
                        timeout=self._control_timeout,
                    )
                )
            except WorkerError:
                if self._supervisor is None:
                    raise
                records.append(None)
        worker_snaps: List[Optional[dict]] = []
        shard_rows: List[dict] = []
        stale = mismatches = rebuilds = generation = pending = size = peak = 0
        worker_update = rebuild_seconds = rebuild_cycles = 0.0
        if self._transport == "shm":
            published = self._publisher.report(scenario=scenario)
            image_bits = 8 * self._program_segment.size
            stale = self._stale_lookups
            rebuilds = published.rebuilds
            pending = len(self._publish_proxy.pending)
            # One publisher + one shared image; while a publish is in
            # flight two generations of the image are linked at once.
            size = published.size_bits + image_bits
            peak = published.peak_size_bits + image_bits * (
                2 if self._publishes else 1
            )
            # The publisher's own update/rebuild clocks are inside the
            # pool's measured walls (it runs on the frontend), so only
            # the pool's clocks are reported — no double counting.
            rebuild_seconds = self._rebuild_seconds
            rebuild_cycles = published.rebuild_cycles
            # Staleness is a pool-wide property on this plane (every
            # worker lags the same unpublished backlog identically).
            pool_staleness = stale / self._lookups if self._lookups else 0.0
            for handle, record in zip(self._handles, records):
                if record is None:
                    shard_rows.append(self._down_row(handle))
                    worker_snaps.append(None)
                    continue
                generation += record["generation"]
                worker_snaps.append(record.get("obs"))
                shard_rows.append(
                    {
                        "shard": handle.index,
                        "lo": handle.lo,
                        "hi": handle.hi,
                        "routes": handle.routes,
                        "lookups": record["lookups"],
                        "lookup_seconds": record["lookup_seconds"],
                        "staleness": pool_staleness,
                        "rebuilds": 0,
                        "generation": record["generation"],
                        "size_bits": record["size_bits"],
                        "peak_size_bits": record["size_bits"],
                        "attach_seconds": record["attach_seconds"],
                    }
                )
        else:
            for handle, record in zip(self._handles, records):
                if record is None:
                    shard_rows.append(self._down_row(handle))
                    worker_snaps.append(None)
                    continue
                worker_snaps.append(getattr(record, "obs", None))
                stale += record.stale_lookups
                mismatches += record.label_mismatches
                rebuilds += record.rebuilds
                generation += record.generation
                pending += record.pending_updates
                size += record.size_bits
                peak += record.peak_size_bits
                worker_update += record.update_seconds
                rebuild_seconds += record.rebuild_seconds
                rebuild_cycles += record.rebuild_cycles
                shard_rows.append(
                    {
                        "shard": handle.index,
                        "lo": handle.lo,
                        "hi": handle.hi,
                        "routes": handle.routes,
                        "lookups": record.lookups,
                        "lookup_seconds": record.lookup_seconds,
                        "staleness": record.staleness,
                        "rebuilds": record.rebuilds,
                        "generation": record.generation,
                        "size_bits": record.size_bits,
                        "peak_size_bits": record.peak_size_bits,
                    }
                )
        obs_snapshot = None
        if self._obs.enabled:
            # Merge into a throwaway registry, never the live one, so
            # report() stays idempotent (worker snapshots are cumulative
            # — folding them into self._obs twice would double-count).
            merged = Registry()
            merged.merge(self._obs)
            for snap in worker_snaps:
                if snap:
                    merged.merge(snap)
            self._sample_ring_obs(merged, records)
            obs_snapshot = merged.snapshot()
        applied = self._updates_applied
        return WorkerReport(
            name=self.name,
            title=self._spec.title,
            scenario=scenario,
            incremental=self._incremental,
            lookups=self._lookups,
            batches=self._batches,
            updates_applied=applied,
            updates_skipped=self._updates_skipped,
            rebuilds=rebuilds,
            generation=generation,
            pending_updates=pending,
            stale_lookups=stale,
            label_mismatches=mismatches,
            lookup_seconds=self._lookup_seconds,
            update_seconds=self._update_seconds + worker_update,
            rebuild_seconds=rebuild_seconds + self._replan_seconds,
            size_bits=size,
            peak_size_bits=peak,
            rebuild_cycles=rebuild_cycles,
            final_parity=final_parity,
            shards=self._plan.shards,
            partition=self._plan.mode,
            replicated_routes=self._replicated_routes(),
            update_fanout=(self._fanout_total / applied) if applied else 0.0,
            busy_lookup_seconds=self._busy_lookup_seconds,
            coordinator_swaps=self._coordinator.swaps,
            shard_rows=tuple(shard_rows),
            spawn_method=self._start_method,
            spawn_seconds=self._spawn_seconds,
            wall_lookup_seconds=self._wall_lookup_seconds,
            wall_seconds=wall_seconds,
            transport=self._transport,
            attach_seconds=self._attach_seconds,
            publishes=self._publishes,
            delta_publishes=self._delta_publishes,
            bytes_tx=self._bytes_tx,
            bytes_rx=self._bytes_rx,
            replans=self._replans,
            lookups_during_replan=self._lookups_during_replan,
            hot_ranges=len(self._plan.hot),
            degraded_lookups=self._degraded_lookups,
            failed_lookups=self._failed_lookups,
            retried_batches=self._retried_batches,
            worker_restarts=self._restarts,
            workers_abandoned=(
                self._supervisor.abandoned_count
                if self._supervisor is not None
                else 0
            ),
            recovery_seconds=self._recovery_seconds,
            max_restarts=self._max_restarts,
            obs=obs_snapshot,
        )

    @staticmethod
    def _down_row(handle: _WorkerHandle) -> dict:
        """A shard row for a worker that is down at report time (its
        served-so-far counters died with the process; the pool-level
        degraded/restart counters carry the story instead)."""
        return {
            "shard": handle.index,
            "lo": handle.lo,
            "hi": handle.hi,
            "routes": handle.routes,
            "lookups": 0,
            "lookup_seconds": 0.0,
            "staleness": 0.0,
            "rebuilds": 0,
            "generation": 0,
            "size_bits": 0,
            "peak_size_bits": 0,
            "down": True,
        }

    def _sample_ring_obs(self, target: Registry, records) -> None:
        """Sample ring occupancy and backpressure counters into one
        registry (set semantics — the rings hold the running totals, so
        re-sampling is idempotent). Request rings are frontend-produced
        and sampled here; response-ring producer counters live in the
        workers and arrive inside their report dicts."""
        if self._transport != "shm" or not target.enabled:
            return
        labelnames = ("ring",)
        occupancy = target.gauge(
            "ring_occupancy_slots", "slots in use at sample time", labelnames
        )
        stats = {
            "pads": target.counter(
                "ring_pads_total", "PAD records written at wraparound",
                labelnames,
            ),
            "spin_stalls": target.counter(
                "ring_spin_stalls_total", "sends that found the ring full",
                labelnames,
            ),
            "sleep_stalls": target.counter(
                "ring_sleep_stalls_total",
                "full-ring sends that outspun the spin budget and slept",
                labelnames,
            ),
            "overflows": target.counter(
                "ring_overflows_total", "records larger than the ring",
                labelnames,
            ),
            "bytes": target.counter(
                "ring_bytes_total", "payload bytes produced into the ring",
                labelnames,
            ),
        }
        for handle, record in zip(self._handles, records):
            if handle.req_ring is not None:
                ring = handle.req_ring
                key = f"req:{handle.index}"
                occupancy.labels(key).set(ring.used_slots())
                for stat, instrument in stats.items():
                    instrument.labels(key).value = getattr(ring, f"stat_{stat}")
            shipped = record.get("ring") if isinstance(record, dict) else None
            if shipped:
                key = f"res:{handle.index}"
                occupancy.labels(key).set(shipped.get("occupancy", 0))
                for stat, instrument in stats.items():
                    instrument.labels(key).value = shipped.get(stat, 0)

    def _replicated_routes(self) -> int:
        from repro.pipeline.shard import boundary_routes, prefix_span

        if self._plan.shards == 1:
            return 0
        if self._plan.mode == "hash":
            return len(self._control)
        crossing = {
            (route.prefix, route.length)
            for route in boundary_routes(self._control, self._plan.bounds)
        }
        if self._plan.hot:
            # Hot-range routes replicate into every shard by design.
            width = self._control.width
            for route in self._control:
                span_lo, span_hi = prefix_span(route.prefix, route.length, width)
                if any(
                    span_lo < hi and lo < span_hi for lo, hi in self._plan.hot
                ):
                    crossing.add((route.prefix, route.length))
        return len(crossing)

    # ---------------------------------------------------------------- closing

    def close(self, join_timeout: float = 5.0) -> None:
        """Shut every worker down (idempotent; terminates stragglers).

        The frontend owns every shared-memory segment — rings and
        program images — and unlinks each exactly once here, whether
        the workers exited cleanly, crashed mid-batch, or never came
        up: a crashed worker's mappings die with its process, so after
        ``close()`` nothing of the pool remains in ``/dev/shm``.
        """
        if self._closed:
            return
        self._closed = True
        if self._supervisor is not None:
            # Stop before taking the pool lock: an in-flight respawn
            # holds it, and stop() joins the supervisor thread — after
            # this no new respawn can start.
            self._supervisor.stop()
        if self._ring_reader is not None:
            self._ring_reader.join(2.0)  # sees _closed within one sweep
            self._ring_reader = None
        with self._pool_lock:
            for handle in self._handles:
                if not handle.dead:
                    try:
                        with handle.send_lock:
                            handle.conn.send(("shutdown",))
                    except (OSError, ValueError):
                        pass
            for handle in self._handles:
                if not handle.reaped:
                    handle.process.join(join_timeout)
                self._reap(handle, join_timeout)
            # Rings not owned by any current handle (a respawn raced
            # close, or spawn itself failed) unlink here; _reap already
            # removed every handle-owned ring from the list.
            for ring in self._rings:
                ring.close()  # owner side: unlinks the segment
            self._rings.clear()
            for segment in self._segments:
                try:
                    segment.close()
                except BufferError:  # pragma: no cover - a view escaped
                    pass
                try:
                    segment.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass
            self._segments.clear()
            self._program_segment = None


class AsyncFibFrontend:
    """Asyncio front-end pipelining lookups over a :class:`WorkerPool`.

    Lookup batches are submitted in event order (so every worker's pipe
    sees the same lookup/update interleaving the script prescribes) but
    merged concurrently: up to ``window`` batches stay in flight, which
    overlaps the frontend's serial split/pack/merge work with the
    workers' parallel serving time instead of strictly alternating —
    the difference between the critical-path model and what a
    sequential fan-out actually achieves.
    """

    def __init__(self, pool: WorkerPool, window: int = DEFAULT_WINDOW):
        if window < 1:
            raise ValueError(f"pipeline window must be positive, got {window}")
        self._pool = pool
        self._window = window

    @property
    def pool(self) -> WorkerPool:
        return self._pool

    @property
    def window(self) -> int:
        return self._window

    async def _merge(self, parts, count: int, decode: bool):
        """Complete one in-flight batch without blocking the loop."""
        return await asyncio.get_running_loop().run_in_executor(
            None, self._pool.merge_batch, parts, count, decode
        )

    async def lookup_batch(self, addresses: Sequence[int]) -> List[Optional[int]]:
        """Serve one batch through the pool, awaiting the merge."""
        parts, count = self._pool.submit_batch(addresses)
        return await self._merge(parts, count, True)

    async def lookup_batch_packed(self, addresses: Sequence[int]) -> bytes:
        """Packed twin of :meth:`lookup_batch` (native int64 labels,
        0 = no route)."""
        parts, count = self._pool.submit_batch(addresses)
        if not count:
            return b""
        merged = await self._merge(parts, count, False)
        return merged.tobytes()

    # The update/report/lifecycle surface delegates straight to the
    # pool (updates are fire-and-forget, reports and teardown are
    # control-plane), completing the ServingPlane contract; only the
    # lookup path is genuinely asynchronous here.

    def apply_update(self, op: UpdateOp) -> bool:
        return self._pool.apply_update(op)

    def apply_updates(self, ops: Sequence[UpdateOp]) -> int:
        return self._pool.apply_updates(ops)

    def quiesce(self) -> None:
        self._pool.quiesce()

    def parity_fraction(self, addresses: Sequence[int]) -> float:
        return self._pool.parity_fraction(addresses)

    def report(self, *args, **kwargs) -> WorkerReport:
        return self._pool.report(*args, **kwargs)

    def close(self) -> None:
        self._pool.close()

    def __enter__(self) -> "AsyncFibFrontend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    async def replay(self, events: Sequence[ServeEvent]) -> None:
        """Pipelined scenario replay.

        Submissions happen inline, in event order — updates are
        fire-and-forget and batch fan-outs are non-blocking — while
        merges run as windowed tasks. The window is backpressure: when
        ``window`` batches are in flight the replay pauses until the
        oldest merge lands, bounding frontend memory and pipe depth.
        """
        merges: List[asyncio.Task] = []
        gate = asyncio.Semaphore(self._window)
        try:
            for event in events:
                if event.is_lookup:
                    await gate.acquire()
                    parts, count = self._pool.submit_batch(event.addresses)

                    async def complete(parts=parts, count=count):
                        try:
                            await self._merge(parts, count, False)
                        finally:
                            gate.release()

                    merges.append(asyncio.ensure_future(complete()))
                else:
                    self._pool.apply_update(event.op)
            if merges:
                await asyncio.gather(*merges)
        finally:
            for task in merges:
                if not task.done():  # pragma: no cover - error unwinding
                    task.cancel()


def serve_worker_scenario(
    name: str,
    fib: Fib,
    events: Sequence[ServeEvent],
    *,
    scenario: str = "",
    workers: int = 2,
    partition: str = "prefix",
    options: Optional[Dict[str, Any]] = None,
    rebuild_every: int = DEFAULT_REBUILD_EVERY,
    batched: bool = True,
    parity_probes: Sequence[int] = (),
    granularity: Optional[int] = None,
    start_method: str = DEFAULT_START_METHOD,
    window: int = DEFAULT_WINDOW,
    timeout: float = DEFAULT_TIMEOUT,
    control_timeout: float = DEFAULT_CONTROL_TIMEOUT,
    transport: str = DEFAULT_TRANSPORT,
    ring_bytes: int = DEFAULT_RING_BYTES,
    obs: Registry = NULL_REGISTRY,
    max_restarts: int = 0,
    restart_window: float = DEFAULT_RESTART_WINDOW,
    faults: Optional[FaultPlan] = None,
    autoscale: Optional[AutoscalePolicy] = None,
) -> WorkerReport:
    """Replay one script through a real multi-process worker pool.

    The worker twin of :func:`~repro.serve.cluster.serve_cluster_scenario`:
    spawn the pool, replay the script through the pipelining async
    front-end, quiesce every worker, probe post-quiescence parity
    against the pool oracle, report (with the whole-replay wall clock),
    and always tear the processes down. ``max_restarts``/``faults``
    turn the run into a supervised (and optionally chaos-injected) one.
    """
    pool = WorkerPool(
        name,
        fib,
        workers=workers,
        partition=partition,
        options=options,
        rebuild_every=rebuild_every,
        batched=batched,
        granularity=granularity,
        start_method=start_method,
        timeout=timeout,
        control_timeout=control_timeout,
        transport=transport,
        ring_bytes=ring_bytes,
        obs=obs,
        max_restarts=max_restarts,
        restart_window=restart_window,
        faults=faults,
        autoscale=autoscale,
    )
    try:
        frontend = AsyncFibFrontend(pool, window=window)
        started = time.perf_counter()
        asyncio.run(frontend.replay(events))
        pool.quiesce()
        wall = time.perf_counter() - started
        parity = pool.parity_fraction(parity_probes) if parity_probes else None
        return pool.report(
            scenario=scenario, final_parity=parity, wall_seconds=wall
        )
    finally:
        pool.close()
